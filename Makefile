.PHONY: all build test bench bench-smoke lint metrics-smoke net-smoke \
	cluster-smoke raw-smoke verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Packed-table checks only (PAR1 determinism, PAK1 size floor) on a
# small family: seconds, not minutes, so CI can afford it per push.
bench-smoke:
	dune exec bench/main.exe -- smoke

# Lint every example hierarchy with the full rule set (the classic six
# plus the cross-semantics rules) in SARIF mode; any error-severity
# finding (an ambiguous lookup) fails the build.  Warnings and notes
# (dominance fragility, dead declarations, baseline and MRO divergence)
# are expected on the paper figures and do not fail.  Figure 1 and the
# MRO diamond are the exceptions: they are deliberately *ambiguous*
# hierarchies, so the gate inverts there — the linter must flag them,
# and not flagging them fails the build.
lint:
	@for f in examples/*.cpp; do \
	  echo "lint $$f"; \
	  case $$f in \
	  examples/fig1.cpp|examples/diamond_mro.cpp) \
	    if dune exec --no-build bin/cxxlookup.exe -- lint $$f --rules all \
	         --format sarif --fail-on error > /dev/null; then \
	      echo "lint: expected ambiguous-lookup error missing in $$f" >&2; \
	      exit 1; \
	    fi ;; \
	  *) \
	    dune exec --no-build bin/cxxlookup.exe -- lint $$f --rules all \
	      --format sarif --fail-on error > /dev/null || exit 1 ;; \
	  esac; \
	done

# Observability end to end: two live scrapes of one serve process
# validated by the pure-OCaml exposition checker (format + counter
# monotonicity), and the SIGUSR1 flight-recorder dump.
metrics-smoke: build
	sh test/smoke/metrics_smoke.sh
	sh test/smoke/flight_recorder.sh

# The networked server end to end: the six-verb golden transcript over
# TCP (byte-identical to stdin mode), a loadgen burst, and two scrapes
# of the cxxlookup_server_… series through the exposition checker.
net-smoke: build
	sh test/smoke/serve_tcp.sh

# The cluster layer end to end under chaos: leader + WAL-shipping
# replica + shard router, each SIGKILLed at its worst moment — the
# replica mid-stream (restart over the same store must recover and
# converge), a router backend mid-fan-out (every response correct or
# an explicit backend_unavailable), and the router itself.
cluster-smoke: build
	sh test/smoke/cluster_chaos.sh

# The raw speed floor end to end: one server answering the same
# transcript over JSON lines and cxxlookup-rpc/1b frames must agree
# verdict for verdict (plus a binary loadgen burst, with the server's
# frame-decode histogram proving frames took the 1b path), and
# zero-copy snapshot recovery must survive SIGKILL identically in all
# three restore modes — including falling back past a damaged newest
# snapshot.
raw-smoke: build
	sh test/smoke/binary_rpc.sh
	sh test/smoke/mmap_crash.sh

# CI entry point: full build, full test suite, a smoke run of the
# telemetry pipeline end to end (parse -> all three engines -> JSON),
# a serve smoke test (canned cxxlookup-rpc/1 transcript through the
# service, diffed against its golden), a crash-recovery smoke test
# (durable serve, SIGKILL, restart over the same store, diff against
# the recovered-transcript golden), the raw-path smokes (both RPC
# framings agreeing, mmap crash recovery in every restore mode), the
# packed-table and MRO bench smoke checks, and the hierarchy linter
# (full rule set) over every example in SARIF mode.
verify:
	dune build @all
	dune runtest
	dune exec bin/cxxlookup.exe -- stats examples/fig9.cpp --stats-json \
	  | grep -q '"schema": "cxxlookup-stats/1"'
	dune exec bin/cxxlookup.exe -- serve --jobs 1 < test/smoke/serve_input.jsonl \
	  | diff - test/smoke/serve_golden.jsonl
	sh test/smoke/crash_recovery.sh
	$(MAKE) metrics-smoke
	$(MAKE) net-smoke
	$(MAKE) cluster-smoke
	$(MAKE) raw-smoke
	$(MAKE) bench-smoke
	$(MAKE) lint
	@echo "verify: OK"

clean:
	dune clean
