.PHONY: all build test bench verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# CI entry point: full build, full test suite, a smoke run of the
# telemetry pipeline end to end (parse -> all three engines -> JSON),
# a serve smoke test (canned cxxlookup-rpc/1 transcript through the
# service, diffed against its golden), and a crash-recovery smoke test
# (durable serve, SIGKILL, restart over the same store, diff against
# the recovered-transcript golden).
verify:
	dune build @all
	dune runtest
	dune exec bin/cxxlookup.exe -- stats examples/fig9.cpp --stats-json \
	  | grep -q '"schema": "cxxlookup-stats/1"'
	dune exec bin/cxxlookup.exe -- serve < test/smoke/serve_input.jsonl \
	  | diff - test/smoke/serve_golden.jsonl
	sh test/smoke/crash_recovery.sh
	@echo "verify: OK"

clean:
	dune clean
