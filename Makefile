.PHONY: all build test bench verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# CI entry point: full build, full test suite, then a smoke run of the
# telemetry pipeline end to end (parse -> all three engines -> JSON).
verify:
	dune build @all
	dune runtest
	dune exec bin/cxxlookup.exe -- stats examples/fig9.cpp --stats-json \
	  | grep -q '"schema": "cxxlookup-stats/1"'
	@echo "verify: OK"

clean:
	dune clean
