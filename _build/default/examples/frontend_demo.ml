(* The compiler-front-end scenario from the paper's introduction: "when a
   class member access expression such as x.m is statically analyzed,
   e.g. by a compiler, the member name m has to be resolved in the
   context of a class specified by the static type of x."

   This example compiles a small C++ translation unit end to end: parse,
   build the class hierarchy, resolve every member access with the
   paper's algorithm, and apply access control afterwards.

   Run with: dune exec examples/frontend_demo.exe *)

let good_program = {|
// A small widget toolkit with a virtual-inheritance diamond.
class Object {
public:
  int refcount;
  virtual void destroy();
};

class Drawable : virtual Object {
public:
  int z_order;
  virtual void draw();
};

class Clickable : virtual Object {
public:
  int hot_area;
  virtual void click();
};

class Widget : Drawable, Clickable {
public:
  Widget* parent;
  virtual void draw();      // overrides Drawable::draw
private:
  int internal_state;
};

int main() {
  Widget w;
  Widget* p;
  w.z_order = 3;         // resolves to Drawable::z_order
  w.refcount = 1;        // shared virtual Object subobject: unambiguous
  p->draw;               // resolves to Widget::draw
  w.parent->hot_area;    // chained access through a pointer member
}
|}

let bad_program = {|
struct Tape  { int position; };
struct Deck1 : Tape {};
struct Deck2 : Tape {};
struct DualDeck : Deck1, Deck2 {};

class Secret { int key; };   // private by default

int main() {
  DualDeck d;
  d.position = 0;        // error: two Tape subobjects -> ambiguous
  d.missing;             // error: no such member
  Secret s;
  s.key;                 // error: private member
  t.position;            // error: unknown variable
}
|}

let run title src =
  Format.printf "@.=== %s ===@." title;
  let r = Frontend.Sema.analyze_source src in
  if r.resolutions <> [] then begin
    Format.printf "resolutions:@.";
    List.iter
      (fun res ->
        Format.printf "  %a@." (Frontend.Sema.pp_resolution r.graph) res)
      r.resolutions
  end;
  if r.diagnostics <> [] then begin
    Format.printf "diagnostics:@.";
    List.iter
      (fun d -> Format.printf "  %s@." (Frontend.Diagnostic.to_string d))
      r.diagnostics
  end;
  Format.printf "=> %s@."
    (if Frontend.Sema.ok r then "compiled cleanly" else "errors found")

let () =
  run "a well-formed translation unit" good_program;
  run "a translation unit exercising the diagnostics" bad_program
