(* A guided tour of every example in the paper: Figures 1-7 and the g++
   counterexample of Figure 9, each reproduced with this library.

   Run with: dune exec examples/paper_figures.exe *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec
module Sgraph = Subobject.Sgraph
module Engine = Lookup_core.Engine

let section title =
  Format.printf "@.=== %s ===@." title

let show_lookup g c m =
  Format.printf "  lookup(%s, %s) = %a@." (G.name g c) m
    (Spec.pp_verdict g) (Spec.lookup g c m)

let () =
  section "Figures 1 and 2: non-virtual vs virtual inheritance";
  let g1 = Hiergen.Figures.fig1 () and g2 = Hiergen.Figures.fig2 () in
  let e1 = G.find g1 "E" and e2 = G.find g2 "E" in
  Format.printf "Figure 1 (non-virtual): E has %d subobjects@."
    (Sgraph.count (Sgraph.build g1 e1));
  show_lookup g1 e1 "m";
  Format.printf "Figure 2 (virtual): E has %d subobjects@."
    (Sgraph.count (Sgraph.build g2 e2));
  show_lookup g2 e2 "m";

  section "Figure 3: the running example and its subobjects";
  let g = Hiergen.Figures.fig3 () in
  let h = G.find g "H" in
  let a = G.find g "A" in
  let a_paths = List.filter (fun p -> Path.ldc p = a) (Path.all_to g h) in
  Format.printf "paths from A to H:@.";
  List.iter
    (fun p ->
      Format.printf "  %a   with fixed part %a@." (Path.pp g) p (Path.pp g)
        (Path.fixed p))
    a_paths;
  Format.printf "Defns(H, foo) representatives:@.";
  List.iter
    (fun p -> Format.printf "  %a@." (Path.pp g) p)
    (Spec.defns g h "foo");
  Format.printf "Defns(H, bar) representatives:@.";
  List.iter
    (fun p -> Format.printf "  %a@." (Path.pp g) p)
    (Spec.defns g h "bar");

  section "Figures 4 and 5: propagation of definitions with kills";
  List.iter
    (fun m ->
      Format.printf "reaching definitions of %s (struck = killed):@." m;
      let defs = Baselines.Naive.propagate g m in
      G.iter_classes g (fun c ->
          match defs.(c) with
          | [] -> ()
          | rs ->
            Format.printf "  at %s: %s@." (G.name g c)
              (String.concat ", "
                 (List.map
                    (fun (r : Baselines.Naive.reaching) ->
                      let s = Path.to_string g r.path in
                      if r.killed then "[killed " ^ s ^ "]" else s)
                    rs))))
    [ "foo"; "bar" ];

  section "Figures 6 and 7: the algorithm's Red/Blue abstractions";
  let engine = Engine.build ~witnesses:true (Chg.Closure.compute g) in
  List.iter
    (fun m ->
      Format.printf "verdicts for %s:@." m;
      G.iter_classes g (fun c ->
          match Engine.lookup engine c m with
          | None -> ()
          | Some v ->
            Format.printf "  %s => %a@." (G.name g c) (Engine.pp_verdict g) v))
    [ "foo"; "bar" ];

  section "Figure 9: the g++ counterexample";
  let g9 = Hiergen.Figures.fig9 () in
  let e = G.find g9 "E" in
  Format.printf "the paper's algorithm:   ";
  show_lookup g9 e "m";
  let sg = Sgraph.build g9 e in
  Format.printf "  g++ 2.7 BFS scan      = %a@."
    (Baselines.Gxx.pp_verdict sg)
    (Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Buggy sg "m");
  Format.printf "  corrected BFS scan    = %a@."
    (Baselines.Gxx.pp_verdict sg)
    (Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Fixed sg "m");
  Format.printf
    "@.(\"3 of the 7 compilers we tried this example on reported this@.\
     lookup as being ambiguous\" -- the paper, Section 7.1.)@."
