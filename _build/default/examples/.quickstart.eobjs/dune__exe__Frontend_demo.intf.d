examples/frontend_demo.mli:
