examples/quickstart.ml: Chg Format List Lookup_core Subobject
