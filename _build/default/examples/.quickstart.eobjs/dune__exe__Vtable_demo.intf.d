examples/vtable_demo.mli:
