examples/ide_session.ml: Chg Format List Lookup_core
