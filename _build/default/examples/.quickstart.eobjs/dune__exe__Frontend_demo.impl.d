examples/frontend_demo.ml: Format Frontend List
