examples/slicing_demo.mli:
