examples/interpreter_demo.mli:
