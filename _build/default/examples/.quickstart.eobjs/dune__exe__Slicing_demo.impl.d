examples/slicing_demo.ml: Chg Format List Slicing Subobject
