examples/paper_figures.ml: Array Baselines Chg Format Hiergen List Lookup_core String Subobject
