examples/quickstart.mli:
