examples/interpreter_demo.ml: Format Frontend List Runtime
