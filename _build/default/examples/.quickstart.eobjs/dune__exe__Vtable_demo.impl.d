examples/vtable_demo.ml: Chg Format Layout List Lookup_core Subobject
