(* Quickstart: build a class hierarchy with the API and resolve member
   lookups with the paper's algorithm.

   Run with: dune exec examples/quickstart.exe *)

module G = Chg.Graph
module Engine = Lookup_core.Engine

let () =
  (* The hierarchy of the paper's Figure 2:

        A { m }
        |
        B            (non-virtual)
       / \
      C   D { m }    (both virtual)
       \ /
        E
  *)
  let b = G.create_builder () in
  let add name bases members =
    ignore
      (G.add_class b name
         ~bases:(List.map (fun (n, k) -> (n, k, G.Public)) bases)
         ~members:(List.map G.member members))
  in
  add "A" [] [ "m" ];
  add "B" [ ("A", G.Non_virtual) ] [];
  add "C" [ ("B", G.Virtual) ] [];
  add "D" [ ("B", G.Virtual) ] [ "m" ];
  add "E" [ ("C", G.Non_virtual); ("D", G.Non_virtual) ] [];
  let g = G.freeze b in

  Format.printf "Hierarchy:@.%a@." G.pp g;

  (* Build the lookup table: one topological pass over the hierarchy
     resolves every (class, member) pair. *)
  let engine = Engine.build ~witnesses:true (Chg.Closure.compute g) in

  G.iter_classes g (fun c ->
      List.iter
        (fun m ->
          match Engine.lookup engine c m with
          | None ->
            Format.printf "lookup(%s, %s) = no such member@." (G.name g c) m
          | Some v ->
            Format.printf "lookup(%s, %s) = %a" (G.name g c) m
              (Engine.pp_verdict g) v;
            (match Engine.witness engine c m with
            | Some p ->
              Format.printf "   (definition path %a)" (Subobject.Path.pp g) p
            | None -> ());
            Format.printf "@.")
        (G.member_names g));

  (* The same query through the lazy, memoising variant. *)
  let memo = Lookup_core.Memo.create (Chg.Closure.compute g) in
  (match Lookup_core.Memo.lookup memo (G.find g "E") "m" with
  | Some (Engine.Red r) ->
    Format.printf "@.lazy lookup(E, m) resolves to class %s@."
      (G.name g r.Lookup_core.Abstraction.r_ldc)
  | _ -> assert false);

  (* And the executable specification agrees. *)
  match Subobject.Spec.lookup g (G.find g "E") "m" with
  | Subobject.Spec.Resolved p ->
    Format.printf "spec lookup(E, m) resolves via %a@." (Subobject.Path.pp g) p
  | _ -> assert false
