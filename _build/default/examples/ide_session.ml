(* An IDE-style session: classes arrive one declaration at a time and
   member lookups are answered after every keystroke-equivalent — the
   scenario the incremental table (and the paper's remark about a
   memoising lazy algorithm) serve.

   Run with: dune exec examples/ide_session.exe *)

module G = Chg.Graph
module Inc = Lookup_core.Incremental

let show inc cls m =
  match Inc.lookup inc (Inc.find inc cls) m with
  | Some (Lookup_core.Engine.Red r) ->
    Format.printf "  lookup(%s, %s) -> declared in %s@." cls m
      (G.name (Inc.snapshot inc) r.Lookup_core.Abstraction.r_ldc)
  | Some (Lookup_core.Engine.Blue _) ->
    Format.printf "  lookup(%s, %s) -> AMBIGUOUS@." cls m
  | None -> Format.printf "  lookup(%s, %s) -> no such member@." cls m

let () =
  let inc = Inc.create () in
  let declare name bases members =
    Format.printf "declare %s@." name;
    ignore
      (Inc.add_class inc name
         ~bases:(List.map (fun (b, k) -> (b, k, G.Public)) bases)
         ~members:(List.map G.member members))
  in
  (* The user types the paper's Figure 9 program, class by class; after
     each declaration the lookup table is extended by just that class's
     row, and earlier answers never need recomputation. *)
  declare "S" [] [ "m" ];
  show inc "S" "m";
  declare "A" [ ("S", G.Virtual) ] [ "m" ];
  show inc "A" "m";
  declare "B" [ ("S", G.Virtual) ] [ "m" ];
  declare "C" [ ("A", G.Virtual); ("B", G.Virtual) ] [ "m" ];
  show inc "C" "m";
  declare "D" [ ("C", G.Non_virtual) ] [];
  show inc "D" "m";
  declare "E" [ ("A", G.Virtual); ("B", G.Virtual); ("D", G.Non_virtual) ] [];
  show inc "E" "m";

  (* A mistake: the user adds a conflicting mixin... *)
  declare "Logger" [] [ "m" ];
  declare "Oops" [ ("E", G.Non_virtual); ("Logger", G.Non_virtual) ] [];
  show inc "Oops" "m";
  Format.printf "(%d classes live in the session)@." (Inc.num_classes inc)
