(* The whole pipeline end to end: parse a C++-subset program, resolve
   every access with the paper's lookup algorithm, and EXECUTE it with
   the staged-lookup runtime — real layouts, this-pointer adjustments,
   shared virtual bases and vtable dispatch, all visible in the trace.

   Run with: dune exec examples/interpreter_demo.exe *)

let program = {|
// A tiny document-model hierarchy with a virtual diamond.
struct Node {
  int refs;
  virtual void describe();
};

struct Text : virtual Node {
  int length;
  virtual void describe() { refs = 1; length = 5; }
};

struct Styled : virtual Node {
  int style;
};

struct RichText : Text, Styled {
  virtual void describe() {
    refs = 2;          // through the shared virtual Node subobject
    length = 12;       // Text subobject
    style = 7;         // Styled subobject
  }
  void redo() { Text::describe(); }  // qualified => static dispatch
};

int main() {
  RichText rt;
  Node* n;
  n = &rt;             // pointer adjustment to the virtual Node subobject
  n->describe();       // virtual dispatch: runs RichText::describe
  rt.redo();           // runs Text::describe non-virtually
  rt.length;           // reads what Text::describe wrote last
}
|}

let () =
  print_endline "--- program ----------------------------------------------";
  print_string program;
  print_endline "--- static resolutions ------------------------------------";
  let sema = Frontend.Sema.analyze_source program in
  List.iter
    (fun r -> Format.printf "  %a@." (Frontend.Sema.pp_resolution sema.graph) r)
    sema.resolutions;
  assert (Frontend.Sema.ok sema);
  print_endline "--- execution trace ---------------------------------------";
  let outcome = Runtime.run_source program in
  List.iter (fun e -> Format.printf "  %a@." Runtime.pp_event e) outcome.trace;
  List.iter
    (fun d -> Format.printf "  error: %s@." (Frontend.Diagnostic.to_string d))
    outcome.runtime_errors
