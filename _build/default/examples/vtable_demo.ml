(* Object layout and virtual-function-table construction — the paper's
   "constructing virtual-function tables" application.  The final
   overrider of every vtable slot of class C is exactly lookup(C, f).

   Run with: dune exec examples/vtable_demo.exe *)

module G = Chg.Graph
module Engine = Lookup_core.Engine

let () =
  (* The classic iostream-style diamond:

       ios { int state; virtual void tie(); }
        |         |
     istream   ostream       (both virtual)
     { virtual get }  { virtual put, virtual flush }
        \         /
        iostream { flush overridden }
  *)
  let b = G.create_builder () in
  ignore
    (G.add_class b "ios" ~bases:[]
       ~members:
         [ G.member "state"; G.member ~kind:G.Function ~virtual_:true "tie" ]);
  ignore
    (G.add_class b "istream"
       ~bases:[ ("ios", G.Virtual, G.Public) ]
       ~members:
         [ G.member "gcount"; G.member ~kind:G.Function ~virtual_:true "get" ]);
  ignore
    (G.add_class b "ostream"
       ~bases:[ ("ios", G.Virtual, G.Public) ]
       ~members:
         [ G.member ~kind:G.Function ~virtual_:true "put";
           G.member ~kind:G.Function ~virtual_:true "flush" ]);
  ignore
    (G.add_class b "iostream"
       ~bases:
         [ ("istream", G.Non_virtual, G.Public);
           ("ostream", G.Non_virtual, G.Public) ]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "flush" ]);
  let g = G.freeze b in

  let engine = Engine.build (Chg.Closure.compute g) in

  G.iter_classes g (fun c ->
      Format.printf "@.%a@." Layout.Object_layout.pp (Layout.Object_layout.of_class g c);
      Format.printf "%a@." (Layout.Vtable.pp g) (Layout.Vtable.build engine c));

  (* Virtual dispatch through the Rossie-Friedman dyn/stat operations. *)
  let eng_w = Engine.build ~witnesses:true (Chg.Closure.compute g) in
  let io = G.find g "iostream" in
  let sg = Subobject.Sgraph.build g io in
  Format.printf "@.dyn(flush) on a complete iostream: %a@."
    (Lookup_core.Rf_ops.pp_result sg)
    (Lookup_core.Rf_ops.dyn eng_w sg "flush");
  (* stat through the ostream subobject: the non-virtual resolution. *)
  let ostream_sub =
    List.find
      (fun s -> G.name g (Subobject.Sgraph.ldc sg s) = "ostream")
      (Subobject.Sgraph.subobjects sg)
  in
  Format.printf "stat(flush) through the ostream subobject: %a@."
    (Lookup_core.Rf_ops.pp_result sg)
    (Lookup_core.Rf_ops.stat eng_w sg ostream_sub "flush")
