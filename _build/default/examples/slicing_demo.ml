(* Class hierarchy slicing (Tip et al., OOPSLA 1996), which the paper
   lists as a client of its lookup algorithm: keep only the classes,
   edges and member declarations that can influence the lookups a program
   actually performs, and show the verdicts are preserved.

   Run with: dune exec examples/slicing_demo.exe *)

module G = Chg.Graph
module Spec = Subobject.Spec

let () =
  (* A GUI-ish hierarchy where the program only ever uses the event
     subsystem. *)
  let b = G.create_builder () in
  let add name bases members =
    ignore
      (G.add_class b name
         ~bases:(List.map (fun (n, k) -> (n, k, G.Public)) bases)
         ~members:(List.map G.member members))
  in
  add "Object" [] [ "id" ];
  add "Event" [ ("Object", G.Non_virtual) ] [ "timestamp" ];
  add "MouseEvent" [ ("Event", G.Non_virtual) ] [ "button" ];
  add "KeyEvent" [ ("Event", G.Non_virtual) ] [ "keycode" ];
  add "InputEvent" [ ("MouseEvent", G.Non_virtual); ("KeyEvent", G.Non_virtual) ] [];
  add "Geometry" [] [ "width"; "height" ];
  add "Pen" [ ("Geometry", G.Non_virtual) ] [ "color" ];
  add "Brush" [ ("Geometry", G.Non_virtual) ] [ "color" ];
  add "Painter" [ ("Pen", G.Non_virtual); ("Brush", G.Non_virtual) ] [];
  add "Window" [ ("Object", G.Virtual); ("Geometry", G.Non_virtual) ] [ "title" ];
  let g = G.freeze b in

  Format.printf "full hierarchy: %d classes, %d edges@." (G.num_classes g)
    (G.num_edges g);

  (* The program performs these lookups (e.g. collected by a compiler). *)
  let seeds =
    [ { Slicing.sd_class = G.find g "InputEvent";
        sd_member = "timestamp" };
      { Slicing.sd_class = G.find g "MouseEvent"; sd_member = "button" } ]
  in
  let s = Slicing.slice g seeds in
  Format.printf "slice for the event subsystem: %a@." Slicing.pp_stats
    s;
  Format.printf "sliced hierarchy:@.%a" G.pp s.sliced;

  (* Verdicts are preserved on the slice. *)
  List.iter
    (fun { Slicing.sd_class = c; sd_member = m } ->
      let before = Spec.lookup g c m in
      let after =
        match Slicing.to_sliced s c with
        | Some c' -> Spec.lookup s.sliced c' m
        | None -> assert false
      in
      Format.printf "lookup(%s, %s): full = %a | sliced = %a@." (G.name g c) m
        (Spec.pp_verdict g) before
        (Spec.pp_verdict s.sliced) after)
    seeds;

  (* An ambiguity is preserved too: Painter::color is ambiguous, and a
     slice seeded with it must keep both Pen::color and Brush::color. *)
  let seeds2 =
    [ { Slicing.sd_class = G.find g "Painter"; sd_member = "color" } ]
  in
  let s2 = Slicing.slice g seeds2 in
  Format.printf "@.slice for Painter::color: %a@." Slicing.pp_stats s2;
  match
    ( Spec.lookup g (G.find g "Painter") "color",
      Spec.lookup s2.sliced (G.find s2.sliced "Painter") "color" )
  with
  | Spec.Ambiguous _, Spec.Ambiguous _ ->
    Format.printf "ambiguity preserved in the slice@."
  | _ -> assert false
