(* Ablation experiments for the two design choices the paper argues for
   in Section 4:

   A1 — killing dominated definitions ("One advantage of killing
   definitions is immediately obvious: the propagation phase itself has
   to do less work"): count the definitions the naive propagation
   materializes with and without the kill rule.

   A2 — abstracting paths ("The above abstraction of blue definitions is
   a critical step in improving the efficiency of the algorithm"):
   even WITH killing, full-path propagation explodes on replicated
   hierarchies (incomparable definitions survive and multiply); the
   Red/Blue abstraction collapses them to at most |N|+1 values. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Families = Hiergen.Families

let defs_count table =
  Array.fold_left (fun acc l -> acc + List.length l) 0 table

let a1 () =
  Format.printf "@.---- A1: ablation - killing dominated definitions ----@.";
  Format.printf "  %-40s %12s %12s@." "family" "no-kill defs" "killed defs";
  let run member (i : Families.instance) =
    let unpruned = defs_count (Baselines.Naive.propagate i.graph member) in
    let pruned =
      defs_count (Baselines.Naive.propagate_pruned i.graph member)
    in
    Format.printf "  %-40s %12d %12d@." i.description unpruned pruned
  in
  run "m" (Families.redeclared_diamond_stack ~levels:7 ~kind:G.Non_virtual);
  run "m" (Families.redeclared_diamond_stack ~levels:7 ~kind:G.Virtual);
  run "foo"
    { Families.graph = Hiergen.Figures.fig3 ();
      probe = 0;
      description = "figure 3 (member foo)" };
  Format.printf
    "  (redeclaring classes kill inherited defs: pruned counts stay linear)@."

let a2 () =
  Format.printf
    "@.---- A2: ablation - path abstraction (Red/Blue) vs full paths ----@.";
  Format.printf "  %-9s %14s %14s %14s@." "levels" "no-kill defs"
    "killed defs" "engine time";
  (* plain diamond stacks: the two definitions reaching each join are
     incomparable, so killing does NOT help — only abstraction does *)
  List.iter
    (fun levels ->
      let i = Families.diamond_stack ~levels ~kind:G.Non_virtual in
      let unpruned = defs_count (Baselines.Naive.propagate i.graph "m") in
      let pruned = defs_count (Baselines.Naive.propagate_pruned i.graph "m") in
      let cl = Chg.Closure.compute i.graph in
      let t = Timing.seconds_per_call (fun () -> Engine.build_member cl "m") in
      Format.printf "  %-9d %14d %14d %a@." levels unpruned pruned
        Timing.pp_time t)
    [ 2; 4; 6; 8; 10 ];
  Format.printf
    "  (killing saves nothing here - the defs are incomparable; the\n\
    \   engine's abstraction keeps the blue sets at {Ω} regardless)@."

let run () =
  Format.printf "@.==== Ablation experiments (A1-A2) ====@.";
  a1 ();
  a2 ()
