(* Bechamel microbenchmarks: one Test.make per experiment artifact
   (figures F1-F9 and complexity experiments C1-C5), analyzed with OLS
   against the run count and printed as ns/run. *)

open Bechamel
module G = Chg.Graph
module Engine = Lookup_core.Engine

let figure_test name mk member =
  let g = mk () in
  let cl = Chg.Closure.compute g in
  Test.make ~name (Staged.stage (fun () -> Engine.build_member cl member))

let tests () =
  let nv = G.Non_virtual in
  let chain = Hiergen.Families.chain ~n:1024 ~kind:nv in
  let chain_cl = Chg.Closure.compute chain.graph in
  let fence = Hiergen.Families.fence ~width:8 ~levels:8 in
  let fence_cl = Chg.Closure.compute fence.graph in
  let diamond = Hiergen.Families.diamond_stack ~levels:8 ~kind:nv in
  let diamond_cl = Chg.Closure.compute diamond.graph in
  let table_i =
    Hiergen.Families.random_dag ~n:256 ~max_bases:3 ~virtual_prob:0.3
      ~declare_prob:0.3
      ~members:(List.init 10 (fun k -> Printf.sprintf "m%d" k))
      ~seed:42
  in
  let table_cl = Chg.Closure.compute table_i.graph in
  let topo_i =
    Hiergen.Families.redeclared_diamond_stack ~levels:64 ~kind:G.Virtual
  in
  let topo = Baselines.Topo_lookup.prepare topo_i.graph in
  [ figure_test "F1:fig1-lookup-m" Hiergen.Figures.fig1 "m";
    figure_test "F2:fig2-lookup-m" Hiergen.Figures.fig2 "m";
    figure_test "F3-F6:fig3-lookup-foo" Hiergen.Figures.fig3 "foo";
    figure_test "F5-F7:fig3-lookup-bar" Hiergen.Figures.fig3 "bar";
    figure_test "F9:fig9-lookup-m" Hiergen.Figures.fig9 "m";
    Test.make ~name:"F9:fig9-gxx-scan"
      (Staged.stage
         (let g = Hiergen.Figures.fig9 () in
          let e = G.find g "E" in
          fun () -> Baselines.Gxx.lookup ~mode:Baselines.Gxx.Buggy g e "m"));
    Test.make ~name:"C1:chain-1024-member-column"
      (Staged.stage (fun () -> Engine.build_member chain_cl "m"));
    Test.make ~name:"C2:fence-8x8-member-column"
      (Staged.stage (fun () -> Engine.build_member fence_cl "m"));
    Test.make ~name:"C3:diamond-8-engine"
      (Staged.stage (fun () -> Engine.build_member diamond_cl "m"));
    Test.make ~name:"C3:diamond-8-rf-lookup"
      (Staged.stage (fun () ->
           Baselines.Rf_lookup.lookup diamond.graph diamond.probe "m"));
    Test.make ~name:"C4:table-random-256"
      (Staged.stage (fun () -> Engine.build table_cl));
    Test.make ~name:"C5:topo-shortcut-query"
      (Staged.stage (fun () ->
           Baselines.Topo_lookup.resolve topo topo_i.probe "m")) ]

let run () =
  Format.printf "@.==== Bechamel microbenchmarks (ns/run, OLS) ====@.";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None
      ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance raw in
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) analyzed [])
      (tests ())
  in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> nan
      in
      Format.printf "  %-32s %14.1f ns/run%s@." name ns
        (match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "   (r^2 %.3f)" r
        | None -> ""))
    (List.sort compare results)
