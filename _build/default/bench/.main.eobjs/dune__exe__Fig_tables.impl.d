bench/fig_tables.ml: Array Baselines Chg Format Hiergen List Lookup_core String Subobject
