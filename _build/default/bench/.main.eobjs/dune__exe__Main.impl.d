bench/main.ml: Ablation Becha Fig_tables Format Matchup Printf Scaling
