bench/main.mli:
