bench/scaling.ml: Baselines Chg Fig_tables Format Hiergen List Lookup_core Printf Subobject Timing
