bench/matchup.ml: Baselines Chg Fig_tables Format Hiergen Lazy List Lookup_core Subobject
