bench/ablation.ml: Array Baselines Chg Format Hiergen List Lookup_core Timing
