bench/timing.ml: Format Sys Unix
