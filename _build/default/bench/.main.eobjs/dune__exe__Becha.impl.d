bench/becha.ml: Analyze Baselines Bechamel Benchmark Chg Format Hashtbl Hiergen List Lookup_core Measure Printf Staged Test Time Toolkit
