(* Experiments F1-F9: regenerate every worked example (figure) of the
   paper and check it against the facts the paper states.  Each section
   prints the regenerated table and an OK/MISMATCH verdict line, so
   bench_output.txt is self-validating. *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec
module Sgraph = Subobject.Sgraph
module Engine = Lookup_core.Engine

let checks_failed = ref 0

let check msg ok =
  if not ok then incr checks_failed;
  Format.printf "  [%s] %s@." (if ok then "OK" else "MISMATCH") msg

let header id title =
  Format.printf "@.---- %s: %s ----@." id title

let spec_resolves_to g c m expect =
  match Spec.lookup g c m with
  | Spec.Resolved p -> G.name g (Path.ldc p) = expect
  | _ -> false

let spec_ambiguous g c m =
  match Spec.lookup g c m with Spec.Ambiguous _ -> true | _ -> false

let verdict_table g ms =
  let engine = Engine.build ~witnesses:true (Chg.Closure.compute g) in
  G.iter_classes g (fun c ->
      List.iter
        (fun m ->
          match Engine.lookup engine c m with
          | None -> ()
          | Some v ->
            Format.printf "  %-4s %-5s => %a@." (G.name g c) m
              (Engine.pp_verdict g) v)
        ms);
  engine

let fig1 () =
  header "F1" "Figure 1 - non-virtual inheritance, lookup(E,m) ambiguous";
  let g = Hiergen.Figures.fig1 () in
  let e = G.find g "E" in
  ignore (verdict_table g [ "m" ]);
  let sg = Sgraph.build g e in
  Format.printf "  E object: %d subobjects@." (Sgraph.count sg);
  check "E has 7 subobjects (two A, two B)" (Sgraph.count sg = 7);
  check "lookup(E,m) ambiguous" (spec_ambiguous g e "m");
  check "lookup(C,m) = A::m" (spec_resolves_to g (G.find g "C") "m" "A")

let fig2 () =
  header "F2" "Figure 2 - virtual inheritance, lookup(E,m) = D::m";
  let g = Hiergen.Figures.fig2 () in
  let e = G.find g "E" in
  ignore (verdict_table g [ "m" ]);
  let sg = Sgraph.build g e in
  Format.printf "  E object: %d subobjects@." (Sgraph.count sg);
  check "E has 5 subobjects (shared B, A)" (Sgraph.count sg = 5);
  check "lookup(E,m) = D::m" (spec_resolves_to g e "m" "D")

let fig3 () =
  header "F3" "Figure 3 - paths, fixed parts and ≈-classes of the example CHG";
  let g = Hiergen.Figures.fig3 () in
  let h = G.find g "H" and a = G.find g "A" in
  let a_paths = List.filter (fun p -> Path.ldc p = a) (Path.all_to g h) in
  List.iter
    (fun p ->
      Format.printf "  path %-12s fixed %a@." (Path.to_string g p) (Path.pp g)
        (Path.fixed p))
    a_paths;
  check "four paths from A to H" (List.length a_paths = 4);
  let classes = List.sort_uniq compare (List.map Path.key a_paths) in
  check "in two ≈-classes (two A subobjects in an H object)"
    (List.length classes = 2);
  let defns_foo = Spec.defns g h "foo" in
  let defns_bar = Spec.defns g h "bar" in
  Format.printf "  Defns(H,foo) = {%s}@."
    (String.concat ", " (List.map (Path.to_string g) defns_foo));
  Format.printf "  Defns(H,bar) = {%s}@."
    (String.concat ", " (List.map (Path.to_string g) defns_bar));
  check "Defns(H,foo) has 3 subobjects" (List.length defns_foo = 3);
  check "Defns(H,bar) has 3 subobjects" (List.length defns_bar = 3)

let fig45 () =
  header "F4/F5" "Figures 4-5 - propagation of definitions with kills";
  let g = Hiergen.Figures.fig3 () in
  List.iter
    (fun m ->
      Format.printf "  member %s:@." m;
      let defs = Baselines.Naive.propagate g m in
      G.iter_classes g (fun c ->
          match defs.(c) with
          | [] -> ()
          | rs ->
            Format.printf "    %-2s: %s@." (G.name g c)
              (String.concat ", "
                 (List.map
                    (fun (r : Baselines.Naive.reaching) ->
                      let s = Path.to_string g r.path in
                      if r.killed then "x" ^ s ^ "x" else s)
                    rs))))
    [ "foo"; "bar" ];
  let h = G.find g "H" in
  let foo_at_h = (Baselines.Naive.propagate g "foo").(h) in
  let surviving =
    List.filter (fun (r : Baselines.Naive.reaching) -> not r.killed) foo_at_h
  in
  check "five definitions of foo reach H" (List.length foo_at_h = 5);
  check "only GH survives the kills at H"
    (match surviving with
    | [ r ] -> Path.to_string g r.path = "G-H"
    | _ -> false);
  let bar_at_h = (Baselines.Naive.propagate g "bar").(h) in
  check "blue definition E-F-H reaches H unkilled (why blues must flow)"
    (List.exists
       (fun (r : Baselines.Naive.reaching) ->
         Path.to_string g r.path = "E-F-H" && not r.killed)
       bar_at_h);
  check "lookup(H,foo) = G::m" (spec_resolves_to g h "foo" "G");
  check "lookup(H,bar) ambiguous" (spec_ambiguous g h "bar")

let fig67 () =
  header "F6/F7" "Figures 6-7 - the algorithm's Red/Blue abstraction tables";
  let g = Hiergen.Figures.fig3 () in
  let engine = verdict_table g [ "foo"; "bar" ] in
  let verdict c m = Engine.lookup engine (G.find g c) m in
  let module A = Lookup_core.Abstraction in
  let d = G.find g "D" in
  check "foo at D: blue {Ω} (the two (A,Ω) reds collide)"
    (verdict "D" "foo" = Some (Engine.Blue [ A.Omega ]));
  check "foo at F: blue {D} (Ω pushed through the virtual edge D->F)"
    (verdict "F" "foo" = Some (Engine.Blue [ A.Lv d ]));
  check "foo at H: red (G,Ω) (the blue D is a virtual base of G)"
    (verdict "H" "foo"
    = Some (Engine.Red { A.r_ldc = G.find g "G"; r_lvs = [ A.Omega ] }));
  check "bar at F: blue {Ω,D} ((D,D) and (E,Ω) incomparable)"
    (verdict "F" "bar" = Some (Engine.Blue [ A.Omega; A.Lv d ]));
  check "bar at H: blue {Ω} ((G,Ω) dominates D but not Ω)"
    (verdict "H" "bar" = Some (Engine.Blue [ A.Omega ]))

let fig9 () =
  header "F9" "Figure 9 - the g++ counterexample";
  let g = Hiergen.Figures.fig9 () in
  let e = G.find g "E" in
  let sg = Sgraph.build g e in
  let spec = Spec.lookup g e "m" in
  let buggy = Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Buggy sg "m" in
  let fixed = Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Fixed sg "m" in
  Format.printf "  paper's algorithm : %a@." (Spec.pp_verdict g) spec;
  Format.printf "  g++ 2.7 BFS scan  : %a@." (Baselines.Gxx.pp_verdict sg)
    buggy;
  Format.printf "  corrected BFS     : %a@." (Baselines.Gxx.pp_verdict sg)
    fixed;
  check "lookup(E,m) = C::m (unambiguous)" (spec_resolves_to g e "m" "C");
  check "g++ scan wrongly reports ambiguity"
    (buggy = Baselines.Gxx.Ambiguous);
  check "corrected scan agrees with the paper"
    (match fixed with
    | Baselines.Gxx.Resolved s -> G.name g (Sgraph.ldc sg s) = "C"
    | _ -> false)

let run () =
  Format.printf "@.==== Paper figures (experiments F1-F9) ====@.";
  fig1 ();
  fig2 ();
  fig3 ();
  fig45 ();
  fig67 ();
  fig9 ()
