(* Experiment C6: the correctness matchup behind the paper's remark that
   "3 of the 7 compilers we tried this example on reported this lookup as
   being ambiguous".  Every engine is run on a corpus of random
   hierarchies and scored against the executable specification. *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec
module Sgraph = Subobject.Sgraph
module Engine = Lookup_core.Engine

type score = {
  mutable total : int;
  mutable correct : int;
  mutable false_ambiguous : int;  (* spec resolves, engine says ambiguous *)
  mutable wrong_target : int;  (* resolves to the wrong class *)
  mutable other : int;
}

let new_score () =
  { total = 0; correct = 0; false_ambiguous = 0; wrong_target = 0; other = 0 }

let record s ~spec ~got =
  s.total <- s.total + 1;
  match (spec, got) with
  | `Resolved a, `Resolved b when a = b -> s.correct <- s.correct + 1
  | `Resolved _, `Resolved _ -> s.wrong_target <- s.wrong_target + 1
  | `Resolved _, `Ambiguous -> s.false_ambiguous <- s.false_ambiguous + 1
  | `Ambiguous, `Ambiguous -> s.correct <- s.correct + 1
  | `Undeclared, `Undeclared -> s.correct <- s.correct + 1
  | _ -> s.other <- s.other + 1

let classify_spec g c m =
  match Spec.lookup g c m with
  | Spec.Resolved p -> `Resolved (Path.ldc p)
  | Spec.Ambiguous _ -> `Ambiguous
  | Spec.Undeclared -> `Undeclared

let run () =
  Format.printf "@.==== C6: engine matchup against the specification ====@.";
  let members = [ "m"; "n"; "p" ] in
  let engines =
    [ "paper algorithm (engine)"; "lazy memo"; "naive propagation";
      "RF subobject lookup"; "g++ 2.7 scan (buggy)"; "g++ scan (fixed)";
      "topological shortcut" ]
  in
  let scores = List.map (fun name -> (name, new_score ())) engines in
  let find name = List.assoc name scores in
  let corpus =
    (* Figure 9 is part of the corpus: the documented real-world trigger
       of the g++ false ambiguity. *)
    { Hiergen.Families.graph = Hiergen.Figures.fig9 ();
      probe = 5;
      description = "figure 9" }
    :: List.concat_map
         (fun seed ->
           [ Hiergen.Families.random_dag ~n:10 ~max_bases:3 ~virtual_prob:0.4
               ~declare_prob:0.35 ~members ~seed;
             Hiergen.Families.random_dag ~n:12 ~max_bases:2 ~virtual_prob:0.1
               ~declare_prob:0.4 ~members ~seed ])
         (List.init 60 (fun i -> i))
  in
  List.iter
    (fun (i : Hiergen.Families.instance) ->
      let g = i.graph in
      let cl = Chg.Closure.compute g in
      let engine = Engine.build ~static_rule:false cl in
      let memo = Lookup_core.Memo.create ~static_rule:false cl in
      let topo = Baselines.Topo_lookup.prepare g in
      G.iter_classes g (fun c ->
          let sg = lazy (Sgraph.build g c) in
          List.iter
            (fun m ->
              let spec = classify_spec g c m in
              let of_engine = function
                | Some (Engine.Red r) ->
                  `Resolved r.Lookup_core.Abstraction.r_ldc
                | Some (Engine.Blue _) -> `Ambiguous
                | None -> `Undeclared
              in
              record (find "paper algorithm (engine)") ~spec
                ~got:(of_engine (Engine.lookup engine c m));
              record (find "lazy memo") ~spec
                ~got:(of_engine (Lookup_core.Memo.lookup memo c m));
              let of_spec_verdict = function
                | Spec.Resolved p -> `Resolved (Path.ldc p)
                | Spec.Ambiguous _ -> `Ambiguous
                | Spec.Undeclared -> `Undeclared
              in
              record (find "naive propagation") ~spec
                ~got:(of_spec_verdict (Baselines.Naive.lookup_killing g c m));
              let of_rf = function
                | Baselines.Rf_lookup.Resolved s ->
                  `Resolved (Sgraph.ldc (Lazy.force sg) s)
                | Baselines.Rf_lookup.Ambiguous _ -> `Ambiguous
                | Baselines.Rf_lookup.Undeclared -> `Undeclared
              in
              record (find "RF subobject lookup") ~spec
                ~got:(of_rf (Baselines.Rf_lookup.lookup_in (Lazy.force sg) m));
              let of_gxx = function
                | Baselines.Gxx.Resolved s ->
                  `Resolved (Sgraph.ldc (Lazy.force sg) s)
                | Baselines.Gxx.Ambiguous -> `Ambiguous
                | Baselines.Gxx.Undeclared -> `Undeclared
              in
              record (find "g++ 2.7 scan (buggy)") ~spec
                ~got:
                  (of_gxx
                     (Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Buggy
                        (Lazy.force sg) m));
              record (find "g++ scan (fixed)") ~spec
                ~got:
                  (of_gxx
                     (Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Fixed
                        (Lazy.force sg) m));
              let topo_got =
                match Baselines.Topo_lookup.resolve topo c m with
                | Some cls -> `Resolved cls
                | None -> `Undeclared
              in
              record (find "topological shortcut") ~spec ~got:topo_got)
            members))
    corpus;
  Format.printf "  %-26s %8s %9s %12s %10s %7s@." "engine" "lookups"
    "correct" "false-ambig" "wrong-cls" "other";
  List.iter
    (fun (name, s) ->
      Format.printf "  %-26s %8d %8.2f%% %12d %10d %7d@." name s.total
        (100.0 *. float_of_int s.correct /. float_of_int (max 1 s.total))
        s.false_ambiguous s.wrong_target s.other)
    scores;
  (* Sanity assertions mirroring the paper's qualitative claims. *)
  let engine_s = find "paper algorithm (engine)" in
  let gxx_s = find "g++ 2.7 scan (buggy)" in
  let topo_s = find "topological shortcut" in
  let ok1 = engine_s.correct = engine_s.total in
  let ok2 = gxx_s.false_ambiguous > 0 in
  let ok3 = topo_s.correct < topo_s.total in
  Format.printf "  [%s] the paper's algorithm is always right@."
    (if ok1 then "OK" else "MISMATCH");
  Format.printf "  [%s] the g++ scan shows false ambiguities in the wild@."
    (if ok2 then "OK" else "MISMATCH");
  Format.printf
    "  [%s] the unambiguity-assuming shortcut is wrong on ambiguous lookups@."
    (if ok3 then "OK" else "MISMATCH");
  if not (ok1 && ok2 && ok3) then incr Fig_tables.checks_failed
