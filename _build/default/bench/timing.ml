(* Small wall-clock timing helper for the parameter sweeps.  Bechamel is
   used for the headline per-experiment microbenchmarks (see becha.ml);
   the sweeps need hundreds of (size, time) points where a fixed-budget
   repetition loop is the right tool. *)

(* Seconds per call, repeating until at least [min_time] has elapsed. *)
let seconds_per_call ?(min_time = 0.02) f =
  let rec calibrate n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time then dt /. float_of_int n
    else calibrate (n * 4)
  in
  calibrate 1

let pp_time ppf s =
  if s < 1e-6 then Format.fprintf ppf "%7.1f ns" (s *. 1e9)
  else if s < 1e-3 then Format.fprintf ppf "%7.2f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%7.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%7.2f s " s
