(* Tests for the incrementally maintained lookup table: it must agree
   with the batch engine after every single insertion. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Inc = Lookup_core.Incremental

let agree_with_batch inc =
  let g = Inc.snapshot inc in
  let eng = Engine.build (Chg.Closure.compute g) in
  G.iter_classes g (fun c ->
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "%s::%s" (G.name g c) m)
            true
            (Engine.lookup eng c m = Inc.lookup inc c m))
        (G.member_names g))

let feed decls =
  let inc = Inc.create () in
  List.iter
    (fun (name, bases, members) ->
      ignore
        (Inc.add_class inc name
           ~bases:(List.map (fun (b, k) -> (b, k, G.Public)) bases)
           ~members:(List.map G.member members));
      agree_with_batch inc)
    decls;
  inc

let nv = G.Non_virtual
let v = G.Virtual

let test_fig9_stepwise () =
  let inc =
    feed
      [ ("S", [], [ "m" ]);
        ("A", [ ("S", v) ], [ "m" ]);
        ("B", [ ("S", v) ], [ "m" ]);
        ("C", [ ("A", v); ("B", v) ], [ "m" ]);
        ("D", [ ("C", nv) ], []);
        ("E", [ ("A", v); ("B", v); ("D", nv) ], []) ]
  in
  Alcotest.(check (option int)) "E::m -> C"
    (Some (Inc.find inc "C"))
    (Inc.resolves_to inc (Inc.find inc "E") "m")

let test_fig3_stepwise () =
  let inc =
    feed
      [ ("A", [], [ "foo" ]);
        ("B", [ ("A", nv) ], []);
        ("C", [ ("A", nv) ], []);
        ("D", [ ("B", nv); ("C", nv) ], [ "bar" ]);
        ("E", [], [ "bar" ]);
        ("F", [ ("D", v); ("E", nv) ], []);
        ("G", [ ("D", v) ], [ "foo"; "bar" ]);
        ("H", [ ("F", nv); ("G", nv) ], []) ]
  in
  Alcotest.(check (option int)) "H::foo -> G"
    (Some (Inc.find inc "G"))
    (Inc.resolves_to inc (Inc.find inc "H") "foo");
  (match Inc.lookup inc (Inc.find inc "H") "bar" with
  | Some (Engine.Blue _) -> ()
  | _ -> Alcotest.fail "H::bar must stay ambiguous");
  Alcotest.(check int) "count" 8 (Inc.num_classes inc)

let test_static_groups_stepwise () =
  (* The static-group regression case found by the oracle property. *)
  let inc = Inc.create () in
  List.iter
    (fun (name, bases, statics, plains) ->
      ignore
        (Inc.add_class inc name
           ~bases:(List.map (fun (b, k) -> (b, k, G.Public)) bases)
           ~members:
             (List.map (G.member ~static:true) statics
             @ List.map G.member plains));
      agree_with_batch inc)
    [ ("K0", [], [ "p" ], []);
      ("K1", [ ("K0", v) ], [], [ "m" ]);
      ("K2", [ ("K0", v); ("K1", nv) ], [], [ "p" ]);
      ("K3", [ ("K0", nv); ("K1", nv) ], [], [ "m" ]);
      ("K4", [ ("K3", nv) ], [], [ "m" ]);
      ("K5", [ ("K4", nv); ("K2", nv); ("K1", nv) ], [], [ "m"; "n" ]);
      ("K6", [ ("K5", nv); ("K2", v) ], [], [ "p" ]) ]

let test_validation_mirrors_builder () =
  let inc = Inc.create () in
  ignore (Inc.add_class inc "A" ~bases:[] ~members:[]);
  (match Inc.add_class inc "A" ~bases:[] ~members:[] with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception G.Error (G.Duplicate_class "A") -> ());
  match
    Inc.add_class inc "B" ~bases:[ ("Zed", nv, G.Public) ] ~members:[]
  with
  | _ -> Alcotest.fail "unknown base accepted"
  | exception G.Error (G.Unknown_base _) -> ()

let test_random_stepwise () =
  (* Rebuild random hierarchies class by class and compare at the end
     (agree_with_batch at every step is O(n^2); sample a few sizes). *)
  List.iter
    (fun seed ->
      let { Hiergen.Families.graph = g; _ } =
        Hiergen.Families.random_static_dag ~n:20 ~max_bases:3
          ~virtual_prob:0.4 ~declare_prob:0.4 ~static_prob:0.3
          ~members:[ "m"; "n"; "p" ] ~seed
      in
      let inc = Inc.create () in
      G.iter_classes g (fun c ->
          ignore
            (Inc.add_class inc (G.name g c)
               ~bases:
                 (List.map
                    (fun (b : G.base) ->
                      (G.name g b.b_class, b.b_kind, b.b_access))
                    (G.bases g c))
               ~members:(G.members g c)));
      agree_with_batch inc)
    [ 1; 7; 42; 1337; 9001 ]

let suite =
  [ Alcotest.test_case "figure 9 stepwise" `Quick test_fig9_stepwise;
    Alcotest.test_case "figure 3 stepwise" `Quick test_fig3_stepwise;
    Alcotest.test_case "static groups stepwise" `Quick
      test_static_groups_stepwise;
    Alcotest.test_case "validation mirrors the builder" `Quick
      test_validation_mirrors_builder;
    Alcotest.test_case "random hierarchies stepwise" `Quick
      test_random_stepwise ]
