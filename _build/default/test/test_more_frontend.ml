(* Additional front-end coverage: parse errors with recovery-free
   positions, enum/typedef corner cases, call checking. *)

module G = Chg.Graph

let analyze = Frontend.Sema.analyze_source

let parse_fails src needle =
  match Frontend.Parser.parse src with
  | Ok _ -> Alcotest.failf "accepted %S" src
  | Error d ->
    let msg = d.Frontend.Diagnostic.message in
    let contains =
      let n = String.length needle and m = String.length msg in
      let rec go i =
        i + n <= m && (String.sub msg i n = needle || go (i + 1))
      in
      go 0
    in
    if not contains then
      Alcotest.failf "error %S does not mention %S" msg needle

let test_parse_errors () =
  parse_fails "class X { int a }" "expected ';'";
  parse_fails "class X : {};" "expected identifier";
  parse_fails "class X {} " "expected ';'";
  parse_fails "struct S { enum { 1 }; };" "expected an enumerator";
  parse_fails "struct S { virtual int f() = 1; };" "only '= 0'";
  parse_fails "int main() { x = y; }" "expected an integer literal or '&'";
  parse_fails "int main() { 42; }" "expected a statement";
  parse_fails "@" "unexpected character"

let test_enum_anonymous () =
  let p = Frontend.Parser.parse_exn "struct S { enum { a, b, }; };" in
  let s = List.hd p.classes in
  Alcotest.(check (list string)) "enumerators only (trailing comma ok)"
    [ "a"; "b" ]
    (List.map (fun (m : Frontend.Ast.member_decl) -> m.md_name) s.c_members)

let test_enum_with_values () =
  let p =
    Frontend.Parser.parse_exn "struct S { enum E { a = 1, b = 2 }; };"
  in
  Alcotest.(check int) "type + two enumerators" 3
    (List.length (List.hd p.classes).c_members)

let test_typedef_pointer () =
  let p = Frontend.Parser.parse_exn "struct S { typedef S* self; };" in
  let m = List.hd (List.hd p.classes).c_members in
  Alcotest.(check bool) "kind Type" true (m.md_kind = G.Type);
  Alcotest.(check bool) "pointer type" true m.md_type.Frontend.Ast.t_pointer

let test_call_non_function () =
  let r =
    analyze "struct X { int d; }; int main() { X x; x.d(); }"
  in
  Alcotest.(check bool) "diag" true
    (List.exists
       (fun (d : Frontend.Diagnostic.t) ->
         Frontend.Diagnostic.is_error d
         && String.length d.message > 0
         &&
         let needle = "not a function" in
         let n = String.length needle and m = String.length d.message in
         let rec go i =
           i + n <= m && (String.sub d.message i n = needle || go (i + 1))
         in
         go 0)
       r.diagnostics)

let test_method_call_resolution () =
  let r =
    analyze
      "struct B { void f(); };\n\
       struct D : B {};\n\
       int main() { D d; d.f(); }\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r);
  match r.resolutions with
  | [ res ] ->
    Alcotest.(check string) "resolved to B" "B" (G.name r.graph res.res_target)
  | _ -> Alcotest.fail "expected one resolution"

let test_protected_ok_from_derived_method () =
  (* protected members are usable from methods of the same class (our
     model relaxes access for enclosing = accessed class) *)
  let r =
    analyze
      "class B { protected: int p; public: void touch() { p; } };\n\
       int main() { B b; b.touch(); }\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r)

let test_struct_vs_class_base_defaults () =
  (* struct D : B is public inheritance: accessible; class D : B is
     private: not *)
  let ok =
    analyze
      "struct B { int v; };\nstruct D : B {};\nint main() { D d; d.v; }\n"
  in
  Alcotest.(check bool) "struct default public" true (Frontend.Sema.ok ok)

let test_diagnostics_positions () =
  let r = analyze "struct X { int a; };\nint main() {\n  X x;\n  x.b;\n}\n" in
  match
    List.find_opt
      (fun (d : Frontend.Diagnostic.t) -> Frontend.Diagnostic.is_error d)
      r.diagnostics
  with
  | Some d -> Alcotest.(check int) "error on line 4" 4 d.loc.Frontend.Loc.line
  | None -> Alcotest.fail "expected a diagnostic"

let test_emit_figures_roundtrip () =
  List.iter
    (fun mk ->
      let g = mk () in
      let r = Frontend.Sema.analyze_source (Frontend.Emit.to_source g) in
      Alcotest.(check bool) "compiles" true (Frontend.Sema.ok r);
      Alcotest.(check string) "same graph" (Chg.Serialize.to_string g)
        (Chg.Serialize.to_string r.graph))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_emit_rich_members_roundtrip () =
  let b = G.create_builder () in
  ignore
    (G.add_class b "X" ~bases:[]
       ~members:
         [ G.member ~access:G.Private "a";
           G.member ~kind:G.Function ~virtual_:true ~access:G.Protected "f";
           G.member ~static:true "s";
           G.member ~kind:G.Type "T";
           G.member ~kind:G.Enumerator "red" ]);
  ignore
    (G.add_class b "Y" ~bases:[ ("X", G.Virtual, G.Protected) ] ~members:[]);
  let g = G.freeze b in
  let r = Frontend.Sema.analyze_source (Frontend.Emit.to_source g) in
  Alcotest.(check bool) "compiles" true (Frontend.Sema.ok r);
  Alcotest.(check string) "same graph" (Chg.Serialize.to_string g)
    (Chg.Serialize.to_string r.graph)

let suite =
  [ Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "anonymous enum, trailing comma" `Quick
      test_enum_anonymous;
    Alcotest.test_case "enum with initializers" `Quick test_enum_with_values;
    Alcotest.test_case "typedef pointer" `Quick test_typedef_pointer;
    Alcotest.test_case "calling a data member" `Quick test_call_non_function;
    Alcotest.test_case "method call resolution" `Quick
      test_method_call_resolution;
    Alcotest.test_case "protected from own method" `Quick
      test_protected_ok_from_derived_method;
    Alcotest.test_case "struct/class base defaults" `Quick
      test_struct_vs_class_base_defaults;
    Alcotest.test_case "diagnostic positions" `Quick
      test_diagnostics_positions;
    Alcotest.test_case "emit: figures roundtrip" `Quick
      test_emit_figures_roundtrip;
    Alcotest.test_case "emit: rich members roundtrip" `Quick
      test_emit_rich_members_roundtrip ]
