(* Tests for the JSON substrate and graph (de)serialization. *)

module G = Chg.Graph
module Json = Chg.Json

let json_roundtrip ?(pretty = false) j =
  match Json.of_string (Json.to_string ~pretty j) with
  | Ok j' -> j' = j
  | Error _ -> false

let test_json_values () =
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Json.to_string j)
        true
        (json_roundtrip j && json_roundtrip ~pretty:true j))
    [ Json.Null; Json.Bool true; Json.Bool false; Json.Int 0; Json.Int (-42);
      Json.Int max_int; Json.String ""; Json.String "hello";
      Json.String "quotes \" and \\ and \n tabs \t";
      Json.List []; Json.List [ Json.Int 1; Json.Int 2 ];
      Json.Obj [];
      Json.Obj
        [ ("a", Json.List [ Json.Obj [ ("b", Json.Null) ] ]);
          ("c", Json.String "d") ] ]

let test_json_parse_basics () =
  Alcotest.(check bool) "whitespace" true
    (Json.of_string "  { \"a\" : [ 1 , 2 ] }  "
    = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string "\"a\\u0041b\"" = Ok (Json.String "aAb"));
  Alcotest.(check bool) "named escapes" true
    (Json.of_string "\"a\\n\\t\\\\b\"" = Ok (Json.String "a\n\t\\b"))

let test_json_errors () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Ok _ -> Alcotest.failf "accepted malformed %S" src
      | Error msg ->
        Alcotest.(check bool) "has message" true (String.length msg > 0))
    [ ""; "{"; "["; "\"unterminated"; "1.5"; "1e3"; "nul"; "[1,]";
      "{\"a\":}"; "{\"a\" 1}"; "[1] garbage"; "{1: 2}" ]

let graphs_equal a b =
  G.num_classes a = G.num_classes b
  && List.for_all
       (fun c ->
         G.name a c = G.name b c
         && G.bases a c = G.bases b c
         && G.members a c = G.members b c)
       (G.classes a)

let test_graph_roundtrip_figures () =
  List.iter
    (fun mk ->
      let g = mk () in
      match Chg.Serialize.of_string (Chg.Serialize.to_string g) with
      | Ok g' -> Alcotest.(check bool) "roundtrip" true (graphs_equal g g')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_graph_roundtrip_rich_members () =
  let b = G.create_builder () in
  ignore
    (G.add_class b "X" ~bases:[]
       ~members:
         [ G.member ~access:G.Private "a";
           G.member ~kind:G.Function ~virtual_:true ~access:G.Protected "f";
           G.member ~static:true "s";
           G.member ~kind:G.Type "T";
           G.member ~kind:G.Enumerator "red" ]);
  ignore
    (G.add_class b "Y" ~bases:[ ("X", G.Virtual, G.Protected) ] ~members:[]);
  let g = G.freeze b in
  match Chg.Serialize.of_string (Chg.Serialize.to_string ~pretty:true g) with
  | Ok g' -> Alcotest.(check bool) "roundtrip" true (graphs_equal g g')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_graph_bad_inputs () =
  List.iter
    (fun src ->
      match Chg.Serialize.of_string src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [ "{}";
      {|{"format":"other","version":1,"classes":[]}|};
      {|{"format":"cxxlookup-chg","version":99,"classes":[]}|};
      {|{"format":"cxxlookup-chg","version":1,"classes":[{"name":"A"}]}|};
      (* unknown base *)
      {|{"format":"cxxlookup-chg","version":1,"classes":[
         {"name":"A","bases":[{"class":"Z","virtual":false,
          "access":"public"}],"members":[]}]}|} ]

let test_graph_forward_reference_ok () =
  (* of_decls reorders, so serialized classes may arrive in any order *)
  let src =
    {|{"format":"cxxlookup-chg","version":1,"classes":[
       {"name":"D","bases":[{"class":"B","virtual":true,"access":"public"}],
        "members":[]},
       {"name":"B","bases":[],"members":[{"name":"m","kind":"data",
        "static":false,"virtual":false,"access":"public"}]}]}|}
  in
  match Chg.Serialize.of_string src with
  | Ok g ->
    Alcotest.(check int) "two classes" 2 (G.num_classes g);
    let cl = Chg.Closure.compute g in
    Alcotest.(check bool) "edge kind preserved" true
      (Chg.Closure.is_virtual_base cl (G.find g "B") (G.find g "D"))
  | Error e -> Alcotest.failf "should parse: %s" e

let test_lookup_preserved_through_roundtrip () =
  let g = Hiergen.Figures.fig9 () in
  match Chg.Serialize.of_string (Chg.Serialize.to_string g) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok g' ->
    let eng = Lookup_core.Engine.build (Chg.Closure.compute g') in
    Alcotest.(check (option string)) "E::m -> C" (Some "C")
      (Option.map (G.name g')
         (Lookup_core.Engine.resolves_to eng (G.find g' "E") "m"))

let suite =
  [ Alcotest.test_case "json value roundtrips" `Quick test_json_values;
    Alcotest.test_case "json parsing basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json malformed inputs" `Quick test_json_errors;
    Alcotest.test_case "graph roundtrip: figures" `Quick
      test_graph_roundtrip_figures;
    Alcotest.test_case "graph roundtrip: rich members" `Quick
      test_graph_roundtrip_rich_members;
    Alcotest.test_case "graph bad inputs" `Quick test_graph_bad_inputs;
    Alcotest.test_case "forward references accepted" `Quick
      test_graph_forward_reference_ok;
    Alcotest.test_case "lookup preserved through roundtrip" `Quick
      test_lookup_preserved_through_roundtrip ]
