(* Unit tests for the class hierarchy graph: builder validation, the
   order-independent constructor, closures and topological order. *)

module G = Chg.Graph

let nv = G.Non_virtual
let v = G.Virtual

let simple_diamond () =
  (* A; B : A; C : virtual A; D : B, C *)
  let b = G.create_builder () in
  ignore (G.add_class b "A" ~bases:[] ~members:[ G.member "m" ]);
  ignore (G.add_class b "B" ~bases:[ ("A", nv, G.Public) ] ~members:[]);
  ignore (G.add_class b "C" ~bases:[ ("A", v, G.Public) ] ~members:[]);
  ignore
    (G.add_class b "D"
       ~bases:[ ("B", nv, G.Public); ("C", nv, G.Public) ]
       ~members:[ G.member "n" ]);
  G.freeze b

let test_basic_accessors () =
  let g = simple_diamond () in
  Alcotest.(check int) "classes" 4 (G.num_classes g);
  Alcotest.(check int) "edges" 4 (G.num_edges g);
  Alcotest.(check string) "name" "A" (G.name g (G.find g "A"));
  Alcotest.(check (list string)) "member names" [ "m"; "n" ] (G.member_names g);
  Alcotest.(check bool) "declares" true (G.declares g (G.find g "A") "m");
  Alcotest.(check bool) "not declares" false (G.declares g (G.find g "B") "m");
  let d = G.find g "D" in
  Alcotest.(check (list string)) "bases of D in order" [ "B"; "C" ]
    (List.map (fun (b : G.base) -> G.name g b.b_class) (G.bases g d));
  let a = G.find g "A" in
  Alcotest.(check (list string)) "derived of A" [ "B"; "C" ]
    (List.map (fun (c, _) -> G.name g c) (G.derived g a))

let expect_error expected f =
  match f () with
  | _ -> Alcotest.failf "expected error %s" (G.error_to_string expected)
  | exception G.Error e ->
    Alcotest.(check string) "error" (G.error_to_string expected)
      (G.error_to_string e)

let test_duplicate_class () =
  expect_error (G.Duplicate_class "A") (fun () ->
      let b = G.create_builder () in
      ignore (G.add_class b "A" ~bases:[] ~members:[]);
      G.add_class b "A" ~bases:[] ~members:[])

let test_unknown_base () =
  expect_error (G.Unknown_base { cls = "B"; base = "Zed" }) (fun () ->
      let b = G.create_builder () in
      G.add_class b "B" ~bases:[ ("Zed", nv, G.Public) ] ~members:[])

let test_duplicate_base () =
  expect_error (G.Duplicate_base { cls = "B"; base = "A" }) (fun () ->
      let b = G.create_builder () in
      ignore (G.add_class b "A" ~bases:[] ~members:[]);
      G.add_class b "B"
        ~bases:[ ("A", nv, G.Public); ("A", v, G.Public) ]
        ~members:[])

let test_duplicate_member () =
  expect_error (G.Duplicate_member { cls = "A"; member = "m" }) (fun () ->
      let b = G.create_builder () in
      G.add_class b "A" ~bases:[] ~members:[ G.member "m"; G.member "m" ])

let test_of_decls_forward_refs () =
  (* Declarations listed derived-first: of_decls must reorder. *)
  let decls =
    [ { G.d_name = "D"; d_bases = [ ("B", nv, G.Public) ]; d_members = [] };
      { G.d_name = "B"; d_bases = [ ("A", nv, G.Public) ]; d_members = [] };
      { G.d_name = "A"; d_bases = []; d_members = [ G.member "m" ] } ]
  in
  match G.of_decls decls with
  | Error e -> Alcotest.failf "unexpected error: %s" (G.error_to_string e)
  | Ok g ->
    Alcotest.(check int) "classes" 3 (G.num_classes g);
    Alcotest.(check bool) "topological ids" true
      (Chg.Topo.is_topological g (Array.of_list (G.classes g)))

let test_of_decls_cycle () =
  let decls =
    [ { G.d_name = "A"; d_bases = [ ("B", nv, G.Public) ]; d_members = [] };
      { G.d_name = "B"; d_bases = [ ("A", nv, G.Public) ]; d_members = [] } ]
  in
  match G.of_decls decls with
  | Ok _ -> Alcotest.fail "cycle not detected"
  | Error (G.Cyclic_hierarchy cycle) ->
    Alcotest.(check bool) "cycle mentions both" true
      (List.mem "A" cycle && List.mem "B" cycle)
  | Error e -> Alcotest.failf "wrong error: %s" (G.error_to_string e)

let test_of_decls_self_cycle () =
  let decls =
    [ { G.d_name = "A"; d_bases = [ ("A", nv, G.Public) ]; d_members = [] } ]
  in
  match G.of_decls decls with
  | Ok _ -> Alcotest.fail "self-cycle not detected"
  | Error (G.Cyclic_hierarchy _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (G.error_to_string e)

let test_closure_bases () =
  let g = simple_diamond () in
  let cl = Chg.Closure.compute g in
  let id = G.find g in
  Alcotest.(check bool) "A base of D" true
    (Chg.Closure.is_base cl (id "A") (id "D"));
  Alcotest.(check bool) "D not base of A" false
    (Chg.Closure.is_base cl (id "D") (id "A"));
  Alcotest.(check bool) "A not base of A" false
    (Chg.Closure.is_base cl (id "A") (id "A"));
  Alcotest.(check bool) "base-or-self" true
    (Chg.Closure.is_base_or_self cl (id "A") (id "A"))

let test_closure_virtual_bases () =
  let g = simple_diamond () in
  let cl = Chg.Closure.compute g in
  let id = G.find g in
  (* A is a virtual base of C (direct virtual edge) and of D (path A=C-D
     starting with the virtual edge), but not of B. *)
  Alcotest.(check bool) "A vbase of C" true
    (Chg.Closure.is_virtual_base cl (id "A") (id "C"));
  Alcotest.(check bool) "A vbase of D" true
    (Chg.Closure.is_virtual_base cl (id "A") (id "D"));
  Alcotest.(check bool) "A not vbase of B" false
    (Chg.Closure.is_virtual_base cl (id "A") (id "B"));
  Alcotest.(check bool) "B not vbase of D" false
    (Chg.Closure.is_virtual_base cl (id "B") (id "D"))

let test_closure_deep_virtual () =
  (* Virtual bases propagate to transitively derived classes:
     V; M : virtual V; X : M; Y : X.  V is a virtual base of X and Y. *)
  let b = G.create_builder () in
  ignore (G.add_class b "V" ~bases:[] ~members:[]);
  ignore (G.add_class b "M" ~bases:[ ("V", v, G.Public) ] ~members:[]);
  ignore (G.add_class b "X" ~bases:[ ("M", nv, G.Public) ] ~members:[]);
  ignore (G.add_class b "Y" ~bases:[ ("X", nv, G.Public) ] ~members:[]);
  let g = G.freeze b in
  let cl = Chg.Closure.compute g in
  let id = G.find g in
  Alcotest.(check bool) "V vbase of Y" true
    (Chg.Closure.is_virtual_base cl (id "V") (id "Y"));
  Alcotest.(check bool) "M not vbase of Y" false
    (Chg.Closure.is_virtual_base cl (id "M") (id "Y"))

let test_topo_order () =
  let g = Hiergen.Figures.fig3 () in
  let ord = Chg.Topo.order g in
  Alcotest.(check bool) "kahn order is topological" true
    (Chg.Topo.is_topological g ord);
  Alcotest.(check bool) "id order is topological" true
    (Chg.Topo.is_topological g (Array.of_list (G.classes g)));
  let num = Chg.Topo.numbers g in
  Alcotest.(check bool) "base before derived" true
    (num.(G.find g "A") < num.(G.find g "H"))

let test_derived_closure () =
  let g = simple_diamond () in
  let cl = Chg.Closure.compute g in
  let id = G.find g in
  Alcotest.(check (list int)) "derived of A" [ id "B"; id "C"; id "D" ]
    (Chg.Bitset.elements (Chg.Closure.derived_of cl (id "A")))

let test_dot_output () =
  let g = simple_diamond () in
  let dot = Chg.Dot.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph");
  (* One dashed edge for the virtual A -> C. *)
  let dashed =
    String.split_on_char '\n' dot
    |> List.filter (fun l ->
           let re = "style=dashed" in
           let rec contains i =
             i + String.length re <= String.length l
             && (String.sub l i (String.length re) = re || contains (i + 1))
           in
           contains 0)
  in
  Alcotest.(check int) "one dashed edge" 1 (List.length dashed)

let suite =
  [ Alcotest.test_case "accessors" `Quick test_basic_accessors;
    Alcotest.test_case "duplicate class rejected" `Quick test_duplicate_class;
    Alcotest.test_case "unknown base rejected" `Quick test_unknown_base;
    Alcotest.test_case "duplicate base rejected" `Quick test_duplicate_base;
    Alcotest.test_case "duplicate member rejected" `Quick test_duplicate_member;
    Alcotest.test_case "of_decls reorders forward refs" `Quick
      test_of_decls_forward_refs;
    Alcotest.test_case "of_decls detects cycles" `Quick test_of_decls_cycle;
    Alcotest.test_case "of_decls detects self-cycle" `Quick
      test_of_decls_self_cycle;
    Alcotest.test_case "closure: bases" `Quick test_closure_bases;
    Alcotest.test_case "closure: virtual bases" `Quick
      test_closure_virtual_bases;
    Alcotest.test_case "closure: deep virtual bases" `Quick
      test_closure_deep_virtual;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "derived closure" `Quick test_derived_closure;
    Alcotest.test_case "dot export" `Quick test_dot_output ]
