(* Tests for the mini runtime: layouts, stat/dyn staging, pointer
   adjustment, shared virtual bases, static storage. *)

module R = Runtime

let run src =
  let o = R.run_source src in
  List.iter
    (fun d ->
      Alcotest.failf "runtime error: %s" (Frontend.Diagnostic.to_string d))
    o.R.runtime_errors;
  o.R.trace

let run_expect_error src needle =
  let o = R.run_source src in
  let msgs =
    List.map (fun (d : Frontend.Diagnostic.t) -> d.message) o.R.runtime_errors
  in
  let contains msg =
    let rec go i =
      i + String.length needle <= String.length msg
      && (String.sub msg i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  if not (List.exists contains msgs) then
    Alcotest.failf "expected runtime error containing %S, got: %s" needle
      (String.concat " | " msgs)

let writes trace =
  List.filter_map
    (function
      | R.Write { target; subobject; value = R.Vint v; _ } ->
        Some (target, subobject, v)
      | _ -> None)
    trace

let dispatches trace =
  List.filter_map
    (function
      | R.Dispatch { slot; impl; virtual_dispatch; _ } ->
        Some (slot, impl, virtual_dispatch)
      | _ -> None)
    trace

let test_fig9_write () =
  (* The paper's Figure 9 program actually executed: the write lands in
     the C subobject. *)
  let trace =
    run
      "struct S { int m; };\n\
       struct A : virtual S { int m; };\n\
       struct B : virtual S { int m; };\n\
       struct C : virtual A, virtual B { int m; };\n\
       struct D : C {};\n\
       struct E : virtual A, virtual B, D {};\n\
       int main() { E e; e.m = 10; }\n"
  in
  Alcotest.(check (list (triple string string int)))
    "write to C::m in the C-D-E subobject"
    [ ("C::m", "C-D-E", 10) ]
    (writes trace)

let test_distinct_subobjects_distinct_memory () =
  (* Figure 1: two A subobjects; writes through different paths must not
     alias. *)
  let trace =
    run
      "struct A { int m; };\n\
       struct B : A {};\n\
       struct C : B {};\n\
       struct D : B { int dm; };\n\
       struct E : C, D {};\n\
       int main() {\n\
       \  E e;\n\
       \  C* pc;\n\
       \  D* pd;\n\
       \  pc = &e;\n\
       \  pd = &e;\n\
       \  pc->m = 1;\n\
       \  pd->m = 2;\n\
       \  pc->m;\n\
       \  pd->m;\n\
       }\n"
  in
  (* both writes retain their own value: reads see 1 then 2 *)
  let reads =
    List.filter_map
      (function
        | R.Read { value = R.Vint v; subobject; _ } -> Some (subobject, v)
        | _ -> None)
      trace
  in
  Alcotest.(check (list (pair string int)))
    "distinct A subobjects hold distinct values"
    [ ("A-B-C-E", 1); ("A-B-D-E", 2) ]
    reads

let test_shared_virtual_base_aliases () =
  (* Figure 2-style: with virtual inheritance both paths reach the same
     storage. *)
  let trace =
    run
      "struct A { int m; };\n\
       struct B : virtual A {};\n\
       struct C : virtual A {};\n\
       struct E : B, C {};\n\
       int main() {\n\
       \  E e;\n\
       \  B* pb;\n\
       \  C* pc;\n\
       \  pb = &e;\n\
       \  pc = &e;\n\
       \  pb->m = 7;\n\
       \  pc->m;\n\
       }\n"
  in
  (match
     List.filter_map
       (function R.Read { value; _ } -> Some value | _ -> None)
       trace
   with
  | [ R.Vint 7 ] -> ()
  | other ->
    Alcotest.failf "expected to read 7 through the other path, got %d reads"
      (List.length other))

let test_virtual_dispatch () =
  (* dyn: a virtual call through a base pointer runs the override. *)
  let trace =
    run
      "struct Base { virtual void f(); int x; };\n\
       struct Derived : Base {\n\
       \  virtual void f() { x = 42; }\n\
       };\n\
       int main() {\n\
       \  Derived d;\n\
       \  Base* p;\n\
       \  p = &d;\n\
       \  p->f();\n\
       }\n"
  in
  Alcotest.(check (list (triple string string bool)))
    "dispatched to Derived::f virtually"
    [ ("f", "Derived", true) ]
    (dispatches trace);
  Alcotest.(check (list (triple string string int)))
    "the body wrote through this"
    [ ("Base::x", "Base-Derived", 42) ]
    (writes trace)

let test_qualified_call_is_non_virtual () =
  (* X::f() suppresses the virtual dispatch — the stat operation. *)
  let trace =
    run
      "struct Base { virtual void f(); int x; };\n\
       struct Derived : Base {\n\
       \  virtual void f() { x = 1; }\n\
       \  void g() { Base::f(); }\n\
       };\n\
       int main() { Derived d; d.g(); }\n"
  in
  Alcotest.(check (list (triple string string bool)))
    "g non-virtual (declared plain), then Base::f statically"
    [ ("g", "Derived", false); ("f", "Base", false) ]
    (dispatches trace)

let test_pointer_adjustment () =
  (* Assigning &derived to a second-base pointer adjusts the address. *)
  let trace =
    run
      "struct L { int a; };\n\
       struct R { int b; };\n\
       struct D : L, R {};\n\
       int main() {\n\
       \  D d;\n\
       \  R* pr;\n\
       \  pr = &d;\n\
       \  pr->b = 5;\n\
       }\n"
  in
  Alcotest.(check (list (triple string string int)))
    "write lands in the R subobject"
    [ ("R::b", "R-D", 5) ]
    (writes trace)

let test_static_member_shared () =
  (* A static member is one cell regardless of objects. *)
  let trace =
    run
      "struct S { static int k; };\n\
       struct A : S {};\n\
       struct B : S {};\n\
       struct C : A, B {};\n\
       int main() {\n\
       \  C c;\n\
       \  c.k = 3;\n\
       \  C::k;\n\
       \  S s;\n\
       \  s.k;\n\
       }\n"
  in
  let static_events =
    List.filter_map
      (function
        | R.Write { target; subobject = "<static>"; value = R.Vint v; _ } ->
          Some (`W (target, v))
        | R.Read _ -> None  (* static reads are not traced as reads *)
        | _ -> None)
      trace
  in
  Alcotest.(check bool) "one static write" true
    (static_events = [ `W ("S::k", 3) ])

let test_enumerator_value () =
  let trace =
    run
      "struct Color { enum K { red, green, blue }; void f() { } };\n\
       int main() { Color c; c.f(); }\n"
  in
  Alcotest.(check int) "alloc + dispatch" 2 (List.length trace)

let test_uninitialized_deref () =
  run_expect_error
    "struct X { int a; };\n\
     int main() { X* p; p->a = 1; }\n"
    "uninitialized pointer"

let test_ambiguous_conversion () =
  run_expect_error
    "struct A { int m; };\n\
     struct B : A {};\n\
     struct C : A {};\n\
     struct D : B, C {};\n\
     int main() { D d; A* pa; pa = &d; }\n"
    "ambiguous"

let test_embedded_member_rejected () =
  run_expect_error
    "struct Inner { int v; };\n\
     struct Outer { Inner inner; void f() { } };\n\
     int main() { Outer o; o.inner = 1; }\n"
    "not modeled"

let test_recursion_guard () =
  run_expect_error
    "struct X { void f() { f(); } };\n\
     int main() { X x; x.f(); }\n"
    "call depth exceeded"

let test_chained_pointer_traversal () =
  (* follow pointer members through a two-node list *)
  let trace =
    run
      "struct Node { int v; Node* next; };\n\
       int main() {\n\
       \  Node a;\n\
       \  Node b;\n\
       \  a.next = &b;\n\
       \  a.next->v = 9;\n\
       \  b.v;\n\
       }\n"
  in
  (* reads: the pointer-field read during traversal, then b.v *)
  let int_reads =
    List.filter_map
      (function
        | R.Read { obj; value = R.Vint v; _ } -> Some (obj, v)
        | _ -> None)
      trace
  in
  (match int_reads with
  | [ (1, 9) ] -> ()
  | _ -> Alcotest.fail "write through a.next must land in b");
  Alcotest.(check int) "two allocations" 2
    (List.length
       (List.filter (function R.Alloc _ -> true | _ -> false) trace))

let test_dispatch_through_deep_base () =
  (* virtual dispatch works from a pointer to a grandparent subobject,
     with this re-adjusted to the overrider's subobject *)
  let trace =
    run
      "struct Root { virtual void go(); };\n\
       struct Mid : Root { int mv; };\n\
       struct Leaf : Mid {\n\
       \  virtual void go() { mv = 3; }\n\
       };\n\
       int main() {\n\
       \  Leaf l;\n\
       \  Root* r;\n\
       \  r = &l;\n\
       \  r->go();\n\
       }\n"
  in
  Alcotest.(check (list (triple string string bool)))
    "dispatch from Root* to Leaf::go"
    [ ("go", "Leaf", true) ]
    (dispatches trace);
  Alcotest.(check (list (triple string string int)))
    "this re-adjusted: write hits Mid subobject"
    [ ("Mid::mv", "Mid-Leaf", 3) ]
    (writes trace)

let test_methods_calling_methods () =
  (* non-virtual call chain with this threading through *)
  let trace =
    run
      "struct Counter {\n\
       \  int n;\n\
       \  void bump() { n = 1; }\n\
       \  void twice() { bump(); bump(); }\n\
       };\n\
       int main() { Counter c; c.twice(); }\n"
  in
  Alcotest.(check int) "three dispatches" 3
    (List.length (dispatches trace));
  Alcotest.(check int) "two writes" 2 (List.length (writes trace))

let test_write_to_int_var () =
  (* plain int locals work and produce no member-write events *)
  let trace = run "int main() { int i; i = 4; }" in
  Alcotest.(check int) "no events" 0 (List.length trace)

let test_virtual_base_write_via_two_derived () =
  (* the fig2 shape through METHOD bodies: both mixins write the shared
     virtual base *)
  let trace =
    run
      "struct State { int s; };\n\
       struct MixA : virtual State { void seta() { s = 1; } };\n\
       struct MixB : virtual State { void setb() { s = 2; } };\n\
       struct Both : MixA, MixB {};\n\
       int main() { Both b; b.seta(); b.setb(); }\n"
  in
  Alcotest.(check (list (triple string string int)))
    "both writes hit the one shared State"
    [ ("State::s", "State", 1); ("State::s", "State", 2) ]
    (writes trace)

let suite =
  [ Alcotest.test_case "figure 9 executes" `Quick test_fig9_write;
    Alcotest.test_case "chained pointer traversal" `Quick
      test_chained_pointer_traversal;
    Alcotest.test_case "dispatch through a deep base pointer" `Quick
      test_dispatch_through_deep_base;
    Alcotest.test_case "methods calling methods" `Quick
      test_methods_calling_methods;
    Alcotest.test_case "int locals are eventless" `Quick
      test_write_to_int_var;
    Alcotest.test_case "virtual base written via two mixins" `Quick
      test_virtual_base_write_via_two_derived;
    Alcotest.test_case "distinct subobjects, distinct memory" `Quick
      test_distinct_subobjects_distinct_memory;
    Alcotest.test_case "shared virtual base aliases" `Quick
      test_shared_virtual_base_aliases;
    Alcotest.test_case "virtual dispatch (dyn)" `Quick test_virtual_dispatch;
    Alcotest.test_case "qualified call is non-virtual (stat)" `Quick
      test_qualified_call_is_non_virtual;
    Alcotest.test_case "pointer adjustment to second base" `Quick
      test_pointer_adjustment;
    Alcotest.test_case "static member storage is shared" `Quick
      test_static_member_shared;
    Alcotest.test_case "enumerators don't allocate" `Quick
      test_enumerator_value;
    Alcotest.test_case "uninitialized deref" `Quick test_uninitialized_deref;
    Alcotest.test_case "ambiguous base conversion" `Quick
      test_ambiguous_conversion;
    Alcotest.test_case "embedded members rejected" `Quick
      test_embedded_member_rejected;
    Alcotest.test_case "recursion guard" `Quick test_recursion_guard ]
