(* Tests for unqualified-name lookup through nested scopes (paper
   Section 6). *)

module G = Chg.Graph
module Engine = Lookup_core.Engine

(* A hierarchy with an unambiguous member `x`, an ambiguous member `amb`,
   and a member `shadowed` to test scope ordering. *)
let graph () =
  let b = G.create_builder () in
  ignore
    (G.add_class b "Base" ~bases:[]
       ~members:[ G.member "x"; G.member "shadowed" ]);
  ignore (G.add_class b "L" ~bases:[] ~members:[ G.member "amb" ]);
  ignore (G.add_class b "R" ~bases:[] ~members:[ G.member "amb" ]);
  ignore
    (G.add_class b "Derived"
       ~bases:
         [ ("Base", G.Non_virtual, G.Public); ("L", G.Non_virtual, G.Public);
           ("R", G.Non_virtual, G.Public) ]
       ~members:[]);
  G.freeze b

let setup () =
  let g = graph () in
  (g, Engine.build (Chg.Closure.compute g))

let test_block_binding () =
  let _g, eng = setup () in
  let stack = [ Scopes.Block [ ("v", Scopes.Variable "int") ] ] in
  Alcotest.(check bool) "found variable" true
    (Scopes.lookup eng stack "v" = Scopes.Found (Scopes.Variable "int"));
  Alcotest.(check bool) "unbound" true
    (Scopes.lookup eng stack "w" = Scopes.Unbound)

let test_inner_shadows_outer () =
  let _g, eng = setup () in
  let stack =
    [ Scopes.Block [ ("v", Scopes.Variable "inner") ];
      Scopes.Block [ ("v", Scopes.Variable "outer") ] ]
  in
  Alcotest.(check bool) "inner wins" true
    (Scopes.lookup eng stack "v" = Scopes.Found (Scopes.Variable "inner"))

let test_class_scope_member () =
  let g, eng = setup () in
  let d = G.find g "Derived" in
  (* a member function body of Derived: block, then class scope, then
     globals *)
  let stack =
    [ Scopes.Block [ ("local", Scopes.Variable "int") ];
      Scopes.Class_scope d;
      Scopes.Namespace ("std", [ ("x", Scopes.Function_decl) ]) ]
  in
  (match Scopes.lookup eng stack "x" with
  | Scopes.Found_member { context; target } ->
    Alcotest.(check string) "context" "Derived" (G.name g context);
    Alcotest.(check string) "target" "Base" (G.name g target)
  | other ->
    Alcotest.failf "expected member, got %s"
      (Format.asprintf "%a" (Scopes.pp_result g) other))

let test_block_shadows_class_member () =
  let g, eng = setup () in
  let d = G.find g "Derived" in
  let stack =
    [ Scopes.Block [ ("shadowed", Scopes.Variable "double") ];
      Scopes.Class_scope d ]
  in
  Alcotest.(check bool) "block wins over member" true
    (Scopes.lookup eng stack "shadowed"
    = Scopes.Found (Scopes.Variable "double"))

let test_ambiguous_member_poisons () =
  let g, eng = setup () in
  let d = G.find g "Derived" in
  (* an outer scope also binds "amb": the class scope's ambiguity must NOT
     fall through to it *)
  let stack =
    [ Scopes.Class_scope d;
      Scopes.Block [ ("amb", Scopes.Variable "int") ] ]
  in
  match Scopes.lookup eng stack "amb" with
  | Scopes.Ambiguous_member c ->
    Alcotest.(check string) "ambiguous in Derived" "Derived" (G.name g c)
  | _ -> Alcotest.fail "ambiguity must stop the search"

let test_class_scope_falls_through_when_absent () =
  let g, eng = setup () in
  let d = G.find g "Derived" in
  let stack =
    [ Scopes.Class_scope d;
      Scopes.Namespace ("ns", [ ("free_fn", Scopes.Function_decl) ]) ]
  in
  Alcotest.(check bool) "falls through to namespace" true
    (Scopes.lookup eng stack "free_fn" = Scopes.Found Scopes.Function_decl)

let test_nested_class_scopes () =
  let g, eng = setup () in
  let base = G.find g "Base" in
  let l = G.find g "L" in
  (* innermost class scope L has amb unambiguously; Base is outer *)
  let stack = [ Scopes.Class_scope l; Scopes.Class_scope base ] in
  (match Scopes.lookup eng stack "amb" with
  | Scopes.Found_member { target; _ } ->
    Alcotest.(check string) "L::amb" "L" (G.name g target)
  | _ -> Alcotest.fail "expected member");
  match Scopes.lookup eng stack "x" with
  | Scopes.Found_member { context; _ } ->
    Alcotest.(check string) "outer class scope" "Base" (G.name g context)
  | _ -> Alcotest.fail "expected member from outer class scope"

let suite =
  [ Alcotest.test_case "block binding" `Quick test_block_binding;
    Alcotest.test_case "inner shadows outer" `Quick test_inner_shadows_outer;
    Alcotest.test_case "class scope finds member" `Quick
      test_class_scope_member;
    Alcotest.test_case "block shadows class member" `Quick
      test_block_shadows_class_member;
    Alcotest.test_case "ambiguity stops the search" `Quick
      test_ambiguous_member_poisons;
    Alcotest.test_case "absent member falls through" `Quick
      test_class_scope_falls_through_when_absent;
    Alcotest.test_case "nested class scopes" `Quick test_nested_class_scopes ]
