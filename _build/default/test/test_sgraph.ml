(* Tests for the Rossie-Friedman subobject graph, including Theorem 1
   (isomorphism with the ≈-classes of CHG paths). *)

module G = Chg.Graph
module Path = Subobject.Path
module Sgraph = Subobject.Sgraph
module Spec = Subobject.Spec

let test_fig1_count () =
  let g = Hiergen.Figures.fig1 () in
  let sg = Sgraph.build g (G.find g "E") in
  Alcotest.(check int) "7 subobjects" 7 (Sgraph.count sg)

let test_fig2_count () =
  let g = Hiergen.Figures.fig2 () in
  let sg = Sgraph.build g (G.find g "E") in
  Alcotest.(check int) "5 subobjects (shared virtual B and A)" 5
    (Sgraph.count sg)

let test_exponential_growth () =
  (* Non-virtual diamond stacks double the number of A0 subobjects per
     level; virtual ones share them. *)
  let count kind levels =
    let { Hiergen.Families.graph; probe; _ } =
      Hiergen.Families.diamond_stack ~levels ~kind
    in
    let sg = Sgraph.build graph probe in
    let a0 = G.find graph "A0" in
    List.length
      (List.filter (fun s -> Sgraph.ldc sg s = a0) (Sgraph.subobjects sg))
  in
  Alcotest.(check int) "nv levels=1: 2 copies" 2 (count G.Non_virtual 1);
  Alcotest.(check int) "nv levels=4: 16 copies" 16 (count G.Non_virtual 4);
  Alcotest.(check int) "nv levels=6: 64 copies" 64 (count G.Non_virtual 6);
  Alcotest.(check int) "virtual levels=6: 1 copy" 1 (count G.Virtual 6)

let test_theorem1_counts () =
  (* Theorem 1: the subobject poset is isomorphic to the ≈-classes, so in
     particular the counts agree for every class of every figure. *)
  List.iter
    (fun mk ->
      let g = mk () in
      G.iter_classes g (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "count at %s" (G.name g c))
            (Spec.subobject_count g c)
            (Sgraph.count (Sgraph.build g c))))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_theorem1_dominance () =
  (* Dominance on ≈-classes = containment in the subobject graph. *)
  let g = Hiergen.Figures.fig3 () in
  let h = G.find g "H" in
  let sg = Sgraph.build g h in
  let paths = Path.all_to g h in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let by_paths = Path.dominates g a b in
          let by_sgraph =
            Sgraph.dominates sg (Sgraph.of_path sg a) (Sgraph.of_path sg b)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s vs %s" (Path.to_string g a)
               (Path.to_string g b))
            by_paths by_sgraph)
        paths)
    paths

let test_of_path_a_path_roundtrip () =
  let g = Hiergen.Figures.fig9 () in
  let e = G.find g "E" in
  let sg = Sgraph.build g e in
  List.iter
    (fun s ->
      let p = Sgraph.a_path sg s in
      Alcotest.(check bool) "representative path is in the graph" true
        (Path.in_graph g p);
      Alcotest.(check int) "roundtrip" (Sgraph.id_of s)
        (Sgraph.id_of (Sgraph.of_path sg p)))
    (Sgraph.subobjects sg)

let test_contained_shapes () =
  let g = Hiergen.Figures.fig2 () in
  let sg = Sgraph.build g (G.find g "E") in
  let root = Sgraph.complete_object sg in
  Alcotest.(check string) "root ldc" "E" (G.name g (Sgraph.ldc sg root));
  let kids = Sgraph.contained sg root in
  Alcotest.(check (list string)) "children in decl order" [ "C"; "D" ]
    (List.map (fun s -> G.name g (Sgraph.ldc sg s)) kids);
  (* C's and D's virtual B children are the SAME subobject. *)
  (match kids with
  | [ c; d ] ->
    let bc = Sgraph.contained sg c and bd = Sgraph.contained sg d in
    (match (bc, bd) with
    | [ b1 ], [ b2 ] ->
      Alcotest.(check int) "shared virtual base" (Sgraph.id_of b1)
        (Sgraph.id_of b2)
    | _ -> Alcotest.fail "expected single B child")
  | _ -> Alcotest.fail "expected two children");
  Alcotest.(check bool) "root contains everything" true
    (List.for_all (Sgraph.contains sg root) (Sgraph.subobjects sg))

let test_defns_order () =
  let g = Hiergen.Figures.fig9 () in
  let sg = Sgraph.build g (G.find g "E") in
  let names =
    List.map (fun s -> G.name g (Sgraph.ldc sg s)) (Sgraph.defns sg "m")
  in
  (* BFS from E: level 1 discovers A, B, D (declaration order); level 2
     discovers S (while processing A) then C (while processing D); all of
     A B C S declare m, D does not. *)
  Alcotest.(check (list string)) "BFS order of defns" [ "A"; "B"; "S"; "C" ]
    names

let test_polynomial_count () =
  (* the closed-form count equals the materialized graph's size *)
  List.iter
    (fun mk ->
      let g = mk () in
      let cl = Chg.Closure.compute g in
      G.iter_classes g (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "count at %s" (G.name g c))
            (Sgraph.count (Sgraph.build g c))
            (Subobject.Count.subobjects cl c)))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_count_exponential_without_building () =
  (* 40 levels of non-virtual diamonds: 2^40 root subobjects, counted in
     microseconds without building anything *)
  let { Hiergen.Families.graph; probe; _ } =
    Hiergen.Families.diamond_stack ~levels:40 ~kind:G.Non_virtual
  in
  let cl = Chg.Closure.compute graph in
  let count = Subobject.Count.subobjects cl probe in
  (* total = sum over levels of per-class counts; root alone contributes
     2^40 *)
  Alcotest.(check bool) "over 2^40" true (count > 1 lsl 40);
  (* and with virtual edges everything is shared: #subobjects = #bases+1 *)
  let { Hiergen.Families.graph = vg; probe = vp; _ } =
    Hiergen.Families.diamond_stack ~levels:40 ~kind:G.Virtual
  in
  let vcl = Chg.Closure.compute vg in
  Alcotest.(check int) "virtual: one subobject per class"
    (Chg.Graph.num_classes vg)
    (Subobject.Count.subobjects vcl vp)

let test_count_saturates () =
  let { Hiergen.Families.graph; probe; _ } =
    Hiergen.Families.diamond_stack ~levels:100 ~kind:G.Non_virtual
  in
  let cl = Chg.Closure.compute graph in
  Alcotest.(check int) "saturated, no overflow" max_int
    (Subobject.Count.subobjects cl probe)

let test_dot () =
  let g = Hiergen.Figures.fig1 () in
  let sg = Sgraph.build g (G.find g "E") in
  let dot = Sgraph.to_dot sg in
  Alcotest.(check bool) "nonempty digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let suite =
  [ Alcotest.test_case "fig1 subobject count" `Quick test_fig1_count;
    Alcotest.test_case "fig2 subobject count" `Quick test_fig2_count;
    Alcotest.test_case "exponential vs shared growth" `Quick
      test_exponential_growth;
    Alcotest.test_case "theorem 1: counts agree" `Quick test_theorem1_counts;
    Alcotest.test_case "theorem 1: dominance agrees" `Quick
      test_theorem1_dominance;
    Alcotest.test_case "of_path/a_path roundtrip" `Quick
      test_of_path_a_path_roundtrip;
    Alcotest.test_case "containment structure" `Quick test_contained_shapes;
    Alcotest.test_case "defns in BFS order" `Quick test_defns_order;
    Alcotest.test_case "polynomial count = materialized count" `Quick
      test_polynomial_count;
    Alcotest.test_case "counting without building" `Quick
      test_count_exponential_without_building;
    Alcotest.test_case "count saturates at max_int" `Quick
      test_count_saturates;
    Alcotest.test_case "dot export" `Quick test_dot ]
