(* Tests for the path formalism: fixed parts, the ≈ equivalence, hides,
   dominates — checked against the facts the paper states for its running
   example (Figure 3 and Section 3's worked examples). *)

module G = Chg.Graph
module Path = Subobject.Path

let nv = G.Non_virtual
let v = G.Virtual

let fig3 = Hiergen.Figures.fig3 ()

(* Path helpers over fig3: in that hierarchy D -> F and D -> G are
   virtual, everything else non-virtual. *)
let p names =
  let kinds =
    (* edge kind from consecutive node names *)
    let rec pair = function
      | a :: (b :: _ as rest) ->
        let kind =
          match (a, b) with "D", "F" | "D", "G" -> v | _ -> nv
        in
        kind :: pair rest
      | _ -> []
    in
    pair names
  in
  Path.of_names fig3 names ~kinds

let path_t = Alcotest.testable (Path.pp fig3) Path.equal

let test_ldc_mdc () =
  let abdfh = p [ "A"; "B"; "D"; "F"; "H" ] in
  Alcotest.(check string) "ldc" "A" (G.name fig3 (Path.ldc abdfh));
  Alcotest.(check string) "mdc" "H" (G.name fig3 (Path.mdc abdfh));
  Alcotest.(check int) "edges" 4 (Path.edge_count abdfh);
  let triv = Path.trivial (G.find fig3 "A") in
  Alcotest.(check string) "trivial ldc=mdc" "A" (G.name fig3 (Path.mdc triv))

let test_fixed_parts () =
  (* Paper, Section 3 example: fixed(ABDFH) = ABD, fixed(ABDGH) = ABD,
     fixed(ACDFH) = ACD, fixed(ACDGH) = ACD. *)
  let check_fixed names expect =
    Alcotest.check path_t
      (Printf.sprintf "fixed %s" (String.concat "" names))
      (p expect) (Path.fixed (p names))
  in
  check_fixed [ "A"; "B"; "D"; "F"; "H" ] [ "A"; "B"; "D" ];
  check_fixed [ "A"; "B"; "D"; "G"; "H" ] [ "A"; "B"; "D" ];
  check_fixed [ "A"; "C"; "D"; "F"; "H" ] [ "A"; "C"; "D" ];
  check_fixed [ "A"; "C"; "D"; "G"; "H" ] [ "A"; "C"; "D" ];
  (* A path with no virtual edge is its own fixed part. *)
  let abd = p [ "A"; "B"; "D" ] in
  Alcotest.check path_t "fixed of v-free path" abd (Path.fixed abd)

let test_equivalence () =
  (* Paper: ABDFH ≈ ABDGH, ACDFH ≈ ACDGH, ABDFH ≉ ACDFH. *)
  let abdfh = p [ "A"; "B"; "D"; "F"; "H" ]
  and abdgh = p [ "A"; "B"; "D"; "G"; "H" ]
  and acdfh = p [ "A"; "C"; "D"; "F"; "H" ]
  and acdgh = p [ "A"; "C"; "D"; "G"; "H" ] in
  Alcotest.(check bool) "ABDFH ≈ ABDGH" true (Path.equiv abdfh abdgh);
  Alcotest.(check bool) "ACDFH ≈ ACDGH" true (Path.equiv acdfh acdgh);
  Alcotest.(check bool) "ABDFH ≉ ACDFH" false (Path.equiv abdfh acdfh);
  (* Same fixed part but different mdc: not equivalent. *)
  let abd = p [ "A"; "B"; "D" ] in
  Alcotest.(check bool) "prefix not equivalent" false (Path.equiv abd abdfh)

let test_hides () =
  (* Paper: GH hides ABDGH but not ABDFH. *)
  let gh = p [ "G"; "H" ]
  and abdgh = p [ "A"; "B"; "D"; "G"; "H" ]
  and abdfh = p [ "A"; "B"; "D"; "F"; "H" ] in
  Alcotest.(check bool) "GH hides ABDGH" true (Path.hides gh abdgh);
  Alcotest.(check bool) "GH does not hide ABDFH" false (Path.hides gh abdfh);
  Alcotest.(check bool) "path hides itself" true (Path.hides gh gh);
  (* Suffix with same node names but different edge kind must not match:
     D=G-H (virtual then non-virtual) vs a hypothetical D-G. *)
  let dgh = p [ "D"; "G"; "H" ] in
  Alcotest.(check bool) "DGH hides ABDGH" true (Path.hides dgh abdgh)

let test_dominates () =
  (* Paper: GH dominates ABDFH (because GH hides ABDGH ≈ ABDFH);
     FH dominates ABDGH. *)
  let gh = p [ "G"; "H" ]
  and fh = p [ "F"; "H" ]
  and abdfh = p [ "A"; "B"; "D"; "F"; "H" ]
  and abdgh = p [ "A"; "B"; "D"; "G"; "H" ]
  and acdfh = p [ "A"; "C"; "D"; "F"; "H" ] in
  Alcotest.(check bool) "GH dominates ABDFH" true
    (Path.dominates fig3 gh abdfh);
  Alcotest.(check bool) "FH dominates ABDGH" true
    (Path.dominates fig3 fh abdgh);
  Alcotest.(check bool) "GH dominates ACDFH" true
    (Path.dominates fig3 gh acdfh);
  Alcotest.(check bool) "ABDFH does not dominate ACDFH" false
    (Path.dominates fig3 abdfh acdfh);
  Alcotest.(check bool) "reflexive" true (Path.dominates fig3 gh gh)

let test_dominates_via_closure_matches () =
  let cl = Chg.Closure.compute fig3 in
  let h = G.find fig3 "H" in
  let all = Path.all_to fig3 h in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s dom %s" (Path.to_string fig3 a)
               (Path.to_string fig3 b))
            (Path.dominates fig3 a b)
            (Path.dominates_via_closure cl a b))
        all)
    all

let test_concat () =
  let abd = p [ "A"; "B"; "D" ] and dfh = p [ "D"; "F"; "H" ] in
  Alcotest.check path_t "concat" (p [ "A"; "B"; "D"; "F"; "H" ])
    (Path.concat abd dfh);
  Alcotest.check_raises "mismatched concat"
    (Invalid_argument "Path.concat: mdc a <> ldc b") (fun () ->
      ignore (Path.concat dfh abd))

let test_all_to_counts () =
  (* Paths ending at H: enumerate and check the A-to-H count the paper
     gives (four paths from A to H). *)
  let h = G.find fig3 "H" in
  let a = G.find fig3 "A" in
  let from_a =
    List.filter (fun q -> Path.ldc q = a) (Path.all_to fig3 h)
  in
  Alcotest.(check int) "four A=>H paths" 4 (List.length from_a);
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in graph" (Path.to_string fig3 q))
        true (Path.in_graph fig3 q))
    (Path.all_to fig3 h)

let test_least_virtual () =
  let abdfh = p [ "A"; "B"; "D"; "F"; "H" ] in
  (match Path.least_virtual abdfh with
  | Some c -> Alcotest.(check string) "leastVirtual ABDFH" "D" (G.name fig3 c)
  | None -> Alcotest.fail "expected v-path");
  let abd = p [ "A"; "B"; "D" ] in
  Alcotest.(check bool) "Ω for v-free path" true
    (Path.least_virtual abd = None);
  Alcotest.(check bool) "v-path" true (Path.is_v_path abdfh);
  Alcotest.(check bool) "not v-path" false (Path.is_v_path abd)

let suite =
  [ Alcotest.test_case "ldc/mdc" `Quick test_ldc_mdc;
    Alcotest.test_case "fixed parts (paper sec. 3)" `Quick test_fixed_parts;
    Alcotest.test_case "≈ equivalence (paper sec. 3)" `Quick test_equivalence;
    Alcotest.test_case "hides (paper sec. 3)" `Quick test_hides;
    Alcotest.test_case "dominates (paper sec. 3)" `Quick test_dominates;
    Alcotest.test_case "closure-based dominance = spec" `Quick
      test_dominates_via_closure_matches;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "path enumeration counts" `Quick test_all_to_counts;
    Alcotest.test_case "leastVirtual" `Quick test_least_virtual ]
