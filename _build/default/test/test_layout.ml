(* Tests for object layout and vtable construction. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module OL = Layout.Object_layout
module Sgraph = Subobject.Sgraph

let iostream_graph () =
  let b = G.create_builder () in
  ignore
    (G.add_class b "ios" ~bases:[]
       ~members:
         [ G.member "state"; G.member ~kind:G.Function ~virtual_:true "tie" ]);
  ignore
    (G.add_class b "istream"
       ~bases:[ ("ios", G.Virtual, G.Public) ]
       ~members:
         [ G.member "gcount"; G.member ~kind:G.Function ~virtual_:true "get" ]);
  ignore
    (G.add_class b "ostream"
       ~bases:[ ("ios", G.Virtual, G.Public) ]
       ~members:
         [ G.member ~kind:G.Function ~virtual_:true "put";
           G.member ~kind:G.Function ~virtual_:true "flush" ]);
  ignore
    (G.add_class b "iostream"
       ~bases:
         [ ("istream", G.Non_virtual, G.Public);
           ("ostream", G.Non_virtual, G.Public) ]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "flush" ]);
  G.freeze b

let offset_of_ldc t name =
  let sg = t.OL.sgraph in
  let g = Sgraph.graph sg in
  List.filter_map
    (fun (sl : OL.slot) ->
      if G.name g (Sgraph.ldc sg sl.sl_subobject) = name then
        Some sl.sl_offset
      else None)
    t.OL.slots

let test_plain_struct () =
  let b = G.create_builder () in
  ignore (G.add_class b "P" ~bases:[] ~members:[ G.member "a"; G.member "b" ]);
  let g = G.freeze b in
  Alcotest.(check int) "two words" 16 (OL.sizeof g 0);
  Alcotest.(check bool) "no vptr" false (OL.has_vptr g 0)

let test_static_members_take_no_space () =
  let b = G.create_builder () in
  ignore
    (G.add_class b "P" ~bases:[]
       ~members:[ G.member "a"; G.member ~static:true "s" ]);
  let g = G.freeze b in
  Alcotest.(check int) "one word" 8 (OL.sizeof g 0)

let test_empty_class_nonzero () =
  let b = G.create_builder () in
  ignore (G.add_class b "Empty" ~bases:[] ~members:[]);
  let g = G.freeze b in
  Alcotest.(check bool) "nonzero size" true (OL.sizeof g 0 > 0)

let test_vptr_rules () =
  let g = iostream_graph () in
  Alcotest.(check bool) "ios polymorphic" true (OL.has_vptr g (G.find g "ios"));
  Alcotest.(check bool) "iostream polymorphic" true
    (OL.has_vptr g (G.find g "iostream"));
  let b = G.create_builder () in
  ignore (G.add_class b "Plain" ~bases:[] ~members:[ G.member "x" ]);
  ignore
    (G.add_class b "WithVBase" ~bases:[ ("Plain", G.Virtual, G.Public) ]
       ~members:[]);
  let g2 = G.freeze b in
  Alcotest.(check bool) "plain not polymorphic" false
    (OL.has_vptr g2 (G.find g2 "Plain"));
  Alcotest.(check bool) "virtual base implies vptr" true
    (OL.has_vptr g2 (G.find g2 "WithVBase"))

let test_iostream_layout () =
  let g = iostream_graph () in
  let t = OL.of_class g (G.find g "iostream") in
  (* nv regions: iostream vptr(8) + istream(vptr8+gcount8=16) +
     ostream(vptr8) = 32; shared virtual ios (vptr8+state8=16) at the
     end: total 48. *)
  Alcotest.(check int) "size" 48 t.OL.size;
  Alcotest.(check (list int)) "complete object at 0" [ 0 ]
    (offset_of_ldc t "iostream");
  Alcotest.(check (list int)) "istream embedded at 8" [ 8 ]
    (offset_of_ldc t "istream");
  Alcotest.(check (list int)) "ostream embedded at 24" [ 24 ]
    (offset_of_ldc t "ostream");
  Alcotest.(check (list int)) "one shared ios at 32" [ 32 ]
    (offset_of_ldc t "ios")

let test_duplicated_base_offsets_distinct () =
  (* Figure 1's hierarchy: two A subobjects must get distinct offsets. *)
  let g = Hiergen.Figures.fig1 () in
  let t = OL.of_class g (G.find g "E") in
  let offsets = offset_of_ldc t "A" in
  Alcotest.(check int) "two A subobjects" 2 (List.length offsets);
  Alcotest.(check bool) "distinct offsets" true
    (List.sort_uniq compare offsets = List.sort compare offsets
    && List.length (List.sort_uniq compare offsets) = 2)

let test_all_offsets_within_object () =
  List.iter
    (fun mk ->
      let g = mk () in
      G.iter_classes g (fun c ->
          let t = OL.of_class g c in
          List.iter
            (fun (sl : OL.slot) ->
              Alcotest.(check bool) "offset in range" true
                (sl.OL.sl_offset >= 0 && sl.OL.sl_offset <= t.OL.size))
            t.OL.slots))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_vtable_overriding () =
  let g = iostream_graph () in
  let engine = Engine.build (Chg.Closure.compute g) in
  let vt = Layout.Vtable.build engine (G.find g "iostream") in
  Alcotest.(check int) "four slots" 4 (List.length vt.Layout.Vtable.vt_entries);
  let dispatch f = Option.map (G.name g) (Layout.Vtable.dispatch vt f) in
  Alcotest.(check (option string)) "tie from ios" (Some "ios") (dispatch "tie");
  Alcotest.(check (option string)) "get from istream" (Some "istream")
    (dispatch "get");
  Alcotest.(check (option string)) "put from ostream" (Some "ostream")
    (dispatch "put");
  Alcotest.(check (option string)) "flush overridden" (Some "iostream")
    (dispatch "flush");
  Alcotest.(check (option string)) "absent slot" None (dispatch "nope")

let test_vtable_ambiguous_slot () =
  (* Two unrelated bases both introduce virtual f: the lookup in the
     join class is ambiguous, so the slot has no overrider. *)
  let b = G.create_builder () in
  ignore
    (G.add_class b "L" ~bases:[]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "f" ]);
  ignore
    (G.add_class b "R" ~bases:[]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "f" ]);
  ignore
    (G.add_class b "J"
       ~bases:[ ("L", G.Non_virtual, G.Public); ("R", G.Non_virtual, G.Public) ]
       ~members:[]);
  ignore
    (G.add_class b "K"
       ~bases:[ ("J", G.Non_virtual, G.Public) ]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "f" ]);
  let g = G.freeze b in
  let engine = Engine.build (Chg.Closure.compute g) in
  let vt_j = Layout.Vtable.build engine (G.find g "J") in
  Alcotest.(check (option string)) "ambiguous slot" None
    (Option.map (G.name g) (Layout.Vtable.dispatch vt_j "f"));
  (* K overrides f: the ambiguity is resolved below J. *)
  let vt_k = Layout.Vtable.build engine (G.find g "K") in
  Alcotest.(check (option string)) "override resolves" (Some "K")
    (Option.map (G.name g) (Layout.Vtable.dispatch vt_k "f"))

let test_vtable_introduced_by () =
  let g = iostream_graph () in
  let engine = Engine.build (Chg.Closure.compute g) in
  let vt = Layout.Vtable.build engine (G.find g "iostream") in
  let entry f =
    List.find
      (fun (e : Layout.Vtable.entry) -> e.e_slot = f)
      vt.Layout.Vtable.vt_entries
  in
  Alcotest.(check string) "flush introduced by ostream" "ostream"
    (G.name g (entry "flush").Layout.Vtable.e_introduced_by)

let suite =
  [ Alcotest.test_case "plain struct size" `Quick test_plain_struct;
    Alcotest.test_case "static members take no space" `Quick
      test_static_members_take_no_space;
    Alcotest.test_case "empty class has nonzero size" `Quick
      test_empty_class_nonzero;
    Alcotest.test_case "vptr rules" `Quick test_vptr_rules;
    Alcotest.test_case "iostream diamond layout" `Quick test_iostream_layout;
    Alcotest.test_case "duplicated bases get distinct offsets" `Quick
      test_duplicated_base_offsets_distinct;
    Alcotest.test_case "offsets within object" `Quick
      test_all_offsets_within_object;
    Alcotest.test_case "vtable overriding" `Quick test_vtable_overriding;
    Alcotest.test_case "vtable ambiguous slot" `Quick
      test_vtable_ambiguous_slot;
    Alcotest.test_case "vtable slot introduction" `Quick
      test_vtable_introduced_by ]
