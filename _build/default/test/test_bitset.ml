(* Unit tests for the Bitset substrate. *)

let test_empty () =
  let s = Chg.Bitset.create 100 in
  Alcotest.(check bool) "is_empty" true (Chg.Bitset.is_empty s);
  Alcotest.(check int) "cardinal" 0 (Chg.Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [] (Chg.Bitset.elements s)

let test_add_mem () =
  let s = Chg.Bitset.create 130 in
  List.iter (Chg.Bitset.add s) [ 0; 63; 64; 129 ];
  Alcotest.(check bool) "mem 0" true (Chg.Bitset.mem s 0);
  Alcotest.(check bool) "mem 63" true (Chg.Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" true (Chg.Bitset.mem s 64);
  Alcotest.(check bool) "mem 129" true (Chg.Bitset.mem s 129);
  Alcotest.(check bool) "not mem 1" false (Chg.Bitset.mem s 1);
  Alcotest.(check int) "cardinal" 4 (Chg.Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 63; 64; 129 ]
    (Chg.Bitset.elements s)

let test_remove () =
  let s = Chg.Bitset.create 10 in
  Chg.Bitset.add s 3;
  Chg.Bitset.add s 7;
  Chg.Bitset.remove s 3;
  Alcotest.(check bool) "removed" false (Chg.Bitset.mem s 3);
  Alcotest.(check bool) "kept" true (Chg.Bitset.mem s 7)

let test_union_into () =
  let a = Chg.Bitset.create 70 and b = Chg.Bitset.create 70 in
  Chg.Bitset.add a 1;
  Chg.Bitset.add b 65;
  Alcotest.(check bool) "changed" true (Chg.Bitset.union_into ~into:a b);
  Alcotest.(check bool) "unchanged" false (Chg.Bitset.union_into ~into:a b);
  Alcotest.(check (list int)) "union" [ 1; 65 ] (Chg.Bitset.elements a)

let test_inter () =
  let a = Chg.Bitset.create 10 and b = Chg.Bitset.create 10 in
  List.iter (Chg.Bitset.add a) [ 1; 2; 3 ];
  List.iter (Chg.Bitset.add b) [ 2; 3; 4 ];
  Alcotest.(check (list int)) "inter" [ 2; 3 ]
    (Chg.Bitset.elements (Chg.Bitset.inter a b))

let test_subset_equal () =
  let a = Chg.Bitset.create 10 and b = Chg.Bitset.create 10 in
  List.iter (Chg.Bitset.add a) [ 1; 2 ];
  List.iter (Chg.Bitset.add b) [ 1; 2; 5 ];
  Alcotest.(check bool) "subset" true (Chg.Bitset.subset a b);
  Alcotest.(check bool) "not subset" false (Chg.Bitset.subset b a);
  Alcotest.(check bool) "not equal" false (Chg.Bitset.equal a b);
  Chg.Bitset.add a 5;
  Alcotest.(check bool) "equal" true (Chg.Bitset.equal a b)

let test_copy_independent () =
  let a = Chg.Bitset.create 10 in
  Chg.Bitset.add a 1;
  let b = Chg.Bitset.copy a in
  Chg.Bitset.add b 2;
  Alcotest.(check bool) "copy has" true (Chg.Bitset.mem b 1);
  Alcotest.(check bool) "original unaffected" false (Chg.Bitset.mem a 2)

let test_bounds () =
  let s = Chg.Bitset.create 5 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      Chg.Bitset.add s 5);
  Alcotest.check_raises "mem negative"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Chg.Bitset.mem s (-1)))

let test_universe_mismatch () =
  let a = Chg.Bitset.create 5 and b = Chg.Bitset.create 6 in
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Bitset.union_into: universe mismatch") (fun () ->
      ignore (Chg.Bitset.union_into ~into:a b))

let test_fold_order () =
  let s = Chg.Bitset.create 100 in
  List.iter (Chg.Bitset.add s) [ 99; 0; 50 ];
  Alcotest.(check (list int)) "fold increasing" [ 0; 50; 99 ]
    (List.rev (Chg.Bitset.fold (fun i acc -> i :: acc) s []))

let suite =
  [ Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/mem across words" `Quick test_add_mem;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "union_into reports change" `Quick test_union_into;
    Alcotest.test_case "inter" `Quick test_inter;
    Alcotest.test_case "subset/equal" `Quick test_subset_equal;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "universe mismatch" `Quick test_universe_mismatch;
    Alcotest.test_case "fold order" `Quick test_fold_order ]
