test/test_sgraph.ml: Alcotest Chg Hiergen List Printf String Subobject
