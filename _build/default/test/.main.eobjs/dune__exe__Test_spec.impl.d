test/test_spec.ml: Alcotest Chg Hiergen List Subobject
