test/test_chg.ml: Alcotest Array Chg Hiergen List String
