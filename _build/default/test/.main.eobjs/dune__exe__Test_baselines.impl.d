test/test_baselines.ml: Alcotest Array Baselines Chg Hiergen List Option Printf Subobject
