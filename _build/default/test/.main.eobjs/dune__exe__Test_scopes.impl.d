test/test_scopes.ml: Alcotest Chg Format Lookup_core Scopes
