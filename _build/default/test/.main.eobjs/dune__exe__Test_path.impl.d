test/test_path.ml: Alcotest Chg Hiergen List Printf String Subobject
