test/test_workload.ml: Alcotest Chg Hiergen List Lookup_core
