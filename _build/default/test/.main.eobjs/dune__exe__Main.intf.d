test/main.mli:
