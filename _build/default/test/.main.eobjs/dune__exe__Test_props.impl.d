test/test_props.ml: Baselines Chg Format Frontend Hiergen Layout List Lookup_core QCheck QCheck_alcotest Random Slicing Subobject
