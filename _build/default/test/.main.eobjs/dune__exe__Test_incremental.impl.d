test/test_incremental.ml: Alcotest Chg Hiergen List Lookup_core Printf
