test/test_rf_ops.ml: Alcotest Chg List Lookup_core Subobject
