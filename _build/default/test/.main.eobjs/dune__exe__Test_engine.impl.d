test/test_engine.ml: Alcotest Chg Hiergen List Lookup_core Option Printf Subobject
