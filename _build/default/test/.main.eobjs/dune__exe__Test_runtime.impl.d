test/test_runtime.ml: Alcotest Frontend List Runtime String
