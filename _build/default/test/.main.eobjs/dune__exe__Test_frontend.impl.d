test/test_frontend.ml: Alcotest Chg Frontend List String
