test/test_bitset.ml: Alcotest Chg List
