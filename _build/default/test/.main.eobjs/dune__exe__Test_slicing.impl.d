test/test_slicing.ml: Alcotest Chg Hiergen List Printf Slicing Subobject
