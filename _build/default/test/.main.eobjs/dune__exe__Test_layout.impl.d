test/test_layout.ml: Alcotest Chg Hiergen Layout List Lookup_core Option Subobject
