test/test_analysis.ml: Alcotest Analysis Chg Hiergen List Printf Subobject
