test/test_serialize.ml: Alcotest Chg Hiergen List Lookup_core Option String
