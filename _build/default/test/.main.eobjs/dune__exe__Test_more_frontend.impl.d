test/test_more_frontend.ml: Alcotest Chg Frontend Hiergen List String
