(* Tests for the executable specification (Definitions 7-11, 16-17)
   against every concrete fact the paper states. *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec

let resolved_ldc g = function
  | Spec.Resolved p -> Some (G.name g (Path.ldc p))
  | Spec.Ambiguous _ | Spec.Undeclared -> None

let check_resolved g v expect_ldc msg =
  Alcotest.(check (option string)) msg (Some expect_ldc) (resolved_ldc g v)

let check_ambiguous g v msg =
  match v with
  | Spec.Ambiguous _ -> ()
  | other ->
    Alcotest.failf "%s: expected ambiguous, got %a" msg
      (Spec.pp_verdict g) other

let test_fig1 () =
  (* Non-virtual inheritance: p->m ambiguous at E. *)
  let g = Hiergen.Figures.fig1 () in
  let id = G.find g in
  check_ambiguous g (Spec.lookup g (id "E") "m") "lookup(E,m)";
  check_resolved g (Spec.lookup g (id "C") "m") "A" "lookup(C,m)";
  check_resolved g (Spec.lookup g (id "D") "m") "D" "lookup(D,m)";
  check_resolved g (Spec.lookup g (id "A") "m") "A" "lookup(A,m)";
  Alcotest.(check bool) "undeclared" true
    (Spec.lookup g (id "E") "nosuch" = Spec.Undeclared)

let test_fig2 () =
  (* Virtual inheritance: p->m unambiguous at E, resolves to D::m. *)
  let g = Hiergen.Figures.fig2 () in
  let id = G.find g in
  check_resolved g (Spec.lookup g (id "E") "m") "D" "lookup(E,m)";
  check_resolved g (Spec.lookup g (id "C") "m") "A" "lookup(C,m)"

let test_fig1_vs_fig2_subobjects () =
  (* "an E object has two subobjects of class A in the first case, but
     only one subobject of class A in the second case" *)
  let count_a g =
    let e = G.find g "E" and a = G.find g "A" in
    Path.all_to g e
    |> List.filter (fun p -> Path.ldc p = a)
    |> List.map Path.key
    |> List.sort_uniq compare
    |> List.length
  in
  Alcotest.(check int) "fig1: two A subobjects" 2
    (count_a (Hiergen.Figures.fig1 ()));
  Alcotest.(check int) "fig2: one A subobject" 1
    (count_a (Hiergen.Figures.fig2 ()))

let test_fig3_defns_foo () =
  (* Defns(H, foo) = { {ABDFH, ABDGH}, {ACDFH, ACDGH}, {GH} } *)
  let g = Hiergen.Figures.fig3 () in
  let id = G.find g in
  let reps = Spec.defns g (id "H") "foo" in
  Alcotest.(check int) "three subobjects define foo" 3 (List.length reps);
  let ldcs =
    List.sort_uniq compare (List.map (fun p -> G.name g (Path.ldc p)) reps)
  in
  Alcotest.(check (list string)) "ldcs" [ "A"; "G" ] ldcs;
  (* All paths: 2 classes of A-paths with 2 paths each + GH. *)
  let all = Spec.defns_path g (id "H") "foo" in
  Alcotest.(check int) "five defining paths" 5 (List.length all)

let test_fig3_defns_bar () =
  (* Defns(H, bar) = { {EFH}, {DFH, DGH}, {GH} } *)
  let g = Hiergen.Figures.fig3 () in
  let id = G.find g in
  let reps = Spec.defns g (id "H") "bar" in
  Alcotest.(check int) "three subobjects define bar" 3 (List.length reps);
  let all = Spec.defns_path g (id "H") "bar" in
  Alcotest.(check int) "four defining paths" 4 (List.length all)

let test_fig3_lookups () =
  (* lookup(H, foo) = {GH}; lookup(H, bar) = ⊥;
     lookup(F, foo) and lookup(F, bar) ambiguous (Figures 4-5). *)
  let g = Hiergen.Figures.fig3 () in
  let id = G.find g in
  (match Spec.lookup g (id "H") "foo" with
  | Spec.Resolved p ->
    Alcotest.(check string) "resolves to G" "G" (G.name g (Path.ldc p));
    Alcotest.(check int) "via path GH" 1 (Path.edge_count p)
  | other ->
    Alcotest.failf "lookup(H,foo): expected resolved, got %a"
      (Spec.pp_verdict g) other);
  check_ambiguous g (Spec.lookup g (id "H") "bar") "lookup(H,bar)";
  check_ambiguous g (Spec.lookup g (id "F") "foo") "lookup(F,foo)";
  check_ambiguous g (Spec.lookup g (id "F") "bar") "lookup(F,bar)";
  check_ambiguous g (Spec.lookup g (id "D") "foo") "lookup(D,foo)";
  check_resolved g (Spec.lookup g (id "G") "foo") "G" "lookup(G,foo)";
  check_resolved g (Spec.lookup g (id "B") "foo") "A" "lookup(B,foo)"

let test_fig9 () =
  (* The g++ counterexample is NOT ambiguous: resolves to C::m. *)
  let g = Hiergen.Figures.fig9 () in
  let id = G.find g in
  check_resolved g (Spec.lookup g (id "E") "m") "C" "lookup(E,m)";
  check_resolved g (Spec.lookup g (id "D") "m") "C" "lookup(D,m)";
  check_resolved g (Spec.lookup g (id "C") "m") "C" "lookup(C,m)";
  check_resolved g (Spec.lookup g (id "A") "m") "A" "lookup(A,m)"

let static_example () =
  (* S { static m }; A : S; B : S; C : A, B — Definition 17's case: both
     maximal subobjects are S-subobjects and m is static. *)
  let b = G.create_builder () in
  ignore
    (G.add_class b "S" ~bases:[] ~members:[ G.member ~static:true "m" ]);
  ignore (G.add_class b "A" ~bases:[ ("S", G.Non_virtual, G.Public) ] ~members:[]);
  ignore (G.add_class b "B" ~bases:[ ("S", G.Non_virtual, G.Public) ] ~members:[]);
  ignore
    (G.add_class b "C"
       ~bases:
         [ ("A", G.Non_virtual, G.Public); ("B", G.Non_virtual, G.Public) ]
       ~members:[]);
  G.freeze b

let test_static_rule () =
  let g = static_example () in
  let c = G.find g "C" in
  check_ambiguous g (Spec.lookup g c "m") "plain lookup stays ambiguous";
  check_resolved g (Spec.lookup_static g c "m") "S" "static lookup resolves"

let test_static_rule_negative () =
  (* Same shape but a non-static member: the static rule must not fire. *)
  let b = G.create_builder () in
  ignore (G.add_class b "S" ~bases:[] ~members:[ G.member "m" ]);
  ignore (G.add_class b "A" ~bases:[ ("S", G.Non_virtual, G.Public) ] ~members:[]);
  ignore (G.add_class b "B" ~bases:[ ("S", G.Non_virtual, G.Public) ] ~members:[]);
  ignore
    (G.add_class b "C"
       ~bases:
         [ ("A", G.Non_virtual, G.Public); ("B", G.Non_virtual, G.Public) ]
       ~members:[]);
  let g = G.freeze b in
  check_ambiguous g
    (Spec.lookup_static g (G.find g "C") "m")
    "non-static stays ambiguous"

let test_static_rule_mixed_ldcs () =
  (* Maximal subobjects with different ldcs: static rule must not fire
     even if both members are static. *)
  let b = G.create_builder () in
  ignore (G.add_class b "S" ~bases:[] ~members:[ G.member ~static:true "m" ]);
  ignore (G.add_class b "T" ~bases:[] ~members:[ G.member ~static:true "m" ]);
  ignore
    (G.add_class b "C"
       ~bases:
         [ ("S", G.Non_virtual, G.Public); ("T", G.Non_virtual, G.Public) ]
       ~members:[]);
  let g = G.freeze b in
  check_ambiguous g
    (Spec.lookup_static g (G.find g "C") "m")
    "different ldcs stay ambiguous"

let test_subobject_counts () =
  let g1 = Hiergen.Figures.fig1 () in
  Alcotest.(check int) "fig1 E has 7 subobjects" 7
    (Spec.subobject_count g1 (G.find g1 "E"));
  let g2 = Hiergen.Figures.fig2 () in
  Alcotest.(check int) "fig2 E has 5 subobjects" 5
    (Spec.subobject_count g2 (G.find g2 "E"))

let suite =
  [ Alcotest.test_case "figure 1 verdicts" `Quick test_fig1;
    Alcotest.test_case "figure 2 verdicts" `Quick test_fig2;
    Alcotest.test_case "figures 1 vs 2: A subobject count" `Quick
      test_fig1_vs_fig2_subobjects;
    Alcotest.test_case "figure 3: Defns(H,foo)" `Quick test_fig3_defns_foo;
    Alcotest.test_case "figure 3: Defns(H,bar)" `Quick test_fig3_defns_bar;
    Alcotest.test_case "figure 3: lookups" `Quick test_fig3_lookups;
    Alcotest.test_case "figure 9: not ambiguous" `Quick test_fig9;
    Alcotest.test_case "static rule resolves" `Quick test_static_rule;
    Alcotest.test_case "static rule: non-static negative" `Quick
      test_static_rule_negative;
    Alcotest.test_case "static rule: mixed ldcs negative" `Quick
      test_static_rule_mixed_ldcs;
    Alcotest.test_case "subobject counts" `Quick test_subobject_counts ]
