  $ cat > fig9.cpp <<'CPP'
  > struct S  { int m; };
  > struct A : virtual S { int m; };
  > struct B : virtual S { int m; };
  > struct C : virtual A, virtual B { int m; };
  > struct D : C {};
  > struct E : virtual A, virtual B, D {};
  > int main() { E e; e.m = 10; }
  > CPP
  $ cxxlookup lookup fig9.cpp E m
  $ cxxlookup check fig9.cpp
  $ cxxlookup table fig9.cpp
  $ cxxlookup run fig9.cpp
  $ cxxlookup count fig9.cpp
  $ cxxlookup audit fig9.cpp
  $ cxxlookup export fig9.cpp > fig9.json
  $ cxxlookup import fig9.json
  $ cat > amb.cpp <<'CPP'
  > struct T { int pos; };
  > struct D1 : T {};
  > struct D2 : T {};
  > struct DD : D1, D2 {};
  > int main() { DD d; d.pos; }
  > CPP
  $ cxxlookup check amb.cpp
  $ echo "class {" > bad.cpp
  $ cxxlookup lookup bad.cpp X m
  $ cxxlookup slice fig9.cpp D::m
  $ cat > streams.cpp <<'CPP'
  > struct ios { int state; virtual void tie(); };
  > struct istream : virtual ios { int gcount; virtual void get(); };
  > struct ostream : virtual ios { virtual void put(); virtual void flush(); };
  > struct iostream : istream, ostream { virtual void flush(); };
  > CPP
  $ cxxlookup layout streams.cpp iostream
  $ cxxlookup vtable streams.cpp iostream
  $ cxxlookup stats streams.cpp | head -2
  $ cxxlookup dot streams.cpp | grep -c "style=dashed"
  $ cxxlookup import --cpp fig9.json | head -8
