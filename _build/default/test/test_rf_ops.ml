(* Tests for the Rossie-Friedman dyn/stat staging operations (paper
   Section 7.1). *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Sgraph = Subobject.Sgraph
module Rf_ops = Lookup_core.Rf_ops

let graph () =
  (* base { virtual f }  <=virtual=  mid_l, mid_r;  top : mid_l, mid_r
     { f } — classic virtual override. *)
  let b = G.create_builder () in
  ignore
    (G.add_class b "base" ~bases:[]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "f";
                  G.member "data" ]);
  ignore
    (G.add_class b "mid_l" ~bases:[ ("base", G.Virtual, G.Public) ]
       ~members:[]);
  ignore
    (G.add_class b "mid_r" ~bases:[ ("base", G.Virtual, G.Public) ]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "g" ]);
  ignore
    (G.add_class b "top"
       ~bases:
         [ ("mid_l", G.Non_virtual, G.Public);
           ("mid_r", G.Non_virtual, G.Public) ]
       ~members:[ G.member ~kind:G.Function ~virtual_:true "f" ]);
  G.freeze b

let setup () =
  let g = graph () in
  let eng = Engine.build ~witnesses:true (Chg.Closure.compute g) in
  let sg = Sgraph.build g (G.find g "top") in
  (g, eng, sg)

let sub_named g sg name =
  List.find
    (fun s -> G.name g (Sgraph.ldc sg s) = name)
    (Sgraph.subobjects sg)

let test_dyn_override () =
  let g, eng, sg = setup () in
  match Rf_ops.dyn eng sg "f" with
  | Rf_ops.Resolved s ->
    Alcotest.(check string) "dyn resolves to the override" "top"
      (G.name g (Sgraph.ldc sg s))
  | _ -> Alcotest.fail "dyn should resolve"

let test_stat_through_subobject () =
  let g, eng, sg = setup () in
  (* stat(f, base-subobject): the non-virtual resolution in base's own
     context is base::f, re-based into the complete object. *)
  let base_sub = sub_named g sg "base" in
  (match Rf_ops.stat eng sg base_sub "f" with
  | Rf_ops.Resolved s ->
    Alcotest.(check string) "stat stays at base" "base"
      (G.name g (Sgraph.ldc sg s));
    Alcotest.(check int) "same shared subobject" (Sgraph.id_of base_sub)
      (Sgraph.id_of s)
  | _ -> Alcotest.fail "stat should resolve");
  (* stat(g, mid_r-subobject) resolves within mid_r. *)
  let midr = sub_named g sg "mid_r" in
  match Rf_ops.stat eng sg midr "g" with
  | Rf_ops.Resolved s ->
    Alcotest.(check string) "mid_r::g" "mid_r" (G.name g (Sgraph.ldc sg s))
  | _ -> Alcotest.fail "stat should resolve g"

let test_stat_composition_rebases () =
  let g, eng, sg = setup () in
  (* stat(data, mid_l-subobject): lookup(mid_l, data) = base::data; the
     composition must land on the shared virtual base subobject of the
     COMPLETE object. *)
  let midl = sub_named g sg "mid_l" in
  match Rf_ops.stat eng sg midl "data" with
  | Rf_ops.Resolved s ->
    Alcotest.(check int) "lands on the shared base subobject"
      (Sgraph.id_of (sub_named g sg "base"))
      (Sgraph.id_of s)
  | _ -> Alcotest.fail "stat should resolve data"

let test_undeclared_and_ambiguous () =
  let g, eng, sg = setup () in
  Alcotest.(check bool) "undeclared" true
    (Rf_ops.dyn eng sg "zzz" = Rf_ops.Undeclared);
  (* An ambiguous case: two unrelated bases declaring h. *)
  let b = G.create_builder () in
  ignore (G.add_class b "P" ~bases:[] ~members:[ G.member "h" ]);
  ignore (G.add_class b "Q" ~bases:[] ~members:[ G.member "h" ]);
  ignore
    (G.add_class b "PQ"
       ~bases:[ ("P", G.Non_virtual, G.Public); ("Q", G.Non_virtual, G.Public) ]
       ~members:[]);
  let g2 = G.freeze b in
  let eng2 = Engine.build ~witnesses:true (Chg.Closure.compute g2) in
  let sg2 = Sgraph.build g2 (G.find g2 "PQ") in
  Alcotest.(check bool) "ambiguous" true
    (Rf_ops.dyn eng2 sg2 "h" = Rf_ops.Ambiguous);
  ignore g

let test_requires_witnesses () =
  let g = graph () in
  let eng = Engine.build (Chg.Closure.compute g) in
  let sg = Sgraph.build g (G.find g "top") in
  Alcotest.check_raises "needs witnesses"
    (Invalid_argument "Rf_ops: engine must be built with ~witnesses:true")
    (fun () -> ignore (Rf_ops.dyn eng sg "f"))

let suite =
  [ Alcotest.test_case "dyn resolves to the final overrider" `Quick
      test_dyn_override;
    Alcotest.test_case "stat resolves in the subobject's context" `Quick
      test_stat_through_subobject;
    Alcotest.test_case "stat composition re-bases" `Quick
      test_stat_composition_rebases;
    Alcotest.test_case "undeclared and ambiguous" `Quick
      test_undeclared_and_ambiguous;
    Alcotest.test_case "requires witness engine" `Quick
      test_requires_witnesses ]
