(* Property-based tests (QCheck): the efficient algorithm is compared
   against the executable specification on random hierarchies, and the
   formalism's algebraic laws are checked on random paths. *)

module G = Chg.Graph
module Path = Subobject.Path
module Spec = Subobject.Spec
module Sgraph = Subobject.Sgraph
module Engine = Lookup_core.Engine
module Memo = Lookup_core.Memo

let members = [ "m"; "n"; "p" ]

(* Random hierarchies come from the seeded family generator: QCheck draws
   only the parameters, so shrinking stays meaningful and every failure
   is reproducible from its parameters. *)
let instance_gen =
  QCheck.Gen.(
    map
      (fun (n, max_bases, vp, dp, seed) ->
        Hiergen.Families.random_dag ~n ~max_bases
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:(float_of_int dp /. 10.)
          ~members ~seed)
      (tup5 (int_range 1 14) (int_range 1 3) (int_range 0 10)
         (int_range 1 6) (int_range 0 10000)))

let instance_arb =
  QCheck.make instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

let static_instance_gen =
  QCheck.Gen.(
    map
      (fun (n, vp, sp, seed) ->
        Hiergen.Families.random_static_dag ~n ~max_bases:3
          ~virtual_prob:(float_of_int vp /. 10.)
          ~declare_prob:0.4
          ~static_prob:(float_of_int sp /. 10.)
          ~members ~seed)
      (tup4 (int_range 1 12) (int_range 0 10) (int_range 0 10)
         (int_range 0 10000)))

let static_instance_arb =
  QCheck.make static_instance_gen ~print:(fun i ->
      i.Hiergen.Families.description ^ "\n"
      ^ Format.asprintf "%a" G.pp i.Hiergen.Families.graph)

let count = 300

let prop_engine_matches_spec =
  QCheck.Test.make ~count ~name:"engine = spec oracle (no statics)"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let eng = Engine.build ~static_rule:false (Chg.Closure.compute g) in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              Engine.agrees_with_spec eng ~spec_verdict:(Spec.lookup g c m) c
                m)
            members)
        (G.classes g))

let prop_engine_matches_spec_static =
  QCheck.Test.make ~count ~name:"engine = spec oracle (static members)"
    static_instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let eng = Engine.build ~static_rule:true (Chg.Closure.compute g) in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              Engine.agrees_with_spec eng
                ~spec_verdict:(Spec.lookup_static g c m) c m)
            members)
        (G.classes g))

let prop_memo_matches_eager =
  QCheck.Test.make ~count ~name:"lazy memo = eager table" instance_arb
    (fun { Hiergen.Families.graph = g; _ } ->
      let cl = Chg.Closure.compute g in
      let eager = Engine.build cl in
      let lazy_t = Memo.create cl in
      List.for_all
        (fun c ->
          List.for_all
            (fun m -> Engine.lookup eager c m = Memo.lookup lazy_t c m)
            members)
        (G.classes g))

let prop_naive_matches_spec =
  QCheck.Test.make ~count:120 ~name:"naive propagation = spec" instance_arb
    (fun { Hiergen.Families.graph = g; _ } ->
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              let expected = Spec.lookup g c m in
              Spec.verdict_equal g expected (Baselines.Naive.lookup g c m)
              && Spec.verdict_equal g expected
                   (Baselines.Naive.lookup_killing g c m))
            members)
        (G.classes g))

let prop_rf_and_fixed_gxx_match_spec =
  QCheck.Test.make ~count:120 ~name:"RF lookup & fixed g++ = spec"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      List.for_all
        (fun c ->
          let sg = Sgraph.build g c in
          List.for_all
            (fun m ->
              let spec = Spec.lookup g c m in
              let rf =
                Baselines.Rf_lookup.to_spec sg
                  (Baselines.Rf_lookup.lookup_in sg m)
              in
              Spec.verdict_equal g spec rf
              &&
              match
                (spec, Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Fixed sg m)
              with
              | Spec.Undeclared, Baselines.Gxx.Undeclared -> true
              | Spec.Resolved p, Baselines.Gxx.Resolved s ->
                Path.ldc p = Sgraph.ldc sg s
              | Spec.Ambiguous _, Baselines.Gxx.Ambiguous -> true
              | _ -> false)
            members)
        (G.classes g))

let prop_gxx_buggy_never_wrong_resolution =
  (* The g++ bug is one-sided: it may report false ambiguity, but when it
     does resolve, it resolves to the right declaring class. *)
  QCheck.Test.make ~count:120 ~name:"buggy g++ errs only towards ambiguity"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      List.for_all
        (fun c ->
          let sg = Sgraph.build g c in
          List.for_all
            (fun m ->
              match Baselines.Gxx.lookup_in ~mode:Baselines.Gxx.Buggy sg m with
              | Baselines.Gxx.Resolved s -> (
                match Spec.lookup g c m with
                | Spec.Resolved p -> Path.ldc p = Sgraph.ldc sg s
                | _ -> false)
              | Baselines.Gxx.Undeclared -> Spec.lookup g c m = Spec.Undeclared
              | Baselines.Gxx.Ambiguous -> true)
            members)
        (G.classes g))

let prop_topo_agrees_on_unambiguous =
  QCheck.Test.make ~count ~name:"topological shortcut on unambiguous lookups"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let t = Baselines.Topo_lookup.prepare g in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              match Spec.lookup g c m with
              | Spec.Resolved p ->
                Baselines.Topo_lookup.resolve t c m = Some (Path.ldc p)
              | Spec.Undeclared -> Baselines.Topo_lookup.resolve t c m = None
              | Spec.Ambiguous _ -> true)
            members)
        (G.classes g))

let prop_dominance_partial_order =
  (* Lemma 2: dominance is a partial order on the ≈-classes. *)
  QCheck.Test.make ~count:80 ~name:"dominance is a partial order"
    instance_arb (fun { Hiergen.Families.graph = g; probe; _ } ->
      let paths = Path.all_to g probe in
      let dom = Path.dominates g in
      List.for_all (fun a -> dom a a) paths
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 (* antisymmetry up to ≈ *)
                 (not (dom a b && dom b a)) || Path.equiv a b)
               paths)
           paths
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 List.for_all
                   (fun c -> (not (dom a b && dom b c)) || dom a c)
                   paths)
               paths)
           paths)

let prop_equiv_is_equivalence =
  QCheck.Test.make ~count:80 ~name:"≈ is an equivalence relation"
    instance_arb (fun { Hiergen.Families.graph = g; probe; _ } ->
      let paths = Path.all_to g probe in
      List.for_all (fun a -> Path.equiv a a) paths
      && List.for_all
           (fun a ->
             List.for_all
               (fun b -> Path.equiv a b = Path.equiv b a)
               paths)
           paths)

let prop_closure_dominance_matches_spec =
  QCheck.Test.make ~count:80 ~name:"closure-based dominance = enumeration"
    instance_arb (fun { Hiergen.Families.graph = g; probe; _ } ->
      let cl = Chg.Closure.compute g in
      let paths = Path.all_to g probe in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Path.dominates g a b = Path.dominates_via_closure cl a b)
            paths)
        paths)

let prop_theorem1_counts =
  QCheck.Test.make ~count:80 ~name:"theorem 1: subobject counts"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let cl = Chg.Closure.compute g in
      List.for_all
        (fun c ->
          let materialized = Sgraph.count (Sgraph.build g c) in
          Spec.subobject_count g c = materialized
          && Subobject.Count.subobjects cl c = materialized)
        (G.classes g))

let prop_lemma3_extension_distributes =
  (* Lemma 3: γ.(X->Y) dominates δ.(X->Y) iff γ dominates δ. *)
  QCheck.Test.make ~count:80 ~name:"lemma 3: extension preserves dominance"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      List.for_all
        (fun y ->
          List.for_all
            (fun (b : G.base) ->
              let x = b.b_class in
              let paths = Path.all_to g x in
              List.for_all
                (fun gamma ->
                  List.for_all
                    (fun delta ->
                      let ext p = Path.extend p b.b_kind y in
                      Path.dominates g gamma delta
                      = Path.dominates g (ext gamma) (ext delta))
                    paths)
                paths)
            (G.bases g y))
        (G.classes g))

let prop_lazy_cache_bounded =
  QCheck.Test.make ~count:100 ~name:"memo touches only reachable bases"
    instance_arb (fun { Hiergen.Families.graph = g; probe; _ } ->
      let cl = Chg.Closure.compute g in
      let t = Memo.create cl in
      ignore (Memo.lookup t probe "m");
      let reachable =
        1 + Chg.Bitset.cardinal (Chg.Closure.bases_of cl probe)
      in
      Memo.cached_entries t <= reachable)

let prop_slicing_preserves_lookups =
  QCheck.Test.make ~count:150 ~name:"slicing preserves seed lookups"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let seeds =
        List.concat_map
          (fun c ->
            List.map
              (fun m -> { Slicing.sd_class = c; sd_member = m })
              members)
          (G.classes g)
      in
      let s = Slicing.slice g seeds in
      List.for_all
        (fun (seed : Slicing.seed) ->
          let before = Spec.lookup g seed.sd_class seed.sd_member in
          match (before, Slicing.to_sliced s seed.sd_class) with
          | Spec.Undeclared, None -> true  (* nothing relevant kept *)
          | _, None -> false
          | _, Some c' ->
            let after = Spec.lookup s.sliced c' seed.sd_member in
            let fixed_names gg p =
              List.map (G.name gg) (Path.nodes (Path.fixed p))
            in
            (match (before, after) with
            | Spec.Undeclared, Spec.Undeclared -> true
            | Spec.Resolved p, Spec.Resolved q ->
              fixed_names g p = fixed_names s.sliced q
            | Spec.Ambiguous ps, Spec.Ambiguous qs ->
              List.sort compare (List.map (fixed_names g) ps)
              = List.sort compare (List.map (fixed_names s.sliced) qs)
            | _ -> false))
        seeds)

let prop_vtable_dispatch_matches_spec =
  (* dyn staging: the vtable's overrider for every slot equals the
     specification lookup at the complete object's class. *)
  QCheck.Test.make ~count:100 ~name:"vtable dispatch = spec lookup"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let engine = Engine.build (Chg.Closure.compute g) in
      List.for_all
        (fun c ->
          let vt = Layout.Vtable.build engine c in
          List.for_all
            (fun (e : Layout.Vtable.entry) ->
              match Spec.lookup g c e.e_slot with
              | Spec.Resolved p -> e.e_overrider = Some (Path.ldc p)
              | Spec.Ambiguous _ -> e.e_overrider = None
              | Spec.Undeclared -> false (* a slot always has a decl *))
            vt.Layout.Vtable.vt_entries)
        (G.classes g))

(* Random access specifiers for the access-rights property: rebuild the
   instance graph with randomized member and edge access levels. *)
let with_random_access seed g =
  let st = Random.State.make [| seed; 77 |] in
  let pick () =
    match Random.State.int st 3 with
    | 0 -> G.Public
    | 1 -> G.Protected
    | _ -> G.Private
  in
  let b = G.create_builder () in
  List.iter
    (fun c ->
      ignore
        (G.add_class b (G.name g c)
           ~bases:
             (List.map
                (fun (e : G.base) -> (G.name g e.b_class, e.b_kind, pick ()))
                (G.bases g c))
           ~members:
             (List.map
                (fun (m : G.member) -> { m with G.m_access = pick () })
                (G.members g c))))
    (G.classes g);
  G.freeze b

let prop_access_dp_matches_enumeration =
  (* Access rights: the O(|N|+|E|) dynamic program over virtual-first
     continuations equals the enumerate-all-equivalent-paths spec, for
     every defining path of every lookup. *)
  QCheck.Test.make ~count:150 ~name:"access DP = path enumeration"
    instance_arb (fun { Hiergen.Families.graph = g0; _ } ->
      let g = with_random_access 11 g0 in
      let cl = Chg.Closure.compute g in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              List.for_all
                (fun p ->
                  match Chg.Graph.find_member g (Path.ldc p) m with
                  | None -> true
                  | Some mem ->
                    Frontend.Access.best_effective cl p ~member:mem
                    = Frontend.Access.best_effective_spec g p ~member:mem)
                (Spec.defns_path g c m))
            members)
        (G.classes g))

let prop_witness_path_bounds_best =
  (* the single witness path is never more permissive than the best *)
  QCheck.Test.make ~count:100 ~name:"witness access <= best access"
    instance_arb (fun { Hiergen.Families.graph = g0; _ } ->
      let g = with_random_access 23 g0 in
      let cl = Chg.Closure.compute g in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              List.for_all
                (fun p ->
                  match Chg.Graph.find_member g (Path.ldc p) m with
                  | None -> true
                  | Some mem ->
                    let best = Frontend.Access.best_effective cl p ~member:mem in
                    Frontend.Access.best
                      (Frontend.Access.along_path g p ~member:mem)
                      best
                    = best)
                (Spec.defns_path g c m))
            members)
        (G.classes g))

let prop_witness_is_maximal =
  (* the witness path of a red verdict denotes a maximal defining
     subobject (a most-dominant one, up to the static-group rule) *)
  QCheck.Test.make ~count:150 ~name:"witness path is a maximal definition"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let eng =
        Engine.build ~static_rule:false ~witnesses:true
          (Chg.Closure.compute g)
      in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              match (Engine.lookup eng c m, Engine.witness eng c m) with
              | Some (Engine.Red _), Some w ->
                Path.mdc w = c
                && Chg.Graph.declares g (Path.ldc w) m
                && Path.in_graph g w
                && List.exists (Path.equiv w)
                     (Spec.maximal g (Spec.defns g c m))
              | Some (Engine.Red _), None -> false
              | (Some (Engine.Blue _) | None), w -> w = None)
            members)
        (G.classes g))

let prop_member_column_matches_table =
  (* build_member m is exactly the m-column of the full table *)
  QCheck.Test.make ~count:150 ~name:"single-member column = table column"
    instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let cl = Chg.Closure.compute g in
      let full = Engine.build cl in
      List.for_all
        (fun m ->
          let col = Engine.build_member cl m in
          List.for_all
            (fun c -> Engine.lookup col c m = Engine.lookup full c m)
            (G.classes g))
        members)

let json_gen =
  (* random JSON values for the serializer fuzz property *)
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self n ->
            if n = 0 then
              oneof
                [ return Chg.Json.Null;
                  map (fun b -> Chg.Json.Bool b) bool;
                  map (fun i -> Chg.Json.Int i) int;
                  map (fun s -> Chg.Json.String s) (string_size (0 -- 10)) ]
            else
              frequency
                [ (2, self 0);
                  ( 1,
                    map
                      (fun l -> Chg.Json.List l)
                      (list_size (0 -- 4) (self (n / 2))) );
                  ( 1,
                    map
                      (fun l -> Chg.Json.Obj l)
                      (list_size (0 -- 4)
                         (pair (string_size (0 -- 6)) (self (n / 2)))) ) ])
          (min size 6)))

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json print/parse roundtrip"
    (QCheck.make json_gen ~print:(fun j -> Chg.Json.to_string j))
    (fun j ->
      Chg.Json.of_string (Chg.Json.to_string j) = Ok j
      && Chg.Json.of_string (Chg.Json.to_string ~pretty:true j) = Ok j)

let prop_graph_serialization_roundtrip =
  QCheck.Test.make ~count:150 ~name:"graph serialization roundtrip"
    static_instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      match Chg.Serialize.of_string (Chg.Serialize.to_string g) with
      | Error _ -> false
      | Ok g' ->
        G.num_classes g = G.num_classes g'
        && List.for_all
             (fun c ->
               G.name g c = G.name g' c
               && G.bases g c = G.bases g' c
               && G.members g c = G.members g' c)
             (G.classes g))

let prop_emit_parse_roundtrip =
  (* graph -> C++ source -> front end -> graph is the identity (compared
     through the canonical serialization) *)
  QCheck.Test.make ~count:150 ~name:"emit/parse roundtrip"
    static_instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let r = Frontend.Sema.analyze_source (Frontend.Emit.to_source g) in
      Frontend.Sema.ok r
      && Chg.Serialize.to_string g = Chg.Serialize.to_string r.graph)

let prop_incremental_matches_batch =
  QCheck.Test.make ~count:150 ~name:"incremental table = batch engine"
    static_instance_arb (fun { Hiergen.Families.graph = g; _ } ->
      let inc = Lookup_core.Incremental.create () in
      G.iter_classes g (fun c ->
          ignore
            (Lookup_core.Incremental.add_class inc (G.name g c)
               ~bases:
                 (List.map
                    (fun (b : G.base) ->
                      (G.name g b.b_class, b.b_kind, b.b_access))
                    (G.bases g c))
               ~members:(G.members g c)));
      let eng = Engine.build (Chg.Closure.compute g) in
      List.for_all
        (fun c ->
          List.for_all
            (fun m ->
              Engine.lookup eng c m = Lookup_core.Incremental.lookup inc c m)
            members)
        (G.classes g))

let prop_layout_size_accounting =
  (* Exact size accounting: every subobject contributes its own vptr (if
     its class is polymorphic) plus a word per non-static data member of
     its class; the object is the disjoint union of these contributions
     (minimum one word for empty objects).  Also: all offsets in range. *)
  QCheck.Test.make ~count:100 ~name:"layout size accounting" instance_arb
    (fun { Hiergen.Families.graph = g; probe; _ } ->
      let t = Layout.Object_layout.of_class g probe in
      let word = Layout.Object_layout.word in
      let contribution sub =
        let l = Sgraph.ldc t.sgraph sub in
        let data =
          List.length
            (List.filter
               (fun (m : G.member) -> m.m_kind = G.Data && not m.m_static)
               (G.members g l))
        in
        (if Layout.Object_layout.has_vptr g l then word else 0)
        + (word * data)
      in
      let expected =
        max word
          (List.fold_left
             (fun acc sl ->
               acc + contribution sl.Layout.Object_layout.sl_subobject)
             0 t.slots)
      in
      t.size = expected
      && List.for_all
           (fun sl ->
             sl.Layout.Object_layout.sl_offset >= 0
             && sl.Layout.Object_layout.sl_offset <= t.size)
           t.slots)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engine_matches_spec;
      prop_engine_matches_spec_static;
      prop_memo_matches_eager;
      prop_naive_matches_spec;
      prop_rf_and_fixed_gxx_match_spec;
      prop_gxx_buggy_never_wrong_resolution;
      prop_topo_agrees_on_unambiguous;
      prop_dominance_partial_order;
      prop_equiv_is_equivalence;
      prop_closure_dominance_matches_spec;
      prop_theorem1_counts;
      prop_lemma3_extension_distributes;
      prop_lazy_cache_bounded;
      prop_slicing_preserves_lookups;
      prop_vtable_dispatch_matches_spec;
      prop_access_dp_matches_enumeration;
      prop_witness_path_bounds_best;
      prop_incremental_matches_batch;
      prop_emit_parse_roundtrip;
      prop_member_column_matches_table;
      prop_witness_is_maximal;
      prop_json_roundtrip;
      prop_graph_serialization_roundtrip;
      prop_layout_size_accounting ]
