(* Tests for class hierarchy slicing: lookup preservation (the Tip et
   al. guarantee) plus reduction statistics. *)

module G = Chg.Graph
module Spec = Subobject.Spec
module Path = Subobject.Path

(* Lookup verdicts must be preserved, with classes renamed through the
   slice mapping. *)
let check_preserved g (s : Slicing.t) (seed : Slicing.seed) =
  let before = Spec.lookup g seed.sd_class seed.sd_member in
  match (before, Slicing.to_sliced s seed.sd_class) with
  | Spec.Undeclared, None ->
    (* nothing was relevant to an undeclared lookup: the class itself may
       be dropped *)
    ()
  | _, None -> Alcotest.fail "seed class dropped from its own slice"
  | before, Some c' ->
  let after = Spec.lookup s.sliced c' seed.sd_member in
  (match (before, after) with
  | Spec.Undeclared, Spec.Undeclared -> ()
  | Spec.Resolved p, Spec.Resolved q ->
    Alcotest.(check string) "same resolving class"
      (G.name g (Path.ldc p))
      (G.name s.sliced (Path.ldc q));
    (* the witness subobject is the same, as named class lists *)
    let names gg pth =
      List.map (G.name gg) (Path.nodes (Path.fixed pth))
    in
    Alcotest.(check (list string)) "same subobject" (names g p)
      (names s.sliced q)
  | Spec.Ambiguous ps, Spec.Ambiguous qs ->
    let keys gg l =
      List.sort compare
        (List.map
           (fun p -> List.map (G.name gg) (Path.nodes (Path.fixed p)))
           l)
    in
    Alcotest.(check bool) "same maximal subobjects" true
      (keys g ps = keys s.sliced qs)
  | _ -> Alcotest.fail "verdict kind changed under slicing")

let all_seeds g =
  List.concat_map
    (fun c ->
      List.map (fun m -> { Slicing.sd_class = c; sd_member = m })
        (G.member_names g))
    (G.classes g)

let test_figures_preserved () =
  List.iter
    (fun mk ->
      let g = mk () in
      List.iter
        (fun seed ->
          let s = Slicing.slice g [ seed ] in
          check_preserved g s seed)
        (all_seeds g))
    [ Hiergen.Figures.fig1; Hiergen.Figures.fig2; Hiergen.Figures.fig3;
      Hiergen.Figures.fig9 ]

let test_multi_seed_preserved () =
  let g = Hiergen.Figures.fig3 () in
  let seeds = all_seeds g in
  let s = Slicing.slice g seeds in
  List.iter (check_preserved g s) seeds

let test_reduction () =
  (* Slicing fig3 for lookup(B, foo) needs only A and B. *)
  let g = Hiergen.Figures.fig3 () in
  let s =
    Slicing.slice g [ { Slicing.sd_class = G.find g "B"; sd_member = "foo" } ]
  in
  Alcotest.(check int) "two classes kept" 2 (G.num_classes s.sliced);
  Alcotest.(check int) "dropped six" 6 s.dropped_classes;
  Alcotest.(check bool) "A kept" true
    (Slicing.to_sliced s (G.find g "A") <> None);
  Alcotest.(check bool) "H dropped" true
    (Slicing.to_sliced s (G.find g "H") = None)

let test_irrelevant_members_dropped () =
  (* bar declarations are irrelevant to a foo slice. *)
  let g = Hiergen.Figures.fig3 () in
  let s =
    Slicing.slice g [ { Slicing.sd_class = G.find g "H"; sd_member = "foo" } ]
  in
  G.iter_classes s.sliced (fun c ->
      List.iter
        (fun (m : G.member) ->
          Alcotest.(check string)
            (Printf.sprintf "member %s in %s" m.m_name (G.name s.sliced c))
            "foo" m.m_name)
        (G.members s.sliced c))

let test_mapping_roundtrip () =
  let g = Hiergen.Figures.fig9 () in
  let s =
    Slicing.slice g [ { Slicing.sd_class = G.find g "E"; sd_member = "m" } ]
  in
  List.iter
    (fun (orig, sliced) ->
      Alcotest.(check int) "roundtrip" orig (Slicing.of_sliced s sliced);
      Alcotest.(check string) "names preserved" (G.name g orig)
        (G.name s.sliced sliced))
    s.kept

let test_empty_seed_list () =
  let g = Hiergen.Figures.fig1 () in
  let s = Slicing.slice g [] in
  Alcotest.(check int) "nothing kept" 0 (G.num_classes s.sliced)

let suite =
  [ Alcotest.test_case "figures: every single-seed slice preserved" `Quick
      test_figures_preserved;
    Alcotest.test_case "multi-seed slice preserved" `Quick
      test_multi_seed_preserved;
    Alcotest.test_case "reduction statistics" `Quick test_reduction;
    Alcotest.test_case "irrelevant members dropped" `Quick
      test_irrelevant_members_dropped;
    Alcotest.test_case "id mapping roundtrip" `Quick test_mapping_roundtrip;
    Alcotest.test_case "empty seed list" `Quick test_empty_seed_list ]
