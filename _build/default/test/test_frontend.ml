(* Tests for the C++-subset front end: lexer, parser, semantic analysis,
   diagnostics and access control. *)

module G = Chg.Graph

let analyze = Frontend.Sema.analyze_source

let errors r =
  List.filter_map
    (fun (d : Frontend.Diagnostic.t) ->
      if Frontend.Diagnostic.is_error d then Some d.message else None)
    r.Frontend.Sema.diagnostics

let has_error_containing r needle =
  List.exists
    (fun msg ->
      let rec contains i =
        i + String.length needle <= String.length msg
        && (String.sub msg i (String.length needle) = needle || contains (i + 1))
      in
      contains 0)
    (errors r)

let check_error r needle =
  if not (has_error_containing r needle) then
    Alcotest.failf "expected an error containing %S, got: %s" needle
      (String.concat " | " (errors r))

(* -- lexer ------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = List.map fst (Frontend.Lexer.tokenize "class X :: -> { } ; 42") in
  Alcotest.(check bool) "token stream" true
    (toks
    = [ Frontend.Token.KW_class; Frontend.Token.IDENT "X";
        Frontend.Token.COLONCOLON; Frontend.Token.ARROW;
        Frontend.Token.LBRACE; Frontend.Token.RBRACE; Frontend.Token.SEMI;
        Frontend.Token.INT_LIT 42; Frontend.Token.EOF ])

let test_lexer_comments () =
  let toks =
    List.map fst
      (Frontend.Lexer.tokenize
         "// line comment\nint /* block\n comment */ x")
  in
  Alcotest.(check bool) "comments skipped" true
    (toks = [ Frontend.Token.KW_int; Frontend.Token.IDENT "x";
              Frontend.Token.EOF ])

let test_lexer_error () =
  match Frontend.Lexer.tokenize "int @ x" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Frontend.Lexer.Error (msg, loc) ->
    Alcotest.(check bool) "message" true
      (String.length msg > 0 && loc.Frontend.Loc.line = 1)

(* -- parser ------------------------------------------------------------ *)

let test_parse_fig9_verbatim () =
  (* The paper's Figure 9 program, labels included. *)
  let src =
    "struct S { int m; };\n\
     struct A : virtual S { int m; };\n\
     struct B : virtual S { int m; };\n\
     struct C : virtual A, virtual B { int m; };\n\
     struct D : C {};\n\
     struct E : virtual A, virtual B, D {};\n\
     int main() { s1: E e; s2: e.m = 10; }\n"
  in
  let p = Frontend.Parser.parse_exn src in
  Alcotest.(check int) "six classes" 6 (List.length p.classes);
  Alcotest.(check int) "one function" 1 (List.length p.funcs);
  let e = List.nth p.classes 5 in
  Alcotest.(check string) "E" "E" e.c_name;
  Alcotest.(check (list string)) "E bases" [ "A"; "B"; "D" ]
    (List.map (fun (b : Frontend.Ast.base_spec) -> b.b_name) e.c_bases);
  Alcotest.(check (list bool)) "virtual flags" [ true; true; false ]
    (List.map (fun (b : Frontend.Ast.base_spec) -> b.b_virtual) e.c_bases)

let test_parse_member_forms () =
  let src =
    "class X {\n\
     public:\n\
     \  int data;\n\
     \  static int counter;\n\
     \  virtual void draw();\n\
     \  virtual void pure() = 0;\n\
     \  void inline_body() {}\n\
     \  X* next;\n\
     private:\n\
     \  int hidden;\n\
     };\n"
  in
  let p = Frontend.Parser.parse_exn src in
  let x = List.hd p.classes in
  let find n =
    List.find
      (fun (m : Frontend.Ast.member_decl) -> m.md_name = n)
      x.c_members
  in
  Alcotest.(check int) "member count" 7 (List.length x.c_members);
  Alcotest.(check bool) "static" true (find "counter").md_static;
  Alcotest.(check bool) "virtual" true (find "draw").md_virtual;
  Alcotest.(check bool) "function kind" true
    ((find "pure").md_kind = G.Function);
  Alcotest.(check bool) "pointer member" true
    (find "next").md_type.Frontend.Ast.t_pointer;
  Alcotest.(check bool) "private section" true
    ((find "hidden").md_access = G.Private);
  Alcotest.(check bool) "public section" true
    ((find "data").md_access = G.Public)

let test_parse_error_position () =
  match Frontend.Parser.parse "class {" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error d ->
    Alcotest.(check bool) "error severity" true (Frontend.Diagnostic.is_error d);
    Alcotest.(check int) "line 1" 1 d.loc.Frontend.Loc.line

let test_parse_chained_access () =
  let p = Frontend.Parser.parse_exn "int main() { a.b->c.d; }" in
  match (List.hd p.funcs).f_body with
  | [ Frontend.Ast.Expr e ] ->
    let rec depth = function
      | Frontend.Ast.Select (inner, _) -> 1 + depth inner
      | Frontend.Ast.Call (inner, _) -> depth inner
      | Frontend.Ast.Var _ -> 0
      | Frontend.Ast.Qualified _ -> 0
    in
    Alcotest.(check int) "three selectors" 3 (depth e)
  | _ -> Alcotest.fail "expected a single expression statement"

(* -- sema: resolutions ------------------------------------------------- *)

let test_fig9_end_to_end () =
  let src =
    "struct S { int m; };\n\
     struct A : virtual S { int m; };\n\
     struct B : virtual S { int m; };\n\
     struct C : virtual A, virtual B { int m; };\n\
     struct D : C {};\n\
     struct E : virtual A, virtual B, D {};\n\
     int main() { E e; e.m = 10; }\n"
  in
  let r = analyze src in
  Alcotest.(check bool) "compiles cleanly" true (Frontend.Sema.ok r);
  match r.resolutions with
  | [ res ] ->
    Alcotest.(check string) "context" "E" (G.name r.graph res.res_context);
    Alcotest.(check string) "target" "C" (G.name r.graph res.res_target)
  | rs -> Alcotest.failf "expected 1 resolution, got %d" (List.length rs)

let test_ambiguous_access () =
  let r =
    analyze
      "struct T { int pos; };\n\
       struct D1 : T {};\n\
       struct D2 : T {};\n\
       struct DD : D1, D2 {};\n\
       int main() { DD d; d.pos; }\n"
  in
  check_error r "ambiguous"

let test_unknown_member () =
  let r = analyze "struct X { int a; }; int main() { X x; x.b; }" in
  check_error r "no member named 'b'"

let test_unknown_variable () =
  let r = analyze "int main() { y.m; }" in
  check_error r "unknown variable 'y'"

let test_unknown_class_var () =
  let r = analyze "int main() { Nope n; }" in
  check_error r "unknown class type 'Nope'"

let test_arrow_dot_confusion () =
  let r = analyze "struct X { int a; }; int main() { X x; x->a; }" in
  check_error r "'->' used on a non-pointer";
  let r2 = analyze "struct X { int a; }; int main() { X* p; p.a; }" in
  check_error r2 "'.' used on a pointer"

let test_qualified_access () =
  let r =
    analyze
      "struct B { static int n; };\n\
       struct D : B {};\n\
       int main() { D::n; }\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r);
  match r.resolutions with
  | [ res ] -> Alcotest.(check string) "target" "B" (G.name r.graph res.res_target)
  | _ -> Alcotest.fail "expected one resolution"

let test_chain_through_member_types () =
  (* resolving x.a.b requires the declared type of member a *)
  let r =
    analyze
      "struct Leaf { int v; };\n\
       struct Node { Leaf leaf; Node* next; };\n\
       int main() { Node n; n.leaf.v; n.next->leaf; }\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r);
  Alcotest.(check int) "four resolutions" 4 (List.length r.resolutions)

let test_static_member_through_diamond () =
  (* Definition 17 end to end: static member reached through two paths *)
  let r =
    analyze
      "struct S { static int k; };\n\
       struct A : S {};\n\
       struct B : S {};\n\
       struct C : A, B {};\n\
       int main() { C c; c.k; }\n"
  in
  Alcotest.(check bool) "static resolves" true (Frontend.Sema.ok r)

let test_duplicate_base_diagnostic () =
  let r = analyze "struct A {}; struct B : A, A {};" in
  check_error r "lists direct base A twice"

let test_virtual_data_member () =
  let r = analyze "struct X { virtual int bad; };" in
  check_error r "cannot be virtual"

(* -- sema: access control ---------------------------------------------- *)

let test_private_member () =
  let r = analyze "class X { int secret; }; int main() { X x; x.secret; }" in
  check_error r "private"

let test_protected_member () =
  let r =
    analyze
      "class X { protected: int p; }; int main() { X x; x.p; }"
  in
  check_error r "protected"

let test_private_inheritance_blocks () =
  (* public member, but inherited privately: inaccessible below *)
  let r =
    analyze
      "struct B { int v; };\n\
       class M : private B {};\n\
       struct D : M {};\n\
       int main() { D d; d.v; }\n"
  in
  check_error r "not accessible"

let test_class_default_private_base () =
  (* 'class D : B' defaults to private inheritance *)
  let r =
    analyze
      "struct B { int v; };\n\
       class D : B {};\n\
       struct E : D {};\n\
       int main() { E e; e.v; }\n"
  in
  check_error r "not accessible"

let test_public_inheritance_ok () =
  let r =
    analyze
      "struct B { int v; };\n\
       struct D : B {};\n\
       int main() { D d; d.v; }\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r)

(* -- enums, typedefs, member-function bodies (paper Section 6) --------- *)

let test_enum_members () =
  let r =
    analyze
      "struct Color { enum Kind { red, green, blue }; };\n\
       int main() { Color::red; Color::Kind; }\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r);
  let kinds =
    List.map
      (fun (m : G.member) -> (m.m_name, m.m_kind))
      (G.members r.graph (G.find r.graph "Color"))
  in
  Alcotest.(check bool) "enum type + enumerators" true
    (kinds
    = [ ("Kind", G.Type); ("red", G.Enumerator); ("green", G.Enumerator);
        ("blue", G.Enumerator) ])

let test_enumerators_are_static_like () =
  (* Section 6: enumeration constants behave like static members for the
     Definition 17 ambiguity rule — same enumerator through two paths is
     fine. *)
  let r =
    analyze
      "struct S { enum { flag }; };\n\
       struct A : S {};\n\
       struct B : S {};\n\
       struct C : A, B {};\n\
       int main() { C::flag; }\n"
  in
  Alcotest.(check bool) "enumerator resolves through a diamond" true
    (Frontend.Sema.ok r)

let test_typedef_member () =
  let r =
    analyze
      "struct T1 { typedef int word; };\n\
       struct T2 { typedef int word; };\n\
       struct J : T1, T2 {};\n\
       int main() { J::word; }\n"
  in
  (* distinct ldcs: two different type names -> still ambiguous *)
  check_error r "ambiguous";
  let r2 =
    analyze
      "struct S { typedef int word; };\n\
       struct A : S {};\n\
       struct B : S {};\n\
       struct C : A, B {};\n\
       int main() { C::word; }\n"
  in
  Alcotest.(check bool) "same typedef through two paths ok" true
    (Frontend.Sema.ok r2)

let test_method_body_unqualified () =
  (* Unqualified names in a member function resolve through the class
     scope: an implicit this-> member access. *)
  let r =
    analyze
      "struct Base { int counter; };\n\
       struct Derived : Base {\n\
       \  int own;\n\
       \  void tick() { counter; own; }\n\
       };\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r);
  let targets =
    List.map
      (fun res -> G.name r.graph res.Frontend.Sema.res_target)
      r.resolutions
  in
  Alcotest.(check (list string)) "implicit this accesses"
    [ "Base"; "Derived" ] targets

let test_method_body_locals_shadow () =
  let r =
    analyze
      "struct X {\n\
       \  int v;\n\
       \  void f() { int v; v; }\n\
       };\n"
  in
  Alcotest.(check bool) "ok" true (Frontend.Sema.ok r);
  Alcotest.(check int) "local shadows the member: no member resolution" 0
    (List.length r.resolutions)

let test_method_body_private_ok () =
  (* Inside a member function of the same class, private members are
     accessible; from main they are not. *)
  let r =
    analyze
      "class X {\n\
       \  int secret;\n\
       public:\n\
       \  void poke() { secret; }\n\
       };\n"
  in
  Alcotest.(check bool) "private ok inside" true (Frontend.Sema.ok r)

let test_method_body_ambiguous_member () =
  let r =
    analyze
      "struct L { int k; };\n\
       struct R { int k; };\n\
       struct J : L, R { void f() { k; } };\n"
  in
  check_error r "ambiguous"

let test_method_body_unknown_name () =
  let r = analyze "struct X { void f() { nothing; } };" in
  check_error r "unknown variable 'nothing'"

let suite =
  [ Alcotest.test_case "lexer: tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "enum members (sec. 6)" `Quick test_enum_members;
    Alcotest.test_case "enumerators are static-like (defn. 17)" `Quick
      test_enumerators_are_static_like;
    Alcotest.test_case "typedef members (sec. 6)" `Quick test_typedef_member;
    Alcotest.test_case "method body: unqualified lookup" `Quick
      test_method_body_unqualified;
    Alcotest.test_case "method body: locals shadow members" `Quick
      test_method_body_locals_shadow;
    Alcotest.test_case "method body: private accessible" `Quick
      test_method_body_private_ok;
    Alcotest.test_case "method body: ambiguous member" `Quick
      test_method_body_ambiguous_member;
    Alcotest.test_case "method body: unknown name" `Quick
      test_method_body_unknown_name;
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: error" `Quick test_lexer_error;
    Alcotest.test_case "parser: figure 9 verbatim" `Quick
      test_parse_fig9_verbatim;
    Alcotest.test_case "parser: member forms" `Quick test_parse_member_forms;
    Alcotest.test_case "parser: error position" `Quick
      test_parse_error_position;
    Alcotest.test_case "parser: chained access" `Quick
      test_parse_chained_access;
    Alcotest.test_case "sema: figure 9 end to end" `Quick
      test_fig9_end_to_end;
    Alcotest.test_case "sema: ambiguous access" `Quick test_ambiguous_access;
    Alcotest.test_case "sema: unknown member" `Quick test_unknown_member;
    Alcotest.test_case "sema: unknown variable" `Quick test_unknown_variable;
    Alcotest.test_case "sema: unknown class" `Quick test_unknown_class_var;
    Alcotest.test_case "sema: arrow/dot confusion" `Quick
      test_arrow_dot_confusion;
    Alcotest.test_case "sema: qualified X::m" `Quick test_qualified_access;
    Alcotest.test_case "sema: chained member types" `Quick
      test_chain_through_member_types;
    Alcotest.test_case "sema: static member diamond" `Quick
      test_static_member_through_diamond;
    Alcotest.test_case "sema: duplicate base" `Quick
      test_duplicate_base_diagnostic;
    Alcotest.test_case "sema: virtual data member" `Quick
      test_virtual_data_member;
    Alcotest.test_case "access: private member" `Quick test_private_member;
    Alcotest.test_case "access: protected member" `Quick
      test_protected_member;
    Alcotest.test_case "access: private inheritance" `Quick
      test_private_inheritance_blocks;
    Alcotest.test_case "access: class default base access" `Quick
      test_class_default_private_base;
    Alcotest.test_case "access: public inheritance ok" `Quick
      test_public_inheritance_ok ]
