type t = {
  g : Graph.t;
  bases : Bitset.t array;  (* bases.(y) = strict bases of y *)
  vbases : Bitset.t array;  (* vbases.(y) = virtual bases of y *)
  derived : Bitset.t array;  (* derived.(x) = strict derived classes of x *)
}

let compute g =
  let n = Graph.num_classes g in
  let bases = Array.init n (fun _ -> Bitset.create n) in
  let vbases = Array.init n (fun _ -> Bitset.create n) in
  let derived = Array.init n (fun _ -> Bitset.create n) in
  (* Class ids are a topological order (bases before derived), so one pass
     in increasing order suffices for [bases]:
       bases(y) = U_{x direct base of y} ({x} U bases(x)).                 *)
  for y = 0 to n - 1 do
    List.iter
      (fun (b : Graph.base) ->
        Bitset.add bases.(y) b.b_class;
        ignore (Bitset.union_into ~into:bases.(y) bases.(b.b_class)))
      (Graph.bases g y)
  done;
  (* x is a virtual base of y iff some path x => y starts with a virtual
     edge x -> z, i.e. there is a virtual edge x -> z with z = y or z a
     base of y.  Equivalently, for every virtual edge x -> z:
       x is a virtual base of z and of everything derived from z.         *)
  for y = 0 to n - 1 do
    List.iter
      (fun (b : Graph.base) ->
        match b.b_kind with
        | Graph.Virtual ->
          (* b.b_class -> y is virtual: b.b_class is a virtual base of y
             and of all classes derived from y; rather than iterate over
             derived sets (not yet complete), propagate below. *)
          Bitset.add vbases.(y) b.b_class
        | Graph.Non_virtual -> ())
      (Graph.bases g y);
    (* Inherit the virtual bases of every direct base: if x is a virtual
       base of z and z is a base (or self) of y then x is a virtual base
       of y, because the witness path x -> ... -> z extends to y. *)
    List.iter
      (fun (b : Graph.base) ->
        ignore (Bitset.union_into ~into:vbases.(y) vbases.(b.b_class)))
      (Graph.bases g y)
  done;
  for y = 0 to n - 1 do
    Bitset.iter (fun x -> Bitset.add derived.(x) y) bases.(y)
  done;
  { g; bases; vbases; derived }

let graph t = t.g
let is_base t x y = Bitset.mem t.bases.(y) x
let is_base_or_self t x y = x = y || is_base t x y
let is_virtual_base t x y = Bitset.mem t.vbases.(y) x
let bases_of t y = t.bases.(y)
let virtual_bases_of t y = t.vbases.(y)
let derived_of t x = t.derived.(x)
