type t = { len : int; words : int array }

let bits_per_word = Sys.int_size

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; words = Array.make ((len + bits_per_word - 1) / bits_per_word) 0 }

let length s = s.len
let copy s = { s with words = Array.copy s.words }

let check s i =
  if i < 0 || i >= s.len then invalid_arg "Bitset: index out of range"

let add s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) land (1 lsl b) <> 0

let union_into ~into src =
  if into.len <> src.len then invalid_arg "Bitset.union_into: universe mismatch";
  let changed = ref false in
  for w = 0 to Array.length into.words - 1 do
    let v = into.words.(w) lor src.words.(w) in
    if v <> into.words.(w) then begin
      changed := true;
      into.words.(w) <- v
    end
  done;
  !changed

let inter a b =
  if a.len <> b.len then invalid_arg "Bitset.inter: universe mismatch";
  let r = create a.len in
  for w = 0 to Array.length r.words - 1 do
    r.words.(w) <- a.words.(w) land b.words.(w)
  done;
  r

let popcount n =
  let rec loop n acc = if n = 0 then acc else loop (n land (n - 1)) (acc + 1) in
  loop n 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let is_empty s = Array.for_all (fun w -> w = 0) s.words

let iter f s =
  for i = 0 to s.len - 1 do
    if mem s i then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let equal a b = a.len = b.len && a.words = b.words

let subset a b =
  if a.len <> b.len then invalid_arg "Bitset.subset: universe mismatch";
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (elements s)
