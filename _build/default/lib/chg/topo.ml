let order g =
  let n = Graph.num_classes g in
  let indegree = Array.make n 0 in
  Graph.iter_classes g (fun c ->
      indegree.(c) <- List.length (Graph.bases g c));
  let module H = Set.Make (Int) in
  let ready = ref H.empty in
  Graph.iter_classes g (fun c ->
      if indegree.(c) = 0 then ready := H.add c !ready);
  let out = Array.make n (-1) in
  let next = ref 0 in
  while not (H.is_empty !ready) do
    let c = H.min_elt !ready in
    ready := H.remove c !ready;
    out.(!next) <- c;
    incr next;
    List.iter
      (fun (d, _) ->
        indegree.(d) <- indegree.(d) - 1;
        if indegree.(d) = 0 then ready := H.add d !ready)
      (Graph.derived g c)
  done;
  assert (!next = n);  (* builder graphs are acyclic by construction *)
  out

let numbers g =
  let ord = order g in
  let num = Array.make (Array.length ord) 0 in
  Array.iteri (fun pos c -> num.(c) <- pos) ord;
  num

let is_topological g ord =
  let n = Graph.num_classes g in
  Array.length ord = n
  &&
  let pos = Array.make n (-1) in
  Array.iteri (fun i c -> if c >= 0 && c < n then pos.(c) <- i) ord;
  Array.for_all (fun p -> p >= 0) pos
  && List.for_all
       (fun c ->
         List.for_all
           (fun (b : Graph.base) -> pos.(b.b_class) < pos.(c))
           (Graph.bases g c))
       (Graph.classes g)
