let access_to_string = function
  | Graph.Public -> "public"
  | Graph.Protected -> "protected"
  | Graph.Private -> "private"

let access_of_string = function
  | "public" -> Ok Graph.Public
  | "protected" -> Ok Graph.Protected
  | "private" -> Ok Graph.Private
  | s -> Error (Printf.sprintf "unknown access %S" s)

let kind_to_string = function
  | Graph.Data -> "data"
  | Graph.Function -> "function"
  | Graph.Type -> "type"
  | Graph.Enumerator -> "enumerator"

let kind_of_string = function
  | "data" -> Ok Graph.Data
  | "function" -> Ok Graph.Function
  | "type" -> Ok Graph.Type
  | "enumerator" -> Ok Graph.Enumerator
  | s -> Error (Printf.sprintf "unknown member kind %S" s)

let to_json g =
  let base_json (b : Graph.base) =
    Json.Obj
      [ ("class", Json.String (Graph.name g b.b_class));
        ("virtual", Json.Bool (b.b_kind = Graph.Virtual));
        ("access", Json.String (access_to_string b.b_access)) ]
  in
  let member_json (m : Graph.member) =
    Json.Obj
      [ ("name", Json.String m.m_name);
        ("kind", Json.String (kind_to_string m.m_kind));
        ("static", Json.Bool m.m_static);
        ("virtual", Json.Bool m.m_virtual);
        ("access", Json.String (access_to_string m.m_access)) ]
  in
  let class_json c =
    Json.Obj
      [ ("name", Json.String (Graph.name g c));
        ("bases", Json.List (List.map base_json (Graph.bases g c)));
        ("members", Json.List (List.map member_json (Graph.members g c))) ]
  in
  Json.Obj
    [ ("format", Json.String "cxxlookup-chg");
      ("version", Json.Int 1);
      ("classes", Json.List (List.map class_json (Graph.classes g))) ]

let ( let* ) = Result.bind

let base_of_json j =
  let* cls = Result.bind (Json.member "class" j) Json.to_str in
  let* virt = Result.bind (Json.member "virtual" j) Json.to_bool in
  let* acc_s = Result.bind (Json.member "access" j) Json.to_str in
  let* acc = access_of_string acc_s in
  Ok (cls, (if virt then Graph.Virtual else Graph.Non_virtual), acc)

let member_of_json j =
  let* name = Result.bind (Json.member "name" j) Json.to_str in
  let* kind_s = Result.bind (Json.member "kind" j) Json.to_str in
  let* kind = kind_of_string kind_s in
  let* static = Result.bind (Json.member "static" j) Json.to_bool in
  let* virt = Result.bind (Json.member "virtual" j) Json.to_bool in
  let* acc_s = Result.bind (Json.member "access" j) Json.to_str in
  let* access = access_of_string acc_s in
  Ok
    { Graph.m_name = name;
      m_kind = kind;
      m_static = static;
      m_virtual = virt;
      m_access = access }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let class_of_json j =
  let* name = Result.bind (Json.member "name" j) Json.to_str in
  let* bases_j = Result.bind (Json.member "bases" j) Json.to_list in
  let* bases = map_result base_of_json bases_j in
  let* members_j = Result.bind (Json.member "members" j) Json.to_list in
  let* members = map_result member_of_json members_j in
  Ok { Graph.d_name = name; d_bases = bases; d_members = members }

let of_json j =
  let* fmt = Result.bind (Json.member "format" j) Json.to_str in
  if fmt <> "cxxlookup-chg" then
    Error (Printf.sprintf "unknown format %S" fmt)
  else
    let* version = Result.bind (Json.member "version" j) Json.to_int in
    if version <> 1 then
      Error (Printf.sprintf "unsupported version %d" version)
    else
      let* classes_j = Result.bind (Json.member "classes" j) Json.to_list in
      let* decls = map_result class_of_json classes_j in
      (match Graph.of_decls decls with
      | Ok g -> Ok g
      | Error e -> Error (Graph.error_to_string e))

let to_string ?pretty g = Json.to_string ?pretty (to_json g)

let of_string s =
  let* j = Json.of_string s in
  of_json j
