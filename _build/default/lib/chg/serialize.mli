(** JSON (de)serialization of class hierarchy graphs — the interchange
    format the CLI's [export] command emits, so other tools can consume
    hierarchies or feed them in.

    Format (stable, versioned):
    {v
    { "format": "cxxlookup-chg", "version": 1,
      "classes": [
        { "name": "D",
          "bases": [ { "class": "B", "virtual": true, "access": "public" } ],
          "members": [ { "name": "m", "kind": "data", "static": false,
                         "virtual": false, "access": "private" } ] }, ... ] }
    v}

    Classes appear in declaration (topological) order; [of_json] accepts
    any order (it reuses {!Graph.of_decls}). *)

val to_json : Graph.t -> Json.t

(** [of_json j] rebuilds a graph; reports malformed JSON structure or
    graph-level errors ({!Graph.error}) as a message. *)
val of_json : Json.t -> (Graph.t, string) result

val to_string : ?pretty:bool -> Graph.t -> string
val of_string : string -> (Graph.t, string) result
