(** Graphviz export of class hierarchy graphs, matching the paper's
    figures: solid edges denote non-virtual inheritance, dashed edges
    denote virtual inheritance, and members declared in a class are listed
    in its node label. *)

(** [to_dot ?highlight g] renders [g] as a Graphviz [digraph].
    Edges point from base to derived, as in the paper's CHG drawings.
    Classes in [highlight] are drawn filled. *)
val to_dot : ?highlight:Graph.class_id list -> Graph.t -> string
