lib/chg/serialize.mli: Graph Json
