lib/chg/json.ml: Buffer Char List Printf String
