lib/chg/json.mli:
