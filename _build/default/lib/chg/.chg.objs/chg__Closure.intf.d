lib/chg/closure.mli: Bitset Graph
