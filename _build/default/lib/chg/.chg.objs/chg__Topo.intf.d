lib/chg/topo.mli: Graph
