lib/chg/bitset.mli: Format
