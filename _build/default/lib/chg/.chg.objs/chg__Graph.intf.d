lib/chg/graph.mli: Format
