lib/chg/closure.ml: Array Bitset Graph List
