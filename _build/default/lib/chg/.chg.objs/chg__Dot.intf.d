lib/chg/dot.mli: Graph
