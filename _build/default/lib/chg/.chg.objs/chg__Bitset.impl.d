lib/chg/bitset.ml: Array Format List Sys
