lib/chg/dot.ml: Buffer Graph List Printf String
