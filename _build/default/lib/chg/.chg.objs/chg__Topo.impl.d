lib/chg/topo.ml: Array Graph Int List Set
