lib/chg/graph.ml: Array Format Fun Hashtbl List Option Result String
