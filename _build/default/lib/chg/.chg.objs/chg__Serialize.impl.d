lib/chg/serialize.ml: Graph Json List Printf Result
