(** A minimal JSON representation, printer and parser — enough to
    serialize class hierarchies and lookup tables without external
    dependencies (the container environment is sealed; see DESIGN.md).

    Supports null, booleans, integers, strings (with the standard escape
    sequences), arrays and objects.  Floats are deliberately not
    supported: nothing in a class hierarchy needs them and dropping them
    keeps round-trips exact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string ?pretty j] serializes.  [pretty] (default false) adds
    newlines and two-space indentation. *)
val to_string : ?pretty:bool -> t -> string

(** [of_string s] parses.  Rejects trailing garbage, unterminated
    strings, floats, and other malformed input with a message and byte
    offset. *)
val of_string : string -> (t, string) result

(** Accessors returning [Error] with a path-aware message. *)

val member : string -> t -> (t, string) result
val to_list : t -> (t list, string) result
val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_bool : t -> (bool, string) result
