(** Topological orders over class hierarchy graphs.

    Builder insertion order is already topological (bases before derived);
    this module makes that order explicit, provides topological numbers for
    the Eiffel-style lookup shortcut of paper Section 7.2, and offers an
    independent Kahn's-algorithm computation used to cross-check the
    builder's invariant in tests. *)

(** [order g] is a topological order of the classes of [g] (every base
    precedes every class derived from it).  This is Kahn's algorithm over
    the inheritance edges, tie-broken by class id, so the result is
    deterministic. *)
val order : Graph.t -> Graph.class_id array

(** [numbers g] maps each class id to its position in [order g];
    [numbers g].(base) < [numbers g].(derived) for every base/derived
    pair.  These are the [top_sort] numbers of paper Section 7.2. *)
val numbers : Graph.t -> int array

(** [is_topological g ord] checks that [ord] is a permutation of the
    classes in which bases precede derived classes. *)
val is_topological : Graph.t -> Graph.class_id array -> bool
