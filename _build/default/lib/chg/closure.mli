(** Transitive-closure information over a class hierarchy graph.

    The lookup algorithm's dominance test (paper Lemma 4 and lines [1]-[3]
    of Figure 8) requires a constant-time "is [X] a virtual base of [Y]"
    probe.  As the paper notes, a compiler needs this information anyway;
    we compute it once per graph with a bitset-based closure in
    [O(|N| * (|N| + |E|))] word operations. *)

type t

(** [compute g] builds the closure tables for [g]. *)
val compute : Graph.t -> t

(** [graph t] is the graph the closure was computed from. *)
val graph : t -> Graph.t

(** [is_base t x y] is [true] iff [x] is a (strict, possibly indirect)
    base class of [y] — i.e. there is a non-empty CHG path from [x] to
    [y]. *)
val is_base : t -> Graph.class_id -> Graph.class_id -> bool

(** [is_base_or_self t x y] is [is_base t x y || x = y]. *)
val is_base_or_self : t -> Graph.class_id -> Graph.class_id -> bool

(** [is_virtual_base t x y] is [true] iff there is a path from [x] to [y]
    whose {e first} edge is virtual (the paper's definition of virtual
    base, Section 2). *)
val is_virtual_base : t -> Graph.class_id -> Graph.class_id -> bool

(** [bases_of t y] is the set of strict bases of [y]. *)
val bases_of : t -> Graph.class_id -> Bitset.t

(** [virtual_bases_of t y] is the set of virtual bases of [y]. *)
val virtual_bases_of : t -> Graph.class_id -> Bitset.t

(** [derived_of t x] is the set of classes [y] such that [x] is a strict
    base of [y]. *)
val derived_of : t -> Graph.class_id -> Bitset.t
