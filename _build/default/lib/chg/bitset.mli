(** Fixed-capacity bit sets over the integer range [0, length).

    Used throughout the library for reachability closures over class ids,
    where dense integer universes make bit-parallel set operations the
    natural representation. *)

type t

(** [create n] is the empty set over universe [0..n-1]. *)
val create : int -> t

(** [length s] is the size of the universe [s] was created with. *)
val length : t -> int

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [add s i] adds [i] to [s] in place.
    @raise Invalid_argument if [i] is outside the universe. *)
val add : t -> int -> unit

(** [remove s i] removes [i] from [s] in place. *)
val remove : t -> int -> unit

(** [mem s i] is [true] iff [i] is in [s]. *)
val mem : t -> int -> bool

(** [union_into ~into src] adds every element of [src] to [into];
    returns [true] iff [into] changed.
    @raise Invalid_argument on universe mismatch. *)
val union_into : into:t -> t -> bool

(** [inter a b] is a fresh set holding the intersection. *)
val inter : t -> t -> t

(** [cardinal s] is the number of elements of [s]. *)
val cardinal : t -> int

(** [is_empty s] is [true] iff [s] has no elements. *)
val is_empty : t -> bool

(** [iter f s] applies [f] to the elements of [s] in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] lists the elements of [s] in increasing order. *)
val elements : t -> int list

(** [equal a b] is set equality (universes must match). *)
val equal : t -> t -> bool

(** [subset a b] is [true] iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [pp] prints as [{1, 5, 9}]. *)
val pp : Format.formatter -> t -> unit
