type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ----------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = false) j =
  let buf = Buffer.create 256 in
  let indent n =
    if pretty then begin
      Buffer.add_char buf '\n';
      for _ = 1 to n do
        Buffer.add_string buf "  "
      done
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | String s -> escape_into buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          go (depth + 1) item)
        items;
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          escape_into buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) v)
        fields;
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* -- parsing ------------------------------------------------------------ *)

exception Parse of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected '%c', found '%c'" c d)
    | None -> error (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then error "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 ->
            Buffer.add_char buf (Char.chr code);
            pos := !pos + 4;
            loop ()
          | Some _ -> error "non-ASCII \\u escapes are not supported"
          | None -> error "malformed \\u escape")
        | Some c -> error (Printf.sprintf "invalid escape '\\%c'" c)
        | None -> error "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | Some ('.' | 'e' | 'E') -> error "floats are not supported"
      | Some _ | None -> ()
    in
    digits ();
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> error "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            loop ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']'"
        in
        loop ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            loop ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !fields)
      end
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (msg, at) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* -- accessors ----------------------------------------------------------- *)

let member k = function
  | Obj fields ->
    (match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" k))
  | _ -> Error (Printf.sprintf "expected an object with field %S" k)

let to_list = function
  | List l -> Ok l
  | _ -> Error "expected an array"

let to_int = function
  | Int n -> Ok n
  | _ -> Error "expected an integer"

let to_str = function
  | String s -> Ok s
  | _ -> Error "expected a string"

let to_bool = function
  | Bool b -> Ok b
  | _ -> Error "expected a boolean"
