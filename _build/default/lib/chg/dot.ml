let to_dot ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph chg {\n";
  pf "  rankdir=BT;\n  node [shape=record, fontname=\"Helvetica\"];\n";
  Graph.iter_classes g (fun c ->
      let members =
        Graph.members g c
        |> List.map (fun (m : Graph.member) -> m.m_name)
        |> String.concat "\\n"
      in
      let label =
        if members = "" then Graph.name g c
        else Printf.sprintf "{%s|%s}" (Graph.name g c) members
      in
      let fill =
        if List.mem c highlight then ", style=filled, fillcolor=lightgray"
        else ""
      in
      pf "  n%d [label=\"%s\"%s];\n" c label fill);
  Graph.iter_classes g (fun c ->
      List.iter
        (fun (b : Graph.base) ->
          let style =
            match b.b_kind with
            | Graph.Virtual -> " [style=dashed]"
            | Graph.Non_virtual -> ""
          in
          (* Edges drawn derived -> base pointing up (rankdir=BT) keeps
             bases at the top, like the paper's figures. *)
          pf "  n%d -> n%d%s;\n" c b.b_class style)
        (Graph.bases g c));
  pf "}\n";
  Buffer.contents buf
