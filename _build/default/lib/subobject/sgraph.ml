type subobject = { id : int; fixed : Chg.Graph.class_id list }

type t = {
  g : Chg.Graph.t;
  mdc : Chg.Graph.class_id;
  nodes : subobject array;  (* indexed by id, in BFS discovery order *)
  children : int array array;  (* containment edges, base decl order *)
  reps : Path.t array;  (* a representative CHG path per subobject *)
  by_fixed : (Chg.Graph.class_id list, int) Hashtbl.t;
}

let build g c =
  let by_fixed = Hashtbl.create 64 in
  let node_tbl : (int, subobject) Hashtbl.t = Hashtbl.create 64 in
  let rep_tbl : (int, Path.t) Hashtbl.t = Hashtbl.create 64 in
  let child_tbl : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let queue = Queue.create () in
  let intern fixed rep =
    match Hashtbl.find_opt by_fixed fixed with
    | Some id -> id
    | None ->
      let id = !next_id in
      incr next_id;
      Hashtbl.add by_fixed fixed id;
      let s = { id; fixed } in
      Hashtbl.add node_tbl id s;
      Hashtbl.add rep_tbl id rep;
      Queue.add s queue;
      id
  in
  ignore (intern [ c ] (Path.trivial c));
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let l = List.hd s.fixed in
    let rep = Hashtbl.find rep_tbl s.id in
    let kids =
      List.map
        (fun (b : Chg.Graph.base) ->
          let fixed', rep' =
            match b.b_kind with
            | Chg.Graph.Non_virtual ->
              ( b.b_class :: s.fixed,
                Path.concat
                  (Path.extend (Path.trivial b.b_class) Chg.Graph.Non_virtual l)
                  rep )
            | Chg.Graph.Virtual ->
              ( [ b.b_class ],
                Path.concat
                  (Path.extend (Path.trivial b.b_class) Chg.Graph.Virtual l)
                  rep )
          in
          intern fixed' rep')
        (Chg.Graph.bases g l)
    in
    Hashtbl.add child_tbl s.id (Array.of_list kids)
  done;
  let n = !next_id in
  let nodes = Array.init n (fun id -> Hashtbl.find node_tbl id) in
  let reps = Array.init n (fun id -> Hashtbl.find rep_tbl id) in
  let children = Array.init n (fun id -> Hashtbl.find child_tbl id) in
  { g; mdc = c; nodes; children; reps; by_fixed }

let complete_object t = t.nodes.(0)
let most_derived t = t.mdc
let graph t = t.g
let count t = Array.length t.nodes
let subobjects t = Array.to_list t.nodes
let id_of s = s.id
let ldc _t s = List.hd s.fixed

let contained t s =
  Array.to_list (Array.map (fun id -> t.nodes.(id)) t.children.(s.id))

let contains t a b =
  let visited = Hashtbl.create 16 in
  let rec go id =
    id = b.id
    || (not (Hashtbl.mem visited id))
       && begin
            Hashtbl.add visited id ();
            Array.exists go t.children.(id)
          end
  in
  go a.id

let dominates = contains

let of_path t p =
  if Path.mdc p <> t.mdc then raise Not_found;
  let fixed_nodes = Path.nodes (Path.fixed p) in
  match Hashtbl.find_opt t.by_fixed fixed_nodes with
  | Some id -> t.nodes.(id)
  | None -> raise Not_found

let a_path t s = t.reps.(s.id)

let defns t m =
  List.filter (fun s -> Chg.Graph.declares t.g (ldc t s) m) (subobjects t)

let pp_subobject t ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat "-" (List.map (Chg.Graph.name t.g) s.fixed))

let to_dot t =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph subobjects {\n  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n";
  Array.iter
    (fun s ->
      pf "  s%d [label=\"%s\\n%s\"];\n" s.id
        (Chg.Graph.name t.g (ldc t s))
        (String.concat "." (List.map (Chg.Graph.name t.g) s.fixed)))
    t.nodes;
  Array.iteri
    (fun id kids -> Array.iter (fun k -> pf "  s%d -> s%d;\n" k id) kids)
    t.children;
  pf "}\n";
  Buffer.contents buf
