(** Paths in the class hierarchy graph and the paper's path formalism
    (Section 3): [ldc], [mdc], [fixed], the [≈] equivalence that names
    subobjects, and the {e hides} / {e dominates} relations.

    A path runs from its least derived class (ldc, the source) to its most
    derived class (mdc, the target), following inheritance edges.  A
    single-node path (no edges) is allowed and denotes the complete object
    of that class.

    Everything in this module is a direct executable transcription of the
    paper's definitions; it is deliberately unoptimized (path enumeration
    is worst-case exponential) and serves as the specification/oracle the
    efficient algorithm of {!Lookup_core} is tested against. *)

type step = { via : Chg.Graph.edge_kind; target : Chg.Graph.class_id }

type t = private {
  ldc : Chg.Graph.class_id;  (** the source: least derived class *)
  steps : step list;  (** edges in order from [ldc] towards [mdc] *)
}

(** {1 Construction} *)

(** [trivial c] is the single-node path at class [c]. *)
val trivial : Chg.Graph.class_id -> t

(** [extend p via target] appends the edge [mdc p -> target] (of kind
    [via]) at the derived end. *)
val extend : t -> Chg.Graph.edge_kind -> Chg.Graph.class_id -> t

(** [concat a b] is the paper's [a . b]; requires [mdc a = ldc b].
    @raise Invalid_argument otherwise. *)
val concat : t -> t -> t

(** [of_names g names ~kinds] builds the path visiting [names] in order,
    with [kinds] giving each edge's kind; convenience for tests.
    @raise Invalid_argument on arity mismatch or unknown class. *)
val of_names : Chg.Graph.t -> string list -> kinds:Chg.Graph.edge_kind list -> t

(** [in_graph g p] checks that every step of [p] is an actual edge of
    [g] with the right kind. *)
val in_graph : Chg.Graph.t -> t -> bool

(** {1 Observers (paper Definitions 1-3)} *)

val ldc : t -> Chg.Graph.class_id
val mdc : t -> Chg.Graph.class_id

(** [nodes p] lists the classes on [p] from ldc to mdc (length ≥ 1). *)
val nodes : t -> Chg.Graph.class_id list

(** [edge_count p] is the number of edges of [p]. *)
val edge_count : t -> int

(** [fixed p] is the longest prefix of [p] that contains no virtual edge
    (Definition 2), as a path. *)
val fixed : t -> t

(** [is_v_path p] is [true] iff [p] contains at least one virtual edge
    (Definition 13). *)
val is_v_path : t -> bool

(** [least_virtual p] is [mdc (fixed p)] if [p] is a v-path, and [None]
    (the paper's Ω) otherwise (Definition 14). *)
val least_virtual : t -> Chg.Graph.class_id option

(** {1 Relations} *)

(** [equiv p q] is the paper's [p ≈ q] (Definition 3): same [fixed] part
    and same [mdc].  Two paths denote the same subobject iff [equiv]. *)
val equiv : t -> t -> bool

(** [key p] is a value characterizing the [≈]-class of [p]: equal keys
    iff equivalent paths.  The key is the node list of [fixed p] paired
    with [mdc p]. *)
val key : t -> Chg.Graph.class_id list * Chg.Graph.class_id

(** [hides a b] is [true] iff [a] is a suffix of [b] (Definition 5). *)
val hides : t -> t -> bool

(** [equal a b] is structural path equality (same nodes and edge kinds). *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** {1 Enumeration} *)

(** [all_to g c] enumerates every CHG path whose mdc is [c], including the
    trivial path.  Worst-case exponential in the size of [g]; for the
    specification only. *)
val all_to : Chg.Graph.t -> Chg.Graph.class_id -> t list

(** [dominates g a b] is the paper's Definition 5: [a] dominates [b] iff
    [a] hides some path [b'] with [b' ≈ b].  Requires [mdc a = mdc b] to
    be meaningful (returns [false] otherwise).  Spec-level: enumerates the
    equivalence class of [b]. *)
val dominates : Chg.Graph.t -> t -> t -> bool

(** [dominates_via_closure cl a b] is an [O(|path|)] dominance test
    equivalent to {!dominates} (for paths of [Closure.graph cl] with equal
    mdc), derived from the formalism: [a] dominates [b] iff some [γ . a ≈ b],
    and case analysis on whether [γ] contains a virtual edge gives

    - [γ] virtual-free: then [fixed (γ . a) = γ . fixed a], so the
      condition is [fixed a] is a suffix of [fixed b] ([γ] being the
      complementary prefix of [fixed b]); or
    - [γ] contains a virtual edge: then [fixed γ = fixed b], so
      [γ = fixed b . δ] with [δ] a path from [mdc (fixed b)] to [ldc a]
      whose first edge is virtual — such a [δ] exists iff
      [mdc (fixed b)] is a virtual base of [ldc a].

    This generalizes the paper's Lemma 4 beyond red definitions; it is
    property-tested against {!dominates} in the test suite. *)
val dominates_via_closure : Chg.Closure.t -> t -> t -> bool

(** [pp g] prints a path as e.g. [A-B=C] where [-] is a non-virtual and
    [=] a virtual edge (the paper writes paths as node strings, e.g.
    [ABDFH]; we add the edge kinds for clarity). *)
val pp : Chg.Graph.t -> Format.formatter -> t -> unit

(** [to_string g p] is [pp] to a string. *)
val to_string : Chg.Graph.t -> t -> string
