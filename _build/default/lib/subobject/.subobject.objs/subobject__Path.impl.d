lib/subobject/path.ml: Array Chg Format List
