lib/subobject/sgraph.mli: Chg Format Path
