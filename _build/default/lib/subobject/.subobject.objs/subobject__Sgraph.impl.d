lib/subobject/sgraph.ml: Array Buffer Chg Format Hashtbl List Path Printf Queue String
