lib/subobject/count.mli: Chg
