lib/subobject/spec.ml: Chg Format Hashtbl List Path
