lib/subobject/path.mli: Chg Format
