lib/subobject/count.ml: Array Chg List
