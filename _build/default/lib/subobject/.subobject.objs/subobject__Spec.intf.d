lib/subobject/spec.mli: Chg Format Path
