type verdict =
  | Resolved of Path.t
  | Ambiguous of Path.t list
  | Undeclared

let defns_path g c m =
  List.filter (fun p -> Chg.Graph.declares g (Path.ldc p) m) (Path.all_to g c)

(* One representative per equivalence class, keeping the first path
   enumerated for each key, in enumeration order (deterministic). *)
let representatives paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let k = Path.key p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    paths

let defns g c m = representatives (defns_path g c m)

let most_dominant g paths =
  List.find_opt
    (fun u -> List.for_all (fun v -> Path.dominates g u v) paths)
    paths

let maximal g paths =
  List.filter
    (fun u ->
      not
        (List.exists
           (fun v -> (not (Path.equiv u v)) && Path.dominates g v u)
           paths))
    paths

let lookup g c m =
  match defns g c m with
  | [] -> Undeclared
  | reps ->
    (match most_dominant g reps with
    | Some p -> Resolved p
    | None -> Ambiguous (maximal g reps))

let lookup_static g c m =
  match lookup g c m with
  | (Resolved _ | Undeclared) as v -> v
  | Ambiguous reps as v ->
    (* Definition 17(2): all maximal elements share an ldc that declares
       [m] as a static member.  Any representative may then be returned. *)
    (match reps with
    | [] -> v
    | first :: rest ->
      let l = Path.ldc first in
      let same_ldc = List.for_all (fun p -> Path.ldc p = l) rest in
      let static_there =
        match Chg.Graph.find_member g l m with
        | Some mem -> Chg.Graph.member_is_static_like mem
        | None -> false
      in
      if same_ldc && static_there then Resolved first else v)

let subobject_count g c = List.length (representatives (Path.all_to g c))

let verdict_equal g a b =
  match (a, b) with
  | Undeclared, Undeclared -> true
  | Resolved p, Resolved q -> Path.equiv p q
  | Ambiguous ps, Ambiguous qs ->
    let keys l =
      List.sort_uniq compare (List.map Path.key l)
    in
    keys ps = keys qs
  | _ -> ignore g; false

let pp_verdict g ppf = function
  | Undeclared -> Format.pp_print_string ppf "undeclared"
  | Resolved p -> Format.fprintf ppf "resolved %a" (Path.pp g) p
  | Ambiguous ps ->
    Format.fprintf ppf "ambiguous {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (Path.pp g))
      ps
