(** The paper's formal definition of member lookup, executed literally
    (Definitions 7-11 and, for static members, Definitions 16-17).

    This is the specification/oracle: correct by construction, worst-case
    exponential.  The efficient algorithm in [lookup_core] is
    property-tested against it. *)

(** Result of a lookup.  [Resolved p] returns one representative path of
    the most-dominant equivalence class — matching the paper's remark that
    "rather than return an equivalence class of paths, [the algorithm]
    will return an arbitrary element of the equivalence class".
    [Ambiguous reps] carries one representative per maximal equivalence
    class.  [Undeclared] means no subobject of the class contains the
    member. *)
type verdict =
  | Resolved of Path.t
  | Ambiguous of Path.t list
  | Undeclared

(** [defns_path g c m] is DefnsPath(c, m) (Definition 10): every path [a]
    with [mdc a = c] and [m ∈ M[ldc a]]. *)
val defns_path : Chg.Graph.t -> Chg.Graph.class_id -> string -> Path.t list

(** [defns g c m] is Defns(c, m) (Definition 7) with one representative
    path per equivalence class, in deterministic order. *)
val defns : Chg.Graph.t -> Chg.Graph.class_id -> string -> Path.t list

(** [most_dominant g paths] is Definition 8 lifted to representatives: the
    unique element dominating all others, if it exists. *)
val most_dominant : Chg.Graph.t -> Path.t list -> Path.t option

(** [maximal g paths] is Definition 16: the representatives not strictly
    dominated by any other. *)
val maximal : Chg.Graph.t -> Path.t list -> Path.t list

(** [lookup g c m] is Definition 9: [most_dominant (defns g c m)], or
    [Ambiguous] with the maximal set when no most-dominant element exists,
    or [Undeclared] when Defns is empty. *)
val lookup : Chg.Graph.t -> Chg.Graph.class_id -> string -> verdict

(** [lookup_static g c m] is Definition 17, the refinement used when [m]
    may be a static member (or a nested type / enumerator, which C++
    treats alike): a lookup whose maximal set has several elements still
    resolves if all of them share the same least derived class and [m] is
    declared static there. *)
val lookup_static : Chg.Graph.t -> Chg.Graph.class_id -> string -> verdict

(** [subobject_count g c] is the number of subobjects of a complete [c]
    object, i.e. the number of [≈]-classes of paths with mdc [c]. *)
val subobject_count : Chg.Graph.t -> Chg.Graph.class_id -> int

(** [verdict_equal g a b] compares verdicts up to [≈] on paths (the
    algorithm may return any representative of the winning class). *)
val verdict_equal : Chg.Graph.t -> verdict -> verdict -> bool

val pp_verdict : Chg.Graph.t -> Format.formatter -> verdict -> unit
