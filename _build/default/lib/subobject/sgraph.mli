(** The Rossie–Friedman subobject graph of a complete object (OOPSLA 1995,
    as recapped in paper Sections 1-3 and 7.1).

    For a fixed most-derived class [C], the nodes are the subobjects that
    constitute a complete [C] object — exactly the [≈]-equivalence classes
    of CHG paths ending at [C] (Theorem 1) — and each subobject has a
    containment edge to the subobject it directly contains for every
    direct base of its least derived class.  Non-virtual bases yield a
    distinct contained subobject per containing subobject; virtual bases
    yield one shared subobject per base class.

    The graph's size can be exponential in the CHG's size (e.g. stacked
    non-virtual diamonds double it per level); this is the structure the
    pre-paper algorithms traverse and the reason the paper's CHG-based
    algorithm wins asymptotically. *)

type subobject = private {
  id : int;  (** dense id within this subobject graph *)
  fixed : Chg.Graph.class_id list;
      (** nodes of the [fixed] part of any representing path, least
          derived class first; this plus the complete-object class is the
          canonical name of the [≈]-class (Definition 3) *)
}

type t

(** [build g c] constructs the subobject graph of a complete [c] object.
    Beware: worst-case exponential in [Chg.Graph.num_classes g]. *)
val build : Chg.Graph.t -> Chg.Graph.class_id -> t

(** [complete_object t] is the subobject representing the whole object
    (the trivial path at the most-derived class). *)
val complete_object : t -> subobject

(** [most_derived t] is the class the graph was built for. *)
val most_derived : t -> Chg.Graph.class_id

(** [graph t] is the class hierarchy graph [t] was built from. *)
val graph : t -> Chg.Graph.t

(** [count t] is the number of subobjects. *)
val count : t -> int

(** [subobjects t] lists all subobjects in BFS order from the complete
    object (ties broken by base declaration order — the order a
    breadth-first compiler scan visits them, used by the g++ baseline). *)
val subobjects : t -> subobject list

(** [id_of s] is the dense id of [s] within its graph. *)
val id_of : subobject -> int

(** [ldc t s] is the least derived class of [s] — the class whose declared
    members [s] contains. *)
val ldc : t -> subobject -> Chg.Graph.class_id

(** [contained t s] are the immediate base-class subobjects of [s], one
    per direct base of [ldc t s], in base declaration order. *)
val contained : t -> subobject -> subobject list

(** [contains t a b] is [true] iff [b] is reachable from [a] by
    containment edges ([b] is a base-class subobject of [a], reflexively).
    This is the Rossie–Friedman partial order, and by Theorem 1 the
    dominance order: a member of [a] dominates a member of [b]. *)
val contains : t -> subobject -> subobject -> bool

(** [dominates t a b] is strict-or-equal dominance of subobject [a] over
    [b]: [contains t a b]. *)
val dominates : t -> subobject -> subobject -> bool

(** [of_path t p] is the subobject denoted by CHG path [p] (which must end
    at [most_derived t]).
    @raise Not_found if [p] does not denote a subobject of this object
    (e.g. not a real path). *)
val of_path : t -> Path.t -> subobject

(** [a_path t s] is some CHG path representing [s]: the fixed part
    extended along virtual edges down to the most derived class.  Its
    [Path.key] names [s]. *)
val a_path : t -> subobject -> Path.t

(** [defns t m] are the subobjects whose ldc declares [m], in BFS order. *)
val defns : t -> string -> subobject list

(** [to_dot t] renders the subobject graph (node label = ldc class name,
    full fixed part in tooltip-style second line). *)
val to_dot : t -> string

val pp_subobject : t -> Format.formatter -> subobject -> unit
