(** Polynomial subobject counting.

    Building the Rossie–Friedman subobject graph to know its size is
    exponential; but the formalism gives a closed form.  A subobject of a
    complete [C] object is named by [(fixed part, C)] (Definition 3),
    and a non-virtual-only path [f] ending at class [F] is the fixed part
    of some path to [C] iff [F = C] or [F] is a virtual base of [C]
    (the continuation must start with a virtual edge, or the fixed part
    would extend through it).  Hence

    {v #subobjects(C)  =  nv(C) + Σ_{F a virtual base of C} nv(F) v}

    where [nv(F)], the number of non-virtual-only paths ending at [F],
    satisfies the linear recurrence [nv(F) = 1 + Σ nv(B)] over the
    non-virtual in-edges [B -> F].

    This makes the exponential-blowup experiment (C3) checkable without
    materializing the graph, and is property-tested against both
    {!Sgraph.count} and {!Spec.subobject_count}. *)

(** [nv_path_counts g] is the [nv] table: [nv.(f)] counts the
    non-virtual-only CHG paths (including the trivial one) ending at
    class [f].  Counts can be astronomically large; they saturate at
    [max_int] instead of overflowing. *)
val nv_path_counts : Chg.Graph.t -> int array

(** [subobjects cl c] is the number of subobjects of a complete [c]
    object, in [O(|N| + |E|)] after the closure. *)
val subobjects : Chg.Closure.t -> Chg.Graph.class_id -> int

(** [table cl] is [subobjects] for every class. *)
val table : Chg.Closure.t -> int array

(** [max_over_classes cl] is the largest subobject count of any class —
    a hierarchy "health" metric: if this equals [num_classes + #virtual
    sharing] the hierarchy is replication-free. *)
val max_over_classes : Chg.Closure.t -> int

(** [copies_of cl ~base ~within] counts the subobjects of class [base] in
    a complete [within] object — by the same closed form restricted to
    fixed parts starting at [base]:
    [Σ_{F ∈ {within} ∪ vbases(within)} nv_from_base(F)].  A count above 1
    means [base] is {e replicated} (the Figure 1 situation); 0 means
    [base] is unrelated to [within]. *)
val copies_of :
  Chg.Closure.t ->
  base:Chg.Graph.class_id ->
  within:Chg.Graph.class_id ->
  int
