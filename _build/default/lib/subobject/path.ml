type step = { via : Chg.Graph.edge_kind; target : Chg.Graph.class_id }
type t = { ldc : Chg.Graph.class_id; steps : step list }

let trivial c = { ldc = c; steps = [] }
let extend p via target = { p with steps = p.steps @ [ { via; target } ] }

let mdc p =
  match List.rev p.steps with [] -> p.ldc | last :: _ -> last.target

let ldc p = p.ldc

let concat a b =
  if mdc a <> b.ldc then invalid_arg "Path.concat: mdc a <> ldc b";
  { a with steps = a.steps @ b.steps }

let nodes p = p.ldc :: List.map (fun s -> s.target) p.steps
let edge_count p = List.length p.steps

let fixed p =
  let rec take = function
    | [] -> []
    | s :: rest ->
      (match s.via with
      | Chg.Graph.Virtual -> []
      | Chg.Graph.Non_virtual -> s :: take rest)
  in
  { p with steps = take p.steps }

let is_v_path p =
  List.exists (fun s -> s.via = Chg.Graph.Virtual) p.steps

let least_virtual p = if is_v_path p then Some (mdc (fixed p)) else None

let key p = (nodes (fixed p), mdc p)
let equiv p q = key p = key q

let equal a b =
  a.ldc = b.ldc
  && List.length a.steps = List.length b.steps
  && List.for_all2 (fun x y -> x.via = y.via && x.target = y.target) a.steps
       b.steps

let compare a b =
  compare
    (a.ldc, List.map (fun s -> (s.via, s.target)) a.steps)
    (b.ldc, List.map (fun s -> (s.via, s.target)) b.steps)

(* a hides b iff a is a suffix of b. *)
let hides a b =
  let la = List.length a.steps and lb = List.length b.steps in
  if la > lb then false
  else begin
    let dropped = ref b.steps in
    for _ = 1 to lb - la do
      match !dropped with [] -> assert false | _ :: tl -> dropped := tl
    done;
    let tail_start =
      (* ldc of the suffix of b with la steps *)
      if lb = la then b.ldc
      else (List.nth b.steps (lb - la - 1)).target
    in
    tail_start = a.ldc
    && List.for_all2
         (fun x y -> x.via = y.via && x.target = y.target)
         a.steps !dropped
  end

let of_names g names ~kinds =
  match names with
  | [] -> invalid_arg "Path.of_names: empty"
  | first :: rest ->
    if List.length rest <> List.length kinds then
      invalid_arg "Path.of_names: kinds arity mismatch";
    let p = ref (trivial (Chg.Graph.find g first)) in
    List.iter2
      (fun n k -> p := extend !p k (Chg.Graph.find g n))
      rest kinds;
    !p

let in_graph g p =
  let ok = ref true in
  let cur = ref p.ldc in
  List.iter
    (fun s ->
      let here = !cur in
      if
        not
          (List.exists
             (fun (b : Chg.Graph.base) ->
               b.b_class = here && b.b_kind = s.via)
             (Chg.Graph.bases g s.target))
      then ok := false;
      cur := s.target)
    p.steps;
  !ok

let all_to g =
  let n = Chg.Graph.num_classes g in
  let memo : t list option array = Array.make n None in
  let rec go c =
    match memo.(c) with
    | Some ps -> ps
    | None ->
      let inherited =
        List.concat_map
          (fun (b : Chg.Graph.base) ->
            List.map (fun p -> extend p b.b_kind c) (go b.b_class))
          (Chg.Graph.bases g c)
      in
      let ps = trivial c :: inherited in
      memo.(c) <- Some ps;
      ps
  in
  go

(* See the interface for the derivation: with mdc a = mdc b,
   a dominates b  iff  fixed a is a suffix of fixed b
                   or  mdc (fixed b) is a virtual base of ldc a.
   [hides] on the fixed parts is exactly path-suffix (fixed parts carry
   only non-virtual edges, so kinds always match). *)
let dominates_via_closure cl a b =
  mdc a = mdc b
  &&
  let fa = fixed a and fb = fixed b in
  hides fa fb || Chg.Closure.is_virtual_base cl (mdc fb) a.ldc

let dominates g a b =
  mdc a = mdc b
  && List.exists (fun b' -> equiv b' b && hides a b') (all_to g (mdc b))

let pp g ppf p =
  Format.pp_print_string ppf (Chg.Graph.name g p.ldc);
  List.iter
    (fun s ->
      Format.fprintf ppf "%s%s"
        (match s.via with Chg.Graph.Virtual -> "=" | Chg.Graph.Non_virtual -> "-")
        (Chg.Graph.name g s.target))
    p.steps

let to_string g p = Format.asprintf "%a" (pp g) p
