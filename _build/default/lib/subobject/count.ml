(* Saturating arithmetic: diamond stacks double counts per level, so a
   few hundred classes overflow 63-bit ints. *)
let sat_add a b =
  let s = a + b in
  if s < a || s < b then max_int else s

let nv_path_counts g =
  let n = Chg.Graph.num_classes g in
  let nv = Array.make n 1 in
  (* class ids are topological: bases before derived *)
  for f = 0 to n - 1 do
    List.iter
      (fun (b : Chg.Graph.base) ->
        match b.b_kind with
        | Chg.Graph.Non_virtual -> nv.(f) <- sat_add nv.(f) nv.(b.b_class)
        | Chg.Graph.Virtual -> ())
      (Chg.Graph.bases g f)
  done;
  nv

let subobjects cl c =
  let g = Chg.Closure.graph cl in
  let nv = nv_path_counts g in
  Chg.Bitset.fold
    (fun f acc -> sat_add acc nv.(f))
    (Chg.Closure.virtual_bases_of cl c)
    nv.(c)

let table cl =
  let g = Chg.Closure.graph cl in
  let nv = nv_path_counts g in
  Array.init (Chg.Graph.num_classes g) (fun c ->
      Chg.Bitset.fold
        (fun f acc -> sat_add acc nv.(f))
        (Chg.Closure.virtual_bases_of cl c)
        nv.(c))

let max_over_classes cl =
  Array.fold_left max 0 (table cl)

let copies_of cl ~base ~within =
  let g = Chg.Closure.graph cl in
  let n = Chg.Graph.num_classes g in
  (* nv.(f) = # non-virtual-only paths from [base] to f *)
  let nv = Array.make n 0 in
  nv.(base) <- 1;
  for f = base + 1 to n - 1 do
    List.iter
      (fun (b : Chg.Graph.base) ->
        match b.b_kind with
        | Chg.Graph.Non_virtual -> nv.(f) <- sat_add nv.(f) nv.(b.b_class)
        | Chg.Graph.Virtual -> ())
      (Chg.Graph.bases g f)
  done;
  Chg.Bitset.fold
    (fun f acc -> sat_add acc nv.(f))
    (Chg.Closure.virtual_bases_of cl within)
    nv.(within)
