exception Error of string * Loc.t

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1)
  else Token.EOF

let advance st = st.pos <- st.pos + 1

let next st =
  let t = st.toks.(st.pos) in
  advance st;
  t

let fail st fmt =
  Format.kasprintf (fun msg -> raise (Error (msg, peek_loc st))) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek st))

let expect_ident st =
  match next st with
  | Token.IDENT s, loc -> (s, loc)
  | t, loc ->
    raise
      (Error
         (Printf.sprintf "expected identifier but found '%s'"
            (Token.to_string t), loc))

let accept st tok = if peek st = tok then (advance st; true) else false

(* type ::= builtin | IDENT, returning the base type name *)
let parse_type_base st =
  match next st with
  | Token.IDENT s, _ -> Ast.Named s
  | t, _ when Token.is_builtin_type t -> Ast.Builtin (Token.to_string t)
  | t, loc ->
    raise
      (Error
         (Printf.sprintf "expected a type but found '%s'" (Token.to_string t),
          loc))

let is_type_start = function
  | Token.IDENT _ -> true
  | t -> Token.is_builtin_type t

(* -- statements (used both by free functions and member-function
      bodies) ----------------------------------------------------------- *)

(* postfix ::= IDENT ("(" ")")? (("." | "->") IDENT ("(" ")")?)*
             | IDENT "::" IDENT ("(" ")")? *)
let parse_postfix st =
  let name, loc = expect_ident st in
  let call e l =
    if peek st = Token.LPAREN then begin
      advance st;
      expect st Token.RPAREN;
      Ast.Call (e, l)
    end
    else e
  in
  if accept st Token.COLONCOLON then begin
    let m, mloc = expect_ident st in
    call (Ast.Qualified (name, m, loc)) mloc
  end
  else begin
    let e = ref (call (Ast.Var (name, loc)) loc) in
    let rec selectors () =
      match peek st with
      | Token.DOT | Token.ARROW ->
        let arrow = peek st = Token.ARROW in
        advance st;
        let m, mloc = expect_ident st in
        e := Ast.Select (!e, { Ast.s_arrow = arrow; s_member = m; s_loc = mloc });
        e := call !e mloc;
        selectors ()
      | Token.LBRACE | Token.RBRACE | Token.LPAREN | Token.RPAREN
      | Token.COLON | Token.COLONCOLON | Token.SEMI | Token.COMMA
      | Token.STAR | Token.AMP | Token.EQUAL | Token.EOF | Token.IDENT _
      | Token.INT_LIT _ | Token.KW_class | Token.KW_struct | Token.KW_virtual
      | Token.KW_public | Token.KW_protected | Token.KW_private
      | Token.KW_static | Token.KW_enum | Token.KW_typedef | Token.KW_int
      | Token.KW_void | Token.KW_char | Token.KW_bool | Token.KW_float
      | Token.KW_double | Token.KW_long -> ()
    in
    selectors ();
    !e
  end

let rec parse_stmt st =
  match (peek st, peek2 st) with
  | Token.IDENT _, Token.COLON ->
    (* a label, as in Figure 9's "s1: E e;" *)
    advance st;
    advance st;
    parse_stmt st
  | t, _ when Token.is_builtin_type t -> parse_var_decl st
  | Token.IDENT _, Token.IDENT _ | Token.IDENT _, Token.STAR ->
    (* "E e;" or "E *p;": a declaration, not an access *)
    parse_var_decl st
  | Token.IDENT _, _ ->
    let e = parse_postfix st in
    let stmt =
      if accept st Token.EQUAL then begin
        match peek st with
        | Token.INT_LIT n ->
          advance st;
          Ast.Assign (e, Ast.Rint n)
        | Token.AMP ->
          advance st;
          Ast.Assign (e, Ast.Raddr (parse_postfix st))
        | _ -> fail st "expected an integer literal or '&'"
      end
      else Ast.Expr e
    in
    expect st Token.SEMI;
    stmt
  | t, _ ->
    fail st "expected a statement but found '%s'" (Token.to_string t)

and parse_var_decl st =
  let base = parse_type_base st in
  let pointer = accept st Token.STAR in
  let name, loc = expect_ident st in
  expect st Token.SEMI;
  Ast.Var_decl
    { v_type = { Ast.t_base = base; t_pointer = pointer }; v_name = name;
      v_loc = loc }

let parse_stmt_block st =
  expect st Token.LBRACE;
  let stmts = ref [] in
  while peek st <> Token.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.RBRACE;
  List.rev !stmts

(* -- class members ------------------------------------------------------ *)

(* base-spec ::= ("virtual" | access)* IDENT *)
let parse_base_spec st =
  let virt = ref false and access = ref None in
  let rec quals () =
    match peek st with
    | Token.KW_virtual ->
      advance st;
      virt := true;
      quals ()
    | Token.KW_public ->
      advance st;
      access := Some Chg.Graph.Public;
      quals ()
    | Token.KW_protected ->
      advance st;
      access := Some Chg.Graph.Protected;
      quals ()
    | Token.KW_private ->
      advance st;
      access := Some Chg.Graph.Private;
      quals ()
    | _ -> ()
  in
  quals ();
  let name, loc = expect_ident st in
  { Ast.b_virtual = !virt; b_access = !access; b_name = name; b_loc = loc }

let mk_member ?(static = false) ?(virtual_ = false) ?body ~kind ~access ~ty
    ~loc name =
  { Ast.md_name = name;
    md_type = ty;
    md_static = static;
    md_virtual = virtual_;
    md_kind = kind;
    md_access = access;
    md_body = body;
    md_loc = loc }

let int_ty = { Ast.t_base = Ast.Builtin "int"; t_pointer = false }

(* enum-decl ::= "enum" IDENT? "{" IDENT ("," IDENT)* ","? "}" ";"
   The enum name (if any) becomes a Type member; each enumerator an
   Enumerator member — paper Section 6: both "are treated exactly like
   static members" by lookup. *)
let parse_enum st ~access =
  expect st Token.KW_enum;
  let name =
    match peek st with
    | Token.IDENT _ -> Some (expect_ident st)
    | _ -> None
  in
  expect st Token.LBRACE;
  let enumerators = ref [] in
  let rec loop () =
    match peek st with
    | Token.RBRACE -> ()
    | Token.IDENT _ ->
      let n, loc = expect_ident st in
      (* optional "= literal" initializer *)
      if accept st Token.EQUAL then begin
        match next st with
        | Token.INT_LIT _, _ -> ()
        | _, l -> raise (Error ("expected an integer literal", l))
      end;
      enumerators := (n, loc) :: !enumerators;
      if accept st Token.COMMA then loop ()
    | t ->
      fail st "expected an enumerator but found '%s'" (Token.to_string t)
  in
  loop ();
  expect st Token.RBRACE;
  expect st Token.SEMI;
  let type_member =
    match name with
    | Some (n, loc) ->
      [ mk_member ~kind:Chg.Graph.Type ~access ~ty:int_ty ~loc n ]
    | None -> []
  in
  type_member
  @ List.rev_map
      (fun (n, loc) ->
        mk_member ~kind:Chg.Graph.Enumerator ~access ~ty:int_ty ~loc n)
      !enumerators

(* typedef-decl ::= "typedef" type "*"? IDENT ";" *)
let parse_typedef st ~access =
  expect st Token.KW_typedef;
  let base = parse_type_base st in
  let pointer = accept st Token.STAR in
  let name, loc = expect_ident st in
  expect st Token.SEMI;
  [ mk_member ~kind:Chg.Graph.Type ~access
      ~ty:{ Ast.t_base = base; t_pointer = pointer }
      ~loc name ]

(* member ::= access ":" | enum-decl | typedef-decl
            | "static"? "virtual"? type declarator ";" *)
let parse_member st ~current_access =
  match peek st with
  | Token.KW_public | Token.KW_protected | Token.KW_private ->
    let acc =
      match peek st with
      | Token.KW_public -> Chg.Graph.Public
      | Token.KW_protected -> Chg.Graph.Protected
      | _ -> Chg.Graph.Private
    in
    advance st;
    expect st Token.COLON;
    `Access acc
  | Token.KW_enum -> `Members (parse_enum st ~access:current_access)
  | Token.KW_typedef -> `Members (parse_typedef st ~access:current_access)
  | _ ->
    let is_static = accept st Token.KW_static in
    let is_virtual = accept st Token.KW_virtual in
    (* allow the order "virtual static" too, though C++ forbids the
       combination; sema rejects it with a clean diagnostic *)
    let is_static = is_static || accept st Token.KW_static in
    let base = parse_type_base st in
    let pointer = accept st Token.STAR in
    let name, loc = expect_ident st in
    let kind =
      if accept st Token.LPAREN then begin
        (* parameters are not part of the subset: empty list only *)
        expect st Token.RPAREN;
        Chg.Graph.Function
      end
      else Chg.Graph.Data
    in
    (* pure-virtual marker "= 0" *)
    if accept st Token.EQUAL then begin
      match next st with
      | Token.INT_LIT 0, _ -> ()
      | _, l -> raise (Error ("only '= 0' is allowed after a declarator", l))
    end;
    let body =
      if peek st = Token.LBRACE then Some (parse_stmt_block st) else None
    in
    if body = None then expect st Token.SEMI
    else ignore (accept st Token.SEMI);
    `Members
      [ mk_member ~static:is_static ~virtual_:is_virtual ?body ~kind
          ~access:current_access
          ~ty:{ Ast.t_base = base; t_pointer = pointer }
          ~loc name ]

let parse_class st =
  let kind =
    match next st with
    | Token.KW_class, _ -> `Class
    | Token.KW_struct, _ -> `Struct
    | _, loc -> raise (Error ("expected 'class' or 'struct'", loc))
  in
  let name, loc = expect_ident st in
  let bases =
    if accept st Token.COLON then begin
      let first = parse_base_spec st in
      let rec more acc =
        if accept st Token.COMMA then more (parse_base_spec st :: acc)
        else List.rev acc
      in
      more [ first ]
    end
    else []
  in
  expect st Token.LBRACE;
  let default_access =
    match kind with `Class -> Chg.Graph.Private | `Struct -> Chg.Graph.Public
  in
  let members = ref [] in
  let access = ref default_access in
  while peek st <> Token.RBRACE do
    match parse_member st ~current_access:!access with
    | `Access a -> access := a
    | `Members ms -> members := List.rev_append ms !members
  done;
  expect st Token.RBRACE;
  expect st Token.SEMI;
  { Ast.c_name = name;
    c_kind = kind;
    c_bases = bases;
    c_members = List.rev !members;
    c_loc = loc }

let parse_function st =
  let _ret = parse_type_base st in
  let name, loc = expect_ident st in
  expect st Token.LPAREN;
  expect st Token.RPAREN;
  let body = parse_stmt_block st in
  ignore (accept st Token.SEMI);
  { Ast.f_name = name; f_body = body; f_loc = loc }

let parse_program st =
  let classes = ref [] and funcs = ref [] in
  let rec loop () =
    match peek st with
    | Token.EOF -> ()
    | Token.KW_class | Token.KW_struct ->
      classes := parse_class st :: !classes;
      loop ()
    | t when is_type_start t ->
      funcs := parse_function st :: !funcs;
      loop ()
    | t -> fail st "expected a declaration but found '%s'" (Token.to_string t)
  in
  loop ();
  { Ast.classes = List.rev !classes; funcs = List.rev !funcs }

let parse_exn src =
  let toks =
    try Array.of_list (Lexer.tokenize src)
    with Lexer.Error (msg, loc) -> raise (Error (msg, loc))
  in
  parse_program { toks; pos = 0 }

let parse src =
  match parse_exn src with
  | program -> Ok program
  | exception Error (msg, loc) -> Result.Error (Diagnostic.error ~loc "%s" msg)
