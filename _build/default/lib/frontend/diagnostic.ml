(** Compiler diagnostics with source positions. *)

type severity = Error | Warning | Note

type t = { severity : severity; loc : Loc.t; message : string }

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf (fun message -> { severity = Error; loc; message }) fmt

let warning ?(loc = Loc.dummy) fmt =
  Format.kasprintf (fun message -> { severity = Warning; loc; message }) fmt

let note ?(loc = Loc.dummy) fmt =
  Format.kasprintf (fun message -> { severity = Note; loc; message }) fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ppf d =
  Format.fprintf ppf "%a: %s: %s" Loc.pp d.loc (severity_string d.severity)
    d.message

let to_string d = Format.asprintf "%a" pp d

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
