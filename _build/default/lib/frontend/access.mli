(** Access-rights computation (paper Section 6: "The access rights do not
    affect the member lookup process in any way; they are applied only
    after a successful member lookup to determine if that particular
    member access is legal", with the algorithmic details deferred to the
    companion technical report).

    We compute the effective access of a resolved member along the
    witness path returned by the lookup engine: starting from the
    member's declared access in its declaring class, each inheritance
    edge caps the access at the edge's access specifier, and a member
    that has become private in some class is not accessible in classes
    derived from it.

    Simplification (documented in DESIGN.md): C++ grants access if {e
    some} path to the resolved subobject grants it; we evaluate the
    single witness path.  For hierarchies without access-specifier
    asymmetry between equivalent paths the two coincide. *)

type visibility =
  | Accessible of Chg.Graph.access
      (** effective access in the scope of the path's most derived class:
          [Public] members are usable from anywhere, [Protected] from
          derived classes, [Private] from the class itself *)
  | Inaccessible
      (** the member became private somewhere strictly above the most
          derived class, so even the class itself cannot name it *)

(** [along_path g path ~member] is the visibility of [member] (declared
    in [Path.ldc path]) when reached through [path]. *)
val along_path :
  Chg.Graph.t -> Subobject.Path.t -> member:Chg.Graph.member -> visibility

(** [best_effective cl path ~member] is the C++-exact rule: the {e best}
    visibility over {e every} path denoting the same subobject as [path]
    (the whole [≈]-class).  The equivalence class of a v-path [p] with
    fixed part [f] ending at class [F] is exactly
    [{ f . δ | δ a virtual-first path from F to mdc p }], so the best is
    computed by one dynamic-programming sweep over the classes between
    [F] and [mdc p] in topological order — [O(|N| + |E|)] — rather than
    by path enumeration.  Property-tested against {!best_effective_spec}. *)
val best_effective :
  Chg.Closure.t -> Subobject.Path.t -> member:Chg.Graph.member -> visibility

(** [best_effective_spec g path ~member] is the same quantity by explicit
    enumeration of the equivalence class (worst-case exponential; the
    testing oracle). *)
val best_effective_spec :
  Chg.Graph.t -> Subobject.Path.t -> member:Chg.Graph.member -> visibility

(** [accessible_from_outside v] — usable in a non-member function such as
    [main], i.e. effectively public. *)
val accessible_from_outside : visibility -> bool

(** [best v1 v2] — the more permissive of two visibilities
    (Inaccessible < private < protected < public). *)
val best : visibility -> visibility -> visibility

val pp : Format.formatter -> visibility -> unit
