module G = Chg.Graph

let access_label = function
  | G.Public -> "public"
  | G.Protected -> "protected"
  | G.Private -> "private"

let member_line (m : G.member) =
  match m.m_kind with
  | G.Type -> Printf.sprintf "typedef int %s;" m.m_name
  | G.Enumerator -> Printf.sprintf "enum { %s };" m.m_name
  | G.Data ->
    Printf.sprintf "%sint %s;" (if m.m_static then "static " else "") m.m_name
  | G.Function ->
    Printf.sprintf "%s%svoid %s();"
      (if m.m_static then "static " else "")
      (if m.m_virtual then "virtual " else "")
      m.m_name

let to_source g =
  let buf = Buffer.create 1024 in
  G.iter_classes g (fun c ->
      (* "struct" with explicit access specifiers everywhere keeps the
         defaults out of the picture *)
      Buffer.add_string buf ("struct " ^ G.name g c);
      (match G.bases g c with
      | [] -> ()
      | bases ->
        Buffer.add_string buf " : ";
        Buffer.add_string buf
          (String.concat ", "
             (List.map
                (fun (b : G.base) ->
                  Printf.sprintf "%s%s %s"
                    (match b.b_kind with
                    | G.Virtual -> "virtual "
                    | G.Non_virtual -> "")
                    (access_label b.b_access)
                    (G.name g b.b_class))
                bases)));
      Buffer.add_string buf " {\n";
      List.iter
        (fun (m : G.member) ->
          Buffer.add_string buf
            (Printf.sprintf "%s:\n  %s\n" (access_label m.m_access)
               (member_line m)))
        (G.members g c);
      Buffer.add_string buf "};\n\n");
  Buffer.contents buf
