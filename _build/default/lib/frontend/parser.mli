(** Hand-written recursive-descent parser for the C++ subset.

    Grammar (informally):
    {v
    program     ::= (class-def | function-def)* EOF
    class-def   ::= ("class" | "struct") IDENT base-clause? "{" member* "}" ";"
    base-clause ::= ":" base-spec ("," base-spec)*
    base-spec   ::= ("virtual" | access-spec)* IDENT
    member      ::= access-spec ":"
                  | "enum" IDENT? "{" enumerator ("," enumerator)* "}" ";"
                  | "typedef" type "*"? IDENT ";"
                  | "static"? "virtual"? type declarator ";"
    enumerator  ::= IDENT ("=" INT)?
    declarator  ::= "*"? IDENT ("(" ")")? ("=" INT)? ("{" stmt* "}")?
    function-def::= type IDENT "(" ")" "{" stmt* "}"
    stmt        ::= IDENT ":" stmt                      (labels, as in Fig. 9)
                  | type "*"? IDENT ";"                 (variable declaration)
                  | postfix ("=" INT)? ";"              (member access)
    postfix     ::= IDENT (("." | "->") IDENT)*
                  | IDENT "::" IDENT
    type        ::= builtin | IDENT
    v}

    The ambiguity between a variable declaration [E e;] and an access
    expression [e.m;] is resolved with one token of lookahead, as the
    paper's Figure 9 program requires (it contains labelled statements
    [s1: E e; s2: e.m = 10;]). *)

exception Error of string * Loc.t

(** [parse src] parses a whole translation unit.  Returns the program or
    a diagnostic for the first syntax (or lexical) error. *)
val parse : string -> (Ast.program, Diagnostic.t) result

(** [parse_exn src] is [parse] but raising {!Error}. *)
val parse_exn : string -> Ast.program
