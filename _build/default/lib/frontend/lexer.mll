{
(* Lexer for the C++ subset.  Produces Token.t values; raises
   [Error (msg, loc)] on malformed input. *)

exception Error of string * Loc.t

let keywords =
  [ ("class", Token.KW_class);
    ("struct", Token.KW_struct);
    ("virtual", Token.KW_virtual);
    ("public", Token.KW_public);
    ("protected", Token.KW_protected);
    ("private", Token.KW_private);
    ("static", Token.KW_static);
    ("enum", Token.KW_enum);
    ("typedef", Token.KW_typedef);
    ("int", Token.KW_int);
    ("void", Token.KW_void);
    ("char", Token.KW_char);
    ("bool", Token.KW_bool);
    ("float", Token.KW_float);
    ("double", Token.KW_double);
    ("long", Token.KW_long) ]
}

let blank = [' ' '\t' '\r']
let digit = ['0'-'9']
let alpha = ['a'-'z' 'A'-'Z' '_']
let ident = alpha (alpha | digit)*

rule token = parse
  | blank+            { token lexbuf }
  | '\n'              { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']*    { token lexbuf }
  | "/*"              { comment (Loc.of_lexbuf lexbuf) lexbuf; token lexbuf }
  | ident as s        { match List.assoc_opt s keywords with
                        | Some kw -> kw
                        | None -> Token.IDENT s }
  | digit+ as s       { Token.INT_LIT (int_of_string s) }
  | "::"              { Token.COLONCOLON }
  | "->"              { Token.ARROW }
  | '{'               { Token.LBRACE }
  | '}'               { Token.RBRACE }
  | '('               { Token.LPAREN }
  | ')'               { Token.RPAREN }
  | ':'               { Token.COLON }
  | ';'               { Token.SEMI }
  | ','               { Token.COMMA }
  | '.'               { Token.DOT }
  | '*'               { Token.STAR }
  | '&'               { Token.AMP }
  | '='               { Token.EQUAL }
  | eof               { Token.EOF }
  | _ as c            { raise (Error (Printf.sprintf "unexpected character %C" c,
                                      Loc.of_lexbuf lexbuf)) }

and comment start = parse
  | "*/"              { () }
  | '\n'              { Lexing.new_line lexbuf; comment start lexbuf }
  | eof               { raise (Error ("unterminated comment", start)) }
  | _                 { comment start lexbuf }

{
(* [tokenize src] lexes a whole string into (token, location) pairs,
   ending with EOF. *)
let tokenize src =
  let lexbuf = Lexing.from_string src in
  let rec loop acc =
    let loc = Loc.of_lexbuf lexbuf in
    (* lexeme_start_p before reading gives the position of skipped
       blanks; read first, then take the start of the lexeme. *)
    ignore loc;
    let tok = token lexbuf in
    let loc = Loc.of_lexbuf lexbuf in
    if tok = Token.EOF then List.rev ((tok, loc) :: acc)
    else loop ((tok, loc) :: acc)
  in
  loop []
}
