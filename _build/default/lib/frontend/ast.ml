(** Abstract syntax for the C++ subset.

    The subset is exactly what the member lookup problem needs end to end:
    class definitions (inheritance lists with [virtual] and access
    specifiers; data/function members, possibly [static] or [virtual]) and
    function bodies whose statements declare variables of class type and
    access their members with [.], [->], or qualified [X::m] syntax. *)

type type_name =
  | Builtin of string  (** [int], [void], ... *)
  | Named of string  (** a class name *)

type ty = { t_base : type_name; t_pointer : bool }

type base_spec = {
  b_virtual : bool;
  b_access : Chg.Graph.access option;  (** [None]: the class-kind default *)
  b_name : string;
  b_loc : Loc.t;
}

(** A member access expression: a variable followed by a chain of [.] or
    [->] selections, e.g. [p->next.value]. *)
type selector = { s_arrow : bool; s_member : string; s_loc : Loc.t }

type expr =
  | Var of string * Loc.t
  | Select of expr * selector
  | Qualified of string * string * Loc.t  (** [X::m] *)
  | Call of expr * Loc.t
      (** a postfix expression followed by [()]: a nullary member-function
          call; the callee is a [Var] (implicit this), [Select] chain or
          [Qualified] name resolving to a function member *)

(** Right-hand side of an assignment statement. *)
type rhs =
  | Rint of int  (** [lhs = 42;] *)
  | Raddr of expr  (** [lhs = &expr;] *)

type stmt =
  | Var_decl of { v_type : ty; v_name : string; v_loc : Loc.t }
  | Expr of expr  (** an access evaluated for its effect *)
  | Assign of expr * rhs

type member_decl = {
  md_name : string;
  md_type : ty;
  md_static : bool;
  md_virtual : bool;
  md_kind : Chg.Graph.member_kind;
  md_access : Chg.Graph.access;  (** resolved from the enclosing section *)
  md_body : stmt list option;
      (** member-function body, when present: its statements are resolved
          with unqualified-name lookup through the class scope *)
  md_loc : Loc.t;
}

type class_decl = {
  c_name : string;
  c_kind : [ `Class | `Struct ];
  c_bases : base_spec list;
  c_members : member_decl list;
  c_loc : Loc.t;
}

type func = {
  f_name : string;
  f_body : stmt list;
  f_loc : Loc.t;
}

type program = { classes : class_decl list; funcs : func list }

let rec expr_loc = function
  | Var (_, l) -> l
  | Select (_, s) -> s.s_loc
  | Qualified (_, _, l) -> l
  | Call (e, _) -> expr_loc e
