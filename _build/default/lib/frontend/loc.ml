(** Source positions for diagnostics. *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let of_lexbuf lexbuf =
  let p = Lexing.lexeme_start_p lexbuf in
  { line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1 }

let pp ppf { line; col } = Format.fprintf ppf "%d:%d" line col
