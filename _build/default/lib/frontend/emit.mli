(** Emit a class hierarchy graph back as C++-subset source text — the
    inverse of the front end, closing the loop
    [source -> graph -> source]:

    - [Sema.analyze_source (to_source g)] rebuilds a graph isomorphic to
      [g] (property-tested), and
    - imported JSON hierarchies can be materialized as compilable-looking
      C++ for inspection or for feeding other tools.

    Member types are not stored in the graph, so data members are
    emitted as [int]; enumeration constants are emitted as one anonymous
    [enum] per constant (grouping is not recorded either); nested type
    names become [typedef int T;].  None of this affects lookup, which
    is name-based. *)

val to_source : Chg.Graph.t -> string
