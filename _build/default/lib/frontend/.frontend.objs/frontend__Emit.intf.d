lib/frontend/emit.mli: Chg
