lib/frontend/sema.ml: Access Ast Chg Diagnostic Format Hashtbl List Loc Lookup_core Option Parser Subobject
