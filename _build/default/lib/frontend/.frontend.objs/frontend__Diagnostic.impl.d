lib/frontend/diagnostic.ml: Format List Loc
