lib/frontend/access.ml: Array Chg Format List Option Subobject
