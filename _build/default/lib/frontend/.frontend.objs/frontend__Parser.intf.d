lib/frontend/parser.mli: Ast Diagnostic Loc
