lib/frontend/sema.mli: Access Ast Chg Diagnostic Format Loc Lookup_core Subobject
