lib/frontend/access.mli: Chg Format Subobject
