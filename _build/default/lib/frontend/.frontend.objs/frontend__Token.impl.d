lib/frontend/token.ml:
