lib/frontend/parser.ml: Array Ast Chg Diagnostic Format Lexer List Loc Printf Result Token
