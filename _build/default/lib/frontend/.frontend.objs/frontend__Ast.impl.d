lib/frontend/ast.ml: Chg Loc
