lib/frontend/lexer.ml: Lexing List Loc Printf Token
