lib/frontend/loc.ml: Format Lexing
