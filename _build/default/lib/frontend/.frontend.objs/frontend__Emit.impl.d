lib/frontend/emit.ml: Buffer Chg List Printf String
