(** Tokens of the C++ subset.  The subset covers what member lookup
    needs: class definitions with inheritance lists (virtual and access
    specifiers), member declarations (data, functions, static, virtual),
    and function bodies with variable declarations and member accesses. *)

type t =
  | KW_class
  | KW_struct
  | KW_virtual
  | KW_public
  | KW_protected
  | KW_private
  | KW_static
  | KW_enum
  | KW_typedef
  | KW_int
  | KW_void
  | KW_char
  | KW_bool
  | KW_float
  | KW_double
  | KW_long
  | IDENT of string
  | INT_LIT of int
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | COLONCOLON
  | SEMI
  | COMMA
  | DOT
  | ARROW
  | STAR
  | AMP
  | EQUAL
  | EOF

let to_string = function
  | KW_class -> "class"
  | KW_struct -> "struct"
  | KW_virtual -> "virtual"
  | KW_public -> "public"
  | KW_protected -> "protected"
  | KW_private -> "private"
  | KW_static -> "static"
  | KW_enum -> "enum"
  | KW_typedef -> "typedef"
  | KW_int -> "int"
  | KW_void -> "void"
  | KW_char -> "char"
  | KW_bool -> "bool"
  | KW_float -> "float"
  | KW_double -> "double"
  | KW_long -> "long"
  | IDENT s -> s
  | INT_LIT n -> string_of_int n
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COLON -> ":"
  | COLONCOLON -> "::"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "->"
  | STAR -> "*"
  | AMP -> "&"
  | EQUAL -> "="
  | EOF -> "<eof>"

let is_builtin_type = function
  | KW_int | KW_void | KW_char | KW_bool | KW_float | KW_double | KW_long ->
    true
  | _ -> false
