type visibility =
  | Accessible of Chg.Graph.access
  | Inaccessible

let rank = function
  | Chg.Graph.Public -> 2
  | Chg.Graph.Protected -> 1
  | Chg.Graph.Private -> 0

let min_access a b = if rank a <= rank b then a else b

let along_path g path ~member =
  let nodes = Subobject.Path.nodes path in
  let find_edge_access base derived =
    match
      List.find_opt
        (fun (b : Chg.Graph.base) -> b.b_class = base)
        (Chg.Graph.bases g derived)
    with
    | Some b -> b.b_access
    | None -> assert false  (* the path is a real path of g *)
  in
  let rec walk cur = function
    | [] | [ _ ] -> Accessible cur
    | base :: (derived :: _ as rest) ->
      (* A private member of the base is not accessible in the derived
         class at all. *)
      if cur = Chg.Graph.Private then Inaccessible
      else walk (min_access cur (find_edge_access base derived)) rest
  in
  walk member.Chg.Graph.m_access nodes

let vis_rank = function
  | Inaccessible -> -1
  | Accessible a -> rank a

let best v1 v2 = if vis_rank v1 >= vis_rank v2 then v1 else v2

(* One inheritance step: a member with visibility [v] in the base seen
   through an edge with access specifier [e].  Private members are not
   accessible in derived classes at all. *)
let step v e =
  match v with
  | Inaccessible | Accessible Chg.Graph.Private -> Inaccessible
  | Accessible a -> Accessible (min_access a e)

let best_effective cl path ~member =
  let g = Chg.Closure.graph cl in
  let fixed = Subobject.Path.fixed path in
  let a0 = along_path g fixed ~member in
  if not (Subobject.Path.is_v_path path) then a0
  else begin
    (* DP over the classes from F = mdc fixed to C = mdc path: v.(y) is
       the best visibility over virtual-first paths F => y.  Class ids
       are topological, so one increasing sweep suffices. *)
    let f = Subobject.Path.mdc fixed in
    let c = Subobject.Path.mdc path in
    let v = Array.make (Chg.Graph.num_classes g) None in
    for y = f + 1 to c do
      List.iter
        (fun (b : Chg.Graph.base) ->
          let x = b.b_class in
          let from_x =
            if x = f then
              (* the first edge of the continuation must be virtual, or
                 the fixed part would extend through it *)
              if b.b_kind = Chg.Graph.Virtual then Some (step a0 b.b_access)
              else None
            else Option.map (fun vx -> step vx b.b_access) v.(x)
          in
          match from_x with
          | None -> ()
          | Some vis ->
            v.(y) <-
              Some (match v.(y) with None -> vis | Some w -> best vis w))
        (Chg.Graph.bases g y)
    done;
    match v.(c) with
    | Some vis -> vis
    | None -> assert false  (* path is a real v-path of g *)
  end

let best_effective_spec g path ~member =
  let equivalent =
    List.filter
      (Subobject.Path.equiv path)
      (Subobject.Path.all_to g (Subobject.Path.mdc path))
  in
  List.fold_left
    (fun acc p -> best acc (along_path g p ~member))
    Inaccessible equivalent

let accessible_from_outside = function
  | Accessible Chg.Graph.Public -> true
  | Accessible (Chg.Graph.Protected | Chg.Graph.Private) | Inaccessible ->
    false

let pp ppf = function
  | Inaccessible -> Format.pp_print_string ppf "inaccessible"
  | Accessible a ->
    Format.pp_print_string ppf
      (match a with
      | Chg.Graph.Public -> "public"
      | Chg.Graph.Protected -> "protected"
      | Chg.Graph.Private -> "private")
