module Engine = Lookup_core.Engine

type binding =
  | Variable of string
  | Function_decl
  | Type_alias

type scope =
  | Block of (string * binding) list
  | Namespace of string * (string * binding) list
  | Class_scope of Chg.Graph.class_id

type result =
  | Found of binding
  | Found_member of {
      context : Chg.Graph.class_id;
      target : Chg.Graph.class_id;
    }
  | Ambiguous_member of Chg.Graph.class_id
  | Unbound

let lookup engine stack name =
  let rec search = function
    | [] -> Unbound
    | Block bindings :: outer | Namespace (_, bindings) :: outer ->
      (match List.assoc_opt name bindings with
      | Some b -> Found b
      | None -> search outer)
    | Class_scope c :: outer ->
      (* The local lookup within a class scope is exactly the member
         lookup problem; a hit (even an ambiguous one) ends the search. *)
      (match Engine.lookup engine c name with
      | Some (Engine.Red r) ->
        Found_member
          { context = c; target = r.Lookup_core.Abstraction.r_ldc }
      | Some (Engine.Blue _) -> Ambiguous_member c
      | None -> search outer)
  in
  search stack

let pp_result g ppf = function
  | Unbound -> Format.pp_print_string ppf "unbound"
  | Found (Variable ty) -> Format.fprintf ppf "variable of type %s" ty
  | Found Function_decl -> Format.pp_print_string ppf "function"
  | Found Type_alias -> Format.pp_print_string ppf "type alias"
  | Found_member { context; target } ->
    Format.fprintf ppf "member declared in %s (searched in class scope %s)"
      (Chg.Graph.name g target) (Chg.Graph.name g context)
  | Ambiguous_member c ->
    Format.fprintf ppf "ambiguous member of %s" (Chg.Graph.name g c)
