(** Unqualified-name lookup (paper Section 6): "The resolution of an
    unqualified name in C++ is essentially the same as the traditional
    name lookup process in the presence of nested scopes.  The only
    complication is that any of these nested scopes may itself be a
    class, and the local lookup within a class scope itself reduces to
    the member lookup problem addressed in this paper."

    A scope stack is searched innermost-first.  Block and namespace
    scopes hold plain bindings; a class scope delegates to the member
    lookup engine, and an ambiguous member lookup poisons the whole
    resolution (it does {e not} fall through to an outer scope, matching
    C++: name lookup stops at the first scope containing the name). *)

type binding =
  | Variable of string  (** declared type, informally *)
  | Function_decl
  | Type_alias

type scope =
  | Block of (string * binding) list
  | Namespace of string * (string * binding) list
  | Class_scope of Chg.Graph.class_id
      (** e.g. the body of a member function of that class *)

type result =
  | Found of binding  (** bound in a block or namespace scope *)
  | Found_member of {
      context : Chg.Graph.class_id;  (** the class scope that matched *)
      target : Chg.Graph.class_id;  (** declaring class of the member *)
    }
  | Ambiguous_member of Chg.Graph.class_id
      (** the innermost class scope containing the name has an ambiguous
          lookup for it *)
  | Unbound

(** [lookup engine stack name] searches [stack] (innermost scope first).
    [engine] must cover the graph the class scopes refer to. *)
val lookup : Lookup_core.Engine.t -> scope list -> string -> result

val pp_result : Chg.Graph.t -> Format.formatter -> result -> unit
