(** Class hierarchy slicing in the style of Tip, Choi, Field and
    Ramalingam (OOPSLA 1996), which the paper names as a client of its
    lookup algorithm ("our lookup algorithm is also useful in efficiently
    implementing class hierarchy slicing").

    Given a set of {e seed} lookups — the (class, member) pairs a program
    actually performs — the slice keeps only the classes, inheritance
    edges and member declarations that can influence those lookups:

    - for every seed [(c, m)], every class on a CHG path from a class
      declaring [m] to [c] (such classes carry the definition paths whose
      [≈]-classes and dominance relations decide the verdict);
    - every declaration of [m] in those classes (other declarations in
      kept classes are dropped; they cannot affect a lookup of [m]);
    - every inheritance edge between two kept classes that lies on such a
      path.

    The guarantee (property-tested against the oracle): every seed lookup
    has the same verdict — same resolving class and subobject for
    resolved lookups, ambiguity preserved — in the sliced hierarchy. *)

type seed = { sd_class : Chg.Graph.class_id; sd_member : string }

type t = {
  sliced : Chg.Graph.t;  (** the reduced hierarchy *)
  kept : (Chg.Graph.class_id * Chg.Graph.class_id) list;
      (** (original id, sliced id) for every kept class *)
  dropped_classes : int;
  dropped_members : int;
  dropped_edges : int;
}

(** [slice g seeds] computes the slice. *)
val slice : Chg.Graph.t -> seed list -> t

(** [to_sliced t c] is the sliced id of original class [c], if kept. *)
val to_sliced : t -> Chg.Graph.class_id -> Chg.Graph.class_id option

(** [of_sliced t c] is the original id of sliced class [c]. *)
val of_sliced : t -> Chg.Graph.class_id -> Chg.Graph.class_id

val pp_stats : Format.formatter -> t -> unit
