module G = Chg.Graph

type seed = { sd_class : G.class_id; sd_member : string }

type t = {
  sliced : G.t;
  kept : (G.class_id * G.class_id) list;
  dropped_classes : int;
  dropped_members : int;
  dropped_edges : int;
}

let slice g seeds =
  let cl = Chg.Closure.compute g in
  let n = G.num_classes g in
  let keep_class = Array.make n false in
  let keep_member : (G.class_id * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let keep_edge : (G.class_id * G.class_id, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun { sd_class = c; sd_member = m } ->
      (* classes declaring m somewhere at or above c *)
      let declaring =
        List.filter
          (fun x -> G.declares g x m && Chg.Closure.is_base_or_self cl x c)
          (G.classes g)
      in
      (* R = classes lying on a declaring-class => c path *)
      let relevant = Chg.Bitset.create n in
      List.iter
        (fun y ->
          if
            Chg.Closure.is_base_or_self cl y c
            && List.exists
                 (fun x -> Chg.Closure.is_base_or_self cl x y)
                 declaring
          then Chg.Bitset.add relevant y)
        (G.classes g);
      Chg.Bitset.iter
        (fun y ->
          keep_class.(y) <- true;
          if G.declares g y m then Hashtbl.replace keep_member (y, m) ();
          List.iter
            (fun (b : G.base) ->
              if Chg.Bitset.mem relevant b.b_class then
                Hashtbl.replace keep_edge (b.b_class, y) ())
            (G.bases g y))
        relevant)
    seeds;
  (* Rebuild in original id order (a topological order). *)
  let builder = G.create_builder () in
  let mapping = ref [] in
  let dropped_members = ref 0 and dropped_edges = ref 0 in
  G.iter_classes g (fun c ->
      if keep_class.(c) then begin
        let bases =
          List.filter_map
            (fun (b : G.base) ->
              if Hashtbl.mem keep_edge (b.b_class, c) then
                Some (G.name g b.b_class, b.b_kind, b.b_access)
              else begin
                incr dropped_edges;
                None
              end)
            (G.bases g c)
        in
        let members =
          List.filter
            (fun (m : G.member) ->
              if Hashtbl.mem keep_member (c, m.m_name) then true
              else begin
                incr dropped_members;
                false
              end)
            (G.members g c)
        in
        let id = G.add_class builder (G.name g c) ~bases ~members in
        mapping := (c, id) :: !mapping
      end
      else begin
        dropped_members := !dropped_members + List.length (G.members g c);
        dropped_edges := !dropped_edges + List.length (G.bases g c)
      end);
  let sliced = G.freeze builder in
  { sliced;
    kept = List.rev !mapping;
    dropped_classes = n - G.num_classes sliced;
    dropped_members = !dropped_members;
    dropped_edges = !dropped_edges }

let to_sliced t c = List.assoc_opt c t.kept
let of_sliced t c =
  fst (List.find (fun (_, s) -> s = c) t.kept)

let pp_stats ppf t =
  Format.fprintf ppf
    "kept %d classes (dropped %d), dropped %d member decls, %d edges"
    (G.num_classes t.sliced) t.dropped_classes t.dropped_members
    t.dropped_edges
