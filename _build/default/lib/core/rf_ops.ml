type result =
  | Resolved of Subobject.Sgraph.subobject
  | Ambiguous
  | Undeclared


let resolve_with_witness eng c m =
  match Engine.lookup eng c m with
  | None -> `Undeclared
  | Some (Engine.Blue _) -> `Ambiguous
  | Some (Engine.Red _) ->
    (match Engine.witness eng c m with
    | Some p -> `Path p
    | None ->
      invalid_arg "Rf_ops: engine must be built with ~witnesses:true")

let dyn eng sg m =
  match resolve_with_witness eng (Subobject.Sgraph.most_derived sg) m with
  | `Undeclared -> Undeclared
  | `Ambiguous -> Ambiguous
  | `Path p -> Resolved (Subobject.Sgraph.of_path sg p)

let stat eng sg s m =
  match resolve_with_witness eng (Subobject.Sgraph.ldc sg s) m with
  | `Undeclared -> Undeclared
  | `Ambiguous -> Ambiguous
  | `Path p ->
    (* [α] ∘ [σ] = [α . β] for any representative β of σ. *)
    let beta = Subobject.Sgraph.a_path sg s in
    Resolved (Subobject.Sgraph.of_path sg (Subobject.Path.concat p beta))

let pp_result sg ppf = function
  | Undeclared -> Format.pp_print_string ppf "undeclared"
  | Ambiguous -> Format.pp_print_string ppf "ambiguous"
  | Resolved s -> Format.fprintf ppf "resolved %a" (Subobject.Sgraph.pp_subobject sg) s
