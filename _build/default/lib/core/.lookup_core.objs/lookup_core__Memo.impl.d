lib/core/memo.ml: Abstraction Chg Engine Hashtbl List
