lib/core/engine.ml: Abstraction Array Chg Format Hashtbl List Option String Subobject
