lib/core/engine.mli: Abstraction Chg Format Subobject
