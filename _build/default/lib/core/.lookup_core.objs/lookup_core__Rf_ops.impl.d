lib/core/rf_ops.ml: Engine Format Subobject
