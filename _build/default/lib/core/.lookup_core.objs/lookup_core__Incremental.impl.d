lib/core/incremental.ml: Abstraction Array Chg Engine Hashtbl List
