lib/core/rf_ops.mli: Engine Format Subobject
