lib/core/memo.mli: Chg Engine
