lib/core/abstraction.ml: Chg Format List Subobject
