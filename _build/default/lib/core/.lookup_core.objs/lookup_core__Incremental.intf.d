lib/core/incremental.mli: Chg Engine
