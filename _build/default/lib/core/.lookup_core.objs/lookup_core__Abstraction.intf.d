lib/core/abstraction.mli: Chg Format Subobject
