(** The Rossie–Friedman lookup operations [dyn] and [stat] (paper Section
    7.1), staged through this library's compile-time lookup.

    Rossie and Friedman define member lookup as partial functions from
    subobjects to subobjects: [dyn m σ] models the lookup performed for a
    {e virtual} member access (resolved against the complete object) and
    [stat m σ] the lookup for a {e non-virtual} access (resolved against
    the static type, then re-based into the complete object).  The paper
    shows both reduce to the class-level [lookup]:

    {v dyn(m, σ)  = lookup(mdc σ, m)
 stat(m, σ) = lookup(ldc σ, m) ∘ σ        where [α] ∘ [β] = [α.β] v}

    staging the expensive part at compile time exactly as real C++
    implementations do (the run-time part is a constant-time vtable or
    offset operation). *)

type result =
  | Resolved of Subobject.Sgraph.subobject
  | Ambiguous
  | Undeclared

(** [dyn eng sg m] resolves a virtual access to member [m] on the complete
    object of [sg].  [eng] must be an {!Engine.t} built with
    [~witnesses:true] over the same graph.  Every subobject of the same
    complete object yields the same answer, so the subobject argument of
    the formal definition is implied by [sg]. *)
val dyn : Engine.t -> Subobject.Sgraph.t -> string -> result

(** [stat eng sg s m] resolves a non-virtual access to member [m] through
    subobject [s] of [sg]'s complete object: lookup in [ldc s]'s class
    context, then compose the witness path onto a path representing [s]. *)
val stat : Engine.t -> Subobject.Sgraph.t -> Subobject.Sgraph.subobject -> string -> result

val pp_result : Subobject.Sgraph.t -> Format.formatter -> result -> unit
