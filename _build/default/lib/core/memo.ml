open Abstraction

type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  static_rule : bool;
  cache : (Chg.Graph.class_id * string, Engine.verdict option) Hashtbl.t;
}

let create ?(static_rule = true) cl =
  { g = Chg.Closure.graph cl; cl; static_rule; cache = Hashtbl.create 64 }

let rec lookup t c m =
  match Hashtbl.find_opt t.cache (c, m) with
  | Some v -> v
  | None ->
    let v = compute t c m in
    Hashtbl.add t.cache (c, m) v;
    v

and compute t c m =
  if Chg.Graph.declares t.g c m then
    Some (Engine.Red { r_ldc = c; r_lvs = [ Omega ] })
  else begin
    let incoming =
      List.concat_map
        (fun (b : Chg.Graph.base) ->
          let x = b.b_class in
          match lookup t x m with
          | None -> []
          | Some (Engine.Red r) ->
            [ (Engine.Red (extend_red r x b.b_kind), None) ]
          | Some (Engine.Blue s) ->
            [ (Engine.Blue (List.map (fun v -> o v x b.b_kind) s), None) ])
        (Chg.Graph.bases t.g c)
    in
    match incoming with
    | [] -> None
    | _ ->
      let is_static_at l =
        t.static_rule
        &&
        match Chg.Graph.find_member t.g l m with
        | Some mem -> Chg.Graph.member_is_static_like mem
        | None -> false
      in
      let v, _w =
        Engine.combine_incoming ~vbase:(Chg.Closure.is_virtual_base t.cl)
          ~is_static_at incoming
      in
      Some v
  end

let cached_entries t = Hashtbl.length t.cache
