(** Query workloads over a hierarchy: sequences of (class, member)
    lookups with controllable locality, for comparing the eager table
    against the lazy memoising variant (paper Section 5: a compiler
    resolving only a few accesses should not tabulate everything). *)

type query = { q_class : Chg.Graph.class_id; q_member : string }

(** [sparse g ~queries ~classes ~seed] — [queries] lookups drawn from a
    random subset of [classes] classes (locality: real translation units
    touch few classes), members drawn from the program's member names. *)
val sparse :
  Chg.Graph.t -> queries:int -> classes:int -> seed:int -> query list

(** [exhaustive g] — every (class, member-name) pair once, in order: the
    whole-program static analysis workload. *)
val exhaustive : Chg.Graph.t -> query list

(** [run_memo memo ws] / [run_engine eng ws] — drive a workload, returning
    how many lookups resolved (a checksum so the work isn't dead code). *)
val run_memo : Lookup_core.Memo.t -> query list -> int
val run_engine : Lookup_core.Engine.t -> query list -> int
