module G = Chg.Graph

let nv = G.Non_virtual
let v = G.Virtual
let pub = G.Public

let build decls =
  let b = G.create_builder () in
  List.iter
    (fun (name, bases, members) ->
      ignore
        (G.add_class b name
           ~bases:(List.map (fun (bn, k) -> (bn, k, pub)) bases)
           ~members:(List.map G.member members)))
    decls;
  G.freeze b

let fig1 () =
  build
    [ ("A", [], [ "m" ]);
      ("B", [ ("A", nv) ], []);
      ("C", [ ("B", nv) ], []);
      ("D", [ ("B", nv) ], [ "m" ]);
      ("E", [ ("C", nv); ("D", nv) ], []) ]

let fig2 () =
  build
    [ ("A", [], [ "m" ]);
      ("B", [ ("A", nv) ], []);
      ("C", [ ("B", v) ], []);
      ("D", [ ("B", v) ], [ "m" ]);
      ("E", [ ("C", nv); ("D", nv) ], []) ]

let fig3 () =
  build
    [ ("A", [], [ "foo" ]);
      ("B", [ ("A", nv) ], []);
      ("C", [ ("A", nv) ], []);
      ("D", [ ("B", nv); ("C", nv) ], [ "bar" ]);
      ("E", [], [ "bar" ]);
      ("F", [ ("D", v); ("E", nv) ], []);
      ("G", [ ("D", v) ], [ "foo"; "bar" ]);
      ("H", [ ("F", nv); ("G", nv) ], []) ]

let fig9 () =
  build
    [ ("S", [], [ "m" ]);
      ("A", [ ("S", v) ], [ "m" ]);
      ("B", [ ("S", v) ], [ "m" ]);
      ("C", [ ("A", v); ("B", v) ], [ "m" ]);
      ("D", [ ("C", nv) ], []);
      ("E", [ ("A", v); ("B", v); ("D", nv) ], []) ]
