(** The class hierarchies of the paper's figures, used by the test suite,
    the examples and the bench harness.

    Class and member names follow the paper exactly. *)

(** Figure 1: non-virtual inheritance.
    [A {m}; B : A; C : B; D : B {m}; E : C, D].
    An [E] object has {e two} [A] subobjects; [lookup (E, m)] is
    ambiguous. *)
val fig1 : unit -> Chg.Graph.t

(** Figure 2: the same program with virtual inheritance.
    [A {m}; B : A; C : virtual B; D : virtual B {m}; E : C, D].
    An [E] object has one shared [A] subobject; [lookup (E, m)] resolves
    to [D::m]. *)
val fig2 : unit -> Chg.Graph.t

(** Figure 3 (and 4-7): the running 8-class example.
    [A {foo}; B : A; C : A; D : B, C; E {bar}; F : virtual D, E;
     G : virtual D {foo, bar}; H : F, G; D also declares bar.]

    Known facts from the paper:
    - four paths from [A] to [H] in two [≈]-classes
      ([ABDFH ≈ ABDGH], [ACDFH ≈ ACDGH]);
    - [Defns (H, foo)] has three subobjects, [lookup (H, foo) = [GH]];
    - [Defns (H, bar)] has three subobjects, [lookup (H, bar) = ⊥];
    - [lookup (F, foo)] and [lookup (F, bar)] are both ambiguous. *)
val fig3 : unit -> Chg.Graph.t

(** Figure 9: the g++ counterexample.
    [S {m}; A : virtual S {m}; B : virtual S {m};
     C : virtual A, virtual B {m}; D : C; E : virtual A, virtual B, D].
    [lookup (E, m)] is unambiguous (resolves to [C::m]) but the g++ scan
    reports ambiguity. *)
val fig9 : unit -> Chg.Graph.t
