type query = { q_class : Chg.Graph.class_id; q_member : string }

let sparse g ~queries ~classes ~seed =
  let st = Random.State.make [| seed; queries; classes |] in
  let n = Chg.Graph.num_classes g in
  let members = Array.of_list (Chg.Graph.member_names g) in
  if n = 0 || Array.length members = 0 then []
  else begin
    let pool =
      Array.init (min classes n) (fun _ -> Random.State.int st n)
    in
    List.init queries (fun _ ->
        { q_class = pool.(Random.State.int st (Array.length pool));
          q_member = members.(Random.State.int st (Array.length members)) })
  end

let exhaustive g =
  List.concat_map
    (fun c ->
      List.map
        (fun m -> { q_class = c; q_member = m })
        (Chg.Graph.member_names g))
    (Chg.Graph.classes g)

let run_memo memo ws =
  List.fold_left
    (fun acc q ->
      match Lookup_core.Memo.lookup memo q.q_class q.q_member with
      | Some (Lookup_core.Engine.Red _) -> acc + 1
      | Some (Lookup_core.Engine.Blue _) | None -> acc)
    0 ws

let run_engine eng ws =
  List.fold_left
    (fun acc q ->
      match Lookup_core.Engine.lookup eng q.q_class q.q_member with
      | Some (Lookup_core.Engine.Red _) -> acc + 1
      | Some (Lookup_core.Engine.Blue _) | None -> acc)
    0 ws
