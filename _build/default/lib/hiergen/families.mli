(** Parameterized hierarchy families for benchmarks and property tests.

    Each generator returns a {!Chg.Graph.t} plus a designated {e probe}
    class (usually the most derived one) on which lookups are interesting.
    All generators are deterministic given their parameters (and seed,
    where applicable). *)

type instance = {
  graph : Chg.Graph.t;
  probe : Chg.Graph.class_id;  (** the class benchmarks query *)
  description : string;
}

(** [chain ~n ~kind] — single inheritance chain [C0 <- C1 <- ... <- Cn-1];
    [C0] declares member ["m"].  Unambiguous everywhere; the simplest
    linear-time case. *)
val chain : n:int -> kind:Chg.Graph.edge_kind -> instance

(** [diamond_stack ~levels ~kind] — stacked diamonds
    [A0; Li : A(i-1); Ri : A(i-1); Ai : Li, Ri].  With non-virtual edges
    the bottom class has [2^levels] subobjects of class [A0] (the
    exponential subobject-graph family, experiment C3); with virtual edges
    all paths collapse onto shared subobjects.  [A0] declares ["m"];
    lookups of ["m"] at the bottom are ambiguous in the non-virtual case
    and resolve in the virtual case. *)
val diamond_stack : levels:int -> kind:Chg.Graph.edge_kind -> instance

(** [redeclared_diamond_stack ~levels ~kind] — like {!diamond_stack} but
    every join class [Ai] redeclares ["m"], so every lookup is
    unambiguous: the paper's "common case" on a dense DAG. *)
val redeclared_diamond_stack :
  levels:int -> kind:Chg.Graph.edge_kind -> instance

(** [fence ~width ~levels] — each level has [width] classes all deriving
    (non-virtually) from every class of the previous level; classes of the
    first level all declare ["m"].  Lookups at lower levels see
    [width]-way ambiguity with many blue definitions: the quadratic
    worst-case driver (experiment C2). *)
val fence : width:int -> levels:int -> instance

(** [wide_tree ~fanout ~depth] — single-inheritance complete tree, root
    declares ["m"]; probe is a deepest leaf.  [n = (fanout^(depth+1)-1) /
    (fanout-1)] classes. *)
val wide_tree : fanout:int -> depth:int -> instance

(** [blue_chain ~width ~depth] — the general-case (quadratic) driver: for
    each [i < width] a class [Wi] declaring ["m"] and a mixin
    [Mi : virtual Wi]; then [C0 : M0, ..., M(width-1)] and a chain
    [Cj : C(j-1)] of length [depth].  At [C0] the incoming definitions
    abstract to [width] pairwise-incomparable [(Wi, Wi)] reds, so a blue
    set of [width] {e distinct} leastVirtual values flows down the whole
    chain — O(width) work per edge, the paper's [O(|N| * (|N|+|E|))]
    general case (a plain {!fence} does not trigger it: its blue sets
    collapse to [{Ω}]). *)
val blue_chain : width:int -> depth:int -> instance

(** [random_dag ~n ~max_bases ~virtual_prob ~declare_prob ~members ~seed]
    — class [i] draws up to [max_bases] distinct bases among earlier
    classes, each edge virtual with probability [virtual_prob]; each class
    declares each name of [members] with probability [declare_prob].
    Probe is the last class.  Used by the property tests to compare all
    engines against the oracle. *)
val random_dag :
  n:int ->
  max_bases:int ->
  virtual_prob:float ->
  declare_prob:float ->
  members:string list ->
  seed:int ->
  instance

(** [random_static_dag] — like {!random_dag} but each declaration is
    static with probability [static_prob], to exercise the Section 6
    extension. *)
val random_static_dag :
  n:int ->
  max_bases:int ->
  virtual_prob:float ->
  declare_prob:float ->
  static_prob:float ->
  members:string list ->
  seed:int ->
  instance
