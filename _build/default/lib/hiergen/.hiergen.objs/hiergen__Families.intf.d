lib/hiergen/families.mli: Chg
