lib/hiergen/workload.ml: Array Chg List Lookup_core Random
