lib/hiergen/figures.mli: Chg
