lib/hiergen/figures.ml: Chg List
