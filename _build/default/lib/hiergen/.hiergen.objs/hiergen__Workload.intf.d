lib/hiergen/workload.mli: Chg Lookup_core
