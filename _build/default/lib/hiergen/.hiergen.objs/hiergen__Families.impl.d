lib/hiergen/families.ml: Chg Hashtbl List Printf Random
