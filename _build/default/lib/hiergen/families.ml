module G = Chg.Graph

type instance = {
  graph : G.t;
  probe : G.class_id;
  description : string;
}

let kind_name = function G.Virtual -> "virtual" | G.Non_virtual -> "non-virtual"

let chain ~n ~kind =
  if n < 1 then invalid_arg "Families.chain: n must be >= 1";
  let b = G.create_builder () in
  let first = G.add_class b "C0" ~bases:[] ~members:[ G.member "m" ] in
  ignore first;
  let prev = ref "C0" in
  for i = 1 to n - 1 do
    let name = Printf.sprintf "C%d" i in
    ignore (G.add_class b name ~bases:[ (!prev, kind, G.Public) ] ~members:[]);
    prev := name
  done;
  let graph = G.freeze b in
  { graph;
    probe = n - 1;
    description = Printf.sprintf "chain n=%d (%s)" n (kind_name kind) }

let diamond_stack_gen ~levels ~kind ~redeclare =
  if levels < 0 then invalid_arg "Families.diamond_stack";
  let b = G.create_builder () in
  ignore (G.add_class b "A0" ~bases:[] ~members:[ G.member "m" ]);
  for i = 1 to levels do
    let a = Printf.sprintf "A%d" (i - 1) in
    let l = Printf.sprintf "L%d" i and r = Printf.sprintf "R%d" i in
    ignore (G.add_class b l ~bases:[ (a, kind, G.Public) ] ~members:[]);
    ignore (G.add_class b r ~bases:[ (a, kind, G.Public) ] ~members:[]);
    ignore
      (G.add_class b
         (Printf.sprintf "A%d" i)
         ~bases:[ (l, kind, G.Public); (r, kind, G.Public) ]
         ~members:(if redeclare then [ G.member "m" ] else []))
  done;
  let graph = G.freeze b in
  { graph;
    probe = G.find graph (Printf.sprintf "A%d" levels);
    description =
      Printf.sprintf "%sdiamond stack levels=%d (%s)"
        (if redeclare then "redeclared " else "")
        levels (kind_name kind) }

let diamond_stack ~levels ~kind =
  diamond_stack_gen ~levels ~kind ~redeclare:false

let redeclared_diamond_stack ~levels ~kind =
  diamond_stack_gen ~levels ~kind ~redeclare:true

let fence ~width ~levels =
  if width < 1 || levels < 1 then invalid_arg "Families.fence";
  let b = G.create_builder () in
  let level_names l = List.init width (fun i -> Printf.sprintf "F%d_%d" l i) in
  List.iter
    (fun name -> ignore (G.add_class b name ~bases:[] ~members:[ G.member "m" ]))
    (level_names 0);
  for l = 1 to levels - 1 do
    let bases =
      List.map (fun n -> (n, G.Non_virtual, G.Public)) (level_names (l - 1))
    in
    List.iter
      (fun name -> ignore (G.add_class b name ~bases ~members:[]))
      (level_names l)
  done;
  let graph = G.freeze b in
  { graph;
    probe = G.num_classes graph - 1;
    description = Printf.sprintf "fence width=%d levels=%d" width levels }

let wide_tree ~fanout ~depth =
  if fanout < 1 || depth < 0 then invalid_arg "Families.wide_tree";
  let b = G.create_builder () in
  ignore (G.add_class b "T" ~bases:[] ~members:[ G.member "m" ]);
  (* children of node named p are p_0 .. p_{fanout-1} *)
  let rec grow parent d =
    if d < depth then
      for i = 0 to fanout - 1 do
        let name = Printf.sprintf "%s_%d" parent i in
        ignore
          (G.add_class b name ~bases:[ (parent, G.Non_virtual, G.Public) ]
             ~members:[]);
        grow name (d + 1)
      done
  in
  grow "T" 0;
  let graph = G.freeze b in
  { graph;
    probe = G.num_classes graph - 1;
    description = Printf.sprintf "wide tree fanout=%d depth=%d" fanout depth }

let blue_chain ~width ~depth =
  if width < 1 || depth < 0 then invalid_arg "Families.blue_chain";
  let b = G.create_builder () in
  for i = 0 to width - 1 do
    ignore
      (G.add_class b
         (Printf.sprintf "W%d" i)
         ~bases:[] ~members:[ G.member "m" ]);
    ignore
      (G.add_class b
         (Printf.sprintf "M%d" i)
         ~bases:[ (Printf.sprintf "W%d" i, G.Virtual, G.Public) ]
         ~members:[])
  done;
  ignore
    (G.add_class b "C0"
       ~bases:
         (List.init width (fun i ->
              (Printf.sprintf "M%d" i, G.Non_virtual, G.Public)))
       ~members:[]);
  for j = 1 to depth do
    ignore
      (G.add_class b
         (Printf.sprintf "C%d" j)
         ~bases:[ (Printf.sprintf "C%d" (j - 1), G.Non_virtual, G.Public) ]
         ~members:[])
  done;
  let graph = G.freeze b in
  { graph;
    probe = G.find graph (Printf.sprintf "C%d" depth);
    description = Printf.sprintf "blue chain width=%d depth=%d" width depth }

let random_members st ~members ~declare_prob ~static_prob =
  List.filter_map
    (fun name ->
      if Random.State.float st 1.0 < declare_prob then
        Some (G.member ~static:(Random.State.float st 1.0 < static_prob) name)
      else None)
    members

let random_dag_gen ~n ~max_bases ~virtual_prob ~declare_prob ~static_prob
    ~members ~seed =
  if n < 1 then invalid_arg "Families.random_dag";
  let st = Random.State.make [| seed; n; max_bases |] in
  let b = G.create_builder () in
  for i = 0 to n - 1 do
    let bases =
      if i = 0 then []
      else begin
        let wanted = 1 + Random.State.int st max_bases in
        let chosen = Hashtbl.create 4 in
        let out = ref [] in
        for _ = 1 to wanted do
          let base = Random.State.int st i in
          if not (Hashtbl.mem chosen base) then begin
            Hashtbl.add chosen base ();
            let kind =
              if Random.State.float st 1.0 < virtual_prob then G.Virtual
              else G.Non_virtual
            in
            out := (Printf.sprintf "K%d" base, kind, G.Public) :: !out
          end
        done;
        List.rev !out
      end
    in
    let ms = random_members st ~members ~declare_prob ~static_prob in
    ignore (G.add_class b (Printf.sprintf "K%d" i) ~bases ~members:ms)
  done;
  let graph = G.freeze b in
  { graph;
    probe = n - 1;
    description =
      Printf.sprintf
        "random dag n=%d max_bases=%d vprob=%.2f dprob=%.2f seed=%d" n
        max_bases virtual_prob declare_prob seed }

let random_dag ~n ~max_bases ~virtual_prob ~declare_prob ~members ~seed =
  random_dag_gen ~n ~max_bases ~virtual_prob ~declare_prob ~static_prob:0.0
    ~members ~seed

let random_static_dag ~n ~max_bases ~virtual_prob ~declare_prob ~static_prob
    ~members ~seed =
  random_dag_gen ~n ~max_bases ~virtual_prob ~declare_prob ~static_prob
    ~members ~seed
