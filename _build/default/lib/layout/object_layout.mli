(** Object layout for complete objects: byte offsets for every subobject
    of the Rossie–Friedman subobject graph.

    This is the "static analysis and constructing virtual-function
    tables" application of the paper's introduction: a compiler needs to
    place each subobject at an offset, with non-virtual base subobjects
    embedded recursively and each virtual base allocated exactly once in
    the complete object, shared by all paths that reach it.

    The scheme is a simplified but faithful Itanium-style layout:
    - a class with virtual member functions or virtual bases gets one
      pointer-sized vptr slot at offset 0 of its non-virtual part;
    - non-virtual base subobjects are embedded first, in declaration
      order, followed by the class's own (non-static) data members
      (each a pointer-sized slot — the subset has no sub-word types);
    - virtual base subobjects are appended once at the end of the
      complete object, in inheritance-graph discovery order. *)

type slot = {
  sl_subobject : Subobject.Sgraph.subobject;
  sl_offset : int;  (** byte offset of the subobject within the object *)
}

type t = {
  sgraph : Subobject.Sgraph.t;
  slots : slot list;  (** one per subobject, complete object first *)
  size : int;  (** total object size in bytes *)
}

val word : int
(** slot size (8) *)

(** [of_class g c] lays out a complete [c] object. *)
val of_class : Chg.Graph.t -> Chg.Graph.class_id -> t

(** [offset_of t s] is the byte offset of subobject [s].
    @raise Not_found if [s] is not of this object. *)
val offset_of : t -> Subobject.Sgraph.subobject -> int

(** [sizeof g c] is the byte size of a complete [c] object. *)
val sizeof : Chg.Graph.t -> Chg.Graph.class_id -> int

(** [has_vptr g c] — class [c] needs a vptr: it declares a virtual
    function, or a base subobject does, or it has virtual bases. *)
val has_vptr : Chg.Graph.t -> Chg.Graph.class_id -> bool

val pp : Format.formatter -> t -> unit
