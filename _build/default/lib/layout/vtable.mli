(** Virtual function table construction — the paper's motivating
    compiler application ("in performing static analysis and in
    constructing virtual-function tables").

    The final overrider of each virtual function slot of a class [C] is
    precisely [lookup (C, f)]: the Rossie–Friedman [dyn] operation staged
    at compile time (Section 7.1).  A class whose lookup for some
    inherited virtual function is ambiguous has no valid vtable entry for
    that slot — the C++ rule that such a class cannot call (or override)
    the function without further disambiguation. *)

type entry = {
  e_slot : string;  (** the virtual function name *)
  e_introduced_by : Chg.Graph.class_id;
      (** the topologically-least class that declared the slot virtual *)
  e_overrider : Chg.Graph.class_id option;
      (** declaring class of [lookup (C, slot)]; [None] if ambiguous *)
}

type t = { vt_class : Chg.Graph.class_id; vt_entries : entry list }

(** [build engine c] computes [c]'s vtable.  [engine] must be an
    {!Lookup_core.Engine.t} over the graph (any witness setting).
    Slots appear in introduction order (topological, then declaration
    order within a class), each name once. *)
val build : Lookup_core.Engine.t -> Chg.Graph.class_id -> t

(** [dispatch t f] is the class whose implementation runs for a virtual
    call of [f] on a complete object of this vtable's class, if
    unambiguous. *)
val dispatch : t -> string -> Chg.Graph.class_id option

val pp : Chg.Graph.t -> Format.formatter -> t -> unit
