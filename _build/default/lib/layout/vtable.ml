module G = Chg.Graph
module Engine = Lookup_core.Engine

type entry = {
  e_slot : string;
  e_introduced_by : G.class_id;
  e_overrider : G.class_id option;
}

type t = { vt_class : G.class_id; vt_entries : entry list }

let build engine c =
  let g = Engine.graph engine in
  let cl = Engine.closure engine in
  (* Slots: virtual member functions declared in c or any of its bases,
     keyed by name, keeping the first introducing class in topological
     (= id) order. *)
  let introduced = Hashtbl.create 8 in
  let order = ref [] in
  let scan x =
    List.iter
      (fun (m : G.member) ->
        if m.m_virtual && not (Hashtbl.mem introduced m.m_name) then begin
          Hashtbl.add introduced m.m_name x;
          order := m.m_name :: !order
        end)
      (G.members g x)
  in
  (* iterate bases-or-self in increasing id order = topological *)
  G.iter_classes g (fun x ->
      if x = c || Chg.Closure.is_base cl x c then scan x);
  let entries =
    List.rev_map
      (fun slot ->
        { e_slot = slot;
          e_introduced_by = Hashtbl.find introduced slot;
          e_overrider = Engine.resolves_to engine c slot })
      !order
  in
  { vt_class = c; vt_entries = entries }

let dispatch t f =
  match List.find_opt (fun e -> String.equal e.e_slot f) t.vt_entries with
  | Some e -> e.e_overrider
  | None -> None

let pp g ppf t =
  Format.fprintf ppf "@[<v>vtable for %s:@," (G.name g t.vt_class);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-12s (introduced by %s) -> %s@," e.e_slot
        (G.name g e.e_introduced_by)
        (match e.e_overrider with
        | Some c -> G.name g c ^ "::" ^ e.e_slot
        | None -> "<ambiguous>"))
    t.vt_entries;
  Format.fprintf ppf "@]"
