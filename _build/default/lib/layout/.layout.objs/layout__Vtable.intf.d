lib/layout/vtable.mli: Chg Format Lookup_core
