lib/layout/vtable.ml: Chg Format Hashtbl List Lookup_core String
