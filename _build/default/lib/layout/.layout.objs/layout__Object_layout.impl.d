lib/layout/object_layout.ml: Array Chg Format List Subobject
