lib/layout/object_layout.mli: Chg Format Subobject
