module G = Chg.Graph
module Sgraph = Subobject.Sgraph

type slot = { sl_subobject : Sgraph.subobject; sl_offset : int }

type t = {
  sgraph : Sgraph.t;
  slots : slot list;
  size : int;
}

let word = 8

let data_member_count g c =
  List.length
    (List.filter
       (fun (m : G.member) -> m.m_kind = G.Data && not m.m_static)
       (G.members g c))

let has_vptr_table g =
  let n = G.num_classes g in
  let table = Array.make n false in
  for c = 0 to n - 1 do
    let own =
      List.exists (fun (m : G.member) -> m.m_virtual) (G.members g c)
    in
    table.(c) <-
      own
      || List.exists
           (fun (b : G.base) -> b.b_kind = G.Virtual || table.(b.b_class))
           (G.bases g c)
  done;
  table

let has_vptr g c = (has_vptr_table g).(c)

(* Size of the non-virtual region of a class: vptr, embedded non-virtual
   base regions, own data members.  Virtual bases live elsewhere. *)
let nv_size_table g vptr =
  let n = G.num_classes g in
  let table = Array.make n 0 in
  for c = 0 to n - 1 do
    let base_part =
      List.fold_left
        (fun acc (b : G.base) ->
          match b.b_kind with
          | G.Non_virtual -> acc + table.(b.b_class)
          | G.Virtual -> acc)
        0 (G.bases g c)
    in
    table.(c) <-
      (if vptr.(c) then word else 0) + base_part + (word * data_member_count g c)
  done;
  table

let of_class g c =
  let sg = Sgraph.build g c in
  let vptr = has_vptr_table g in
  let nv_size = nv_size_table g vptr in
  let offsets = Array.make (Sgraph.count sg) (-1) in
  (* Place the non-virtual region of [sub] at [off]; virtual-base children
     are skipped here and placed once, at the end of the object. *)
  let rec place sub off =
    offsets.(Sgraph.id_of sub) <- off;
    let l = Sgraph.ldc sg sub in
    let cur = ref (off + if vptr.(l) then word else 0) in
    List.iter2
      (fun (b : G.base) child ->
        match b.b_kind with
        | G.Non_virtual ->
          place child !cur;
          cur := !cur + nv_size.(b.b_class)
        | G.Virtual -> ())
      (G.bases g l) (Sgraph.contained sg sub)
  in
  let root = Sgraph.complete_object sg in
  place root 0;
  (* Virtual-base subobjects are exactly the non-root subobjects whose
     canonical fixed part is a single class; append them in discovery
     order. *)
  let tail = ref nv_size.(c) in
  List.iter
    (fun sub ->
      if Sgraph.id_of sub <> Sgraph.id_of root && offsets.(Sgraph.id_of sub) < 0
      then begin
        let l = Sgraph.ldc sg sub in
        (* only virtual-base subobjects remain unplaced after [place] *)
        place sub !tail;
        tail := !tail + nv_size.(l)
      end)
    (Sgraph.subobjects sg);
  let size = max !tail word in
  let slots =
    List.map
      (fun sub -> { sl_subobject = sub; sl_offset = offsets.(Sgraph.id_of sub) })
      (Sgraph.subobjects sg)
  in
  { sgraph = sg; slots; size }

let offset_of t s =
  match
    List.find_opt
      (fun sl -> Sgraph.id_of sl.sl_subobject = Sgraph.id_of s)
      t.slots
  with
  | Some sl -> sl.sl_offset
  | None -> raise Not_found

let sizeof g c = (of_class g c).size

let pp ppf t =
  let g = Sgraph.graph t.sgraph in
  Format.fprintf ppf "@[<v>object %s: %d bytes@,"
    (G.name g (Sgraph.most_derived t.sgraph))
    t.size;
  List.iter
    (fun sl ->
      Format.fprintf ppf "  +%-4d %a@," sl.sl_offset
        (Sgraph.pp_subobject t.sgraph) sl.sl_subobject)
    (List.sort (fun a b -> compare a.sl_offset b.sl_offset) t.slots);
  Format.fprintf ppf "@]"
