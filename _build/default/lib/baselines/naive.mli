(** The naive two-phase lookup of paper Section 4 ("the outline of a
    simple, but inefficient, algorithm that follows directly from the
    definition of lookup"): propagate {e full paths} as reaching
    definitions through the CHG, then select the most-dominant reaching
    definition at each node.

    [propagate] exposes phase one so the per-node reaching-definition sets
    of Figures 4 and 5 — including which definitions the optimized variant
    kills — can be printed by the bench harness.

    Worst-case exponential (the number of definition paths reaching a node
    can equal the number of CHG paths); kept as a baseline and as a second
    independent oracle. *)

(** A reaching definition of member [m] at some class: a CHG path from a
    declaring class.  [killed] marks definitions that the kill
    optimization (Corollary 1) would not propagate further: they are
    strictly dominated by another definition reaching the same node. *)
type reaching = { path : Subobject.Path.t; killed : bool }

(** [propagate g m] computes, for every class, all reaching definitions of
    [m] (phase one), with kill marks.  Definitions are in propagation
    order. *)
val propagate : Chg.Graph.t -> string -> reaching list array

(** [propagate_pruned g m] is phase one with the kill optimization
    applied: killed definitions are not propagated further.  Used by the
    ablation bench to quantify how many definitions the kill rule
    saves. *)
val propagate_pruned : Chg.Graph.t -> string -> reaching list array

(** [lookup g c m] runs both phases for one query.  Verdicts follow
    {!Subobject.Spec.verdict} semantics (no static-member rule). *)
val lookup : Chg.Graph.t -> Chg.Graph.class_id -> string -> Subobject.Spec.verdict

(** [lookup_killing g c m] is [lookup] but with phase one pruned by the
    kill rule: at every node only the definitions not strictly dominated
    there are propagated (still full paths, unlike the real algorithm's
    abstractions).  Same verdicts, often far fewer paths. *)
val lookup_killing :
  Chg.Graph.t -> Chg.Graph.class_id -> string -> Subobject.Spec.verdict
