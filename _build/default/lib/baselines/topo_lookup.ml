type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  numbers : int array;
}

let prepare g =
  { g; cl = Chg.Closure.compute g; numbers = Chg.Topo.numbers g }

let resolve t c m =
  let best = ref None in
  let consider x =
    if Chg.Graph.declares t.g x m then
      match !best with
      | None -> best := Some x
      | Some b -> if t.numbers.(x) > t.numbers.(b) then best := Some x
  in
  consider c;
  Chg.Bitset.iter consider (Chg.Closure.bases_of t.cl c);
  !best
