(** Member lookup by direct traversal of the Rossie–Friedman subobject
    graph (paper Section 7.1: "their specification of the lookup
    operation, being executable, is itself an algorithm.  However, it is a
    potentially inefficient one since the subobject graph's size can be
    exponential in the size of the class hierarchy graph").

    This is the correct (non-g++) subobject-graph algorithm: collect every
    subobject declaring the member, compute the maximal elements under the
    containment order, and resolve iff a unique most-dominant one exists
    (with the optional static-member refinement of Definition 17). *)

type verdict =
  | Resolved of Subobject.Sgraph.subobject
  | Ambiguous of Subobject.Sgraph.subobject list  (** the maximal set *)
  | Undeclared

(** [lookup ?static_rule g c m] builds the subobject graph of [c]
    (exponential worst case) and resolves [m]. *)
val lookup :
  ?static_rule:bool -> Chg.Graph.t -> Chg.Graph.class_id -> string -> verdict

(** [lookup_in ?static_rule sg m] reuses a prebuilt subobject graph. *)
val lookup_in :
  ?static_rule:bool -> Subobject.Sgraph.t -> string -> verdict

(** [to_spec sg v] maps the verdict onto {!Subobject.Spec.verdict} via
    representative paths, for oracle comparisons. *)
val to_spec : Subobject.Sgraph.t -> verdict -> Subobject.Spec.verdict
