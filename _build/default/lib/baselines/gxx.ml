module Sgraph = Subobject.Sgraph

type mode = Buggy | Fixed

type verdict =
  | Resolved of Sgraph.subobject
  | Ambiguous
  | Undeclared

exception Ambiguity_reported

let lookup_in ~mode sg m =
  let g = Sgraph.graph sg in
  (* If the class itself declares m, the complete object wins outright
     (the paper: "if class X itself does not have a member called m, the
     algorithm performs a scan ..."). *)
  let root = Sgraph.complete_object sg in
  if Chg.Graph.declares g (Sgraph.ldc sg root) m then Resolved root
  else begin
    (* Sgraph.subobjects is BFS order from the complete object, ties in
       base declaration order — the order the g++ scan visits. *)
    let scan = Sgraph.subobjects sg in
    match mode with
    | Buggy -> (
      let best = ref None in
      try
        List.iter
          (fun s ->
            if Chg.Graph.declares g (Sgraph.ldc sg s) m then
              match !best with
              | None -> best := Some s
              | Some b ->
                if Sgraph.dominates sg b s then ()
                else if Sgraph.dominates sg s b then best := Some s
                else
                  (* Neither dominates: g++ reports ambiguity and quits,
                     even though a later definition may dominate both. *)
                  raise Ambiguity_reported)
          scan;
        match !best with None -> Undeclared | Some b -> Resolved b
      with Ambiguity_reported -> Ambiguous)
    | Fixed -> (
      (* Keep all incomparable candidates; a later dominating definition
         may still prune the whole set down to itself. *)
      let candidates = ref [] in
      List.iter
        (fun s ->
          if Chg.Graph.declares g (Sgraph.ldc sg s) m then
            if List.exists (fun b -> Sgraph.dominates sg b s) !candidates
            then ()
            else
              candidates :=
                s
                :: List.filter
                     (fun b -> not (Sgraph.dominates sg s b))
                     !candidates)
        scan;
      match !candidates with
      | [] -> Undeclared
      | [ b ] -> Resolved b
      | _ -> Ambiguous)
  end

let lookup ~mode g c m = lookup_in ~mode (Sgraph.build g c) m

let pp_verdict sg ppf = function
  | Undeclared -> Format.pp_print_string ppf "undeclared"
  | Ambiguous -> Format.pp_print_string ppf "ambiguous"
  | Resolved s -> Format.fprintf ppf "resolved %a" (Sgraph.pp_subobject sg) s
