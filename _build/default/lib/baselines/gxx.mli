(** The member lookup algorithm of GNU g++ 2.7.2.1 as described in paper
    Section 7.1, including its documented bug, plus a corrected variant.

    The g++ algorithm breadth-first scans the subobject graph from the
    complete object, keeping a single "most dominant member found so far".
    When it encounters a definition incomparable with the current best it
    {e immediately} reports ambiguity — which is wrong, because a later
    definition may dominate both (the paper's Figure 9 counterexample,
    which "3 of the 7 compilers we tried" got wrong).

    [Buggy] mode reproduces that behaviour precisely; [Fixed] mode keeps
    every incomparable candidate and lets later definitions prune the set,
    reporting ambiguity only if more than one candidate survives the whole
    scan — demonstrating the flaw is the pruning strategy, not the
    subobject-graph traversal as such. *)

type mode = Buggy | Fixed

type verdict =
  | Resolved of Subobject.Sgraph.subobject
  | Ambiguous
  | Undeclared

(** [lookup ~mode g c m] performs the breadth-first scan.  Exponential
    worst case (it materializes the subobject graph, as g++'s
    representation did). *)
val lookup :
  mode:mode -> Chg.Graph.t -> Chg.Graph.class_id -> string -> verdict

(** [lookup_in ~mode sg m] reuses a prebuilt subobject graph. *)
val lookup_in : mode:mode -> Subobject.Sgraph.t -> string -> verdict

val pp_verdict : Subobject.Sgraph.t -> Format.formatter -> verdict -> unit
