(** The "assume the program is unambiguous" shortcut of paper Section 7.2
    (the Attali et al. Eiffel setting): if a lookup is known to be
    unambiguous, the resolving class is simply the declaring base class
    with the largest topological number.

    The paper: "much of the complexity of member lookup in C++ is in
    identifying ambiguous lookups.  If one assumes that a particular
    lookup is unambiguous, then the lookup can be done very simply."

    On ambiguous lookups this algorithm silently returns a wrong answer —
    the comparison bench (experiment C6) quantifies how often. *)

type t

(** [prepare g] precomputes topological numbers and the base closure. *)
val prepare : Chg.Graph.t -> t

(** [resolve t c m] is the declaring class of [m] with maximal topological
    number among [c] and its bases, or [None] when no such class exists.
    Sound only when [lookup (c, m)] is unambiguous (then it agrees with
    the real algorithm's resolving class). *)
val resolve : t -> Chg.Graph.class_id -> string -> Chg.Graph.class_id option
