lib/baselines/rf_lookup.mli: Chg Subobject
