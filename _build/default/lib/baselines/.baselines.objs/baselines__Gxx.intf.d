lib/baselines/gxx.mli: Chg Format Subobject
