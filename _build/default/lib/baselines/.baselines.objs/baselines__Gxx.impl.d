lib/baselines/gxx.ml: Chg Format List Subobject
