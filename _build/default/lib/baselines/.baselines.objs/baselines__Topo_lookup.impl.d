lib/baselines/topo_lookup.ml: Array Chg
