lib/baselines/naive.ml: Array Chg Hashtbl List Subobject
