lib/baselines/naive.mli: Chg Subobject
