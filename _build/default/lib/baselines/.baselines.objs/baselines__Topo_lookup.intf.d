lib/baselines/topo_lookup.mli: Chg
