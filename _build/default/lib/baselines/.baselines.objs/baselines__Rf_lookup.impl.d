lib/baselines/rf_lookup.ml: Chg List Subobject
