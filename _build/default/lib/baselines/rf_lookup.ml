module Sgraph = Subobject.Sgraph

type verdict =
  | Resolved of Sgraph.subobject
  | Ambiguous of Sgraph.subobject list
  | Undeclared

let lookup_in ?(static_rule = false) sg m =
  match Sgraph.defns sg m with
  | [] -> Undeclared
  | defs ->
    let dominates_all u =
      List.for_all (fun v -> Sgraph.dominates sg u v) defs
    in
    (match List.find_opt dominates_all defs with
    | Some u -> Resolved u
    | None ->
      let maximal =
        List.filter
          (fun u ->
            not (List.exists (fun v -> v != u && Sgraph.dominates sg v u) defs))
          defs
      in
      let statically_resolved =
        static_rule
        &&
        match maximal with
        | [] -> false
        | first :: rest ->
          let l = Sgraph.ldc sg first in
          List.for_all (fun s -> Sgraph.ldc sg s = l) rest
          &&
          (match Chg.Graph.find_member (Sgraph.graph sg) l m with
          | Some mem -> Chg.Graph.member_is_static_like mem
          | None -> false)
      in
      if statically_resolved then Resolved (List.hd maximal)
      else Ambiguous maximal)

let lookup ?static_rule g c m = lookup_in ?static_rule (Sgraph.build g c) m

let to_spec sg = function
  | Undeclared -> Subobject.Spec.Undeclared
  | Resolved s -> Subobject.Spec.Resolved (Sgraph.a_path sg s)
  | Ambiguous ss -> Subobject.Spec.Ambiguous (List.map (Sgraph.a_path sg) ss)
