module Path = Subobject.Path
module Spec = Subobject.Spec

type reaching = { path : Path.t; killed : bool }

(* Phase one of the naive algorithm: full-path reaching definitions.
   [prune] controls whether killed definitions are propagated further
   (the Corollary 1 optimization).  Kill marks are computed either way so
   the bench harness can print Figures 4 and 5. *)
let propagate_internal g m ~prune =
  let cl = Chg.Closure.compute g in
  let n = Chg.Graph.num_classes g in
  let out : reaching list array = Array.make n [] in
  (* Class ids are topological: bases before derived. *)
  for c = 0 to n - 1 do
    let generated =
      if Chg.Graph.declares g c m then [ Path.trivial c ] else []
    in
    let inherited =
      List.concat_map
        (fun (b : Chg.Graph.base) ->
          List.filter_map
            (fun r ->
              if prune && r.killed then None
              else Some (Path.extend r.path b.b_kind c))
            out.(b.b_class))
        (Chg.Graph.bases g c)
    in
    let defs = generated @ inherited in
    let strictly_dominated p =
      List.exists
        (fun q ->
          (not (Path.equiv p q)) && Path.dominates_via_closure cl q p)
        defs
    in
    out.(c) <-
      List.map (fun p -> { path = p; killed = strictly_dominated p }) defs
  done;
  out

let propagate g m = propagate_internal g m ~prune:false
let propagate_pruned g m = propagate_internal g m ~prune:true

(* Phase two: pick the most-dominant reaching definition, Definition 8
   lifted to the representatives of the equivalence classes present. *)
let verdict_of_defs cl defs =
  match defs with
  | [] -> Spec.Undeclared
  | _ ->
    let reps =
      let seen = Hashtbl.create 8 in
      List.filter
        (fun p ->
          let k = Path.key p in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        defs
    in
    let dominates_all u =
      List.for_all (fun v -> Path.dominates_via_closure cl u v) reps
    in
    (match List.find_opt dominates_all reps with
    | Some u -> Spec.Resolved u
    | None ->
      let maximal =
        List.filter
          (fun u ->
            not
              (List.exists
                 (fun v ->
                   (not (Path.equiv u v))
                   && Path.dominates_via_closure cl v u)
                 reps))
          reps
      in
      Spec.Ambiguous maximal)

let lookup_with g c m ~prune =
  let cl = Chg.Closure.compute g in
  let defs = propagate_internal g m ~prune in
  verdict_of_defs cl
    (List.filter_map
       (fun r -> if prune && r.killed then None else Some r.path)
       defs.(c))

let lookup g c m = lookup_with g c m ~prune:false
let lookup_killing g c m = lookup_with g c m ~prune:true
