(** A miniature runtime for the C++ subset: the end of the pipeline the
    paper's algorithm feeds.

    The paper stages member lookup so that "most of the work is done at
    compile time, with the run-time operation being a constant-time
    operation (as is done in typical C++ implementations)" (Section 7.1).
    This interpreter executes programs accordingly:

    - objects are allocated with the real {!Layout.Object_layout} (one
      memory word per data-member slot, vptr slots, shared virtual
      bases);
    - every member access is resolved {e statically} through the lookup
      engine against the expression's static type, then composed onto the
      receiver subobject — the [stat] operation;
    - virtual member-function calls dispatch on the {e complete object}'s
      class — the [dyn] operation / a vtable hit — and run the final
      overrider's body with [this] adjusted to the overrider's subobject.

    Pointers carry a subobject, so a derived-to-base conversion is an
    actual this-pointer adjustment, observable in the trace.

    Execution produces a trace of events (allocations, reads, writes,
    dispatches), which the tests compare against expectations and against
    the specification's verdicts. *)

type value =
  | Vint of int
  | Vptr of pointer
  | Vundef
and pointer = {
  p_obj : int;  (** object id *)
  p_sub : int;  (** subobject id within the object's subobject graph *)
}

type event =
  | Alloc of { obj : int; cls : string; bytes : int }
  | Write of {
      obj : int;
      subobject : string;  (** canonical name, e.g. ["C-D-E"] *)
      target : string;  (** ["C::m"] — declaring class and member *)
      value : value;
    }
  | Read of {
      obj : int;
      subobject : string;
      target : string;
      value : value;
    }
  | Dispatch of {
      obj : int;
      slot : string;
      static_context : string;  (** class the call was resolved against *)
      impl : string;  (** class whose body runs — [lookup] / vtable hit *)
      virtual_dispatch : bool;
    }

type outcome = {
  trace : event list;  (** in execution order *)
  runtime_errors : Frontend.Diagnostic.t list;
      (** dereferencing undefined pointers, unsupported constructs, ... *)
}

(** [run sema program ?entry] executes function [entry] (default
    ["main"]).  [sema] must be the analysis of [program] and must be
    error-free; [program]'s method bodies provide the code. *)
val run : ?entry:string -> Frontend.Sema.t -> Frontend.Ast.program -> outcome

(** [run_source src] parses, analyzes and runs.  Compile-time errors are
    returned as [runtime_errors] with an empty trace. *)
val run_source : ?entry:string -> string -> outcome

val pp_event : Format.formatter -> event -> unit
val pp_value : Format.formatter -> value -> unit
