module G = Chg.Graph
module Sgraph = Subobject.Sgraph
module Path = Subobject.Path
module Engine = Lookup_core.Engine
module OL = Layout.Object_layout
module Ast = Frontend.Ast
module Diagnostic = Frontend.Diagnostic

type value = Vint of int | Vptr of pointer | Vundef
and pointer = { p_obj : int; p_sub : int }

type event =
  | Alloc of { obj : int; cls : string; bytes : int }
  | Write of {
      obj : int;
      subobject : string;
      target : string;
      value : value;
    }
  | Read of {
      obj : int;
      subobject : string;
      target : string;
      value : value;
    }
  | Dispatch of {
      obj : int;
      slot : string;
      static_context : string;
      impl : string;
      virtual_dispatch : bool;
    }

type outcome = {
  trace : event list;
  runtime_errors : Diagnostic.t list;
}

type obj = {
  o_cls : G.class_id;
  o_sg : Sgraph.t;
  o_layout : OL.t;
  o_mem : value array;
}

(* Raised to abandon the current statement after a runtime error. *)
exception Stop_stmt

type ctx = {
  g : G.t;
  engine : Engine.t;
  bodies : (string * string, Ast.stmt list) Hashtbl.t;
  decl_types : (string * string, Ast.ty) Hashtbl.t;
      (* (class name, member) -> declared type *)
  class_cache : (G.class_id, Sgraph.t * OL.t) Hashtbl.t;
  statics : (string, value ref) Hashtbl.t;  (* "C::m" -> cell *)
  objs : (int, obj) Hashtbl.t;
  mutable next_obj : int;
  mutable rev_trace : event list;
  mutable rev_errors : Diagnostic.t list;
  mutable depth : int;
}

let emit ctx e = ctx.rev_trace <- e :: ctx.rev_trace

let error ctx loc fmt =
  Format.kasprintf
    (fun msg ->
      ctx.rev_errors <- Diagnostic.error ~loc "%s" msg :: ctx.rev_errors;
      raise Stop_stmt)
    fmt

let class_info ctx cls =
  match Hashtbl.find_opt ctx.class_cache cls with
  | Some info -> info
  | None ->
    let info = (Sgraph.build ctx.g cls, OL.of_class ctx.g cls) in
    Hashtbl.add ctx.class_cache cls info;
    info

let obj ctx id = Hashtbl.find ctx.objs id

let sub_of ctx (p : pointer) =
  let o = obj ctx p.p_obj in
  List.nth (Sgraph.subobjects o.o_sg) p.p_sub

let sub_name ctx (p : pointer) =
  (* canonical fixed-part name, least derived class first *)
  String.concat "-"
    (List.map (G.name ctx.g) (sub_of ctx p).Sgraph.fixed)

let static_class ctx p = Sgraph.ldc (obj ctx p.p_obj).o_sg (sub_of ctx p)

let alloc ctx cls =
  let sg, layout = class_info ctx cls in
  let id = ctx.next_obj in
  ctx.next_obj <- id + 1;
  let words = max 1 (layout.OL.size / OL.word) in
  Hashtbl.add ctx.objs id
    { o_cls = cls; o_sg = sg; o_layout = layout; o_mem = Array.make words Vundef };
  emit ctx
    (Alloc { obj = id; cls = G.name ctx.g cls; bytes = layout.OL.size });
  id

(* Word index of data member [mem] of the subobject [p] points to. *)
let word_of ctx loc (p : pointer) (mem : G.member) =
  let o = obj ctx p.p_obj in
  let s = sub_of ctx p in
  let l = Sgraph.ldc o.o_sg s in
  let data_members =
    List.filter
      (fun (m : G.member) -> m.m_kind = G.Data && not m.m_static)
      (G.members ctx.g l)
  in
  let rec index i = function
    | [] -> error ctx loc "internal: member %s not in layout" mem.m_name
    | (m : G.member) :: rest ->
      if String.equal m.m_name mem.m_name then i else index (i + 1) rest
  in
  let idx = index 0 data_members in
  let base = OL.offset_of o.o_layout s in
  let vptr = if OL.has_vptr ctx.g l then OL.word else 0 in
  (base + vptr + (OL.word * idx)) / OL.word

(* Resolve member [m] against static class [cls] and re-base the winning
   subobject onto receiver pointer [p] — the stat operation. *)
let stat_target ctx loc (p : pointer) cls m =
  match Engine.lookup ctx.engine cls m with
  | None -> error ctx loc "no member %s in %s" m (G.name ctx.g cls)
  | Some (Engine.Blue _) ->
    error ctx loc "ambiguous member %s in %s" m (G.name ctx.g cls)
  | Some (Engine.Red r) ->
    let target = r.Lookup_core.Abstraction.r_ldc in
    let o = obj ctx p.p_obj in
    let witness =
      match Engine.witness ctx.engine cls m with
      | Some w -> w
      | None -> error ctx loc "internal: engine built without witnesses"
    in
    let beta = Sgraph.a_path o.o_sg (sub_of ctx p) in
    let composed = Path.concat witness beta in
    let target_sub = Sgraph.of_path o.o_sg composed in
    (target, { p_obj = p.p_obj; p_sub = Sgraph.id_of target_sub })

(* Evaluation results. *)
type res =
  | Robj of pointer  (* a class-typed lvalue *)
  | Rfield of pointer * G.class_id * G.member  (* owner subobj, decl class *)
  | Rstatic of G.class_id * G.member
  | Rvar of value ref * Ast.ty option  (* local variable and declared type *)
  | Rval of value

(* Derived-to-base pointer conversion: adjust [p] to the unique [tname]
   base subobject of the subobject it points to — exactly what a C++
   compiler compiles a [Base* b = &derived] initialization into. *)
let convert_ptr ctx loc (p : pointer) tname =
  match G.find_opt ctx.g tname with
  | None -> error ctx loc "unknown class '%s'" tname
  | Some t ->
    let o = obj ctx p.p_obj in
    let s = sub_of ctx p in
    if Sgraph.ldc o.o_sg s = t then p
    else begin
      let hits = Hashtbl.create 8 in
      let visited = Hashtbl.create 8 in
      let rec walk s =
        let id = Sgraph.id_of s in
        if not (Hashtbl.mem visited id) then begin
          Hashtbl.add visited id ();
          if Sgraph.ldc o.o_sg s = t then Hashtbl.replace hits id ();
          List.iter walk (Sgraph.contained o.o_sg s)
        end
      in
      walk s;
      match Hashtbl.fold (fun id () acc -> id :: acc) hits [] with
      | [ id ] -> { p_obj = p.p_obj; p_sub = id }
      | [] ->
        error ctx loc "cannot convert %s* to %s*"
          (G.name ctx.g (Sgraph.ldc o.o_sg s))
          tname
      | _ ->
        error ctx loc "conversion to %s* is ambiguous (duplicated base)"
          tname
    end

let declared_ty ctx target m =
  Hashtbl.find_opt ctx.decl_types (G.name ctx.g target, m)

let is_class_valued ctx target (mem : G.member) =
  match declared_ty ctx target mem.m_name with
  | Some { Ast.t_base = Ast.Named _; t_pointer = false } -> true
  | Some _ | None -> false

(* Read a result as a value, emitting Read events for field reads. *)
let read ctx loc = function
  | Rval v -> v
  | Rvar (r, _) -> !r
  | Robj p -> Vptr p  (* an object decays to its address when read *)
  | Rstatic (target, mem) ->
    let key = G.name ctx.g target ^ "::" ^ mem.m_name in
    let v =
      match mem.m_kind with
      | G.Enumerator ->
        (* ordinal among the class's enumerators; initializers are not
           modeled *)
        let rec ord i = function
          | [] -> Vundef
          | (m : G.member) :: rest ->
            if String.equal m.m_name mem.m_name then Vint i
            else ord (if m.m_kind = G.Enumerator then i + 1 else i) rest
        in
        ord 0 (G.members ctx.g target)
      | G.Type -> error ctx loc "'%s' is a type, not a value" key
      | G.Data | G.Function ->
        (match Hashtbl.find_opt ctx.statics key with
        | Some cell -> !cell
        | None -> Vundef)
    in
    v
  | Rfield (p, target, mem) ->
    if is_class_valued ctx target mem then
      error ctx loc
        "embedded class-typed member '%s' is not modeled (use a pointer)"
        mem.m_name;
    let w = word_of ctx loc p mem in
    let v = (obj ctx p.p_obj).o_mem.(w) in
    emit ctx
      (Read
         { obj = p.p_obj;
           subobject = sub_name ctx p;
           target = G.name ctx.g target ^ "::" ^ mem.m_name;
           value = v });
    v

let write ctx loc res v =
  match res with
  | Rvar (r, _) -> r := v
  | Rstatic (target, mem) ->
    (match mem.m_kind with
    | G.Enumerator | G.Type ->
      error ctx loc "cannot assign to '%s'" mem.m_name
    | G.Data | G.Function ->
      let key = G.name ctx.g target ^ "::" ^ mem.m_name in
      (match Hashtbl.find_opt ctx.statics key with
      | Some cell -> cell := v
      | None -> Hashtbl.add ctx.statics key (ref v));
      emit ctx
        (Write { obj = -1; subobject = "<static>"; target = key; value = v }))
  | Rfield (p, target, mem) ->
    if is_class_valued ctx target mem then
      error ctx loc
        "embedded class-typed member '%s' is not modeled (use a pointer)"
        mem.m_name;
    let w = word_of ctx loc p mem in
    (obj ctx p.p_obj).o_mem.(w) <- v;
    emit ctx
      (Write
         { obj = p.p_obj;
           subobject = sub_name ctx p;
           target = G.name ctx.g target ^ "::" ^ mem.m_name;
           value = v })
  | Robj _ -> error ctx loc "cannot assign to an object"
  | Rval _ -> error ctx loc "cannot assign to an rvalue"

(* Member access through a receiver: classify as field / static /
   method-ish result. *)
let access_member ctx loc (p : pointer) ~context m =
  let target, tp = stat_target ctx loc p context m in
  match G.find_member ctx.g target m with
  | None -> error ctx loc "internal: resolved member vanished"
  | Some mem ->
    if G.member_is_static_like mem || (mem.m_static && mem.m_kind = G.Data)
    then Rstatic (target, mem)
    else if mem.m_kind = G.Function then
      (* method value: remember the receiver and static context via a
         closure-ish encoding below (calls re-resolve) *)
      Rfield (tp, target, mem)
    else Rfield (tp, target, mem)

type env = (string, res) Hashtbl.t

let rec eval ctx env ~this (e : Ast.expr) : res =
  match e with
  | Ast.Var (name, loc) ->
    (match Hashtbl.find_opt env name with
    | Some r -> r
    | None ->
      (* implicit this-> member *)
      (match this with
      | Some p -> access_member ctx loc p ~context:(static_class ctx p) name
      | None -> error ctx loc "unknown variable '%s'" name))
  | Ast.Qualified (cls_name, m, loc) ->
    (match G.find_opt ctx.g cls_name with
    | None -> error ctx loc "unknown class '%s'" cls_name
    | Some cls ->
      (* resolve in cls's context; static-like members need no receiver,
         others use this (qualified = non-virtual access) *)
      (match Engine.lookup ctx.engine cls m with
        | None -> error ctx loc "no member %s in %s" m cls_name
        | Some (Engine.Blue _) ->
          error ctx loc "ambiguous member %s in %s" m cls_name
        | Some (Engine.Red r) ->
          let target = r.Lookup_core.Abstraction.r_ldc in
          (match G.find_member ctx.g target m with
          | Some mem when G.member_is_static_like mem ->
            Rstatic (target, mem)
          | Some mem -> (
            match this with
            | Some p ->
              let p =
                if static_class ctx p = cls then p
                else convert_ptr ctx loc p cls_name
              in
              let target', tp = stat_target ctx loc p cls m in
              Rfield (tp, target', mem)
            | None ->
              error ctx loc
                "'%s::%s' is not static and there is no object" cls_name m)
          | None -> error ctx loc "internal: resolved member vanished")))
  | Ast.Select (base, sel) ->
    let recv =
      let r = eval ctx env ~this base in
      if sel.s_arrow then
        match read ctx sel.s_loc r with
        | Vptr p -> p
        | Vundef ->
          error ctx sel.s_loc "dereference of an uninitialized pointer"
        | Vint _ -> error ctx sel.s_loc "dereference of a non-pointer"
      else
        match r with
        | Robj p -> p
        | Rfield _ | Rstatic _ | Rvar _ | Rval _ -> (
          (* e.g. (x.ptrfield).m with '.': follow the pointer anyway
             would be wrong; sema rejects this, so just fail *)
          match read ctx sel.s_loc r with
          | Vptr p -> p
          | _ -> error ctx sel.s_loc "'.' applied to a non-object")
    in
    access_member ctx sel.s_loc recv
      ~context:(static_class ctx recv)
      sel.s_member
  | Ast.Call (callee, loc) -> eval_call ctx env ~this callee loc

and eval_call ctx env ~this callee loc : res =
  (* Work out receiver, static context and slot name from the callee
     shape, then dispatch. *)
  let dispatch ~recv ~context ~slot ~force_non_virtual =
    (* an explicitly qualified context requires a receiver adjustment
       first, like any derived-to-base conversion *)
    let recv =
      if static_class ctx recv = context then recv
      else convert_ptr ctx loc recv (G.name ctx.g context)
    in
    let target, _ = stat_target ctx loc recv context slot in
    let mem =
      match G.find_member ctx.g target slot with
      | Some mem -> mem
      | None -> error ctx loc "internal: resolved member vanished"
    in
    if mem.m_kind <> G.Function then
      error ctx loc "'%s' is not a function" slot;
    let virtual_dispatch = mem.m_virtual && not force_non_virtual in
    let impl, this_sub =
      if virtual_dispatch then begin
        (* dyn: resolve against the complete object's class *)
        let o = obj ctx recv.p_obj in
        match Engine.lookup ctx.engine o.o_cls slot with
        | Some (Engine.Red r) ->
          let w =
            match Engine.witness ctx.engine o.o_cls slot with
            | Some w -> w
            | None -> error ctx loc "internal: no witness"
          in
          ( r.Lookup_core.Abstraction.r_ldc,
            { p_obj = recv.p_obj;
              p_sub = Sgraph.id_of (Sgraph.of_path o.o_sg w) } )
        | Some (Engine.Blue _) ->
          error ctx loc "virtual call to '%s' is ambiguous in %s" slot
            (G.name ctx.g o.o_cls)
        | None -> error ctx loc "internal: slot vanished"
      end
      else
        let target, tp = stat_target ctx loc recv context slot in
        (target, tp)
    in
    emit ctx
      (Dispatch
         { obj = recv.p_obj;
           slot;
           static_context = G.name ctx.g context;
           impl = G.name ctx.g impl;
           virtual_dispatch });
    (match Hashtbl.find_opt ctx.bodies (G.name ctx.g impl, slot) with
    | Some body ->
      if ctx.depth > 200 then error ctx loc "call depth exceeded";
      ctx.depth <- ctx.depth + 1;
      let inner_env : env = Hashtbl.create 8 in
      exec_body ctx inner_env ~this:(Some this_sub) body;
      ctx.depth <- ctx.depth - 1
    | None -> ());  (* declared without a body: dispatch is the effect *)
    Rval Vundef
  in
  match callee with
  | Ast.Var (slot, vloc) -> (
    match this with
    | Some p ->
      dispatch ~recv:p ~context:(static_class ctx p) ~slot
        ~force_non_virtual:false
    | None -> error ctx vloc "call of '%s' outside a member function" slot)
  | Ast.Select (base, sel) ->
    let recv =
      let r = eval ctx env ~this base in
      if sel.s_arrow then
        match read ctx sel.s_loc r with
        | Vptr p -> p
        | Vundef ->
          error ctx sel.s_loc "dereference of an uninitialized pointer"
        | Vint _ -> error ctx sel.s_loc "dereference of a non-pointer"
      else
        match r with
        | Robj p -> p
        | r -> (
          match read ctx sel.s_loc r with
          | Vptr p -> p
          | _ -> error ctx sel.s_loc "'.' applied to a non-object")
    in
    dispatch ~recv ~context:(static_class ctx recv) ~slot:sel.s_member
      ~force_non_virtual:false
  | Ast.Qualified (cls_name, slot, qloc) -> (
    (* X::f() — an explicitly qualified, hence non-virtual, call *)
    match (G.find_opt ctx.g cls_name, this) with
    | Some cls, Some p ->
      dispatch ~recv:p ~context:cls ~slot ~force_non_virtual:true
    | Some _, None ->
      error ctx qloc "qualified call '%s::%s' needs an object" cls_name slot
    | None, _ -> error ctx qloc "unknown class '%s'" cls_name)
  | Ast.Call _ -> error ctx loc "cannot call the result of a call"

and exec_body ctx env ~this stmts =
  List.iter
    (fun (s : Ast.stmt) ->
      try exec_stmt ctx env ~this s with Stop_stmt -> ())
    stmts

and exec_stmt ctx env ~this (s : Ast.stmt) =
  match s with
  | Ast.Var_decl { v_type; v_name; v_loc } -> (
    match v_type.Ast.t_base with
    | Ast.Named cls_name when not v_type.Ast.t_pointer -> (
      match G.find_opt ctx.g cls_name with
      | Some cls ->
        let id = alloc ctx cls in
        Hashtbl.replace env v_name (Robj { p_obj = id; p_sub = 0 })
      | None -> error ctx v_loc "unknown class '%s'" cls_name)
    | Ast.Named _ | Ast.Builtin _ ->
      Hashtbl.replace env v_name (Rvar (ref Vundef, Some v_type)))
  | Ast.Expr e ->
    let r = eval ctx env ~this e in
    (* evaluating for effect: force field reads to hit memory *)
    (match r with
    | Rfield _ | Rstatic _ -> ignore (read ctx (Ast.expr_loc e) r)
    | Robj _ | Rvar _ | Rval _ -> ())
  | Ast.Assign (lhs, rhs) ->
    let v =
      match rhs with
      | Ast.Rint n -> Vint n
      | Ast.Raddr e -> (
        let r = eval ctx env ~this e in
        match r with
        | Robj p -> Vptr p
        | Rfield _ | Rstatic _ | Rvar _ | Rval _ -> (
          match read ctx (Ast.expr_loc e) r with
          | Vptr p -> Vptr p
          | _ ->
            error ctx (Ast.expr_loc e)
              "can only take the address of an object"))
    in
    let place = eval ctx env ~this lhs in
    (* implicit derived-to-base conversion against the destination's
       declared pointer type *)
    let declared =
      match place with
      | Rvar (_, ty) -> ty
      | Rfield (_, target, mem) -> declared_ty ctx target mem.m_name
      | Robj _ | Rstatic _ | Rval _ -> None
    in
    let v =
      match (v, declared) with
      | Vptr p, Some { Ast.t_base = Ast.Named tname; t_pointer = true } ->
        Vptr (convert_ptr ctx (Ast.expr_loc lhs) p tname)
      | _ -> v
    in
    write ctx (Ast.expr_loc lhs) place v

let collect_bodies (program : Ast.program) =
  let bodies = Hashtbl.create 16 in
  let decl_types = Hashtbl.create 32 in
  List.iter
    (fun (c : Ast.class_decl) ->
      List.iter
        (fun (m : Ast.member_decl) ->
          Hashtbl.replace decl_types (c.c_name, m.md_name) m.md_type;
          match m.md_body with
          | Some body -> Hashtbl.replace bodies (c.c_name, m.md_name) body
          | None -> ())
        c.c_members)
    program.classes;
  (bodies, decl_types)

let run ?(entry = "main") (sema : Frontend.Sema.t) (program : Ast.program) =
  let bodies, decl_types = collect_bodies program in
  let ctx =
    { g = sema.graph;
      engine = sema.engine;
      bodies;
      decl_types;
      class_cache = Hashtbl.create 8;
      statics = Hashtbl.create 8;
      objs = Hashtbl.create 8;
      next_obj = 0;
      rev_trace = [];
      rev_errors = [];
      depth = 0 }
  in
  (match List.find_opt (fun (f : Ast.func) -> f.f_name = entry) program.funcs
   with
  | Some f ->
    let env : env = Hashtbl.create 8 in
    exec_body ctx env ~this:None f.f_body
  | None ->
    ctx.rev_errors <-
      Diagnostic.error "no function named '%s'" entry :: ctx.rev_errors);
  { trace = List.rev ctx.rev_trace;
    runtime_errors = List.rev ctx.rev_errors }

let run_source ?entry src =
  match Frontend.Parser.parse src with
  | Error d -> { trace = []; runtime_errors = [ d ] }
  | Ok program ->
    let sema = Frontend.Sema.analyze program in
    if not (Frontend.Sema.ok sema) then
      { trace = []; runtime_errors = sema.diagnostics }
    else run ?entry sema program

let pp_value ppf = function
  | Vint n -> Format.fprintf ppf "%d" n
  | Vptr { p_obj; p_sub } -> Format.fprintf ppf "&obj%d.sub%d" p_obj p_sub
  | Vundef -> Format.pp_print_string ppf "undef"

let pp_event ppf = function
  | Alloc { obj; cls; bytes } ->
    Format.fprintf ppf "alloc   obj%d : %s (%d bytes)" obj cls bytes
  | Write { obj; subobject; target; value } ->
    Format.fprintf ppf "write   obj%d.[%s] %s = %a" obj subobject target
      pp_value value
  | Read { obj; subobject; target; value } ->
    Format.fprintf ppf "read    obj%d.[%s] %s -> %a" obj subobject target
      pp_value value
  | Dispatch { obj; slot; static_context; impl; virtual_dispatch } ->
    Format.fprintf ppf "call    obj%d.%s (static %s) -> %s::%s%s" obj slot
      static_context impl slot
      (if virtual_dispatch then " [virtual]" else "")
