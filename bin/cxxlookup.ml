(* Command-line driver: compile a C++-subset translation unit and query
   member lookups, layouts, vtables, graphs and slices.

   Examples:
     cxxlookup check file.cpp
     cxxlookup lookup file.cpp E m
     cxxlookup table file.cpp
     cxxlookup dot file.cpp            # CHG in Graphviz syntax
     cxxlookup dot file.cpp --subobjects E
     cxxlookup layout file.cpp E
     cxxlookup vtable file.cpp E
     cxxlookup slice file.cpp E::m D::n
     cxxlookup stats file.cpp [--stats-json]   # hierarchy + op counters
     cxxlookup stats file.cpp E m              # one member column
     cxxlookup trace file.cpp E m [--json]     # Figure-8 replay *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Memo = Lookup_core.Memo
module Incremental = Lookup_core.Incremental
module Metrics = Lookup_core.Metrics
module Packed = Lookup_core.Packed
module Tjson = Telemetry.Json

let read_file path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_text path In_channel.input_all

(* Load and analyze, failing the command on parse/sema errors unless
   [tolerant]. *)
let load ?(tolerant = false) path =
  let r = Frontend.Sema.analyze_source (read_file path) in
  List.iter
    (fun d -> prerr_endline (Frontend.Diagnostic.to_string d))
    r.diagnostics;
  if (not tolerant) && not (Frontend.Sema.ok r) then exit 1;
  r

let find_class g name =
  match G.find_opt g name with
  | Some c -> c
  | None ->
    Printf.eprintf "error: unknown class '%s'\n" name;
    exit 1

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Input translation unit ('-' for stdin).")

let class_arg n =
  Arg.(required & pos n (some string) None & info [] ~docv:"CLASS")

let member_arg n =
  Arg.(required & pos n (some string) None & info [] ~docv:"MEMBER")

(* Which lookup semantics to evaluate: the paper's C++ rules (default)
   or one of the linearized MROs layered over the same hierarchy. *)
let semantics_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("cpp", Mro.Cpp);
             ("c3", Mro.Linearized Mro.C3);
             ("py22", Mro.Linearized Mro.Py22);
             ("dylan", Mro.Linearized Mro.Dylan) ])
        Mro.Cpp
    & info [ "semantics" ] ~docv:"SEM"
        ~doc:
          "Lookup semantics: the paper's C++ subobject rules ($(b,cpp), \
           the default) or a linearized MRO — $(b,c3), $(b,py22) \
           (leftmost depth-first, duplicates keep the last occurrence), \
           or $(b,dylan).")

let check_cmd =
  let run file =
    let r = load ~tolerant:true file in
    List.iter
      (fun res ->
        Format.printf "%a@." (Frontend.Sema.pp_resolution r.graph) res)
      r.resolutions;
    if Frontend.Sema.ok r then print_endline "ok" else exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Compile FILE and statically resolve every member access.")
    Term.(const run $ file_arg)

let lookup_cmd =
  let run file cls member semantics =
    let r = load file in
    let c = find_class r.graph cls in
    match semantics with
    | Mro.Cpp -> (
      match Engine.lookup r.engine c member with
      | None ->
        Format.printf "no member '%s' in any subobject of '%s'@." member cls
      | Some v ->
        Format.printf "lookup(%s, %s) = %a@." cls member
          (Engine.pp_verdict r.graph) v;
        (match Engine.witness r.engine c member with
        | Some p ->
          Format.printf "definition path: %a@." (Subobject.Path.pp r.graph) p
        | None -> ()))
    | Mro.Linearized v -> (
      let t = Mro.compute v r.graph in
      match Mro.lookup t c member with
      | None ->
        Format.printf "no member '%s' in any superclass of '%s' (%s)@."
          member cls (Mro.variant_string v)
      | Some verdict ->
        Format.printf "lookup(%s, %s) = %a  [%s]@." cls member
          (Engine.pp_verdict r.graph) verdict (Mro.variant_string v))
  in
  Cmd.v
    (Cmd.info "lookup"
       ~doc:
         "Resolve MEMBER in the context of CLASS (under $(b,--semantics), \
          via an MRO instead of the C++ subobject rules).")
    Term.(const run $ file_arg $ class_arg 1 $ member_arg 2 $ semantics_arg)

let table_cmd =
  let run file =
    let r = load file in
    let g = r.graph in
    G.iter_classes g (fun c ->
        List.iter
          (fun m ->
            match Engine.lookup r.engine c m with
            | None -> ()
            | Some v ->
              Format.printf "%-14s %-10s %a@." (G.name g c) m
                (Engine.pp_verdict g) v)
          (G.member_names g))
  in
  Cmd.v
    (Cmd.info "table"
       ~doc:"Print the whole lookup table (every class x member).")
    Term.(const run $ file_arg)

let dot_cmd =
  let sub =
    Arg.(
      value
      & opt (some string) None
      & info [ "subobjects" ] ~docv:"CLASS"
          ~doc:"Emit the subobject graph of CLASS instead of the CHG.")
  in
  let run file sub =
    let r = load file in
    match sub with
    | None -> print_string (Chg.Dot.to_dot r.graph)
    | Some cls ->
      let c = find_class r.graph cls in
      print_string (Subobject.Sgraph.to_dot (Subobject.Sgraph.build r.graph c))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for the class hierarchy graph.")
    Term.(const run $ file_arg $ sub)

let layout_cmd =
  let run file cls =
    let r = load file in
    let c = find_class r.graph cls in
    Format.printf "%a@." Layout.Object_layout.pp
      (Layout.Object_layout.of_class r.graph c)
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print the object layout of CLASS.")
    Term.(const run $ file_arg $ class_arg 1)

let vtable_cmd =
  let run file cls =
    let r = load file in
    let c = find_class r.graph cls in
    Format.printf "%a@." (Layout.Vtable.pp r.graph)
      (Layout.Vtable.build r.engine c)
  in
  Cmd.v
    (Cmd.info "vtable" ~doc:"Print the virtual function table of CLASS.")
    Term.(const run $ file_arg $ class_arg 1)

let slice_cmd =
  let seeds_arg =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"CLASS::MEMBER" ~doc:"Seed lookups.")
  in
  let run file seeds =
    let r = load file in
    let parse_seed s =
      match String.index_opt s ':' with
      | Some i
        when i + 1 < String.length s
             && s.[i + 1] = ':' ->
        let cls = String.sub s 0 i in
        let m = String.sub s (i + 2) (String.length s - i - 2) in
        { Slicing.sd_class = find_class r.graph cls; sd_member = m }
      | _ ->
        Printf.eprintf "error: seed '%s' is not of the form CLASS::MEMBER\n" s;
        exit 1
    in
    let s = Slicing.slice r.graph (List.map parse_seed seeds) in
    Format.printf "%a@." Slicing.pp_stats s;
    Format.printf "%a" G.pp s.Slicing.sliced
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:"Slice the hierarchy to the classes relevant to the given lookups.")
    Term.(const run $ file_arg $ seeds_arg)

let export_cmd =
  let pretty =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the output.")
  in
  let run file pretty =
    let r = load file in
    print_endline (Chg.Serialize.to_string ~pretty r.graph)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Emit the class hierarchy graph as JSON (cxxlookup-chg v1).")
    Term.(const run $ file_arg $ pretty)

let import_cmd =
  let cpp =
    Arg.(
      value & flag
      & info [ "cpp" ] ~doc:"Emit C++ source instead of the lookup table.")
  in
  let run file cpp =
    match Chg.Serialize.of_string (read_file file) with
    | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok g ->
      if cpp then print_string (Frontend.Emit.to_source g)
      else begin
        let engine = Engine.build (Chg.Closure.compute g) in
        G.iter_classes g (fun c ->
            List.iter
              (fun m ->
                match Engine.lookup engine c m with
                | None -> ()
                | Some v ->
                  Format.printf "%-14s %-10s %a@." (G.name g c) m
                    (Engine.pp_verdict g) v)
              (G.member_names g))
      end
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Read a JSON hierarchy (as produced by export) and print its \
          lookup table (or --cpp source).")
    Term.(const run $ file_arg $ cpp)

let run_cmd =
  let entry =
    Arg.(
      value & opt string "main"
      & info [ "entry" ] ~docv:"FUNC" ~doc:"Entry function.")
  in
  let run file entry =
    let o = Runtime.run_source ~entry (read_file file) in
    List.iter
      (fun e -> Format.printf "%a@." Runtime.pp_event e)
      o.Runtime.trace;
    if o.Runtime.runtime_errors <> [] then begin
      List.iter
        (fun d -> prerr_endline (Frontend.Diagnostic.to_string d))
        o.Runtime.runtime_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the program with the staged-lookup runtime and print           the trace (allocations, member reads/writes, dispatches).")
    Term.(const run $ file_arg $ entry)

let audit_cmd =
  let run file =
    let r = load file in
    let g = r.graph in
    let found = ref 0 in
    G.iter_classes g (fun c ->
        List.iter
          (fun m ->
            match Engine.lookup r.engine c m with
            | Some (Engine.Blue _) ->
              incr found;
              Format.printf "%s::%s is ambiguous@." (G.name g c) m
            | Some (Engine.Red _) | None -> ())
          (G.member_names g));
    if !found = 0 then print_endline "no ambiguous lookups"
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "List every (class, member) pair whose lookup is ambiguous —           latent errors a use would trigger.")
    Term.(const run $ file_arg)

let count_cmd =
  let run file =
    let r = load file in
    let g = r.graph in
    let cl = Chg.Closure.compute g in
    G.iter_classes g (fun c ->
        Format.printf "%-20s %d subobjects@." (G.name g c)
          (Subobject.Count.subobjects cl c))
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:
         "Print the number of subobjects of each class (closed form, no           exponential construction).")
    Term.(const run $ file_arg)

(* -- telemetry-driven subcommands: stats & trace -------------------- *)

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for whole-table column compilation (default: \
           $(b,CXXLOOKUP_JOBS) if set, else the machine's recommended \
           domain count; $(b,1) runs sequentially on the calling domain).")

let resolve_jobs = function
  | Some n when n >= 1 -> n
  | Some n ->
    Printf.eprintf "error: --jobs must be >= 1 (got %d)\n" n;
    exit 2
  | None -> Packed.default_jobs ()

let count_virtual_edges g =
  List.fold_left
    (fun acc c ->
      List.fold_left
        (fun acc (b : G.base) ->
          match b.b_kind with G.Virtual -> acc + 1 | G.Non_virtual -> acc)
        acc (G.bases g c))
    0 (G.classes g)

(* Run the three engines over the program with one metrics bag each, so
   the costs are attributed per engine: the eager build (whole table, or
   one member's column), a two-pass lazy-memo replay of every query (the
   second pass is all cache hits), and a declaration-by-declaration
   incremental replay. *)
let run_instrumented g cl ~member =
  let em = Metrics.create () in
  let engine =
    match member with
    | Some m -> Engine.build_member ~metrics:em cl m
    | None -> Engine.build ~metrics:em cl
  in
  let mm = Metrics.create () in
  let memo = Memo.create ~metrics:mm cl in
  let names = match member with Some m -> [ m ] | None -> G.member_names g in
  for _pass = 1 to 2 do
    G.iter_classes g (fun c ->
        List.iter (fun m -> ignore (Memo.lookup memo c m)) names)
  done;
  let im = Metrics.create () in
  let inc = Incremental.create ~metrics:im () in
  G.iter_classes g (fun c ->
      ignore
        (Incremental.add_class inc (G.name g c)
           ~bases:
             (List.map
                (fun (b : G.base) -> (G.name g b.b_class, b.b_kind, b.b_access))
                (G.bases g c))
           ~members:(G.members g c)));
  (engine, em, memo, mm, im)

let verdict_json g = function
  | None -> Tjson.Null
  | Some v -> Tjson.String (Format.asprintf "%a" (Engine.pp_verdict g) v)

let stats_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:"Emit the telemetry report as JSON (cxxlookup-stats/1).")
  in
  let class_opt = Arg.(value & pos 1 (some string) None & info [] ~docv:"CLASS") in
  let member_opt =
    Arg.(value & pos 2 (some string) None & info [] ~docv:"MEMBER")
  in
  let run file cls member json jobs =
    (match (cls, member) with
    | Some _, None ->
      prerr_endline "error: stats takes FILE, or FILE CLASS MEMBER";
      exit 1
    | _ -> ());
    let jobs = resolve_jobs jobs in
    let r = load file in
    let g = r.graph in
    let cl = Chg.Closure.compute g in
    let engine, em, memo, mm, im = run_instrumented g cl ~member in
    (* the packed query-serving table, compiled on [jobs] domains, and
       its size against the boxed representation it replaces *)
    let packed = Packed.build ~jobs cl in
    let packed_bytes = Packed.bytes packed in
    let boxed_bytes = Packed.boxed_bytes packed in
    let query =
      match (cls, member) with
      | Some cls, Some m ->
        let c = find_class g cls in
        Some (cls, m, Engine.lookup engine c m)
      | _ -> None
    in
    if json then
      Tjson.output stdout
        (Tjson.Obj
           ([ ("schema", Tjson.String "cxxlookup-stats/1");
              ("file", Tjson.String file);
              ( "graph",
                Tjson.Obj
                  [ ("classes", Tjson.Int (G.num_classes g));
                    ("edges", Tjson.Int (G.num_edges g));
                    ("virtual_edges", Tjson.Int (count_virtual_edges g));
                    ("members", Tjson.Int (List.length (G.member_names g)))
                  ] );
              ( "engine",
                Tjson.Obj
                  [ ( "mode",
                      Tjson.String
                        (match member with
                        | Some m -> "member-column:" ^ m
                        | None -> "full-table") );
                    ("counters", Metrics.counters_json em);
                    ("timers", Metrics.timers_json em) ] );
              ( "memo",
                Tjson.Obj
                  [ ("counters", Metrics.counters_json mm);
                    ("cached_entries", Tjson.Int (Memo.cached_entries memo))
                  ] );
              ("incremental",
               Tjson.Obj [ ("counters", Metrics.counters_json im) ]);
              ( "packed",
                Tjson.Obj
                  [ ("domains", Tjson.Int jobs);
                    ("bytes", Tjson.Int packed_bytes);
                    ("boxed_bytes", Tjson.Int boxed_bytes);
                    ( "columns",
                      Tjson.List
                        (List.map
                           (fun (m, col) ->
                             Tjson.Obj
                               [ ("member", Tjson.String m);
                                 ("bytes", Tjson.Int (Packed.column_bytes col));
                                 ( "boxed_bytes",
                                   Tjson.Int (Packed.boxed_column_bytes col) )
                               ])
                           (Packed.columns packed)) ) ] )
            ]
           @
           match query with
           | None -> []
           | Some (cls, m, v) ->
             [ ( "query",
                 Tjson.Obj
                   [ ("class", Tjson.String cls);
                     ("member", Tjson.String m);
                     ("verdict", verdict_json g v) ] ) ]))
    else begin
      let t = Analysis.run cl in
      Format.printf "%a@." Analysis.pp_summary t;
      G.iter_classes g (fun c ->
          Format.printf "%a@." (Analysis.pp_class t) (Analysis.report t c));
      Format.printf "@.== lookup telemetry ==@.";
      Format.printf "eager engine (%s):@."
        (match member with
        | Some m -> "column of member '" ^ m ^ "'"
        | None -> "full table");
      Format.printf "%a" Metrics.pp_summary em;
      Format.printf "lazy memo (two passes over every query):@.";
      Format.printf "%a" Metrics.pp_summary mm;
      Format.printf "  cached_entries         %d@." (Memo.cached_entries memo);
      Format.printf "incremental replay (class by class):@.";
      Format.printf "%a" Metrics.pp_summary im;
      Format.printf "packed table (%d domain%s):@." jobs
        (if jobs = 1 then "" else "s");
      List.iter
        (fun (m, col) ->
          Format.printf "  %-22s %d bytes packed, %d boxed@." m
            (Packed.column_bytes col)
            (Packed.boxed_column_bytes col))
        (Packed.columns packed);
      Format.printf "  %-22s %d bytes packed, %d boxed@." "total" packed_bytes
        boxed_bytes;
      match query with
      | None -> ()
      | Some (cls, m, v) ->
        (match v with
        | None ->
          Format.printf "lookup(%s, %s): no member in any subobject@." cls m
        | Some v ->
          Format.printf "lookup(%s, %s) = %a@." cls m (Engine.pp_verdict g) v)
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Hierarchy analysis plus lookup telemetry: the algorithm's unit \
          operations (edge traversals, dominance probes, verdict colors, \
          memo hits, incremental row costs) measured over all three \
          engines.  With CLASS and MEMBER, instruments that single \
          member's column.")
    Term.(const run $ file_arg $ class_opt $ member_opt $ json_flag
          $ jobs_term)

let trace_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the event stream as JSON (cxxlookup-trace/1).")
  in
  let run file cls member json =
    let r = load file in
    let g = r.graph in
    let c = find_class g cls in
    let cl = Chg.Closure.compute g in
    let m = Metrics.create ~trace:true () in
    let eng = Engine.build_member ~metrics:m cl member in
    let v = Engine.lookup eng c member in
    if json then
      Tjson.output stdout
        (Tjson.Obj
           [ ("schema", Tjson.String "cxxlookup-trace/1");
             ("file", Tjson.String file);
             ("class", Tjson.String cls);
             ("member", Tjson.String member);
             ("verdict", verdict_json g v);
             ("events", Telemetry.Sink.to_json m.Metrics.sink) ])
    else begin
      Format.printf "%a" Telemetry.Sink.pp m.Metrics.sink;
      match v with
      | None ->
        Format.printf "no member '%s' in any subobject of '%s'@." member cls
      | Some v ->
        Format.printf "lookup(%s, %s) = %a@." cls member
          (Engine.pp_verdict g) v
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay the Figure-8 propagation for MEMBER as an event stream: \
          classes visited in topological order, verdicts flowing across \
          each inheritance edge, and the combine result per class.")
    Term.(const run $ file_arg $ class_arg 1 $ member_arg 2 $ json_flag)

(* -- offline Prometheus exposition: metrics & check-metrics --------- *)

let metrics_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"PATH"
          ~doc:
            "Write the exposition to PATH (atomic tmp + rename) instead \
             of stdout.")
  in
  let run file jobs out =
    let jobs = resolve_jobs jobs in
    let r = load file in
    let g = r.graph in
    let cl = Chg.Closure.compute g in
    let registry = Telemetry.Registry.create () in
    (* one bag per engine, so the exposition attributes costs per
       engine; everything rendered is deterministic for a given
       hierarchy — counters count unit operations, and the packed bag's
       column-cost histogram merges identically for any --jobs *)
    let _engine, em, memo, mm, im = run_instrumented g cl ~member:None in
    let pm = Metrics.create () in
    let packed = Packed.build ~jobs ~metrics:pm cl in
    Metrics.register em ~labels:[ ("engine", "eager") ] registry;
    Metrics.register mm ~labels:[ ("engine", "memo") ] registry;
    Metrics.register im ~labels:[ ("engine", "incremental") ] registry;
    Metrics.register pm ~labels:[ ("engine", "packed") ] registry;
    Telemetry.Registry.gauge registry ~help:"Classes in the hierarchy."
      "cxxlookup_graph_classes"
      (fun () -> G.num_classes g);
    Telemetry.Registry.gauge registry ~help:"Inheritance edges."
      "cxxlookup_graph_edges"
      (fun () -> G.num_edges g);
    Telemetry.Registry.gauge registry ~help:"Distinct member names."
      "cxxlookup_graph_members"
      (fun () -> List.length (G.member_names g));
    Telemetry.Registry.gauge registry
      ~help:"Entries in the memo engine's cache."
      "cxxlookup_memo_cached_entries"
      (fun () -> Memo.cached_entries memo);
    Telemetry.Registry.gauge registry ~help:"Packed table bytes."
      "cxxlookup_packed_bytes"
      (fun () -> Packed.bytes packed);
    Telemetry.Registry.gauge registry
      ~help:"Boxed-equivalent bytes of the packed table."
      "cxxlookup_packed_boxed_bytes"
      (fun () -> Packed.boxed_bytes packed);
    match out with
    | None -> print_string (Telemetry.Prometheus.render registry)
    | Some path ->
      let n = Telemetry.Prometheus.write_file path registry in
      Printf.printf "wrote %d bytes to %s\n" n path
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run all engines over FILE and emit their metrics as a \
          Prometheus text-format 0.0.4 exposition: per-engine unit-\
          operation counters, the packed build's per-column cost \
          histogram, and hierarchy/size gauges.  Deterministic for a \
          given FILE, whatever --jobs.")
    Term.(const run $ file_arg $ jobs_term $ out)

let check_metrics_cmd =
  let expo_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPOSITION"
          ~doc:"A Prometheus text-format scrape ('-' for stdin).")
  in
  let prev =
    Arg.(
      value
      & opt (some string) None
      & info [ "prev" ] ~docv:"FILE"
          ~doc:
            "An earlier scrape of the same process: every counter and \
             histogram series present in both must not have decreased.")
  in
  let run file prev =
    let text = read_file file in
    (match Telemetry.Expocheck.check text with
    | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      exit 1
    | Ok n -> Printf.printf "ok: %s: %d samples\n" file n);
    match prev with
    | None -> ()
    | Some p ->
      let ptext = read_file p in
      (match Telemetry.Expocheck.check ptext with
      | Error msg ->
        Printf.eprintf "error: %s: %s\n" p msg;
        exit 1
      | Ok _ -> ());
      (match Telemetry.Expocheck.check_monotone ~prev:ptext ~next:text with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
      | Ok () -> Printf.printf "ok: monotone against %s\n" p)
  in
  Cmd.v
    (Cmd.info "check-metrics"
       ~doc:
         "Validate a Prometheus text-format 0.0.4 exposition (line \
          grammar, name syntax, HELP/TYPE placement, histogram \
          structure); with --prev, additionally check counter \
          monotonicity across two scrapes.")
    Term.(const run $ expo_arg $ prev)

(* -- the resident lookup service: serve & batch --------------------- *)

let service_config_term =
  let threshold =
    Arg.(
      value & opt int 3
      & info [ "promote-threshold" ] ~docv:"N"
          ~doc:
            "Root queries of a member name before its full verdict column \
             is compiled into the table cache.")
  in
  let table_entries =
    Arg.(
      value & opt int 64
      & info [ "table-entries" ] ~docv:"N"
          ~doc:"Compiled-table cache budget: max resident columns.")
  in
  let table_bytes =
    Arg.(
      value & opt (some int) None
      & info [ "table-bytes" ] ~docv:"BYTES"
          ~doc:"Compiled-table cache budget: max estimated bytes.")
  in
  let memo_cap =
    Arg.(
      value & opt (some int) None
      & info [ "memo-cap" ] ~docv:"N"
          ~doc:"Memo engine residency cap (entries), per session.")
  in
  let make threshold entries bytes memo_cap jobs =
    { Service.Session.promote_threshold = threshold;
      table_max_entries = entries;
      table_max_bytes = bytes;
      memo_max_entries = memo_cap;
      jobs = resolve_jobs jobs }
  in
  Term.(const make $ threshold $ table_entries $ table_bytes $ memo_cap
        $ jobs_term)

(* -- durability options ---------------------------------------------- *)

let fsync_conv =
  let parse = function
    | "always" -> Ok Store.Wal.Always
    | "never" -> Ok Store.Wal.Never
    | s ->
      (match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Store.Wal.Every n)
      | _ ->
        Error
          (`Msg
             "expected 'always', 'never', or a positive integer N (fsync \
              every N appends)"))
  in
  let print ppf = function
    | Store.Wal.Always -> Format.pp_print_string ppf "always"
    | Store.Wal.Never -> Format.pp_print_string ppf "never"
    | Store.Wal.Every n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let store_config_term =
  let fsync =
    Arg.(
      value
      & opt fsync_conv Store.default_config.Store.fsync
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: 'always' (every append), 'never', or N \
             (every N appends).")
  in
  let compact =
    Arg.(
      value
      & opt int Store.default_config.Store.compact_bytes
      & info [ "compact-bytes" ] ~docv:"BYTES"
          ~doc:
            "WAL size past which a mutation triggers compaction into a \
             fresh snapshot.")
  in
  let keep =
    Arg.(
      value
      & opt int Store.default_config.Store.keep_snapshots
      & info [ "keep-snapshots" ] ~docv:"N"
          ~doc:"Snapshot files retained per session.")
  in
  let mmap =
    let mode_conv =
      Arg.enum [ ("verify", `Verify); ("fast", `Fast); ("off", `Off) ]
    in
    Arg.(
      value
      & opt mode_conv Store.default_config.Store.mmap_restore
      & info [ "mmap-restore" ] ~docv:"MODE"
          ~doc:
            "Snapshot restore path: 'verify' (zero-copy mmap after a CRC \
             pass, the default), 'fast' (mmap with structural checks \
             only), or 'off' (always decode). Every mode falls back to \
             decode when mapping fails.")
  in
  let make fsync compact_bytes keep_snapshots mmap_restore =
    { Store.fsync; compact_bytes; keep_snapshots; mmap_restore }
  in
  Term.(const make $ fsync $ compact $ keep $ mmap)

let print_recoveries results =
  List.iter
    (function
      | Service.Server.Recovered { r_session; r_epoch; r_replayed; r_torn } ->
        Printf.eprintf "recovered session %S: epoch %d, %d replayed%s\n%!"
          r_session r_epoch r_replayed
          (if r_torn then ", torn WAL tail skipped" else "")
      | Service.Server.Recovery_failed { r_session; r_error } ->
        Printf.eprintf "failed to recover session %S: %s\n%!" r_session
          r_error)
    results

let response_ok j =
  match Chg.Json.member "ok" j with
  | Ok (Chg.Json.Bool true) -> true
  | _ -> false

(* -- networking --------------------------------------------------------- *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i ->
    let host = String.sub s 0 i in
    (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p when p >= 0 && p < 65536 -> Some (host, p)
    | _ -> None)

(* [--listen]/[--connect] vs [--unix] resolve to one Net address (or
   none, for serve's default stdin mode). *)
let net_addr ~flag tcp unix_path =
  match (tcp, unix_path) with
  | Some _, Some _ ->
    Printf.eprintf "error: --%s and --unix are mutually exclusive\n" flag;
    exit 2
  | Some hp, None ->
    (match parse_host_port hp with
    | Some (h, p) -> Some (Net.Server.Tcp (h, p))
    | None ->
      Printf.eprintf "error: bad --%s %S (expected HOST:PORT)\n" flag hp;
      exit 2)
  | None, Some path -> Some (Net.Server.Unix_path path)
  | None, None -> None

let unix_sock_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record a per-request telemetry event stream and print it to \
             stderr at EOF.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Durable store directory: sessions are snapshotted and \
             write-ahead logged under it, stored sessions are recovered \
             at startup, and the snapshot/restore verbs work.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"PATH"
          ~doc:
            "Rewrite PATH (atomically, tmp + rename) with the Prometheus \
             text exposition on an interval and at EOF — \
             textfile-collector style.")
  in
  let metrics_interval =
    Arg.(
      value & opt int 10
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between --metrics-file rewrites (default 10).")
  in
  let request_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "request-log" ] ~docv:"PATH"
          ~doc:
            "Append one structured JSON line per finished request to PATH \
             (verb, session, outcome, latency, response bytes, serving \
             path, slow flag).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold in milliseconds: requests at or over it \
             are counted and flagged in the request log.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve over TCP instead of stdin/stdout (port 0 picks an \
             ephemeral port, printed to stderr).")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains executing requests (networked mode): read \
             verbs run concurrently across them, mutations serialize.")
  in
  let max_conns =
    Arg.(
      value & opt int Net.Server.default_config.Net.Server.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent connection limit; the excess connection gets one \
             in-band overloaded error and is closed.")
  in
  let queue_depth =
    Arg.(
      value & opt int Net.Server.default_config.Net.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Global admission bound: requests executing at once across \
             all connections; past it requests are answered with \
             explicit overloaded errors, never buffered.")
  in
  let conn_queue =
    Arg.(
      value & opt int Net.Server.default_config.Net.Server.conn_queue
      & info [ "conn-queue" ] ~docv:"N"
          ~doc:
            "Per-connection pipeline bound (pending jobs / unsent \
             responses); a full queue blocks that connection's socket \
             reads so TCP pushes back.")
  in
  let idle_timeout =
    Arg.(
      value & opt float Net.Server.default_config.Net.Server.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close a connection idle (or dribbling a partial line) this \
             long.")
  in
  let max_line =
    Arg.(
      value & opt int Net.Server.default_config.Net.Server.max_line
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:
            "Request line length bound; longer lines are discarded and \
             answered bad_request without killing the connection.")
  in
  let replicate_listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "replicate-listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Stream the store to read replicas over TCP (port 0 picks an \
             ephemeral port, printed to stderr).  Requires --store; \
             followers connect with 'cxxlookup replica --follow'.")
  in
  let replicate_unix =
    Arg.(
      value
      & opt (some string) None
      & info [ "replicate-unix" ] ~docv:"PATH"
          ~doc:"Stream the store to read replicas on a Unix socket.")
  in
  let run config trace store_dir store_config metrics_file metrics_interval
      request_log slow_ms listen unix_path workers max_conns queue_depth
      conn_queue idle_timeout max_line replicate_listen replicate_unix =
    let store =
      Option.map (fun dir -> Store.open_dir ~config:store_config dir) store_dir
    in
    let log = Option.map Service.Request_log.open_path request_log in
    let srv =
      Service.Server.create ~config ~trace ?store ?request_log:log ?slow_ms ()
    in
    (* SIGUSR1 dumps the flight recorder: the last requests, to stderr,
       without disturbing the serving loop *)
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle (fun _ -> Service.Server.dump_flight srv stderr))
     with Invalid_argument _ | Sys_error _ -> ());
    if store <> None then print_recoveries (Service.Server.recover_sessions srv);
    let write_metrics () =
      match metrics_file with
      | None -> ()
      | Some path ->
        (try
           (* render under the server's observation mutex, then the
              usual atomic tmp + rename *)
           let body = Service.Server.render_metrics srv in
           let tmp = path ^ ".tmp" in
           Out_channel.with_open_bin tmp (fun oc ->
               Out_channel.output_string oc body);
           Sys.rename tmp path
         with Sys_error msg -> Printf.eprintf "metrics write failed: %s\n%!" msg)
    in
    (* the replication listener runs on its own thread whatever the
       front end mode — it ships store files, not requests *)
    let repl =
      match net_addr ~flag:"replicate-listen" replicate_listen replicate_unix
      with
      | None -> None
      | Some _ when store = None ->
        prerr_endline "error: --replicate-listen requires --store DIR";
        exit 2
      | Some raddr ->
        let r = Cluster.Repl.create srv raddr in
        Printf.eprintf "replicating on %s\n%!"
          (Net.Server.addr_string (Cluster.Repl.bound_addr r));
        Some (r, Thread.create Cluster.Repl.run r)
    in
    let stop_repl () =
      match repl with
      | None -> ()
      | Some (r, th) ->
        Cluster.Repl.stop r;
        Thread.join th
    in
    (match net_addr ~flag:"listen" listen unix_path with
    | Some addr ->
      let ncfg =
        { Net.Server.workers; max_conns; queue_depth; conn_queue;
          idle_timeout; max_line }
      in
      let net = Net.Server.create ~config:ncfg srv addr in
      (* signal handlers only set a flag; the accept loop polls it and
         the full teardown runs in [run]'s context *)
      let request_stop _ = Net.Server.stop net in
      (try
         Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
         Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
       with Invalid_argument _ | Sys_error _ -> ());
      Printf.eprintf "listening on %s (%d workers)\n%!"
        (Net.Server.addr_string (Net.Server.bound_addr net))
        workers;
      (match metrics_file with
      | None -> ()
      | Some _ ->
        (* no per-response hook in networked mode: a collector thread
           rewrites the textfile on the interval *)
        ignore
          (Thread.create
             (fun () ->
               while true do
                 Thread.delay (float_of_int (max 1 metrics_interval));
                 write_metrics ()
               done)
             ()));
      Net.Server.run net
    | None ->
      let last_write = ref (Unix.gettimeofday ()) in
      let after_response () =
        if metrics_file <> None then begin
          let now = Unix.gettimeofday () in
          if now -. !last_write >= float_of_int metrics_interval then begin
            last_write := now;
            write_metrics ()
          end
        end
      in
      Service.Server.serve ~after_response srv stdin stdout);
    stop_repl ();
    write_metrics ();
    (match log with None -> () | Some lg -> Service.Request_log.close lg);
    (match store with
    | None -> ()
    | Some st ->
      Store.sync st;
      Store.close st);
    if trace then
      Format.eprintf "%a%!" Telemetry.Sink.pp (Service.Server.sink srv)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident lookup service: cxxlookup-rpc/1 requests as \
          JSON lines on stdin, responses on stdout (open, lookup, \
          batch_lookup, mutate, snapshot, restore, stats, metrics, \
          close).  Sessions keep a parsed hierarchy, an incremental \
          engine, a memo engine and a compiled-table cache resident \
          across requests.  With --store, sessions survive restarts: \
          every open writes a snapshot, every mutation appends to a \
          write-ahead log, and startup recovers whatever the store \
          holds.  Observability: --metrics-file exposes the Prometheus \
          registry, --request-log records one JSON line per request, \
          --slow-ms flags slow queries, and SIGUSR1 dumps the \
          flight recorder to stderr.  With --listen HOST:PORT or \
          --unix PATH the same protocol is served over the network: \
          an accept loop on its own domain, --workers worker domains \
          (reads concurrent, mutations single-writer), per-connection \
          pipelining with responses in request order, bounded queues \
          answering explicit overloaded errors, and idle/slowloris \
          timeouts.  With --replicate-listen (or --replicate-unix) and \
          --store, the node also streams per-session snapshots and the \
          WAL tail to read replicas.")
    Term.(const run $ service_config_term $ trace $ store_dir
          $ store_config_term $ metrics_file $ metrics_interval
          $ request_log $ slow_ms $ listen $ unix_sock_term $ workers
          $ max_conns $ queue_depth $ conn_queue $ idle_timeout
          $ max_line $ replicate_listen $ replicate_unix)

let connect_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"TCP address of the server.")

let require_addr tcp unix_path =
  match net_addr ~flag:"connect" tcp unix_path with
  | Some addr -> addr
  | None ->
    prerr_endline "error: need --connect HOST:PORT or --unix PATH";
    exit 2

let retry_term =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Retry a refused connection — and, per request, an in-band \
           overloaded response (shed before execution, so resending is \
           safe) — up to N times with jittered exponential backoff.")

let backoff_term =
  Arg.(
    value & opt int 50
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:
          "Backoff seed: attempt k sleeps about MS * 2^k milliseconds, \
           +/-25% jitter.")

(* `client --binary`: re-encode eligible request lines (lookup,
   batch_lookup, mutate, symbols — every name resolvable through the
   session's interned-id tables, cpp semantics, integer id) as
   cxxlookup-rpc/1b frames; anything else falls back to the JSON line
   untouched, on the same connection — the listener negotiates per
   message.  Symbol tables cost one binary [symbols] round trip per
   session and stay current by applying the mutation deltas.  Decoded
   responses print as a compact JSON rendering (ids, verdict codes);
   error frames reuse the canonical error shape. *)
module Binary_client = struct
  module J = Chg.Json
  module P = Service.Protocol
  module Frame = Service.Frame

  type ids = {
    bi_cls : (string, int) Hashtbl.t;
    bi_mem : (string, int) Hashtbl.t;
    mutable bi_cls_names : string array;  (* class id -> name *)
  }

  let fetch cl ~session =
    let req =
      Frame.encode_request
        { Frame.fr_id = 0; fr_session = session; fr_op = Frame.Symbols }
    in
    match Net.Client.request_frame cl req with
    | None -> None
    | Some resp ->
      (match Frame.decode_response ~op:Frame.op_symbols resp with
      | Ok (_, Frame.Ok_symbols { os_classes; os_members; _ }) ->
        let bi_cls = Hashtbl.create (max 16 (Array.length os_classes)) in
        let bi_mem = Hashtbl.create (max 16 (Array.length os_members)) in
        Array.iteri (fun i n -> Hashtbl.replace bi_cls n i) os_classes;
        Array.iteri (fun i n -> Hashtbl.replace bi_mem n i) os_members;
        Some { bi_cls; bi_mem; bi_cls_names = os_classes }
      | _ -> None)

  let apply_member_delta ids =
    List.iter (fun (i, n) -> Hashtbl.replace ids.bi_mem n i)

  (* [translate ids rq] — the frame, its op byte, and a post-response
     hook keeping the id tables current; [None] = send the JSON line. *)
  let translate ids (rq : P.request) =
    match (rq.P.rq_session, rq.P.rq_id) with
    | Some session, J.Int id ->
      let mk op wire on_ok =
        Some
          ( Frame.encode_request
              { Frame.fr_id = id; fr_session = session; fr_op = op },
            wire,
            on_ok )
      in
      let nothing _ = () in
      let cls c = Hashtbl.find_opt ids.bi_cls c in
      let mem m = Hashtbl.find_opt ids.bi_mem m in
      (match rq.P.rq_op with
      | P.Symbols -> mk Frame.Symbols Frame.op_symbols nothing
      | P.Lookup { lk_query = q; lk_semantics = Mro.Cpp } ->
        (match (cls q.P.q_class, mem q.P.q_member) with
        | Some c, Some m ->
          mk (Frame.Lookup { lk_class = c; lk_member = m }) Frame.op_lookup
            nothing
        | _ -> None)
      | P.Batch_lookup { bl_queries; bl_semantics = Mro.Cpp } ->
        let rec map acc = function
          | [] -> Some (List.rev acc)
          | (q : P.query) :: rest ->
            (match (cls q.P.q_class, mem q.P.q_member) with
            | Some c, Some m -> map ((c, m) :: acc) rest
            | _ -> None)
        in
        Option.bind (map [] bl_queries) (fun pairs ->
            mk
              (Frame.Batch_lookup (Array.of_list pairs))
              Frame.op_batch_lookup nothing)
      | P.Mutate (P.Add_member { mm_class; mm_member }) ->
        Option.bind (cls mm_class) (fun c ->
            mk
              (Frame.Add_member { am_class = c; am_member = mm_member })
              Frame.op_add_member
              (function
                | Frame.Ok_add_member { oam_new_symbols; _ } ->
                  apply_member_delta ids oam_new_symbols
                | _ -> ()))
      | P.Mutate (P.Add_class { mc_name; mc_bases; mc_members }) ->
        mk
          (Frame.Add_class
             { ac_name = mc_name; ac_bases = mc_bases;
               ac_members = mc_members })
          Frame.op_add_class
          (function
            | Frame.Ok_add_class { oac_class; oac_new_symbols; _ } ->
              Hashtbl.replace ids.bi_cls mc_name oac_class;
              if oac_class = Array.length ids.bi_cls_names then
                ids.bi_cls_names <-
                  Array.append ids.bi_cls_names [| mc_name |];
              apply_member_delta ids oac_new_symbols
            | _ -> ())
      | _ -> None)
    | _ -> None

  let code_fields ids code =
    if code >= 0 then
      ("verdict", J.String "red")
      :: ("class_id", J.Int code)
      :: (if code < Array.length ids.bi_cls_names then
            [ ("class", J.String ids.bi_cls_names.(code)) ]
          else [])
    else if code = -2 then [ ("verdict", J.String "blue") ]
    else [ ("verdict", J.String "none") ]

  let delta_json d = J.Obj (List.map (fun (i, n) -> (n, J.Int i)) d)

  let strings a = J.List (Array.to_list (Array.map (fun s -> J.String s) a))

  let render ids id r =
    let ok fields = J.Obj (("id", J.Int id) :: ("ok", J.Bool true) :: fields) in
    match r with
    | Frame.Err (code, msg) -> P.error_response ~id:(J.Int id) code msg
    | Frame.Ok_lookup code -> ok (code_fields ids code)
    | Frame.Ok_batch { ob_codes; ob_resolved; ob_ambiguous; ob_not_found } ->
      ok
        [ ( "codes",
            J.List (Array.to_list (Array.map (fun c -> J.Int c) ob_codes)) );
          ("resolved", J.Int ob_resolved);
          ("ambiguous", J.Int ob_ambiguous);
          ("not_found", J.Int ob_not_found) ]
    | Frame.Ok_add_member
        { oam_member; oam_rows; oam_invalidated; oam_epoch; oam_new_symbols }
      ->
      ok
        [ ("member_id", J.Int oam_member);
          ("rows_recomputed", J.Int oam_rows);
          ("table_invalidated", J.Bool oam_invalidated);
          ("epoch", J.Int oam_epoch);
          ("new_symbols", delta_json oam_new_symbols) ]
    | Frame.Ok_add_class { oac_class; oac_classes; oac_epoch; oac_new_symbols }
      ->
      ok
        [ ("class_id", J.Int oac_class);
          ("classes", J.Int oac_classes);
          ("epoch", J.Int oac_epoch);
          ("new_symbols", delta_json oac_new_symbols) ]
    | Frame.Ok_symbols { os_epoch; os_classes; os_members } ->
      ok
        [ ("epoch", J.Int os_epoch);
          ("classes", strings os_classes);
          ("members", strings os_members) ]
end

let client_cmd =
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Send every request before reading any response (responses \
             still arrive in request order) instead of one round trip \
             per line.")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:
            "Re-encode eligible lines (lookup, batch_lookup, mutate, \
             symbols with names known to the session) as \
             cxxlookup-rpc/1b binary frames with interned ids; other \
             lines are sent as JSON on the same connection.  Responses \
             print as a compact JSON rendering.  Incompatible with \
             --pipeline.")
  in
  let run tcp unix_path pipeline binary retry backoff_ms =
    if pipeline && binary then begin
      prerr_endline "error: --binary cannot be combined with --pipeline";
      exit 2
    end;
    let addr = require_addr tcp unix_path in
    let cl = Net.Client.connect ~retries:retry ~backoff_ms addr in
    let lines =
      In_channel.input_lines stdin
      |> List.filter (fun l -> String.trim l <> "")
    in
    let failed = ref false in
    let handle = function
      | Some resp ->
        print_endline resp;
        if not (match Chg.Json.of_string resp with
               | Ok j -> response_ok j
               | Error _ -> false)
        then failed := true
      | None ->
        prerr_endline "error: server closed the connection";
        failed := true
    in
    let sessions : (string, Binary_client.ids) Hashtbl.t =
      Hashtbl.create 4
    in
    let ids_for session =
      match Hashtbl.find_opt sessions session with
      | Some _ as ids -> ids
      | None ->
        (match Binary_client.fetch cl ~session with
        | Some ids -> Hashtbl.add sessions session ids; Some ids
        | None -> None)
    in
    (* the binary path for one line, [false] = not translatable (unknown
       names, non-integer id, no session, verb without a binary form) —
       the caller sends the JSON line instead *)
    let try_binary l =
      match Service.Protocol.parse_request l with
      | Error _ -> false
      | Ok rq ->
        let ids =
          match rq.Service.Protocol.rq_session with
          | Some s -> ids_for s
          | None -> None
        in
        (match ids with
        | None -> false
        | Some ids ->
          (match Binary_client.translate ids rq with
          | None -> false
          | Some (frame, op, on_ok) ->
            (match
               Net.Client.request_frame_admitted ~retries:retry ~backoff_ms
                 cl frame
             with
            | None ->
              prerr_endline "error: server closed the connection";
              failed := true
            | Some resp ->
              (match Service.Frame.decode_response ~op resp with
              | Error msg ->
                Printf.eprintf "error: bad response frame: %s\n" msg;
                failed := true
              | Ok (id, r) ->
                on_ok r;
                let j = Binary_client.render ids id r in
                print_endline (Chg.Json.to_string j);
                if not (response_ok j) then failed := true));
            true))
    in
    if pipeline then begin
      List.iter (Net.Client.send_line cl) lines;
      List.iter (fun _ -> handle (Net.Client.recv_line cl)) lines
    end
    else
      List.iter
        (fun l ->
          if not (binary && try_binary l) then
            handle
              (Net.Client.request_admitted ~retries:retry ~backoff_ms cl l))
        lines;
    Net.Client.close cl;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send cxxlookup-rpc/1 JSON lines from stdin to a networked \
          server (--connect HOST:PORT or --unix PATH) and print the \
          responses to stdout.  Exits non-zero if any response is an \
          in-band error or the server closes early — the smoke-test \
          counterpart of piping the same lines into 'cxxlookup serve'.  \
          --retry adds jittered exponential backoff on refused \
          connections and (per request, outside --pipeline) overloaded \
          responses.  --binary drives eligible verbs over the \
          cxxlookup-rpc/1b framing with interned ids.")
    Term.(const run $ connect_term $ unix_sock_term $ pipeline $ binary
          $ retry_term $ backoff_term)

let loadgen_cmd =
  let conns =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let qps =
    Arg.(
      value & opt float 0.
      & info [ "qps" ] ~docv:"QPS"
          ~doc:
            "Aggregate target rate for the open-loop \
             (coordinated-omission-safe) schedule; 0 = closed-loop \
             saturation mode.")
  in
  let duration =
    Arg.(
      value & opt float 2.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Measurement window.")
  in
  let mix =
    Arg.(
      value & opt string "lookup=9,batch_lookup=1"
      & info [ "mix" ] ~docv:"VERB=W,.."
          ~doc:
            "Weighted query mix over the read verbs lookup, \
             batch_lookup, stats, lint.")
  in
  let batch_size =
    Arg.(
      value & opt int 8
      & info [ "batch-size" ] ~docv:"N"
          ~doc:"Queries per batch_lookup request.")
  in
  let warmup =
    Arg.(
      value & opt int 3
      & info [ "warmup" ] ~docv:"ROUNDS"
          ~doc:
            "Serial passes over every query before measuring (promotes \
             hot columns into the compiled table at the default \
             threshold).")
  in
  let session =
    Arg.(
      value & opt string "loadgen"
      & info [ "session" ] ~docv:"NAME" ~doc:"Session name to open.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable report.")
  in
  let binary_flag =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:
            "Drive lookup, batch_lookup and mutate over the \
             cxxlookup-rpc/1b binary framing with interned ids (one \
             symbols round trip per connection); stats and lint stay \
             JSON lines on the same socket.")
  in
  let parse_mix s =
    String.split_on_char ',' s
    |> List.filter (fun part -> String.trim part <> "")
    |> List.map (fun part ->
           match String.index_opt part '=' with
           | None -> (String.trim part, 1)
           | Some i ->
             let v = String.trim (String.sub part 0 i) in
             let w =
               String.sub part (i + 1) (String.length part - i - 1)
               |> String.trim |> int_of_string_opt
             in
             (match w with
             | Some w when w >= 0 -> (v, w)
             | _ ->
               Printf.eprintf "error: bad mix weight in %S\n" part;
               exit 2))
  in
  let run tcp unix_path file conns qps duration mix batch_size warmup
      session json_flag binary =
    let addr = require_addr tcp unix_path in
    let source = read_file file in
    let r = Frontend.Sema.analyze_source source in
    if not (Frontend.Sema.ok r) then begin
      List.iter
        (fun d -> prerr_endline (Frontend.Diagnostic.to_string d))
        r.Frontend.Sema.diagnostics;
      exit 1
    end;
    let g = r.Frontend.Sema.graph in
    let classes = ref [] in
    G.iter_classes g (fun c -> classes := G.name g c :: !classes);
    let queries =
      List.concat_map
        (fun cls -> List.map (fun m -> (cls, m)) (G.member_names g))
        (List.rev !classes)
      |> Array.of_list
    in
    if Array.length queries = 0 then begin
      prerr_endline "error: hierarchy has no (class, member) queries";
      exit 1
    end;
    (* setup connection: open the session, then warm the table cache so
       the measured stream runs against compiled columns *)
    let setup = Net.Client.connect addr in
    let expect what = function
      | Some resp when
          (match Chg.Json.of_string resp with
          | Ok j -> response_ok j
          | Error _ -> false) -> ()
      | Some resp ->
        Printf.eprintf "error: %s failed: %s\n" what resp;
        exit 1
      | None ->
        Printf.eprintf "error: server closed during %s\n" what;
        exit 1
    in
    expect "open"
      (Net.Client.request setup
         (Chg.Json.to_string
            (Chg.Json.Obj
               [ ("id", Chg.Json.Int 0); ("op", Chg.Json.String "open");
                 ("session", Chg.Json.String session);
                 ("source", Chg.Json.String source) ])));
    for round = 1 to warmup do
      Array.iter
        (fun (c, m) ->
          expect
            (Printf.sprintf "warmup round %d" round)
            (Net.Client.request setup
               (Chg.Json.to_string
                  (Chg.Json.Obj
                     [ ("id", Chg.Json.Int 0);
                       ("op", Chg.Json.String "lookup");
                       ("session", Chg.Json.String session);
                       ("class", Chg.Json.String c);
                       ("member", Chg.Json.String m) ]))))
        queries
    done;
    let cfg =
      { Net.Loadgen.conns; qps; duration; mix = parse_mix mix; batch_size;
        binary }
    in
    let report = Net.Loadgen.run addr cfg ~session ~queries in
    Net.Client.close setup;
    if json_flag then
      print_endline (Chg.Json.to_string (Net.Loadgen.report_json report))
    else begin
      Printf.printf "sent %d, answered %d, errors %d in %.2fs (%s)\n"
        report.Net.Loadgen.sent report.Net.Loadgen.answered
        report.Net.Loadgen.errors report.Net.Loadgen.elapsed
        (if qps > 0. then Printf.sprintf "open loop, target %.0f qps" qps
         else "closed loop");
      Printf.printf "throughput: %.0f responses/s\n"
        report.Net.Loadgen.achieved_qps;
      List.iter
        (fun (k, v) ->
          Printf.printf "latency %-5s %10d ns (%.3f ms)\n" k v
            (float_of_int v /. 1e6))
        (Telemetry.Histogram.percentile_fields report.Net.Loadgen.hist)
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Generate load against a networked cxxlookup server: open a \
          session from FILE, warm its compiled tables, then drive \
          --conns connections for --duration seconds — open-loop at \
          --qps with a coordinated-omission-safe schedule (latency \
          measured from the scheduled send time), or closed-loop \
          saturation when --qps is 0 — and report p50/p90/p99/p999 \
          latency plus achieved throughput.  --binary drives the hot \
          verbs over the cxxlookup-rpc/1b framing with interned ids.")
    Term.(const run $ connect_term $ unix_sock_term $ file_arg $ conns
          $ qps $ duration $ mix $ batch_size $ warmup $ session
          $ json_flag $ binary_flag)

(* -- the cluster roles: replica & router ----------------------------- *)

let replica_cmd =
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"HOST:PORT"
          ~doc:"The leader's replication listener (--replicate-listen).")
  in
  let follow_unix =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow-unix" ] ~docv:"PATH"
          ~doc:"The leader's replication Unix socket (--replicate-unix).")
  in
  let store_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "The replica's own store directory: streamed state is \
             persisted here, so a restarted replica recovers locally and \
             offers its epochs back to the leader instead of \
             re-bootstrapping.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve read-only cxxlookup-rpc/1 over TCP (port 0 picks an \
             ephemeral port, printed to stderr).")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing read verbs.")
  in
  let run config store_config follow follow_unix store_dir listen unix_path
      workers backoff_ms =
    let leader =
      match net_addr ~flag:"follow" follow follow_unix with
      | Some a -> a
      | None ->
        prerr_endline "error: need --follow HOST:PORT or --follow-unix PATH";
        exit 2
    in
    let addr =
      match net_addr ~flag:"listen" listen unix_path with
      | Some a -> a
      | None ->
        prerr_endline "error: need --listen HOST:PORT or --unix PATH";
        exit 2
    in
    let store = Store.open_dir ~config:store_config store_dir in
    let srv =
      Service.Server.create ~role:Service.Server.Follower ~config ~store ()
    in
    print_recoveries (Service.Server.recover_sessions srv);
    let ncfg = { Net.Server.default_config with Net.Server.workers } in
    let net = Net.Server.create ~config:ncfg srv addr in
    let rep =
      Cluster.Replica.create
        ~excl:{ Cluster.Replica.excl = (fun f -> Net.Server.exclusively net f) }
        ~backoff_ms srv leader
    in
    let request_stop _ =
      Net.Server.stop net;
      Cluster.Replica.stop rep
    in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
     with Invalid_argument _ | Sys_error _ -> ());
    Printf.eprintf "replica listening on %s, following %s\n%!"
      (Net.Server.addr_string (Net.Server.bound_addr net))
      (Net.Server.addr_string leader);
    let th = Thread.create Cluster.Replica.run rep in
    Net.Server.run net;
    Cluster.Replica.stop rep;
    Thread.join th;
    Store.sync store;
    Store.close store
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:
         "Run a WAL-shipping read replica: follow a leader's replication \
          stream (--follow), apply its snapshots and WAL records into a \
          local store (--store), and serve the read verbs (lookup, \
          batch_lookup, lint, stats, metrics) on --listen or --unix.  \
          Mutations are answered not_leader.  Recovery is reconnection: \
          after a crash or restart the replica recovers from its own \
          store and offers the leader what it already holds.")
    Term.(const run $ service_config_term $ store_config_term $ follow
          $ follow_unix $ store_dir $ listen $ unix_sock_term $ workers
          $ backoff_term)

let router_cmd =
  let backends =
    Arg.(
      value & opt_all string []
      & info [ "backend" ] ~docv:"ADDR"
          ~doc:
            "A backend address (HOST:PORT, or unix:PATH), repeatable.  \
             The first backend is the leader unless --leader points \
             elsewhere.")
  in
  let leader =
    Arg.(
      value & opt int 0
      & info [ "leader" ] ~docv:"INDEX"
          ~doc:
            "Which --backend (0-based) is the leader: mutations are \
             forwarded there, everything else is rendezvous-hashed over \
             all backends.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Front-end address (port 0 picks an ephemeral port, printed \
             to stderr).")
  in
  let parse_backend s =
    if String.length s > 5 && String.sub s 0 5 = "unix:" then
      Net.Server.Unix_path (String.sub s 5 (String.length s - 5))
    else
      match parse_host_port s with
      | Some (h, p) -> Net.Server.Tcp (h, p)
      | None ->
        Printf.eprintf
          "error: bad --backend %S (expected HOST:PORT or unix:PATH)\n" s;
        exit 2
  in
  let run backends leader listen unix_path retries backoff_ms =
    if backends = [] then begin
      prerr_endline "error: need at least one --backend";
      exit 2
    end;
    if leader < 0 || leader >= List.length backends then begin
      prerr_endline "error: --leader must index one of the --backend list";
      exit 2
    end;
    let addr =
      match net_addr ~flag:"listen" listen unix_path with
      | Some a -> a
      | None ->
        prerr_endline "error: need --listen HOST:PORT or --unix PATH";
        exit 2
    in
    let rt =
      Cluster.Router.create
        ~config:{ Cluster.Router.retries; backoff_ms }
        ~leader
        (List.map parse_backend backends)
        addr
    in
    let request_stop _ = Cluster.Router.stop rt in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
     with Invalid_argument _ | Sys_error _ -> ());
    Printf.eprintf "routing on %s over %d backends (leader %d)\n%!"
      (Net.Server.addr_string (Cluster.Router.bound_addr rt))
      (List.length backends) leader;
    Cluster.Router.run rt
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Run the shard router: accept cxxlookup-rpc/1 on --listen or \
          --unix and spread it over the --backend list — reads \
          rendezvous-hashed by session with failover, batch_lookup \
          fanned out and merged in request order, mutations forwarded \
          to the leader at most once, and explicit backend_unavailable \
          (never a silently wrong answer) when no backend can serve.  \
          The router's own metrics verb reports per-backend health \
          gauges, round-trip histograms and routing counters.")
    Term.(const run $ backends $ leader $ listen $ unix_sock_term
          $ retry_term $ backoff_term)

let store_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STORE_DIR" ~doc:"Durable store directory.")

let store_sessions_arg =
  Arg.(
    value
    & pos_right 0 string []
    & info [] ~docv:"SESSION" ~doc:"Session names (default: all stored).")

let snapshot_cmd =
  let run store_config dir sessions =
    let store = Store.open_dir ~config:store_config dir in
    let srv = Service.Server.create ~store () in
    print_recoveries (Service.Server.recover_sessions srv);
    let names = match sessions with [] -> Store.sessions store | l -> l in
    if names = [] then begin
      prerr_endline "error: the store holds no sessions";
      exit 1
    end;
    let failed = ref false in
    List.iter
      (fun name ->
        let resp =
          Service.Server.handle_request srv
            { Service.Protocol.rq_id = Chg.Json.String name;
              rq_session = Some name;
              rq_op = Service.Protocol.Snapshot }
        in
        print_endline (Chg.Json.to_string resp);
        if not (response_ok resp) then failed := true)
      names;
    Store.close store;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Compact stored sessions offline: recover each SESSION from \
          STORE_DIR (newest snapshot + WAL replay) and write it back as a \
          fresh snapshot, resetting its WAL.")
    Term.(const run $ store_config_term $ store_dir_arg $ store_sessions_arg)

let restore_cmd =
  let run store_config dir sessions =
    let store = Store.open_dir ~config:store_config dir in
    let srv = Service.Server.create ~store () in
    let names = match sessions with [] -> Store.sessions store | l -> l in
    if names = [] then begin
      prerr_endline "error: the store holds no sessions";
      exit 1
    end;
    let failed = ref false in
    List.iter
      (fun name ->
        let resp =
          Service.Server.handle_request srv
            { Service.Protocol.rq_id = Chg.Json.String name;
              rq_session = Some name;
              rq_op = Service.Protocol.Restore }
        in
        print_endline (Chg.Json.to_string resp);
        if not (response_ok resp) then failed := true)
      names;
    Store.close store;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Recover stored sessions and report what came back: for each \
          SESSION in STORE_DIR, print the restore response (epoch, \
          classes, WAL records replayed, torn-tail flag).  Exits non-zero \
          if any session fails to restore.")
    Term.(const run $ store_config_term $ store_dir_arg $ store_sessions_arg)

let batch_cmd =
  let queries_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERIES.jsonl"
          ~doc:"Query stream ('-' for stdin): one JSON object per line.")
  in
  let run config file queries semantics =
    let srv = Service.Server.create ~config () in
    let text = read_file file in
    let hierarchy =
      if Filename.check_suffix file ".json" then begin
        match Chg.Json.of_string text with
        | Ok j -> Service.Protocol.Chg_json j
        | Error e ->
          prerr_endline ("error: " ^ e);
          exit 1
      end
      else Service.Protocol.Source text
    in
    (* in-band failures (ok:false responses, per-query errors inside a
       batch_lookup result) surface in the exit code *)
    let saw_error = ref false in
    let response_has_error j =
      (not (response_ok j))
      ||
      match Chg.Json.member "results" j with
      | Ok (Chg.Json.List rs) ->
        List.exists
          (fun r -> Result.is_ok (Chg.Json.member "error" r))
          rs
      | _ -> false
    in
    let print_response j =
      if response_has_error j then saw_error := true;
      print_endline (Chg.Json.to_string j)
    in
    print_response
      (Service.Server.handle_request srv
         { Service.Protocol.rq_id = Chg.Json.String "open";
           rq_session = None;
           rq_op =
             Service.Protocol.Open
               { o_session = Some "s0"; o_hierarchy = hierarchy } });
    let with_defaults n j =
      match j with
      | Chg.Json.Obj fields ->
        let add k v fs =
          if List.mem_assoc k fs then fs else fs @ [ (k, v) ]
        in
        let with_semantics fs =
          match semantics with
          | Mro.Cpp -> fs
          | Mro.Linearized _ ->
            add "semantics"
              (Chg.Json.String (Mro.semantics_string semantics))
              fs
        in
        Chg.Json.Obj
          (fields
           |> add "id" (Chg.Json.String (Printf.sprintf "q%d" n))
           |> add "op" (Chg.Json.String "lookup")
           |> add "session" (Chg.Json.String "s0")
           |> with_semantics)
      | other -> other
    in
    let ic = if queries = "-" then stdin else open_in queries in
    Fun.protect
      ~finally:(fun () -> if queries <> "-" then close_in ic)
      (fun () ->
        let n = ref 0 in
        let rec loop () =
          match In_channel.input_line ic with
          | None -> ()
          | Some line ->
            if String.trim line <> "" then begin
              let resp =
                match Chg.Json.of_string line with
                | Ok j -> Service.Server.handle_json srv (with_defaults !n j)
                | Error msg ->
                  Service.Protocol.error_response ~id:Chg.Json.Null
                    Service.Protocol.Parse_error msg
              in
              incr n;
              print_response resp
            end;
            loop ()
        in
        loop ());
    print_response
      (Service.Server.handle_request srv
         { Service.Protocol.rq_id = Chg.Json.String "stats";
           rq_session = Some "s0";
           rq_op = Service.Protocol.Stats });
    if !saw_error then exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "One-shot replay: open FILE as a session, answer every query of \
          QUERIES.jsonl through the service (missing id/op/session fields \
          default to a lookup against the file's session; under \
          $(b,--semantics) every query without its own semantics field \
          runs under that MRO), then report the session's stats.  Exits \
          non-zero when any response carries an in-band error.")
    Term.(const run $ service_config_term $ file_arg $ queries_arg
          $ semantics_arg)

let lint_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: pretty $(b,text), JSON lines ($(b,json), one \
             object per finding), or $(b,sarif) 2.1.0.")
  in
  let rules_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"LIST"
          ~doc:
            "Comma-separated rule ids to run.  The classic six run by \
             default: ambiguous-lookup, replicated-base, \
             fragile-dominance, dead-member, virtualize-fix-it, \
             compiler-divergence.  Opt-in cross-semantics rules: \
             mro-unsolvable, semantics-divergence, \
             linearization-sensitive.  The tokens $(b,default) and \
             $(b,all) expand to the classic six and to every rule.")
  in
  let fail_on_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("error", `Error); ("warning", `Warning); ("note", `Note);
               ("never", `Never) ])
          `Error
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Exit non-zero when a finding at or above this severity exists \
             ($(b,note) < $(b,warning) < $(b,error); $(b,never) always \
             exits 0).")
  in
  let run file format rules fail_on semantics jobs =
    (* Tolerant load: ambiguous or ill-formed member accesses are the
       linter's subject matter, not a reason to stop.  Only a hierarchy
       we could not build at all is fatal. *)
    let r = load ~tolerant:true file in
    if G.num_classes r.graph = 0 && not (Frontend.Sema.ok r) then exit 2;
    let rules =
      match rules with
      | None -> Lint.Rule.default_rules
      | Some s ->
        (match Lint.parse_rules s with
        | Ok rs -> rs
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2)
    in
    let config = { Lint.default_config with rules } in
    let locs ~cls ~member = Frontend.Locs.locate r.locs ~cls ~member in
    let findings =
      Lint.run ~config ~semantics ~locs ~jobs:(resolve_jobs jobs)
        (Chg.Closure.compute r.graph)
    in
    (match format with
    | `Text -> Format.printf "%a@?" (Lint.pp_text ~file) findings
    | `Json ->
      List.iter
        (fun f ->
          print_endline (Chg.Json.to_string (Lint.finding_json ~file f)))
        findings
    | `Sarif -> print_endline (Lint.Sarif.to_string ~file findings));
    let threshold =
      match fail_on with
      | `Never -> max_int
      | `Note -> Frontend.Diagnostic.severity_rank Frontend.Diagnostic.Note
      | `Warning ->
        Frontend.Diagnostic.severity_rank Frontend.Diagnostic.Warning
      | `Error -> Frontend.Diagnostic.severity_rank Frontend.Diagnostic.Error
    in
    match Lint.max_severity findings with
    | Some s when Frontend.Diagnostic.severity_rank s >= threshold -> exit 1
    | Some _ | None -> ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the hierarchy linter over FILE: ambiguity, replicated \
          bases, fragile dominance, dead members, virtualization fix-its, \
          and compiler-divergence checks against the g++ 2.7 and Eiffel \
          baselines.  Opt-in cross-semantics rules ($(b,--rules all)) \
          compare the C++ verdicts against the C3, Python-2.2 and Dylan \
          MROs.")
    Term.(const run $ file_arg $ format_arg $ rules_arg $ fail_on_arg
          $ semantics_arg $ jobs_term)

let mro_cmd =
  let variant_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("c3", Mro.C3); ("py22", Mro.Py22); ("dylan", Mro.Dylan) ])
          Mro.C3
      & info [ "semantics" ] ~docv:"SEM"
          ~doc:
            "Linearization to compute: $(b,c3) (the default), $(b,py22) \
             or $(b,dylan).")
  in
  let run file cls variant =
    let r = load file in
    let c = find_class r.graph cls in
    let t = Mro.compute variant r.graph in
    let lin = Mro.linearization t c in
    Format.printf "%s(%s): %a@." (Mro.variant_string variant) cls
      (Mro.pp_result r.graph) lin;
    if Result.is_error lin then exit 1
  in
  Cmd.v
    (Cmd.info "mro"
       ~doc:
         "Print CLASS's method resolution order under a linearized \
          semantics, or the precedence cycle that makes it unsolvable \
          (exit 1).")
    Term.(const run $ file_arg $ class_arg 1 $ variant_arg)

let () =
  let doc = "C++ member lookup (Ramalingam & Srinivasan, PLDI 1997)" in
  let version =
    Printf.sprintf "cxxlookup 1.0.0 (protocol %s)" Service.Protocol.version
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "cxxlookup" ~version ~doc)
          [ check_cmd; lookup_cmd; table_cmd; dot_cmd; layout_cmd; vtable_cmd;
            slice_cmd; export_cmd; import_cmd; run_cmd; audit_cmd; count_cmd;
            stats_cmd; trace_cmd; lint_cmd; mro_cmd; metrics_cmd;
            check_metrics_cmd;
            serve_cmd; client_cmd; loadgen_cmd; batch_cmd; snapshot_cmd;
            restore_cmd; replica_cmd; router_cmd ]))
