(* SRV1: networked-server latency and saturation — loadgen against the
   TCP server at 1, 2 and 4 worker domains on the paper's figure-9
   hierarchy.

   Two runs per worker count over a loopback ephemeral port.  An
   open-loop run at a fixed aggregate rate gives the p50/p99 a client
   would see when the server keeps up (latencies measured from the
   coordinated-omission-safe schedule, so stalls are charged).  A
   closed-loop run — every connection sending as fast as the server
   answers — gives the saturation throughput.

   Worker scaling is honest, not flattering: on a single-core host the
   1/2/4-worker rows measure the cost of domain coordination, not a
   speedup; the recorded host header (ncores) says which one a given
   BENCH_lookup.json shows. *)

module G = Chg.Graph
module J = Chg.Json
module Figures = Hiergen.Figures

let header id title = Format.printf "@.---- %s: %s ----@." id title

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

let response_ok line =
  match J.of_string line with
  | Ok j -> J.member "ok" j = Ok (J.Bool true)
  | Error _ -> false

(* Open the bench session over the wire (sessions belong to the server,
   not the connection) and prime the table cache with one serial pass so
   the measured runs hit compiled columns, as a warm server would. *)
let open_and_warm addr ~session g queries =
  let cl = Net.Client.connect addr in
  let line =
    J.to_string
      (J.Obj
         [ ("id", J.Int 0); ("op", J.String "open");
           ("session", J.String session); ("chg", Chg.Serialize.to_json g) ])
  in
  (match Net.Client.request cl line with
  | Some r when response_ok r -> ()
  | _ -> invalid_arg "SRV1: open failed");
  Array.iter
    (fun (c, m) ->
      let q =
        J.to_string
          (J.Obj
             [ ("id", J.Int 1); ("op", J.String "lookup");
               ("session", J.String session); ("class", J.String c);
               ("member", J.String m) ])
      in
      match Net.Client.request cl q with
      | Some _ -> ()
      | None -> invalid_arg "SRV1: warmup connection lost")
    queries;
  Net.Client.close cl

let with_server ~workers f =
  let srv = Service.Server.create () in
  let config = { Net.Server.default_config with workers } in
  let net = Net.Server.create ~config srv (Net.Server.Tcp ("127.0.0.1", 0)) in
  let th = Thread.create Net.Server.run net in
  Fun.protect
    ~finally:(fun () ->
      Net.Server.stop net;
      Thread.join th)
    (fun () -> f (Net.Server.bound_addr net))

let open_loop_qps = 2000.
let measure_s = 1.0

let run () =
  header "SRV1" "networked server: loadgen latency and saturation";
  let g = Figures.fig9 () in
  let size = G.num_classes g + G.num_edges g in
  let queries =
    Array.of_list
      (List.concat_map
         (fun m ->
           List.init (G.num_classes g) (fun c -> (G.name g c, m)))
         (G.member_names g))
  in
  Format.printf
    "  fig9: %d classes; %d query candidates; open loop %.0f qps, %gs per \
     run@."
    (G.num_classes g) (Array.length queries) open_loop_qps measure_s;
  List.iter
    (fun workers ->
      with_server ~workers @@ fun addr ->
      let session = "bench" in
      open_and_warm addr ~session g queries;
      let mix = [ ("lookup", 9); ("batch_lookup", 1) ] in
      let base =
        { Net.Loadgen.conns = 4; qps = 0.; duration = measure_s; mix;
          batch_size = 8; binary = false }
      in
      (* fixed-rate run: client-visible latency when the server keeps up *)
      let fixed =
        Net.Loadgen.run addr { base with qps = open_loop_qps } ~session
          ~queries
      in
      (* saturation runs, both framings: JSON lines vs cxxlookup-rpc/1b *)
      let sat = Net.Loadgen.run addr base ~session ~queries in
      let sat_b =
        Net.Loadgen.run addr { base with binary = true } ~session ~queries
      in
      let h = fixed.hist in
      let p q = Telemetry.Histogram.quantile h q in
      let sat_qps = int_of_float sat.achieved_qps in
      let sat_b_qps = int_of_float sat_b.achieved_qps in
      Format.printf
        "  workers=%d  p50=%d ns  p99=%d ns  (open loop, %d answered)  \
         saturation json=%d req/s (%d answered)  binary=%d req/s (%d \
         answered)@."
        workers (p 0.50) (p 0.99) fixed.answered sat_qps sat.answered
        sat_b_qps sat_b.answered;
      if fixed.errors > 0 || sat.errors > 0 || sat_b.errors > 0 then
        Format.printf
          "  WARNING: in-band errors: fixed=%d saturation=%d binary=%d@."
          fixed.errors sat.errors sat_b.errors;
      Scaling.record ~experiment:"SRV1"
        ~family:(Printf.sprintf "fig9 tcp %d workers" workers)
        ~n_plus_e:size
        ~time_ns:
          (if sat.answered = 0 then 0.
           else sat.elapsed *. 1e9 /. float_of_int sat.answered)
        ~latency:h
        (counters_json
           [ ("workers", workers);
             ("open_loop_qps_target", int_of_float open_loop_qps);
             ("open_loop_answered", fixed.answered);
             ("open_loop_errors", fixed.errors);
             ("saturation_qps", sat_qps);
             ("saturation_answered", sat.answered);
             ("saturation_errors", sat.errors);
             ("binary_saturation_qps", sat_b_qps);
             ("binary_saturation_answered", sat_b.answered);
             ("binary_saturation_errors", sat_b.errors) ]))
    [ 1; 2; 4 ]
