(* CLU1: the cluster under load — a shard router fronting one leader
   and 1, 2 or 3 WAL-shipping read replicas, all in-process on
   loopback, driven by the load generator on the paper's figure-9
   hierarchy.

   Four sessions run concurrently (one loadgen per session) because the
   router's rendezvous hashing gives each session a single preferred
   backend: one session would measure one replica plus routing
   overhead, never the spread.  An open-loop run gives the p50/p99 a
   client of the router sees; a closed-loop run gives the saturation
   throughput.  Read the rows against SRV1: the delta at one replica is
   the price of the extra hop, the slope over replicas is what sharding
   buys once sessions spread.

   A final short mixed run adds a [mutate] share, exercising the
   at-most-once leader-forwarding path under concurrent reads; it must
   finish with zero in-band errors.

   Replication is asynchronous, so replica reads may trail the leader —
   a latency/throughput experiment is indifferent to that, which is
   exactly why the mutating run can share the cluster with the read
   load. *)

module G = Chg.Graph
module J = Chg.Json
module Figures = Hiergen.Figures

let header id title = Format.printf "@.---- %s: %s ----@." id title

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

let response_ok line =
  match J.of_string line with
  | Ok j -> J.member "ok" j = Ok (J.Bool true)
  | Error _ -> false

let sessions = [ "bench0"; "bench1"; "bench2"; "bench3" ]

let temp_dir () =
  let f = Filename.temp_file "clu1" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Leader (durable store + replication listener), [replicas] followers,
   and a router over all the front ends, torn down in reverse. *)
let with_cluster ~replicas k =
  let dir = temp_dir () in
  let store =
    Store.open_dir
      ~config:{ Store.default_config with Store.fsync = Store.Wal.Never }
      dir
  in
  let leader = Service.Server.create ~store () in
  let front srv =
    let config = { Net.Server.default_config with workers = 1 } in
    let net = Net.Server.create ~config srv (Net.Server.Tcp ("127.0.0.1", 0)) in
    let th = Thread.create Net.Server.run net in
    (net, th)
  in
  let lnet, lth = front leader in
  let repl = Cluster.Repl.create ~poll_ms:2 leader (Net.Server.Tcp ("127.0.0.1", 0)) in
  let repl_th = Thread.create Cluster.Repl.run repl in
  let followers =
    List.init replicas (fun _ ->
        let srv = Service.Server.create ~role:Service.Server.Follower () in
        let rep =
          Cluster.Replica.create ~backoff_ms:20 srv (Cluster.Repl.bound_addr repl)
        in
        let rep_th = Thread.create Cluster.Replica.run rep in
        let net, th = front srv in
        (srv, rep, rep_th, net, th))
  in
  let backends =
    Net.Server.bound_addr lnet
    :: List.map (fun (_, _, _, net, _) -> Net.Server.bound_addr net) followers
  in
  let router =
    Cluster.Router.create ~leader:0 backends (Net.Server.Tcp ("127.0.0.1", 0))
  in
  let router_th = Thread.create Cluster.Router.run router in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Router.stop router;
      Thread.join router_th;
      List.iter
        (fun (_, rep, rep_th, net, th) ->
          Cluster.Replica.stop rep;
          Thread.join rep_th;
          Net.Server.stop net;
          Thread.join th)
        followers;
      Cluster.Repl.stop repl;
      Thread.join repl_th;
      Net.Server.stop lnet;
      Thread.join lth;
      Store.close store;
      rm_rf dir)
    (fun () ->
      k ~leader
        ~follower_srvs:(List.map (fun (srv, _, _, _, _) -> srv) followers)
        ~router_addr:(Cluster.Router.bound_addr router))

(* Sessions are opened through the router (a mutation, so it forwards
   to the leader) and warmed through the router, so the measured runs
   hit compiled columns on whichever backend rendezvous picks. *)
let open_and_warm router_addr g queries =
  List.iter
    (fun session ->
      let cl = Net.Client.connect router_addr in
      let line =
        J.to_string
          (J.Obj
             [ ("id", J.Int 0); ("op", J.String "open");
               ("session", J.String session); ("chg", Chg.Serialize.to_json g)
             ])
      in
      (match Net.Client.request cl line with
      | Some r when response_ok r -> ()
      | _ -> invalid_arg "CLU1: open failed");
      Array.iter
        (fun (c, m) ->
          let q =
            J.to_string
              (J.Obj
                 [ ("id", J.Int 1); ("op", J.String "lookup");
                   ("session", J.String session); ("class", J.String c);
                   ("member", J.String m) ])
          in
          match Net.Client.request cl q with
          | Some _ -> ()
          | None -> invalid_arg "CLU1: warmup connection lost")
        queries;
      Net.Client.close cl)
    sessions

let await ?(timeout = 10.) pred what =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      invalid_arg (Printf.sprintf "CLU1: timed out waiting for %s" what)
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let replicas_caught_up ~leader ~follower_srvs () =
  let want = List.sort compare (Service.Server.open_sessions leader) in
  List.for_all
    (fun srv ->
      List.sort compare (Service.Server.open_sessions srv) = want)
    follower_srvs

(* One loadgen per session, concurrently; reports merged losslessly. *)
let run_sessions router_addr cfg ~queries =
  let results = Array.make (List.length sessions) None in
  let threads =
    List.mapi
      (fun i session ->
        Thread.create
          (fun () ->
            results.(i) <- Some (Net.Loadgen.run router_addr cfg ~session ~queries))
          ())
      sessions
  in
  List.iter Thread.join threads;
  let reports = List.filter_map Fun.id (Array.to_list results) in
  let hist = Telemetry.Histogram.create () in
  List.iter
    (fun (r : Net.Loadgen.report) ->
      Telemetry.Histogram.merge_into ~into:hist r.hist)
    reports;
  let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
  ( hist,
    sum (fun (r : Net.Loadgen.report) -> r.answered),
    sum (fun (r : Net.Loadgen.report) -> r.errors),
    List.fold_left
      (fun a (r : Net.Loadgen.report) -> a +. r.achieved_qps)
      0. reports,
    List.fold_left
      (fun a (r : Net.Loadgen.report) -> Float.max a r.elapsed)
      0. reports )

let open_loop_qps = 2000.
let measure_s = 1.0

let run () =
  header "CLU1" "shard router over WAL-shipping replicas: latency and scaling";
  let g = Figures.fig9 () in
  let size = G.num_classes g + G.num_edges g in
  let queries =
    Array.of_list
      (List.concat_map
         (fun m ->
           List.init (G.num_classes g) (fun c -> (G.name g c, m)))
         (G.member_names g))
  in
  Format.printf
    "  fig9 via router: %d sessions; open loop %.0f qps aggregate, %gs per \
     run@."
    (List.length sessions) open_loop_qps measure_s;
  List.iter
    (fun replicas ->
      with_cluster ~replicas @@ fun ~leader ~follower_srvs ~router_addr ->
      open_and_warm router_addr g queries;
      await (replicas_caught_up ~leader ~follower_srvs) "replica catch-up";
      let per_session q =
        { Net.Loadgen.conns = 1; qps = q; duration = measure_s;
          mix = [ ("lookup", 9); ("batch_lookup", 1) ]; batch_size = 8;
          binary = false }
      in
      let fixed_hist, fixed_answered, fixed_errors, _, _ =
        run_sessions router_addr
          (per_session (open_loop_qps /. float_of_int (List.length sessions)))
          ~queries
      in
      let _, sat_answered, sat_errors, sat_qps, sat_elapsed =
        run_sessions router_addr (per_session 0.) ~queries
      in
      (* same saturation mix over the cxxlookup-rpc/1b framing — the
         router forwards frames whole, so this measures the binary
         pass-through path end to end *)
      let _, sat_b_answered, sat_b_errors, sat_b_qps, _ =
        run_sessions router_addr
          { (per_session 0.) with binary = true }
          ~queries
      in
      (* the mutating mix: reads keep flowing while every tenth request
         is a mutation the router must forward to the leader exactly
         once; any in-band error here is a routing bug, not load *)
      let _, mut_answered, mut_errors, _, _ =
        run_sessions router_addr
          { (per_session 0.) with
            duration = 0.3;
            mix = [ ("lookup", 8); ("batch_lookup", 1); ("mutate", 1) ]
          }
          ~queries
      in
      let p q = Telemetry.Histogram.quantile fixed_hist q in
      Format.printf
        "  replicas=%d  p50=%d ns  p99=%d ns  (open loop, %d answered)  \
         saturation json=%d req/s (%d answered)  binary=%d req/s (%d \
         answered)  mutating mix: %d answered, %d errors@."
        replicas (p 0.50) (p 0.99) fixed_answered
        (int_of_float sat_qps) sat_answered (int_of_float sat_b_qps)
        sat_b_answered mut_answered mut_errors;
      if fixed_errors > 0 || sat_errors > 0 || sat_b_errors > 0
         || mut_errors > 0 then
        Format.printf "  WARNING: in-band errors: fixed=%d saturation=%d \
                       binary=%d mutating=%d@."
          fixed_errors sat_errors sat_b_errors mut_errors;
      Scaling.record ~experiment:"CLU1"
        ~family:(Printf.sprintf "fig9 router %d replicas" replicas)
        ~n_plus_e:size
        ~time_ns:
          (if sat_answered = 0 then 0.
           else sat_elapsed *. 1e9 /. float_of_int sat_answered)
        ~latency:fixed_hist
        (counters_json
           [ ("replicas", replicas);
             ("sessions", List.length sessions);
             ("open_loop_qps_target", int_of_float open_loop_qps);
             ("open_loop_answered", fixed_answered);
             ("open_loop_errors", fixed_errors);
             ("saturation_qps", int_of_float sat_qps);
             ("saturation_answered", sat_answered);
             ("saturation_errors", sat_errors);
             ("binary_saturation_qps", int_of_float sat_b_qps);
             ("binary_saturation_answered", sat_b_answered);
             ("binary_saturation_errors", sat_b_errors);
             ("mutating_answered", mut_answered);
             ("mutating_errors", mut_errors) ]))
    [ 1; 2; 3 ]
