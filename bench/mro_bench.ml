(* MRO1: linearized-semantics cost — C3 linearization construction and
   MRO-ordered lookup against the Figure-8 engine, on the paper figures
   and a deep diamond stack.

   The C3 table is a one-pass merge over the classes in topological
   order, so construction should sit well below the Figure-8 saturation
   (which propagates verdict sets edge by edge); a single MRO lookup is
   a linear scan of the precomputed order.  The counters record how the
   two semantics relate on each family: how many classes fail to
   linearize, and on how many (class, member) pairs the verdicts
   diverge — the same comparison the semantics-divergence lint rule
   makes, tracked here so its cost and yield stay visible across
   sessions. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Abs = Lookup_core.Abstraction
module Families = Hiergen.Families

let diverges cpp mro =
  match (cpp, mro) with
  | Some (Engine.Red a), Some (Engine.Red b) -> a.Abs.r_ldc <> b.Abs.r_ldc
  | Some (Engine.Blue _), Some (Engine.Red _)
  | Some (Engine.Red _), Some (Engine.Blue _) -> true
  | _ -> false

let family_stats g cl =
  let t = Mro.compute Mro.C3 g in
  let eng = Engine.build cl in
  let unsolvable = ref 0 and divergent = ref 0 and pairs = ref 0 in
  G.iter_classes g (fun c ->
      if Result.is_error (Mro.linearization t c) then incr unsolvable;
      List.iter
        (fun m ->
          incr pairs;
          if diverges (Engine.lookup eng c m) (Mro.lookup t c m) then
            incr divergent)
        (G.member_names g));
  (!unsolvable, !divergent, !pairs)

let bench_family (name, g) =
  let cl = Chg.Closure.compute g in
  let size = G.num_classes g + G.num_edges g in
  let t_fig8 =
    Timing.seconds_per_call (fun () -> ignore (Engine.build cl))
  in
  let t_c3, latency =
    Timing.measure (fun () -> ignore (Mro.compute Mro.C3 g))
  in
  let t_lookup =
    let t = Mro.compute Mro.C3 g in
    let probe = G.num_classes g - 1 in
    Timing.seconds_per_call (fun () ->
        List.iter (fun m -> ignore (Mro.lookup t probe m)) (G.member_names g))
  in
  let unsolvable, divergent, pairs = family_stats g cl in
  Format.printf
    "  %-28s fig8 build %a   C3 build %a   C3 probe lookups %a@."
    name Timing.pp_time t_fig8 Timing.pp_time t_c3 Timing.pp_time t_lookup;
  Format.printf
    "  %-28s %d classes: %d unsolvable, %d/%d divergent verdicts@." ""
    (G.num_classes g) unsolvable divergent pairs;
  Scaling.record ~experiment:"MRO1" ~family:name ~n_plus_e:size
    ~time_ns:(t_c3 *. 1e9) ~latency
    (Telemetry.Json.Obj
       [ ("classes", Telemetry.Json.Int (G.num_classes g));
         ("fig8_build_ns", Telemetry.Json.Float (t_fig8 *. 1e9));
         ("c3_probe_lookup_ns", Telemetry.Json.Float (t_lookup *. 1e9));
         ("unsolvable_classes", Telemetry.Json.Int unsolvable);
         ("divergent_pairs", Telemetry.Json.Int divergent);
         ("pairs", Telemetry.Json.Int pairs) ]);
  (unsolvable, divergent)

let families () =
  [ ("fig1", Hiergen.Figures.fig1 ());
    ("fig3", Hiergen.Figures.fig3 ());
    ("fig9", Hiergen.Figures.fig9 ());
    ( "diamond-stack nv (12 levels)",
      (Families.diamond_stack ~levels:12 ~kind:G.Non_virtual).graph );
    ( "redeclared diamonds (12)",
      (Families.redeclared_diamond_stack ~levels:12 ~kind:G.Non_virtual)
        .graph ) ]

let run () =
  Format.printf
    "@.---- MRO1: C3 linearization vs Figure-8 engine ----@.";
  let results = List.map bench_family (families ()) in
  (* cross-checks in the spirit of the figure tables: fig9's E is the
     known C3 rejection, fig1's E the known divergence; the diamond
     stacks must linearize everywhere. *)
  (match results with
  | [ (u1, d1); _; (u9, d9); (ud, _); (ur, _) ] ->
    let check name cond =
      if not cond then begin
        incr Fig_tables.checks_failed;
        Format.printf "  MISMATCH %s@." name
      end
    in
    check "fig1: no unsolvable class" (u1 = 0);
    check "fig1: E::m diverges" (d1 = 1);
    check "fig9: exactly E unsolvable" (u9 = 1);
    check "fig9: E::m counted divergent" (d9 = 1);
    check "diamond stack linearizes" (ud = 0);
    check "redeclared stack linearizes" (ur = 0)
  | _ -> ())

(* The figure families only, for make bench-smoke / CI: seconds. *)
let smoke () = run ()
