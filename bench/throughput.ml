(* SVC1: service-layer throughput — compiled-table columns vs per-query
   memo lookups on a repeated-query workload.

   The service promotes a member's verdict column out of the memo engine
   once it has been asked about often enough; a compiled lookup is then
   one array read instead of a hash probe per query.  This experiment
   replays the same sparse workload through two sessions over the same
   hierarchy — one with promotion disabled (every query served by the
   memo), one with promotion on the first query (every repeat served by
   a compiled column) — and a third with a deliberately tight column
   budget so the eviction path shows up in the counters. *)

module G = Chg.Graph
module Families = Hiergen.Families
module W = Hiergen.Workload
module Session = Service.Session
module Table_cache = Service.Table_cache

let header id title = Format.printf "@.---- %s: %s ----@." id title

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

(* Replay every query through the session's serving stack (table, then
   memo).  Workload classes always come from the graph, so lookup can't
   fail; raise loudly if the service disagrees. *)
let replay s g ws =
  List.iter
    (fun q ->
      match Session.lookup s (G.name g q.W.q_class) q.W.q_member with
      | Ok _ -> ()
      | Error c -> invalid_arg ("service lost class " ^ c))
    ws

let session ~threshold ?(table_entries = 64) g =
  let config =
    { Session.default_config with
      promote_threshold = threshold;
      table_max_entries = table_entries }
  in
  Session.create ~config ~name:"bench" g

let run () =
  header "SVC1" "service throughput: compiled table vs per-query memo";
  let i =
    Families.random_dag ~n:800 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.25
      ~members:(List.init 24 (fun k -> Printf.sprintf "m%d" k))
      ~seed:11
  in
  let g = i.graph in
  let size = G.num_classes g + G.num_edges g in
  let ws = W.sparse g ~queries:4000 ~classes:64 ~seed:5 in
  Format.printf "  hierarchy: %d classes, %d member names; workload: %d
   \ queries over <=64 classes@."
    (G.num_classes g)
    (List.length (G.member_names g))
    (List.length ws);
  (* memo-only session: promotion threshold no workload can reach *)
  let memo_s = session ~threshold:max_int g in
  replay memo_s g ws (* warm the memo so both paths run resident *);
  let t_memo = Timing.seconds_per_call (fun () -> replay memo_s g ws) in
  (* compiled session: first root query promotes the whole column *)
  let table_s = session ~threshold:1 g in
  replay table_s g ws (* warm: every queried member gets compiled *);
  let t_table = Timing.seconds_per_call (fun () -> replay table_s g ws) in
  let per_query t = t *. 1e9 /. float_of_int (List.length ws) in
  Format.printf "  %-34s %a  (%6.1f ns/query)@." "memo engine per query"
    Timing.pp_time t_memo (per_query t_memo);
  Format.printf "  %-34s %a  (%6.1f ns/query)@." "compiled-table columns"
    Timing.pp_time t_table (per_query t_table);
  Format.printf "  speedup: %.2fx@." (t_memo /. t_table);
  let table_counters =
    Session.counters table_s
    @ Table_cache.counters (Session.cache table_s)
  in
  Scaling.record ~experiment:"SVC1" ~family:"memo per-query (no promotion)"
    ~n_plus_e:size ~time_ns:(per_query t_memo)
    (counters_json (Session.counters memo_s));
  Scaling.record ~experiment:"SVC1" ~family:"compiled-table (threshold 1)"
    ~n_plus_e:size ~time_ns:(per_query t_table)
    (counters_json table_counters);
  (* tight column budget: 8 columns for 24 member names forces the LRU
     eviction path; counters land in BENCH_lookup.json *)
  let tight_s = session ~threshold:1 ~table_entries:8 g in
  let t_tight = Timing.seconds_per_call (fun () -> replay tight_s g ws) in
  let tight_counters = Table_cache.counters (Session.cache tight_s) in
  Format.printf "  %-34s %a  (%6.1f ns/query)@."
    "tight budget (8 columns, LRU)" Timing.pp_time t_tight
    (per_query t_tight);
  Format.printf "  tight-budget cache counters:";
  List.iter (fun (k, v) -> Format.printf " %s=%d" k v) tight_counters;
  Format.printf "@.";
  Scaling.record ~experiment:"SVC1" ~family:"compiled-table (8-column budget)"
    ~n_plus_e:size ~time_ns:(per_query t_tight)
    (counters_json tight_counters)
