(* SVC1: service-layer throughput — compiled-table columns vs per-query
   memo lookups on a repeated-query workload.

   The service promotes a member's verdict column out of the memo engine
   once it has been asked about often enough; a compiled lookup is then
   one array read instead of a hash probe per query.  This experiment
   replays the same sparse workload through two sessions over the same
   hierarchy — one with promotion disabled (every query served by the
   memo), one with promotion on the first query (every repeat served by
   a compiled column) — and a third with a deliberately tight column
   budget so the eviction path shows up in the counters. *)

module G = Chg.Graph
module Families = Hiergen.Families
module W = Hiergen.Workload
module Session = Service.Session
module Table_cache = Service.Table_cache

let header id title = Format.printf "@.---- %s: %s ----@." id title

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

(* Replay every query through the session's serving stack (table, then
   memo).  Workload classes always come from the graph, so lookup can't
   fail; raise loudly if the service disagrees. *)
let replay s g ws =
  List.iter
    (fun q ->
      match Session.lookup s (G.name g q.W.q_class) q.W.q_member with
      | Ok _ -> ()
      | Error c -> invalid_arg ("service lost class " ^ c))
    ws

(* The instrumented twin of [replay]: each query individually clocked
   into [hist].  The delta against the plain replay is the price of
   per-query observability — two monotonic reads plus one O(1) record —
   which the service only ever pays once per *request*, not per query,
   so this is the worst case for the <=5% overhead budget. *)
let replay_recorded s g ws hist =
  List.iter
    (fun q ->
      let c0 = Telemetry.Clock.now_ns () in
      (match Session.lookup s (G.name g q.W.q_class) q.W.q_member with
      | Ok _ -> ()
      | Error c -> invalid_arg ("service lost class " ^ c));
      Telemetry.Histogram.record hist (Telemetry.Clock.elapsed_ns ~since:c0))
    ws

(* Queries slower than this count as slow in the recorded rows — the
   bench-side analogue of the server's --slow-ms flag, scaled to
   per-query nanoseconds. *)
let slow_query_ns = 10_000

let session ~threshold ?(table_entries = 64) g =
  let config =
    { Session.default_config with
      promote_threshold = threshold;
      table_max_entries = table_entries }
  in
  Session.create ~config ~name:"bench" g

let run () =
  header "SVC1" "service throughput: compiled table vs per-query memo";
  let i =
    Families.random_dag ~n:800 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.25
      ~members:(List.init 24 (fun k -> Printf.sprintf "m%d" k))
      ~seed:11
  in
  let g = i.graph in
  let size = G.num_classes g + G.num_edges g in
  let ws = W.sparse g ~queries:4000 ~classes:64 ~seed:5 in
  Format.printf "  hierarchy: %d classes, %d member names; workload: %d
   \ queries over <=64 classes@."
    (G.num_classes g)
    (List.length (G.member_names g))
    (List.length ws);
  (* memo-only session: promotion threshold no workload can reach *)
  let memo_s = session ~threshold:max_int g in
  replay memo_s g ws (* warm the memo so both paths run resident *);
  let t_memo = Timing.seconds_per_call (fun () -> replay memo_s g ws) in
  (* compiled session: first root query promotes the whole column *)
  let table_s = session ~threshold:1 g in
  replay table_s g ws (* warm: every queried member gets compiled *);
  let t_table = Timing.seconds_per_call (fun () -> replay table_s g ws) in
  let per_query t = t *. 1e9 /. float_of_int (List.length ws) in
  Format.printf "  %-34s %a  (%6.1f ns/query)@." "memo engine per query"
    Timing.pp_time t_memo (per_query t_memo);
  Format.printf "  %-34s %a  (%6.1f ns/query)@." "compiled-table columns"
    Timing.pp_time t_table (per_query t_table);
  Format.printf "  speedup: %.2fx@." (t_memo /. t_table);
  (* recorded passes: per-query latency distributions, and the recording
     overhead itself against the plain replays above *)
  let lat_memo = Telemetry.Histogram.create () in
  let t_memo_rec =
    Timing.seconds_per_call (fun () ->
        Telemetry.Histogram.reset lat_memo;
        replay_recorded memo_s g ws lat_memo)
  in
  let lat_table = Telemetry.Histogram.create () in
  let t_table_rec =
    Timing.seconds_per_call (fun () ->
        Telemetry.Histogram.reset lat_table;
        replay_recorded table_s g ws lat_table)
  in
  let pq h q = Telemetry.Histogram.quantile h q in
  let slow h = Telemetry.Histogram.observations_above h slow_query_ns in
  let report name h =
    Format.printf
      "  %-34s p50 %4d ns  p99 %5d ns  max %6d ns  (%d of %d over %d ns)@."
      name (pq h 0.5) (pq h 0.99) (pq h 1.0) (slow h)
      (Telemetry.Histogram.count h) slow_query_ns
  in
  report "memo per-query latency" lat_memo;
  report "compiled-table per-query latency" lat_table;
  let overhead plain timed = (timed -. plain) /. plain *. 100.0 in
  Format.printf
    "  per-query recording overhead: memo %+.1f%%, table %+.1f%% (clock + \
     record per query; the service pays this once per request)@."
    (overhead t_memo t_memo_rec)
    (overhead t_table t_table_rec);
  let table_counters =
    Session.counters table_s
    @ Table_cache.counters (Session.cache table_s)
  in
  Scaling.record ~experiment:"SVC1" ~family:"memo per-query (no promotion)"
    ~n_plus_e:size ~time_ns:(per_query t_memo) ~latency:lat_memo
    (counters_json
       (Session.counters memo_s @ [ ("slow_queries", slow lat_memo) ]));
  Scaling.record ~experiment:"SVC1" ~family:"compiled-table (threshold 1)"
    ~n_plus_e:size ~time_ns:(per_query t_table) ~latency:lat_table
    (counters_json (table_counters @ [ ("slow_queries", slow lat_table) ]));
  (* tight column budget: 8 columns for 24 member names forces the LRU
     eviction path; counters land in BENCH_lookup.json *)
  let tight_s = session ~threshold:1 ~table_entries:8 g in
  let t_tight = Timing.seconds_per_call (fun () -> replay tight_s g ws) in
  let lat_tight = Telemetry.Histogram.create () in
  replay_recorded tight_s g ws lat_tight (* one untimed recorded pass *);
  let tight_counters = Table_cache.counters (Session.cache tight_s) in
  Format.printf "  %-34s %a  (%6.1f ns/query)@."
    "tight budget (8 columns, LRU)" Timing.pp_time t_tight
    (per_query t_tight);
  report "tight-budget per-query latency" lat_tight;
  Format.printf "  tight-budget cache counters:";
  List.iter (fun (k, v) -> Format.printf " %s=%d" k v) tight_counters;
  Format.printf "@.";
  Scaling.record ~experiment:"SVC1" ~family:"compiled-table (8-column budget)"
    ~n_plus_e:size ~time_ns:(per_query t_tight) ~latency:lat_tight
    (counters_json (tight_counters @ [ ("slow_queries", slow lat_tight) ]))
