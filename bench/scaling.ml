(* Experiments C1-C5: the paper's complexity claims.

   The paper reports no absolute timings (its evaluation is asymptotic),
   so the reproduction target is the *shape*: near-constant time per
   (|N|+|E|) in the unambiguous case, a growing per-size factor on the
   ambiguity-heavy family, exponential subobject-graph algorithms vs the
   polynomial CHG algorithm, and the whole-table bound. *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Metrics = Lookup_core.Metrics
module Families = Hiergen.Families

let size g = G.num_classes g + G.num_edges g

let header id title = Format.printf "@.---- %s: %s ----@." id title

(* Per-point (timing, op-counts) records accumulated during the sweeps;
   main.ml writes them to BENCH_lookup.json so future sessions get a
   perf trajectory in terms of the paper's unit operations, not just
   wall-clock. *)
let bench_records : Telemetry.Json.t list ref = ref []

let record ~experiment ~family ~n_plus_e ~time_ns ?latency counters =
  let latency_fields =
    match latency with
    | None -> []
    | Some h ->
      (* the per-call latency distribution behind the mean: quantiles
         carry the histogram's documented <=12.5% bucket-bound error *)
      [ ( "latency_ns",
          Telemetry.Json.Obj
            (("calls", Telemetry.Json.Int (Telemetry.Histogram.count h))
             :: List.map
                  (fun (k, v) -> (k, Telemetry.Json.Int v))
                  (Telemetry.Histogram.percentile_fields h)) ) ]
  in
  bench_records :=
    Telemetry.Json.Obj
      ([ ("experiment", Telemetry.Json.String experiment);
         ("family", Telemetry.Json.String family);
         ("n_plus_e", Telemetry.Json.Int n_plus_e);
         ("time_ns_per_call", Telemetry.Json.Float time_ns) ]
       @ latency_fields
       @ [ ("counters", counters) ])
    :: !bench_records

(* One instrumented run alongside the timed (uninstrumented) loop: the
   counters are deterministic, so a single pass suffices. *)
let member_column_counters cl m =
  let metrics = Metrics.create () in
  ignore (Engine.build_member ~metrics cl m);
  Metrics.counters_json metrics

let full_table_counters cl =
  let metrics = Metrics.create () in
  ignore (Engine.build ~metrics cl);
  Metrics.counters_json metrics

(* C1: single-member column on unambiguous families: expect time/(N+E)
   roughly flat (the paper's O(|N|+|E|) common case). *)
let c1 () =
  header "C1" "single lookup, unambiguous case: expect ~linear in |N|+|E|";
  Format.printf "  %-34s %8s %12s %14s@." "family" "|N|+|E|" "time"
    "ns per |N|+|E|";
  let run (i : Families.instance) =
    let g = i.graph in
    let cl = Chg.Closure.compute g in
    let t, latency = Timing.measure (fun () -> Engine.build_member cl "m") in
    record ~experiment:"C1" ~family:i.description ~n_plus_e:(size g)
      ~time_ns:(t *. 1e9) ~latency
      (member_column_counters cl "m");
    Format.printf "  %-34s %8d %a %10.2f@." i.description (size g)
      Timing.pp_time t
      (t *. 1e9 /. float_of_int (size g))
  in
  List.iter
    (fun n -> run (Families.chain ~n ~kind:G.Non_virtual))
    [ 256; 512; 1024; 2048; 4096 ];
  List.iter
    (fun levels ->
      run (Families.redeclared_diamond_stack ~levels ~kind:G.Virtual))
    [ 32; 64; 128; 256 ];
  List.iter
    (fun depth -> run (Families.wide_tree ~fanout:4 ~depth))
    [ 3; 4; 5; 6 ]

(* C2: the ambiguity-heavy fence family: many blue definitions cross each
   edge, so per-(N+E) cost grows with the width (the O(|N|*(|N|+|E|))
   general case). *)
let c2 () =
  header "C2" "single lookup, ambiguous case: per-size cost grows with width";
  Format.printf "  %-34s %8s %12s %14s@." "family" "|N|+|E|" "time"
    "ns per |N|+|E|";
  let run (i : Families.instance) =
    let g = i.graph in
    let cl = Chg.Closure.compute g in
    let t, latency = Timing.measure (fun () -> Engine.build_member cl "m") in
    record ~experiment:"C2" ~family:i.description ~n_plus_e:(size g)
      ~time_ns:(t *. 1e9) ~latency
      (member_column_counters cl "m");
    Format.printf "  %-34s %8d %a %10.2f@." i.description (size g)
      Timing.pp_time t
      (t *. 1e9 /. float_of_int (size g))
  in
  (* blue chains carry [width] distinct leastVirtual values down the
     chain: the per-(N+E) cost grows ~linearly with width, the general
     O(|N|*(|N|+|E|)) case. *)
  List.iter
    (fun width -> run (Families.blue_chain ~width ~depth:256))
    [ 2; 8; 32; 128 ];
  (* plain fences stay cheap per unit: their blue sets collapse to {Ω} *)
  List.iter
    (fun width -> run (Families.fence ~width ~levels:8))
    [ 4; 16; 32 ]

(* C3: non-virtual diamond stacks: the subobject graph doubles per level,
   so every subobject-graph algorithm (Rossie-Friedman, g++) blows up
   while the CHG algorithm stays polynomial. *)
let c3 () =
  header "C3"
    "exponential subobject graph vs the CHG algorithm (diamond stacks)";
  Format.printf "  %-7s %6s %11s %12s %12s %12s@." "levels" "|N|"
    "subobjects" "engine" "RF lookup" "g++ scan";
  List.iter
    (fun levels ->
      let i = Families.diamond_stack ~levels ~kind:G.Non_virtual in
      let g = i.graph in
      let probe = i.probe in
      let cl = Chg.Closure.compute g in
      let t_engine =
        Timing.seconds_per_call (fun () -> Engine.build_member cl "m")
      in
      let count = Subobject.Sgraph.count (Subobject.Sgraph.build g probe) in
      let t_rf =
        Timing.seconds_per_call (fun () ->
            Baselines.Rf_lookup.lookup g probe "m")
      in
      let t_gxx =
        Timing.seconds_per_call (fun () ->
            Baselines.Gxx.lookup ~mode:Baselines.Gxx.Buggy g probe "m")
      in
      Format.printf "  %-7d %6d %11d %a %a %a@." levels (G.num_classes g)
        count Timing.pp_time t_engine Timing.pp_time t_rf Timing.pp_time
        t_gxx)
    [ 2; 4; 6; 8; 10; 12 ];
  Format.printf
    "  (subobject count is 2^levels+...; RF/g++ follow it, the engine does \
     not)@."

(* C4: whole-table construction, the O((|M|+|N|) * (|N|+|E|)) claim for
   unambiguous programs. *)
let c4 () =
  header "C4" "whole lookup table: expect ~linear in (|M|+|N|)*(|N|+|E|)";
  Format.printf "  %-34s %9s %12s %16s@." "family" "|M|" "time"
    "ns/(M+N)(N+E)";
  List.iter
    (fun n ->
      (* the member-name pool grows with n so the (|M|+|N|) factor in the
         bound is exercised, not just |N| *)
      let i =
        Families.random_dag ~n ~max_bases:3 ~virtual_prob:0.3
          ~declare_prob:0.3
          ~members:(List.init (max 4 (n / 16)) (fun k -> Printf.sprintf "m%d" k))
          ~seed:42
      in
      let g = i.graph in
      let m = List.length (G.member_names g) in
      let cl = Chg.Closure.compute g in
      let t, latency = Timing.measure (fun () -> Engine.build cl) in
      record ~experiment:"C4" ~family:i.description ~n_plus_e:(size g)
        ~time_ns:(t *. 1e9) ~latency (full_table_counters cl);
      let denom = float_of_int ((m + n) * size g) in
      Format.printf "  %-34s %9d %a %12.4f@." i.description m Timing.pp_time
        t
        (t *. 1e9 /. denom))
    [ 64; 128; 256; 512; 1024 ]

(* C5: the Eiffel-style topological shortcut (Section 7.2) vs the real
   algorithm on a fully unambiguous program: both are valid there; the
   shortcut's simplicity is its point, ambiguity detection is the real
   algorithm's. *)
let c5 () =
  header "C5" "topological-number shortcut vs the algorithm (Section 7.2)";
  let i = Families.redeclared_diamond_stack ~levels:64 ~kind:G.Virtual in
  let g = i.graph in
  let cl = Chg.Closure.compute g in
  let topo = Baselines.Topo_lookup.prepare g in
  let t_topo =
    Timing.seconds_per_call (fun () ->
        Baselines.Topo_lookup.resolve topo i.probe "m")
  in
  let t_engine =
    Timing.seconds_per_call (fun () -> Engine.build_member cl "m")
  in
  Format.printf "  %s@." i.description;
  Format.printf "  shortcut (one query, precomputed closure): %a@."
    Timing.pp_time t_topo;
  Format.printf "  full algorithm (whole member column)     : %a@."
    Timing.pp_time t_engine;
  let eng = Engine.build_member cl "m" in
  let agree = ref true in
  G.iter_classes g (fun c ->
      match (Engine.resolves_to eng c "m", Baselines.Topo_lookup.resolve topo c "m") with
      | Some a, Some b when a = b -> ()
      | None, None -> ()
      | _ -> agree := false);
  Format.printf "  [%s] shortcut agrees on every (unambiguous) lookup@."
    (if !agree then "OK" else "MISMATCH");
  if not !agree then incr Fig_tables.checks_failed

(* C7: the lazy memoising variant vs the eager table under sparse query
   workloads — the paper: "a memoising lazy algorithm ... does not
   compute table entries that are unnecessary". *)
let c7 () =
  header "C7" "lazy memo vs eager table under sparse query workloads";
  let i =
    Families.random_dag ~n:2000 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.2
      ~members:(List.init 50 (fun k -> Printf.sprintf "m%d" k))
      ~seed:7
  in
  let g = i.graph in
  let cl = Chg.Closure.compute g in
  Format.printf "  hierarchy: %d classes, %d member names@."
    (G.num_classes g)
    (List.length (G.member_names g));
  Format.printf "  %-28s %12s %14s@." "workload" "eager" "lazy memo";
  List.iter
    (fun (qs, touched) ->
      let ws = Hiergen.Workload.sparse g ~queries:qs ~classes:touched ~seed:3 in
      let t_eager =
        Timing.seconds_per_call (fun () ->
            let eng = Engine.build cl in
            Hiergen.Workload.run_engine eng ws)
      in
      let t_memo =
        Timing.seconds_per_call (fun () ->
            let memo = Lookup_core.Memo.create cl in
            Hiergen.Workload.run_memo memo ws)
      in
      Format.printf "  %4d queries over %3d classes %a %a@." qs touched
        Timing.pp_time t_eager Timing.pp_time t_memo)
    [ (10, 5); (100, 20); (1000, 100) ];
  Format.printf
    "  (the eager column pays the full-table cost once per workload; the
    \   lazy variant touches only queried classes and their bases)@."

let run () =
  Format.printf "@.==== Complexity experiments (C1-C5, C7) ====@.";
  c1 ();
  c2 ();
  c3 ();
  c4 ();
  c5 ();
  c7 ()
