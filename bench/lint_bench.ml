(* LNT1: hierarchy-linter throughput — all six rules from one shared
   engine build over a generated hierarchy.

   The linter's contract is that every rule reads the same saturated
   engine; variant rebuilds happen only where a rule needs a
   counterfactual (fragile-dominance member deletion, virtualize-fix-it
   edge flips), and ambiguous-lookup optionally calls the exponential
   spec oracle per ambiguous pair for witness definition paths.  That
   witness cost dominates on ambiguity-dense hierarchies, so the sweep
   times three configurations over the same random DAG: the full pass,
   the full pass with witness paths disabled, and the verdict-only
   cheap rules.  Per-rule fire counters land in BENCH_lookup.json so
   lint cost can be tracked across sessions alongside the lookup
   benchmarks. *)

module G = Chg.Graph
module Families = Hiergen.Families

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

let run () =
  Format.printf "@.---- LNT1: lint throughput: all rules, one engine build \
                 ----@.";
  let i =
    Families.random_dag ~n:120 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.3
      ~members:(List.init 8 (fun k -> Printf.sprintf "m%d" k))
      ~seed:23
  in
  let g = i.graph in
  let cl = Chg.Closure.compute g in
  let size = G.num_classes g + G.num_edges g in
  let lint_with config =
    let metrics = Lint.create_metrics () in
    let findings = Lint.run ~config ~metrics cl in
    (findings, metrics)
  in
  let findings, _ = lint_with Lint.default_config in
  let e, w, n = Lint.summary findings in
  Format.printf "  hierarchy: %d classes, %d edges; findings: %d errors, \
                 %d warnings, %d notes@."
    (G.num_classes g) (G.num_edges g) e w n;
  let time family config =
    let t, latency = Timing.measure (fun () -> ignore (lint_with config)) in
    Format.printf "  %-38s %a@." family Timing.pp_time t;
    let _, metrics = lint_with config in
    Scaling.record ~experiment:"LNT1" ~family ~n_plus_e:size
      ~time_ns:(t *. 1e9) ~latency
      (counters_json (Lint.metrics_counters metrics));
    t
  in
  let t_all = time "all six rules (spec witnesses)" Lint.default_config in
  let t_nowit =
    time "all six rules (no witness paths)"
      { Lint.default_config with spec_witness_limit = 0 }
  in
  let t_cheap =
    time "cheap rules (ambiguous+replicated)"
      { Lint.default_config with
        rules = [ Lint.Rule.Ambiguous_lookup; Lint.Rule.Replicated_base ];
        spec_witness_limit = 0 }
  in
  Format.printf "  witness-path overhead: %.2fx; variant/baseline \
                 overhead: %.2fx@."
    (t_all /. t_nowit) (t_nowit /. t_cheap)
