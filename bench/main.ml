(* Benchmark harness: regenerates every figure of the paper (F1-F9),
   runs the complexity experiments (C1-C5), the engine matchup (C6), and
   Bechamel microbenchmarks.  See DESIGN.md for the experiment index and
   EXPERIMENTS.md for paper-vs-measured notes.

   Run with: dune exec bench/main.exe *)

(* Ops counts alongside timings for every sweep point, so perf can be
   tracked across sessions in the paper's own unit operations.  The host
   header records where the wall-clock numbers came from — parallel
   (PAR1) speedups are meaningless without the core count. *)
let host_json () =
  Telemetry.Json.Obj
    [ ("hostname", Telemetry.Json.String (Unix.gethostname ()));
      ("ncores", Telemetry.Json.Int (Domain.recommended_domain_count ()));
      ("ocaml_version", Telemetry.Json.String Sys.ocaml_version) ]

let write_metrics ?entries () =
  let entries =
    match entries with
    | Some e -> e
    | None -> List.rev !Scaling.bench_records
  in
  let doc =
    Telemetry.Json.Obj
      [ ("schema", Telemetry.Json.String "cxxlookup-bench/1");
        ("host", host_json ());
        ("entries", Telemetry.Json.List entries) ]
  in
  Out_channel.with_open_text "BENCH_lookup.json" (fun oc ->
      Telemetry.Json.output oc doc);
  Format.printf "@.wrote BENCH_lookup.json (%d sweep points)@."
    (List.length entries)

(* The `raw` quick mode reruns only RAW1 but keeps every other
   experiment's rows: the existing file's entries minus stale RAW1 ones,
   plus the fresh records.  A missing or unparseable file degrades to
   the fresh rows alone. *)
let merge_raw_entries fresh =
  let kept =
    match
      In_channel.with_open_text "BENCH_lookup.json" In_channel.input_all
    with
    | exception Sys_error _ -> []
    | text ->
      (match Raw_bench.Reader.parse text with
      | exception Raw_bench.Reader.Bad msg ->
        Format.printf
          "  note: BENCH_lookup.json unparseable (%s); keeping RAW1 rows \
           only@."
          msg;
        []
      | Telemetry.Json.Obj fields ->
        (match List.assoc_opt "entries" fields with
        | Some (Telemetry.Json.List l) ->
          List.filter
            (function
              | Telemetry.Json.Obj fs ->
                List.assoc_opt "experiment" fs
                <> Some (Telemetry.Json.String "RAW1")
              | _ -> true)
            l
        | _ -> [])
      | _ -> [])
  in
  kept @ fresh

let () =
  Format.printf "cxxlookup benchmark harness — ";
  Format.printf "A Member Lookup Algorithm for C++ (PLDI 1997)@.";
  (* `smoke` (make bench-smoke, CI) runs only the packed-table checks on
     a small family: determinism and the size floor, in seconds.  The
     full run regenerates every figure and BENCH_lookup.json. *)
  if Array.exists (String.equal "smoke") Sys.argv then begin
    Packed_bench.smoke ();
    Mro_bench.smoke ();
    Format.printf "@.%s@."
      (if !Fig_tables.checks_failed = 0 then "Smoke checks passed."
       else
         Printf.sprintf "%d CHECKS FAILED — see MISMATCH lines above."
           !Fig_tables.checks_failed);
    exit (if !Fig_tables.checks_failed = 0 then 0 else 1)
  end;
  (* `srv` runs only the networked-server experiment (seconds, for
     iterating on the server) and leaves BENCH_lookup.json alone; the
     full run below includes it and regenerates the file. *)
  if Array.exists (String.equal "srv") Sys.argv then begin
    Srv_bench.run ();
    exit 0
  end;
  (* `clu` runs only the cluster experiment (router + replicas), for
     iterating on the cluster layer; the full run includes it too. *)
  if Array.exists (String.equal "clu") Sys.argv then begin
    Cluster_bench.run ();
    exit 0
  end;
  (* `raw` runs only the raw-speed-floor experiment and merges its rows
     into BENCH_lookup.json in place (other experiments' entries are
     kept); rows where mmap cannot engage are reported as skipped, not
     failed. *)
  if Array.exists (String.equal "raw") Sys.argv then begin
    Raw_bench.run ();
    write_metrics
      ~entries:(merge_raw_entries (List.rev !Scaling.bench_records)) ();
    Format.printf "@.%s@."
      (if !Fig_tables.checks_failed = 0 then "RAW1 checks passed."
       else
         Printf.sprintf "%d CHECKS FAILED — see MISMATCH lines above."
           !Fig_tables.checks_failed);
    exit (if !Fig_tables.checks_failed = 0 then 0 else 1)
  end;
  Fig_tables.run ();
  Scaling.run ();
  Ablation.run ();
  Matchup.run ();
  Throughput.run ();
  Lint_bench.run ();
  Mro_bench.run ();
  Store_bench.run ();
  Packed_bench.run ();
  Raw_bench.run ();
  Srv_bench.run ();
  Cluster_bench.run ();
  Becha.run ();
  write_metrics ();
  Format.printf "@.%s@."
    (if !Fig_tables.checks_failed = 0 then
       "All figure/experiment checks passed."
     else
       Printf.sprintf "%d CHECKS FAILED — see MISMATCH lines above."
         !Fig_tables.checks_failed);
  exit (if !Fig_tables.checks_failed = 0 then 0 else 1)
