(* STO1: durable-store start-up — cold session build vs warm snapshot
   restore.

   A cold open builds the session from the in-memory hierarchy and then
   compiles every queried member's verdict column through the memo
   engine.  A warm open reads the newest snapshot back off disk and
   installs the persisted columns directly into the table cache, so the
   serving state is ready without recomputation.  The third family adds
   a WAL tail to the warm path: recovery replays the logged mutations
   through the session's incremental engine, which is the real restart
   cost once a store has been running between compactions. *)

module G = Chg.Graph
module Families = Hiergen.Families
module Session = Service.Session

let header id title = Format.printf "@.---- %s: %s ----@." id title

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* One lookup per member from the root class: with promote_threshold 1
   every column compiles, which is exactly the state a snapshot
   persists. *)
let compile_columns s g =
  let root = G.name g 0 in
  List.iter
    (fun m ->
      match Session.lookup s root m with
      | Ok _ -> ()
      | Error c -> invalid_arg ("bench session lost class " ^ c))
    (G.member_names g)

let wal_tail = 48

let run () =
  header "STO1" "session open: cold build vs snapshot restore";
  let i =
    Families.random_dag ~n:600 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.25
      ~members:(List.init 24 (fun k -> Printf.sprintf "m%d" k))
      ~seed:23
  in
  let g = i.graph in
  let size = G.num_classes g + G.num_edges g in
  let members = G.member_names g in
  let config =
    { Session.default_config with
      promote_threshold = 1;
      table_max_entries = List.length members }
  in
  (* Durable state: a donor session with every column compiled,
     snapshotted into a scratch store.  The second lineage carries the
     same snapshot plus a WAL tail of add_member mutations. *)
  let dir = Filename.temp_file "cxxlookup-bench" ".store" in
  Sys.remove dir;
  let store = Store.open_dir dir in
  let donor = Session.create ~config ~name:"donor" g in
  compile_columns donor g;
  let snapshot_of name =
    { Store.Snapshot.s_session = name;
      s_epoch = 0;
      s_protocol = Service.Protocol.version;
      s_graph = g;
      s_columns = Session.compiled_columns donor }
  in
  let snapshot_bytes = Store.write_snapshot store (snapshot_of "plain") in
  ignore (Store.write_snapshot store (snapshot_of "tail"));
  for k = 1 to wal_tail do
    Store.log_mutation store ~session:"tail" ~epoch:k
      (Store.Mutation.Add_member
         { am_class = G.name g (k mod G.num_classes g);
           am_member = G.member (Printf.sprintf "w%d" k) })
  done;
  Store.sync store;
  Format.printf
    "  hierarchy: %d classes, %d member names; snapshot: %d bytes, WAL \
     tail: %d records@."
    (G.num_classes g) (List.length members) snapshot_bytes wal_tail;
  let cold_open () =
    let s = Session.create ~config ~name:"cold" g in
    compile_columns s g;
    s
  in
  let warm_open name =
    match Store.recover store name with
    | Ok (Some rv) ->
      let snap = rv.Store.rv_snapshot in
      let s =
        Session.restore ~config ~name ~epoch:snap.Store.Snapshot.s_epoch
          ~columns:snap.Store.Snapshot.s_columns
          snap.Store.Snapshot.s_graph
      in
      List.iter
        (fun r ->
          match r.Store.Wal.rc_mutation with
          | Store.Mutation.Add_class { ac_name; ac_bases; ac_members } ->
            ignore
              (Session.add_class s ~cls:ac_name ~bases:ac_bases
                 ~members:ac_members)
          | Store.Mutation.Add_member { am_class; am_member } ->
            ignore (Session.add_member s ~cls:am_class am_member))
        rv.Store.rv_replayed;
      s
    | Ok None | Error _ -> invalid_arg "bench store lost its snapshot"
  in
  ignore (cold_open ());
  ignore (warm_open "plain");
  ignore (warm_open "tail") (* warm the page cache for all three *);
  let t_cold, lat_cold = Timing.measure (fun () -> cold_open ()) in
  let t_warm, lat_warm = Timing.measure (fun () -> warm_open "plain") in
  let t_tail, lat_tail = Timing.measure (fun () -> warm_open "tail") in
  Format.printf "  %-38s %a@." "cold open (build + compile columns)"
    Timing.pp_time t_cold;
  Format.printf "  %-38s %a@." "warm open (snapshot restore)"
    Timing.pp_time t_warm;
  Format.printf "  %-38s %a@."
    (Printf.sprintf "warm open + %d-record WAL replay" wal_tail)
    Timing.pp_time t_tail;
  Format.printf "  warm speedup over cold: %.2fx@." (t_cold /. t_warm);
  let shape =
    [ ("classes", G.num_classes g);
      ("member_names", List.length members);
      ("snapshot_bytes", snapshot_bytes);
      ("wal_records", 0) ]
  in
  Scaling.record ~experiment:"STO1"
    ~family:"cold open (build + compile columns)" ~n_plus_e:size
    ~time_ns:(t_cold *. 1e9) ~latency:lat_cold
    (counters_json shape);
  Scaling.record ~experiment:"STO1" ~family:"warm open (snapshot restore)"
    ~n_plus_e:size ~time_ns:(t_warm *. 1e9) ~latency:lat_warm
    (counters_json shape);
  Scaling.record ~experiment:"STO1"
    ~family:(Printf.sprintf "warm open + %d-record WAL replay" wal_tail)
    ~n_plus_e:size ~time_ns:(t_tail *. 1e9) ~latency:lat_tail
    (counters_json
       (List.map
          (fun (k, v) -> if k = "wal_records" then (k, wal_tail) else (k, v))
          shape));
  Store.close store;
  rm_rf dir
