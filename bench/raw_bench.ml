(* RAW1: the raw speed floor — what the serialization tax costs.

   Two sweeps, both in-process (no socket), so the deltas are pure
   encode/decode cost, not kernel scheduling:

   + batch QPS: the same batch_lookup stream dispatched as JSON lines
     ([Server.handle_line]) vs cxxlookup-rpc/1b frames with interned
     ids ([Server.handle_frame]).  The CHECK enforces the issue's
     floor: binary+interned >= 5x the JSON baseline.

   + restore latency: [Store.recover] over the same snapshot with the
     table image decoded ([`Off]), mapped after a streaming CRC pass
     ([`Verify]), and mapped with structural checks only ([`Fast]),
     across snapshot sizes.  Decode is linear in the image; the mapped
     modes should flatten.  On a filesystem where mapping fails the
     store falls back to decode silently — those rows are reported
     with a [skipped] marker instead of failing (the
     [store_mmap_restores] counter says whether the zero-copy path
     actually engaged). *)

module G = Chg.Graph
module J = Chg.Json
module Families = Hiergen.Families
module Session = Service.Session
module Server = Service.Server
module Frame = Service.Frame

let header id title = Format.printf "@.---- %s: %s ----@." id title

let counters_json pairs =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) pairs)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let response_ok j = J.member "ok" j = Ok (J.Bool true)

let batch_size = 64

(* ---- batch QPS: JSON lines vs 1b frames ---------------------------- *)

let qps () =
  let i =
    Families.random_dag ~n:300 ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.25
      ~members:(List.init 16 (fun k -> Printf.sprintf "m%d" k))
      ~seed:41
  in
  let g = i.graph in
  let size = G.num_classes g + G.num_edges g in
  let members = G.member_names g in
  let config =
    { Session.default_config with
      promote_threshold = 1;
      table_max_entries = List.length members }
  in
  let srv = Server.create ~config () in
  let session = "raw" in
  let expect what j =
    if not (response_ok j) then
      invalid_arg (Printf.sprintf "RAW1: %s failed: %s" what (J.to_string j))
  in
  expect "open"
    (Server.handle_line srv
       (J.to_string
          (J.Obj
             [ ("id", J.Int 0); ("op", J.String "open");
               ("session", J.String session);
               ("chg", Chg.Serialize.to_json g) ])));
  let queries =
    Array.of_list
      (List.concat_map
         (fun m -> List.init (G.num_classes g) (fun c -> (G.name g c, m)))
         members)
  in
  let q k = queries.(k mod Array.length queries) in
  (* the same 64-query batch in both framings, pre-encoded: the timed
     loop is dispatch + lookup + response encode, nothing else *)
  let json_line =
    J.to_string
      (J.Obj
         [ ("id", J.Int 1); ("op", J.String "batch_lookup");
           ("session", J.String session);
           ( "queries",
             J.List
               (List.init batch_size (fun k ->
                    let c, m = q (k * 13) in
                    J.Obj [ ("class", J.String c); ("member", J.String m) ]))
           ) ])
  in
  let symbols = Server.handle_line srv
      (J.to_string
         (J.Obj
            [ ("id", J.Int 2); ("op", J.String "symbols");
              ("session", J.String session) ]))
  in
  expect "symbols" symbols;
  let table field =
    match J.member field symbols with
    | Ok (J.List l) ->
      let h = Hashtbl.create (List.length l) in
      List.iteri
        (fun i n ->
          match n with
          | J.String n -> Hashtbl.replace h n i
          | _ -> invalid_arg "RAW1: non-string symbol")
        l;
      h
    | _ -> invalid_arg ("RAW1: symbols response lacks " ^ field)
  in
  let class_ids = table "classes" and member_ids = table "members" in
  let frame =
    Frame.encode_request
      { Frame.fr_id = 1; fr_session = session;
        fr_op =
          Frame.Batch_lookup
            (Array.init batch_size (fun k ->
                 let c, m = q (k * 13) in
                 (Hashtbl.find class_ids c, Hashtbl.find member_ids m))) }
  in
  (* warm: with promote_threshold 1 the first pass compiles every
     queried column, so both timed loops run against packed tables *)
  expect "warmup batch" (Server.handle_line srv json_line);
  let fresp = Server.handle_frame srv frame in
  (match Frame.decode_response ~op:Frame.op_batch_lookup fresp with
  | Ok (_, Frame.Ok_batch { ob_resolved; ob_ambiguous; ob_not_found; _ }) ->
    (* the two framings must agree on every verdict before we compare
       their speed *)
    let jresp = Server.handle_line srv json_line in
    let field f =
      match J.member f jresp with
      | Ok (J.Int n) -> n
      | _ -> invalid_arg ("RAW1: batch response lacks " ^ f)
    in
    Fig_tables.check "RAW1: binary batch verdicts = JSON verdicts"
      (ob_resolved = field "resolved"
      && ob_ambiguous = field "ambiguous"
      && ob_not_found = field "not_found")
  | Ok _ | Error _ -> invalid_arg "RAW1: binary warmup batch failed");
  let t_json, lat_json =
    Timing.measure (fun () -> Server.handle_line srv json_line)
  in
  let t_bin, lat_bin =
    Timing.measure (fun () -> Server.handle_frame srv frame)
  in
  let qps t = float_of_int batch_size /. t in
  let speedup = t_json /. t_bin in
  Format.printf
    "  batch_lookup x%d, %d classes: json %a/batch (%.0f q/s)  binary %a\
     /batch (%.0f q/s)  speedup %.1fx@."
    batch_size (G.num_classes g) Timing.pp_time t_json (qps t_json)
    Timing.pp_time t_bin (qps t_bin) speedup;
  Fig_tables.check "RAW1: binary+interned batch QPS >= 5x JSON baseline"
    (speedup >= 5.);
  let shape extra =
    counters_json
      ([ ("batch_size", batch_size);
         ("classes", G.num_classes g);
         ("member_names", List.length members) ]
       @ extra)
  in
  Scaling.record ~experiment:"RAW1" ~family:"batch_lookup json lines"
    ~n_plus_e:size ~time_ns:(t_json *. 1e9) ~latency:lat_json
    (shape [ ("qps", int_of_float (qps t_json)) ]);
  Scaling.record ~experiment:"RAW1" ~family:"batch_lookup 1b frames"
    ~n_plus_e:size ~time_ns:(t_bin *. 1e9) ~latency:lat_bin
    (shape
       [ ("qps", int_of_float (qps t_bin));
         ("speedup_over_json_x10", int_of_float (speedup *. 10.)) ])

(* ---- restore latency: decode vs mmap across sizes ------------------ *)

let compile_columns s g =
  let root = G.name g 0 in
  List.iter
    (fun m ->
      match Session.lookup s root m with
      | Ok _ -> ()
      | Error c -> invalid_arg ("RAW1: bench session lost class " ^ c))
    (G.member_names g)

let restore_modes =
  [ ("decode", `Off); ("mmap-verify", `Verify); ("mmap-fast", `Fast) ]

(* One measured [recover] per (size, mode); returns the timing plus
   whether the zero-copy path actually engaged, from the store's own
   counter. *)
let measure_recover dir mode =
  let config = { Store.default_config with mmap_restore = mode } in
  let st = Store.open_dir ~config dir in
  let recover () =
    match Store.recover st "raw" with
    | Ok (Some rv) -> rv
    | Ok None | Error _ -> invalid_arg "RAW1: store lost its snapshot"
  in
  ignore (recover ()) (* page-cache warmup *);
  let t, lat = Timing.measure (fun () -> recover ()) in
  let engaged =
    match List.assoc_opt "store_mmap_restores" (Store.counters st) with
    | Some n -> n > 0
    | None -> false
  in
  Store.close st;
  (t, lat, engaged)

(* The sweep grows the *table image* over one pinned hierarchy: both
   restore paths decode the graph section (O(|N|+|E|), and the graph
   carries the member declarations), so growing the hierarchy would
   hide the mapped image behind a linear term the paths share.
   Instead, one donor session's compiled columns are replicated under
   fresh member names — the regime where the compiled member universe
   dwarfs the hierarchy, which is where restore cost lives.  Decode
   stays linear in the image; the mapped modes flatten — that
   flattening is the zero-copy claim. *)
let restore_classes = 600
let column_multipliers = [ 1; 8; 64 ]

let restore () =
  Format.printf
    "  restore: decode vs mmap (verify / fast), %d classes, growing \
     table image@."
    restore_classes;
  let i =
    Families.random_dag ~n:restore_classes ~max_bases:3 ~virtual_prob:0.2
      ~declare_prob:0.25
      ~members:(List.init 24 (fun k -> Printf.sprintf "m%d" k))
      ~seed:29
  in
  let g = i.graph in
  let size = G.num_classes g + G.num_edges g in
  let config =
    { Session.default_config with
      promote_threshold = 1;
      table_max_entries = List.length (G.member_names g) }
  in
  let donor = Session.create ~config ~name:"donor" g in
  compile_columns donor g;
  let base_columns = Session.compiled_columns donor in
  (* (mode_name, multiplier) -> (time, skipped) for the sweep check *)
  let results = Hashtbl.create 16 in
  List.iter
    (fun mult ->
      let s_columns =
        List.concat
          (List.init mult (fun r ->
               List.map
                 (fun (m, c) ->
                   ((if r = 0 then m else Printf.sprintf "%s__v%d" m r), c))
                 base_columns))
      in
      let dir = Filename.temp_file "cxxlookup-raw" ".store" in
      Sys.remove dir;
      let store = Store.open_dir dir in
      let snapshot_bytes =
        Store.write_snapshot store
          { Store.Snapshot.s_session = "raw";
            s_epoch = 0;
            s_protocol = Service.Protocol.version;
            s_graph = g;
            s_columns }
      in
      Store.close store;
      List.iter
        (fun (mode_name, mode) ->
          let t, lat, engaged = measure_recover dir mode in
          let skipped = mode <> `Off && not engaged in
          Hashtbl.replace results (mode_name, mult) (t, skipped);
          Format.printf "  columns=%-5d %-12s %a  (%d snapshot bytes)%s@."
            (List.length s_columns) mode_name Timing.pp_time t snapshot_bytes
            (if skipped then "  SKIPPED: mmap unavailable, fell back to \
                              decode"
             else "");
          Scaling.record ~experiment:"RAW1"
            ~family:("restore " ^ mode_name ^ (if skipped then " (skipped)"
                                               else ""))
            ~n_plus_e:size ~time_ns:(t *. 1e9) ~latency:lat
            (counters_json
               [ ("classes", G.num_classes g);
                 ("columns", List.length s_columns);
                 ("snapshot_bytes", snapshot_bytes);
                 ("mmap_engaged", if engaged then 1 else 0);
                 ("skipped", if skipped then 1 else 0) ]))
        restore_modes;
      rm_rf dir)
    column_multipliers;
  (* growth over the sweep, per mode: mapped restore should stay
     near-flat while decode grows with the image.  Only meaningful when
     the zero-copy path engaged at every size. *)
  let lo = List.hd column_multipliers
  and hi = List.nth column_multipliers (List.length column_multipliers - 1) in
  let growth mode_name =
    match
      (Hashtbl.find_opt results (mode_name, lo),
       Hashtbl.find_opt results (mode_name, hi))
    with
    | Some (t0, false), Some (t1, false) when t0 > 0. -> Some (t1 /. t0)
    | _ -> None
  in
  match (growth "decode", growth "mmap-fast") with
  | Some gd, Some gf ->
    Format.printf
      "  growth over %dx image: decode %.1fx, mmap-fast %.1fx@."
      (hi / lo) gd gf;
    Fig_tables.check "RAW1: mmap-fast restore near-constant vs linear decode"
      (gf < gd /. 4.)
  | _ ->
    Format.printf
      "  growth check skipped: mmap did not engage at every size@."

let run () =
  header "RAW1" "raw speed floor: binary framing QPS and mmap restore";
  qps ();
  restore ()

(* ---- reading BENCH_lookup.json back -------------------------------- *)

(* A minimal float-tolerant JSON reader for BENCH_lookup.json itself:
   {!Telemetry.Json} is deliberately write-only and {!Chg.Json} rejects
   floats, but the [raw] quick mode must merge fresh RAW1 rows into the
   file's existing entries without re-running every other experiment.
   Covers exactly what {!Telemetry.Json.to_string} emits (no [\u]
   escapes — the bench file never contains one). *)
module Reader = struct
  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\n' | '\t' | '\r') -> incr pos; skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let lit word v =
      let w = String.length word in
      if !pos + w <= n && String.sub s !pos w = word then begin
        pos := !pos + w;
        v
      end
      else fail "bad literal"
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> incr pos
        | Some '\\' ->
          incr pos;
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; incr pos
          | Some 't' -> Buffer.add_char b '\t'; incr pos
          | Some 'r' -> Buffer.add_char b '\r'; incr pos
          | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c; incr pos
          | _ -> fail "unsupported escape");
          go ()
        | Some c -> Buffer.add_char b c; incr pos; go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let numeric = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> numeric c | None -> false) do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Telemetry.Json.Int i
      | None ->
        (match float_of_string_opt tok with
        | Some f -> Telemetry.Json.Float f
        | None -> fail "bad number")
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Telemetry.Json.Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields ((k, v) :: acc)
            | Some '}' -> incr pos; List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Telemetry.Json.Obj (fields [])
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Telemetry.Json.List [] end
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items (v :: acc)
            | Some ']' -> incr pos; List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Telemetry.Json.List (items [])
      | Some '"' -> Telemetry.Json.String (string_lit ())
      | Some 't' -> lit "true" (Telemetry.Json.Bool true)
      | Some 'f' -> lit "false" (Telemetry.Json.Bool false)
      | Some 'n' -> lit "null" Telemetry.Json.Null
      | Some ('0' .. '9' | '-') -> number ()
      | Some _ -> fail "unexpected character"
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
end
