(* Experiments PAR1 and PAK1: the packed-column table.

   PAR1: whole-table column compilation fanned over OCaml 5 domains.
   Columns are independent, so the build should scale with --jobs up to
   the core count; whatever the schedule, the packed table must encode
   byte-identically (the determinism contract in DESIGN.md).

   PAK1: the packed representation against the boxed engine table on the
   C4 random-DAG family: resident bytes (packed must be well under the
   boxed estimate; the ISSUE floor is 4x) and per-query latency (packed
   decoding must not lose what the flat layout wins). *)

module G = Chg.Graph
module Engine = Lookup_core.Engine
module Metrics = Lookup_core.Metrics
module Packed = Lookup_core.Packed
module Families = Hiergen.Families

let header id title = Format.printf "@.---- %s: %s ----@." id title
let size g = G.num_classes g + G.num_edges g

(* The C4 family: member pool grows with n, so columns are plentiful
   enough for the work queue to matter. *)
let family ~n =
  Families.random_dag ~n ~max_bases:3 ~virtual_prob:0.3 ~declare_prob:0.3
    ~members:(List.init (max 4 (n / 16)) (fun k -> Printf.sprintf "m%d" k))
    ~seed:42

let par1 ~n () =
  header "PAR1" "parallel column compilation: scaling and determinism";
  let i = family ~n in
  let g = i.Families.graph in
  let cl = Chg.Closure.compute g in
  Format.printf "  hierarchy: %d classes, %d member names (ncores %d)@."
    (G.num_classes g)
    (List.length (G.member_names g))
    (Domain.recommended_domain_count ());
  Format.printf "  %-8s %12s %10s@." "jobs" "build" "speedup";
  let reference = ref "" in
  let t1 = ref 0.0 in
  let deterministic = ref true in
  List.iter
    (fun jobs ->
      let t, latency = Timing.measure (fun () -> Packed.build ~jobs cl) in
      if jobs = 1 then t1 := t;
      let metrics = Metrics.create () in
      let table = Packed.build ~jobs ~metrics cl in
      let enc = Packed.encode table in
      if jobs = 1 then reference := enc
      else if not (String.equal enc !reference) then deterministic := false;
      Scaling.record ~experiment:"PAR1"
        ~family:(Printf.sprintf "%s jobs=%d" i.Families.description jobs)
        ~n_plus_e:(size g) ~time_ns:(t *. 1e9) ~latency
        (Metrics.counters_json metrics);
      Format.printf "  %-8d %a %9.2fx@." jobs Timing.pp_time t (!t1 /. t))
    [ 1; 2; 4 ];
  Format.printf "  [%s] packed tables byte-identical for jobs=1/2/4@."
    (if !deterministic then "OK" else "MISMATCH");
  if not !deterministic then incr Fig_tables.checks_failed

(* One family through both representations: resident bytes and the
   serving fast path (resolves_to — what the service answers queries
   with; no verdict allocation on either side). *)
let pak1_point ~check i =
  let g = i.Families.graph in
  let cl = Chg.Closure.compute g in
  let eng = Engine.build cl in
  let packed = Packed.of_engine eng in
  let pb = Packed.bytes packed and bb = Packed.boxed_bytes packed in
  let ratio = float_of_int bb /. float_of_int (max 1 pb) in
  Format.printf "  %s:@.    %d columns, %d bytes packed, %d boxed (%.1fx \
                 smaller)@."
    i.Families.description (Packed.num_members packed) pb bb ratio;
  (* every (class, member-universe) pair once per timed call *)
  let members = Packed.member_universe packed in
  let nc = G.num_classes g in
  let probe resolves table =
    let acc = ref 0 in
    for c = 0 to nc - 1 do
      Array.iter
        (fun m -> if resolves table c m <> None then incr acc)
        members
    done;
    !acc
  in
  let t_boxed =
    Timing.seconds_per_call (fun () -> probe Engine.resolves_to eng)
  in
  let t_packed, lat_packed =
    Timing.measure (fun () -> probe Packed.resolves_to packed)
  in
  let queries = float_of_int (nc * max 1 (Array.length members)) in
  let boxed_ns = t_boxed *. 1e9 /. queries
  and packed_ns = t_packed *. 1e9 /. queries in
  Format.printf "    full-table probe: boxed %a, packed %a (%.1f vs %.1f \
                 ns/query)@."
    Timing.pp_time t_boxed Timing.pp_time t_packed boxed_ns packed_ns;
  Scaling.record ~experiment:"PAK1" ~family:i.Families.description
    ~n_plus_e:(size g) ~time_ns:packed_ns ~latency:lat_packed
    (Telemetry.Json.Obj
       [ ("packed_bytes", Telemetry.Json.Int pb);
         ("boxed_bytes", Telemetry.Json.Int bb);
         ("boxed_over_packed", Telemetry.Json.Float ratio);
         ("boxed_ns_per_query", Telemetry.Json.Float boxed_ns);
         ("packed_ns_per_query", Telemetry.Json.Float packed_ns) ]);
  if check then begin
    let size_ok = ratio >= 4.0 in
    Format.printf "    [%s] packed at least 4x smaller than boxed@."
      (if size_ok then "OK" else "MISMATCH");
    if not size_ok then incr Fig_tables.checks_failed;
    (* wall-clock with slack: flag only a clear regression *)
    let latency_ok = t_packed <= t_boxed *. 1.5 in
    Format.printf "    [%s] packed query latency no worse than boxed@."
      (if latency_ok then "OK" else "MISMATCH");
    if not latency_ok then incr Fig_tables.checks_failed
  end

let pak1 ~n () =
  header "PAK1" "packed vs boxed: resident bytes and query latency";
  (* the checked point is the serving case: a column promoted because it
     is being queried, i.e. resolved over (nearly) every class — here
     every class redeclares or inherits "m", all-red columns *)
  pak1_point ~check:true
    (Families.redeclared_diamond_stack ~levels:(max 1 ((n - 1) / 3))
       ~kind:G.Virtual);
  (* informational: a sparse random DAG, where absent entries (one word
     boxed, still one entry word packed) dilute the win *)
  pak1_point ~check:false (family ~n)

let run () =
  Format.printf "@.==== Packed-table experiments (PAR1, PAK1) ====@.";
  par1 ~n:1024 ();
  pak1 ~n:1024 ()

(* make bench-smoke: the same checks on a small family, seconds not
   minutes — determinism and the size floor, not publishable timings. *)
let smoke () =
  Format.printf "@.==== Packed-table smoke (PAR1, PAK1, small) ====@.";
  par1 ~n:192 ();
  pak1 ~n:192 ()
