(* Small wall-clock timing helper for the parameter sweeps.  Bechamel is
   used for the headline per-experiment microbenchmarks (see becha.ml);
   the sweeps need hundreds of (size, time) points where a fixed-budget
   repetition loop is the right tool. *)

(* Seconds per call, repeating until at least [min_time] has elapsed. *)
let seconds_per_call ?(min_time = 0.02) f =
  let rec calibrate n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time then dt /. float_of_int n
    else calibrate (n * 4)
  in
  calibrate 1

(* Mean seconds per call plus the per-call latency distribution: the
   same fixed-budget loop, but each call is clocked individually and
   recorded into a histogram, so sweeps can report p50/p99/max instead
   of a mean that hides the tail.  The per-call clocking adds two
   monotonic reads per call — negligible against the >=1us calls the
   sweeps time, and the mean is still computed from the whole-loop
   elapsed time, not the histogram. *)
let measure ?(min_time = 0.02) f =
  let hist = Telemetry.Histogram.create () in
  let rec calibrate n =
    Telemetry.Histogram.reset hist;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      let c0 = Telemetry.Clock.now_ns () in
      ignore (Sys.opaque_identity (f ()));
      Telemetry.Histogram.record hist (Telemetry.Clock.elapsed_ns ~since:c0)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time then dt /. float_of_int n else calibrate (n * 4)
  in
  let mean = calibrate 1 in
  (mean, hist)

let pp_time ppf s =
  if s < 1e-6 then Format.fprintf ppf "%7.1f ns" (s *. 1e9)
  else if s < 1e-3 then Format.fprintf ppf "%7.2f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%7.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%7.2f s " s
