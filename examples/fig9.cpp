// Figure 9 of the paper: the hierarchy g++ 2.7 resolved incorrectly.
// lookup(E, m) is unambiguous and resolves to C::m.
struct S  { int m; };
struct A : virtual S { int m; };
struct B : virtual S { int m; };
struct C : virtual A, virtual B { int m; };
struct D : C {};
struct E : virtual A, virtual B, D {};
int main() { E e; e.m = 10; }
