// Figure 2 of the paper: the Figure 1 diamond with every inheritance
// edge declared virtual.  The A subobject is now shared, so
// lookup(E, m) is no longer ambiguous — it resolves to D::m because
// D::m dominates A::m (paper Definition 5).  The linter accepts this
// hierarchy (no errors) but flags the dominance-only resolution as
// fragile: deleting D::m silently re-routes the lookup to A::m.
struct A { int m; };
struct B : virtual A {};
struct C : virtual B {};
struct D : virtual B { int m; };
struct E : virtual C, virtual D {};
int main() { E e; e.m = 10; }
