// A replicated diamond where the two semantics part ways: under the
// paper's C++ rules Button has two distinct Base subobjects, so
// lookup(Button, render) is ambiguous between Widget::render and the
// Base::render reached through the Window arm.  The C3 linearization
// (Button -> Widget -> Window -> Base) never sees two Base copies and
// resolves render to Widget::render.  Try:
//   cxxlookup lookup diamond_mro.cpp Button render
//   cxxlookup lookup diamond_mro.cpp Button render --semantics c3
//   cxxlookup mro diamond_mro.cpp Button
//   cxxlookup lint diamond_mro.cpp --rules semantics-divergence
struct Base { int render; };
struct Widget : Base { int render; };
struct Window : Base {};
struct Button : Widget, Window {};
int main() { Button b; }
