// Figure 1 of the paper: the replicated-base diamond.  Every edge is
// non-virtual, so E contains two distinct B::A subobjects (one along
// each of the C and D arms) and lookup(E, m) is ambiguous between the
// replicated A::m and D::m.
struct A { int m; };
struct B : A {};
struct C : B {};
struct D : B { int m; };
struct E : C, D {};
int main() { E e; }
