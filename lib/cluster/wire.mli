(** The replication wire format, [cxxlookup-repl/1]: JSON lines with
    binary payloads carried base64 — the store's own on-disk codecs
    (snapshot containers, WAL mutation frames), so everything shipped
    is CRC-guarded end to end.

    Flow: the follower sends one [hello] line offering the sessions and
    epochs it already holds; the leader answers [hello] and then
    streams [snapshot] (resynchronization points) and [wal] (one record
    each, strictly-consecutive epochs per session) messages, plus
    periodic [ping]s that double as dead-peer detection.  The follower
    never writes again — reconnecting with a fresh [hello] is the only
    recovery action it needs. *)

val version : string

val b64_encode : string -> string

val b64_decode : string -> (string, string) result

type server_msg =
  | Hello
  | Snapshot of Store.Snapshot.t
  | Wal of { session : string; record : Store.Wal.record }
  | Ping
  | Error_msg of string

(** Follower handshake: [have] maps open session names to their
    epochs. *)
val hello_line : have:(string * int) list -> string

val parse_hello : string -> ((string * int) list, string) result

val hello_ack_line : string

val ping_line : string

val error_line : string -> string

(** [snapshot_line ~session ~epoch data] — [data] is the snapshot
    container bytes exactly as stored on disk. *)
val snapshot_line : session:string -> epoch:int -> string -> string

val wal_line : session:string -> Store.Wal.record -> string

val parse_server_msg : string -> (server_msg, string) result
