(* The shard router: one JSON-lines front end that spreads
   [cxxlookup-rpc/1] traffic over a set of backends.

   Placement is rendezvous hashing — each (session, backend) pair gets
   a score, and a session's preference order is its backends by
   descending score.  Adding or removing one backend reshuffles only
   the sessions that scored it first; no ring state, no coordination.

   Correctness over availability, per verb class:
   - reads are idempotent, so a failed backend is simply the next one's
     work: connect retries, then failover down the preference order,
     and only when every backend refused does the client see
     [backend_unavailable];
   - mutations go to the leader at most once.  Connect-time retries and
     in-band [overloaded] resends are safe (the request never
     executed); a connection that dies mid-request is not — the
     mutation may have applied — so the router answers
     [backend_unavailable] rather than resend and double-apply.
   - a [batch_lookup] fans out in contiguous chunks, one per backend in
     preference order, and the merged response preserves request order
     and the single-server field shape exactly.  A chunk whose backend
     dies mid-fan-out is re-routed (reads again); the merge is whole or
     not at all.

   Replicas answer [unknown_session] for sessions they have not caught
   up to (or that only the leader has seen); the router retries such
   reads once against the leader before giving the answer back.

   Per-connection handling is serial, so responses leave in request
   order, like the backends themselves. *)

module J = Chg.Json
module P = Service.Protocol

type config = {
  retries : int;  (** connect / overloaded retries per backend *)
  backoff_ms : int;  (** seed for the jittered exponential backoff *)
}

let default_config = { retries = 2; backoff_ms = 50 }

type t = {
  backends : Net.Server.addr array;
  leader : int;  (* index into [backends] *)
  cfg : config;
  registry : Telemetry.Registry.t;
  listen_fd : Unix.file_descr;
  bound : Net.Server.addr;
  stop : bool Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_conn : int Atomic.t;
  alive : bool array;  (* last-known backend health, feeds the gauges *)
  be_hist : Telemetry.Histogram.t array;  (* per-backend round-trip ns *)
  requests : Telemetry.Counter.t;
  forwards : Telemetry.Counter.t;
  failovers : Telemetry.Counter.t;
  fanouts : Telemetry.Counter.t;
  leader_retries : Telemetry.Counter.t;
  unavailable : Telemetry.Counter.t;
}

let create ?(config = default_config) ~leader backends =
  let backends = Array.of_list backends in
  if Array.length backends = 0 then
    invalid_arg "Cluster.Router: at least one backend required";
  if leader < 0 || leader >= Array.length backends then
    invalid_arg "Cluster.Router: leader index out of range";
  fun addr ->
    let listen_fd, bound = Net.Server.listen_on addr in
    let registry = Telemetry.Registry.create () in
    let t =
      { backends;
        leader;
        cfg = config;
        registry;
        listen_fd;
        bound;
        stop = Atomic.make false;
        conns = Hashtbl.create 16;
        conns_mutex = Mutex.create ();
        next_conn = Atomic.make 0;
        alive = Array.make (Array.length backends) true;
        be_hist = Array.init (Array.length backends) (fun _ -> Telemetry.Histogram.create ());
        requests = Telemetry.Counter.make "router_requests";
        forwards = Telemetry.Counter.make "router_forwards";
        failovers = Telemetry.Counter.make "router_failovers";
        fanouts = Telemetry.Counter.make "router_fanouts";
        leader_retries = Telemetry.Counter.make "router_leader_retries";
        unavailable = Telemetry.Counter.make "router_unavailable" }
    in
    Array.iteri
      (fun i addr ->
        let labels = [ ("backend", Net.Server.addr_string addr) ] in
        Telemetry.Registry.gauge registry ~labels
          ~help:"1 while the backend answered its last contact."
          "cxxlookup_router_backend_up"
          (fun () -> if t.alive.(i) then 1 else 0);
        Telemetry.Registry.attach_histogram registry ~labels
          ~help:"Round-trip time of proxied requests, per backend."
          "cxxlookup_router_backend_rtt_ns" t.be_hist.(i))
      backends;
    Telemetry.Registry.attach_counter registry
      ~help:"Requests routed." "cxxlookup_router_requests_total" t.requests;
    Telemetry.Registry.attach_counter registry
      ~help:"Mutations forwarded to the leader."
      "cxxlookup_router_forwards_total" t.forwards;
    Telemetry.Registry.attach_counter registry
      ~help:"Reads moved to another backend after a connection failure."
      "cxxlookup_router_failovers_total" t.failovers;
    Telemetry.Registry.attach_counter registry
      ~help:"batch_lookup requests fanned out over several backends."
      "cxxlookup_router_fanouts_total" t.fanouts;
    Telemetry.Registry.attach_counter registry
      ~help:"Reads retried on the leader after a replica's unknown_session."
      "cxxlookup_router_leader_retries_total" t.leader_retries;
    Telemetry.Registry.attach_counter registry
      ~help:"Requests answered backend_unavailable: every candidate failed."
      "cxxlookup_router_unavailable_total" t.unavailable;
    t

let bound_addr t = t.bound
let registry t = t.registry

(* ---- placement ------------------------------------------------------ *)

(* Unsigned rendezvous score; descending scores order a session's
   backends.  Pure function of (session, backend address), so every
   router instance agrees without talking. *)
let score session addr =
  Int32.to_int
    (Chg.Binary.crc32_string (session ^ "|" ^ Net.Server.addr_string addr))
  land 0xffffffff

let preference t session =
  let idx = Array.init (Array.length t.backends) Fun.id in
  let key i = (score session t.backends.(i), i) in
  Array.sort (fun a b -> compare (key b) (key a)) idx;
  Array.to_list idx

(* ---- per-connection backend pool ------------------------------------ *)

(* Each router connection owns one lazily-dialed client per backend:
   per-connection request order stays serial and slots never need
   locking. *)
type pool = { router : t; slots : Net.Client.t option array }

let make_pool t = { router = t; slots = Array.make (Array.length t.backends) None }

let close_slot p i =
  (match p.slots.(i) with
  | Some c -> ( try Net.Client.close c with _ -> ())
  | None -> ());
  p.slots.(i) <- None

(* A slot dropped on failure also marks the backend down; closing our
   own pooled connection at teardown says nothing about its health. *)
let drop_slot p i =
  close_slot p i;
  p.router.alive.(i) <- false

let close_pool p = Array.iteri (fun i _ -> close_slot p i) p.slots

let client p i =
  match p.slots.(i) with
  | Some c -> Some c
  | None ->
    (match
       Net.Client.connect ~retries:p.router.cfg.retries
         ~backoff_ms:p.router.cfg.backoff_ms p.router.backends.(i)
     with
    | exception (Unix.Unix_error _ | Sys_error _) ->
      p.router.alive.(i) <- false;
      None
    | c ->
      p.slots.(i) <- Some c;
      p.router.alive.(i) <- true;
      Some c)

(* One round trip against backend [i]; [None] = connection-level
   failure (slot dropped, caller may fail over). *)
let exchange p i line =
  match client p i with
  | None -> None
  | Some c ->
    let t0 = Telemetry.Clock.now_ns () in
    (match
       Net.Client.request_admitted ~retries:p.router.cfg.retries
         ~backoff_ms:p.router.cfg.backoff_ms c line
     with
    | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
      drop_slot p i;
      None
    | None ->
      drop_slot p i;
      None
    | Some resp ->
      Telemetry.Histogram.record p.router.be_hist.(i)
        (Telemetry.Clock.elapsed_ns ~since:t0);
      p.router.alive.(i) <- true;
      Some resp)

(* One binary round trip against backend [i] — {!exchange}'s frame
   twin, feeding the same health/latency accounting. *)
let exchange_frame p i frame =
  match client p i with
  | None -> None
  | Some c ->
    let t0 = Telemetry.Clock.now_ns () in
    (match
       Net.Client.request_frame_admitted ~retries:p.router.cfg.retries
         ~backoff_ms:p.router.cfg.backoff_ms c frame
     with
    | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
      drop_slot p i;
      None
    | None ->
      drop_slot p i;
      None
    | Some resp ->
      Telemetry.Histogram.record p.router.be_hist.(i)
        (Telemetry.Clock.elapsed_ns ~since:t0);
      p.router.alive.(i) <- true;
      Some resp)

(* ---- response inspection -------------------------------------------- *)

let error_code_of resp =
  match J.of_string resp with
  | Error _ -> None
  | Ok j ->
    (match J.member "error" j with
    | Ok e ->
      (match J.member "code" e with Ok (J.String c) -> Some c | _ -> None)
    | Error _ -> None)

let unavailable_response ~id msg =
  J.to_string (P.error_response ~id P.Backend_unavailable msg)

(* Error frames decode independently of the op, so probing with any op
   is sound; non-error (or undecodable) frames yield [None]. *)
let frame_error_code resp =
  match Service.Frame.decode_response ~op:Service.Frame.op_lookup resp with
  | Ok (_, Service.Frame.Err (code, _)) -> Some code
  | _ -> None

let frame_error ~id code msg =
  Service.Frame.encode_response ~id (Service.Frame.Err (code, msg))

(* ---- routing -------------------------------------------------------- *)

(* Reads are idempotent: walk the preference order until a backend
   answers.  A replica that has not (yet) seen the session answers
   [unknown_session] in band — retry that once on the leader, which by
   definition has everything. *)
let route_read p ~id ~order line =
  let rec walk tried = function
    | [] ->
      Telemetry.Counter.incr p.router.unavailable;
      unavailable_response ~id
        (Printf.sprintf "no backend reachable (%d tried)" tried)
    | i :: rest ->
      (match exchange p i line with
      | None ->
        if rest <> [] then Telemetry.Counter.incr p.router.failovers;
        walk (tried + 1) rest
      | Some resp ->
        if
          i <> p.router.leader
          && error_code_of resp = Some "unknown_session"
        then begin
          Telemetry.Counter.incr p.router.leader_retries;
          match exchange p p.router.leader line with
          | Some resp' -> resp'
          | None -> resp  (* leader gone: the replica's answer stands *)
        end
        else resp)
  in
  walk 0 order

(* Mutations: leader only, at most once past the point a request may
   have executed. *)
let route_mutation p ~id line =
  Telemetry.Counter.incr p.router.forwards;
  match exchange p p.router.leader line with
  | Some resp -> resp
  | None ->
    Telemetry.Counter.incr p.router.unavailable;
    unavailable_response ~id
      "leader unreachable; the mutation was not confirmed and will not \
       be resent"

(* ---- batch fan-out -------------------------------------------------- *)

let chunk_line ~session ~semantics k queries =
  J.to_string
    (J.Obj
       ([ ("id", J.Int k);
          ("op", J.String "batch_lookup");
          ("session", J.String session) ]
       @ (match semantics with
         | Mro.Cpp -> []  (* absent = cpp: keep legacy lines verbatim *)
         | Mro.Linearized _ ->
           [ ("semantics", J.String (Mro.semantics_string semantics)) ])
       @ [ ("queries",
            J.List
              (List.map
                 (fun (q : P.query) ->
                   J.Obj
                     [ ("class", J.String q.P.q_class);
                       ("member", J.String q.P.q_member) ])
                 queries)) ]))

(* Split [qs] into at most [n] contiguous chunks of near-equal size. *)
let chunks n qs =
  let len = List.length qs in
  let n = max 1 (min n len) in
  let base = len / n and extra = len mod n in
  let rec take k xs acc =
    if k = 0 then (List.rev acc, xs)
    else match xs with [] -> (List.rev acc, []) | x :: r -> take (k - 1) r (x :: acc)
  in
  let rec go i xs =
    if i = n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let c, rest = take size xs [] in
      c :: go (i + 1) rest
  in
  go 0 qs

type sub = Ok_fields of J.t list * int * int * int | In_band of string

(* Decode one sub-response into its merge contribution. *)
let sub_of_response resp =
  match J.of_string resp with
  | Error e -> Error ("backend sent unparseable response: " ^ e)
  | Ok j ->
    (match J.member "ok" j with
    | Ok (J.Bool true) ->
      (match
         ( J.member "results" j,
           J.member "resolved" j,
           J.member "ambiguous" j,
           J.member "not_found" j )
       with
      | Ok (J.List rs), Ok (J.Int a), Ok (J.Int b), Ok (J.Int c) ->
        Ok (Ok_fields (rs, a, b, c))
      | _ -> Error "backend response missing batch fields")
    | _ -> Ok (In_band resp))

(* Fan a batch out chunk-per-backend in preference order, re-route
   chunks whose backend died, merge in request order.  In-band errors
   (unknown_session on a lagging replica) send the chunk to the
   leader; if the leader also answers in band, that error is the whole
   request's answer — a partial merge is never returned. *)
let route_batch p ~id ~session ~semantics ~order queries =
  let cs = chunks (List.length order) queries in
  if List.length cs <= 1 then
    route_read p ~id ~order (chunk_line ~session ~semantics 0 queries)
    |> fun resp ->
    (match sub_of_response resp with
    | Ok (Ok_fields (rs, a, b, c)) ->
      J.to_string
        (P.ok_response ~id
           [ ("results", J.List rs);
             ("resolved", J.Int a);
             ("ambiguous", J.Int b);
             ("not_found", J.Int c) ])
    | Ok (In_band resp') -> resp'
    | Error msg ->
      Telemetry.Counter.incr p.router.unavailable;
      unavailable_response ~id msg)
  else begin
    Telemetry.Counter.incr p.router.fanouts;
    let order_arr = Array.of_list order in
    let n = Array.length order_arr in
    (* serve one chunk to a result, failing over within the preference
       order starting at the chunk's home backend *)
    let serve k queries =
      let line = chunk_line ~session ~semantics k queries in
      let rec walk attempts j =
        if attempts = n then Error "no backend reachable for batch chunk"
        else
          let i = order_arr.(j mod n) in
          match exchange p i line with
          | None ->
            Telemetry.Counter.incr p.router.failovers;
            walk (attempts + 1) (j + 1)
          | Some resp ->
            (match sub_of_response resp with
            | Ok (In_band resp') when
                i <> p.router.leader
                && error_code_of resp' = Some "unknown_session" ->
              Telemetry.Counter.incr p.router.leader_retries;
              (match exchange p p.router.leader line with
              | None -> Error "leader unreachable for batch chunk"
              | Some resp'' ->
                (match sub_of_response resp'' with
                | Ok s -> Ok s
                | Error e -> Error e))
            | Ok s -> Ok s
            | Error e -> Error e)
      in
      walk 0 k
    in
    let rec merge k acc_rs a b c = function
      | [] ->
        J.to_string
          (P.ok_response ~id
             [ ("results", J.List (List.concat (List.rev acc_rs)));
               ("resolved", J.Int a);
               ("ambiguous", J.Int b);
               ("not_found", J.Int c) ])
      | q :: rest ->
        (match serve k q with
        | Ok (Ok_fields (rs, a', b', c')) ->
          merge (k + 1) (rs :: acc_rs) (a + a') (b + b') (c + c') rest
        | Ok (In_band resp) ->
          (* surface the backend's own error, under the caller's id *)
          (match J.of_string resp with
          | Ok j ->
            (match (J.member "error" j, J.member "ok" j) with
            | Ok e, _ ->
              (match (J.member "code" e, J.member "message" e) with
              | Ok (J.String _), Ok (J.String _) ->
                J.to_string
                  (J.Obj [ ("id", id); ("ok", J.Bool false); ("error", e) ])
              | _ -> unavailable_response ~id "backend sent a malformed error")
            | _ -> unavailable_response ~id "backend sent a malformed error")
          | Error _ -> unavailable_response ~id "backend sent a malformed error")
        | Error msg ->
          Telemetry.Counter.incr p.router.unavailable;
          unavailable_response ~id msg)
    in
    merge 0 [] 0 0 0 cs
  end

(* ---- binary (cxxlookup-rpc/1b) pass-through -------------------------

   Frames route whole: the [i64 id | string session] payload prefix is
   the routing key, the rest stays opaque bytes — the router never
   re-encodes a frame.  Reads fail over down the preference order (with
   the one leader retry on a replica's [unknown_session]); mutations go
   to the leader at most once, exactly like JSON.  A binary
   [batch_lookup] is routed as one read, not fanned out: interned ids
   are per-backend-session state, so re-chunking would buy nothing and
   the frame's merge shape is fixed. *)

let route_read_frame p ~id ~order frame =
  let rec walk tried = function
    | [] ->
      Telemetry.Counter.incr p.router.unavailable;
      frame_error ~id P.Backend_unavailable
        (Printf.sprintf "no backend reachable (%d tried)" tried)
    | i :: rest ->
      (match exchange_frame p i frame with
      | None ->
        if rest <> [] then Telemetry.Counter.incr p.router.failovers;
        walk (tried + 1) rest
      | Some resp ->
        if
          i <> p.router.leader
          && frame_error_code resp = Some P.Unknown_session
        then begin
          Telemetry.Counter.incr p.router.leader_retries;
          match exchange_frame p p.router.leader frame with
          | Some resp' -> resp'
          | None -> resp  (* leader gone: the replica's answer stands *)
        end
        else resp)
  in
  walk 0 order

let route_mutation_frame p ~id frame =
  Telemetry.Counter.incr p.router.forwards;
  match exchange_frame p p.router.leader frame with
  | Some resp -> resp
  | None ->
    Telemetry.Counter.incr p.router.unavailable;
    frame_error ~id P.Backend_unavailable
      "leader unreachable; the mutation was not confirmed and will not \
       be resent"

let respond_frame p frame =
  Telemetry.Counter.incr p.router.requests;
  let op = Char.code frame.[1] in
  let body =
    String.sub frame Service.Frame.header_len
      (String.length frame - Service.Frame.header_len)
  in
  match Service.Frame.session_of_request body with
  | Error msg -> frame_error ~id:0 P.Bad_request msg
  | Ok (id, session) ->
    let read_only =
      op = Service.Frame.op_lookup
      || op = Service.Frame.op_batch_lookup
      || op = Service.Frame.op_symbols
    in
    if read_only then
      route_read_frame p ~id ~order:(preference p.router session) frame
    else
      (* mutations — and unknown ops, which the leader answers
         [bad_request] authoritatively *)
      route_mutation_frame p ~id frame

(* ---- the front end -------------------------------------------------- *)

let handle_metrics t ~id =
  J.to_string
    (P.ok_response ~id
       [ ("format", J.String "text/plain; version=0.0.4");
         ("body", J.String (Telemetry.Prometheus.render t.registry)) ])

let respond p line =
  Telemetry.Counter.incr p.router.requests;
  match P.parse_request line with
  | Error (id, code, msg) -> J.to_string (P.error_response ~id code msg)
  | Ok rq ->
    let id = rq.P.rq_id in
    (match rq.P.rq_op with
    | P.Metrics -> handle_metrics p.router ~id
    | P.Batch_lookup { bl_queries = qs; bl_semantics }
      when rq.P.rq_session <> None && qs <> [] ->
      let session = Option.get rq.P.rq_session in
      route_batch p ~id ~session ~semantics:bl_semantics
        ~order:(preference p.router session) qs
    | op when P.read_only op ->
      let order =
        match rq.P.rq_session with
        | Some s -> preference p.router s
        | None ->
          (* session-less reads (service-level stats): any backend *)
          List.init (Array.length p.router.backends) Fun.id
      in
      route_read p ~id ~order line
    | _ -> route_mutation p ~id line)

(* Finish a line whose first byte was already consumed (it was not the
   frame magic).  Mirrors [In_channel.input_line]: a final unterminated
   line is still returned. *)
let read_line_after ic first =
  let b = Buffer.create 256 in
  Buffer.add_char b first;
  let rec go () =
    match input_char ic with
    | '\n' -> Buffer.contents b
    | c ->
      Buffer.add_char b c;
      go ()
    | exception End_of_file -> Buffer.contents b
  in
  go ()

(* Read the remainder of a binary frame after its 0xB1 magic byte;
   [None] on a torn frame (connection closes, like a torn line). *)
let read_frame_after ic =
  match really_input_string ic (Service.Frame.header_len - 1) with
  | exception End_of_file -> None
  | rest ->
    let hdr = String.make 1 (Char.chr Service.Frame.request_magic) ^ rest in
    (match Service.Frame.parse_header hdr with
    | Error _ -> None
    | Ok (_op, len) ->
      (match really_input_string ic len with
      | exception End_of_file -> None
      | body -> Some (hdr ^ body)))

let handle_conn t conn fd =
  let p = make_pool t in
  Fun.protect
    ~finally:(fun () ->
      close_pool p;
      Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let continue = ref true in
        while !continue && not (Atomic.get t.stop) do
          (* per-message framing negotiation, like the backends: 0xB1
             opens a binary frame, anything else a JSON line *)
          match input_char ic with
          | exception End_of_file -> continue := false
          | '\n' -> ()  (* blank line, skipped *)
          | c when Char.code c = Service.Frame.request_magic ->
            (match read_frame_after ic with
            | None -> continue := false
            | Some f ->
              output_string oc (respond_frame p f);
              flush oc)
          | c ->
            let line = read_line_after ic c in
            if String.trim line <> "" then begin
              output_string oc (respond p line);
              output_char oc '\n';
              flush oc
            end
        done
      with Sys_error _ | Unix.Unix_error _ | End_of_file -> ())

let stop t = Atomic.set t.stop true

let run t =
  let threads = ref [] in
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        let conn = Atomic.fetch_and_add t.next_conn 1 in
        Mutex.protect t.conns_mutex (fun () -> Hashtbl.add t.conns conn fd);
        threads :=
          Thread.create (fun () -> handle_conn t conn fd) () :: !threads)
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.bound with
  | Net.Server.Unix_path pth -> (try Unix.unlink pth with Unix.Unix_error _ -> ())
  | Net.Server.Tcp _ -> ());
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  List.iter Thread.join !threads
