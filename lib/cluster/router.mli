(** The shard router: a [cxxlookup-rpc/1] front end that spreads
    traffic over a set of backends by rendezvous-hashing session names.

    Routing by verb class:
    - reads ([lookup], [batch_lookup], [lint], [stats]) go to the
      session's preferred backend and fail over down the preference
      order; a replica's in-band [unknown_session] is retried once on
      the leader.  Only when every candidate fails does the client see
      an explicit [backend_unavailable] — never a silently wrong
      answer.
    - mutations ([open], [mutate], [snapshot], [restore], [close]) are
      forwarded to the leader {e at most once}: connect retries and
      [overloaded] resends are safe, but a connection lost mid-request
      answers [backend_unavailable] rather than risk double-apply.
    - [batch_lookup] fans out in contiguous chunks across the
      preference order and merges in request order, byte-shaped exactly
      like a single backend's response.
    - [metrics] is answered locally from the router's own registry
      (per-backend up gauges, round-trip histograms, routing
      counters).

    Placement is memoryless — a pure hash of (session, backend
    address) — so routers scale out without coordinating. *)

type config = {
  retries : int;  (** connect / overloaded retries per backend *)
  backoff_ms : int;  (** seed for the jittered exponential backoff *)
}

val default_config : config

type t

(** [create ?config ~leader backends addr] — [leader] indexes into
    [backends] (the leader serves reads too).  Binds the listener
    (ephemeral TCP ports resolve immediately); raises
    [Invalid_argument] on an empty backend list or an out-of-range
    leader, [Unix.Unix_error] when the bind fails. *)
val create :
  ?config:config -> leader:int -> Net.Server.addr list -> Net.Server.addr -> t

val bound_addr : t -> Net.Server.addr

(** The router's own metric registry — what its [metrics] verb
    renders. *)
val registry : t -> Telemetry.Registry.t

(** [run t] accepts clients until {!stop} (one systhread per
    connection, serial per-connection handling). *)
val run : t -> unit

val stop : t -> unit
