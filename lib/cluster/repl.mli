(** The leader side of WAL-shipping replication: a listener that
    streams each follower a per-session snapshot plus the WAL tail,
    read straight from the durable store's files.

    Per-session stream invariant: after a [snapshot] at epoch E, every
    [wal] message carries E+1, E+2, ... consecutively.  Whenever the
    on-disk tail cannot extend the stream contiguously (compaction ran
    ahead, or a fresh lineage replaced the session), the sender
    resynchronizes by resending the newest snapshot — followers never
    need to request anything.

    One systhread per follower; metrics ([cxxlookup_repl_followers],
    [..._snapshots_sent_total], [..._records_sent_total],
    [..._resyncs_total]) land in the serving node's registry. *)

type t

(** [create ?poll_ms srv addr] binds the replication listener.  Raises
    [Invalid_argument] when [srv] has no durable store — there is
    nothing to ship — and [Unix.Unix_error] when the bind fails.
    [poll_ms] is the WAL poll interval (default 20). *)
val create : ?poll_ms:int -> Service.Server.t -> Net.Server.addr -> t

(** The actual listening address (ephemeral TCP ports resolved). *)
val bound_addr : t -> Net.Server.addr

(** [run t] accepts followers until {!stop}, then shuts every stream
    down and joins the sender threads.  Run it on its own thread next
    to [Net.Server.run]. *)
val run : t -> unit

val stop : t -> unit
