(** The follower side of replication: connects to the leader, offers
    what it already holds, and applies the streamed snapshots and WAL
    records into the local {!Service.Server.t}.

    Recovery is reconnection: any stream problem — a lost socket, a
    malformed message, an apply error — drops the connection, and the
    next handshake's [have] map lets the leader converge the replica
    (extending the tail or resending a snapshot) without any
    negotiation beyond that one line.

    Run the local server with [~role:Follower] so mutations arriving
    over its own front end are answered [not_leader] instead of
    forking the replica's history. *)

type t

(** How applies take the serving front end's exclusive lock; pass
    [Net.Server.exclusively] wrapped, or leave the default (run
    directly) for single-threaded tests. *)
type excl = { excl : 'a. (unit -> 'a) -> 'a }

val no_excl : excl

(** [create ?excl ?backoff_ms srv leader] — [backoff_ms] (default 100)
    seeds the jittered exponential reconnect delay.  Metrics
    ([cxxlookup_replica_connected], [..._connects_total],
    [..._snapshots_installed_total], [..._records_applied_total],
    [..._stream_errors_total]) land in [srv]'s registry. *)
val create :
  ?excl:excl -> ?backoff_ms:int -> Service.Server.t -> Net.Server.addr -> t

(** [run t] connects (and reconnects, forever) until {!stop}.  Run it
    on its own thread next to the front end's [run]. *)
val run : t -> unit

(** Unblocks {!run} by closing the live connection; safe from any
    thread. *)
val stop : t -> unit
