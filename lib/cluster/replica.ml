(* The follower side: one connection to the leader, one message at a
   time into the local service server.

   The whole recovery story is "reconnect and say hello again": the
   handshake's [have] map tells the leader where this replica stands
   (seeded by ordinary store recovery after a restart), and the
   leader's resynchronization logic decides between extending the WAL
   tail and resending a snapshot.  Any apply error — an epoch gap, a
   mutation the graph rejects — therefore just drops the connection;
   the fresh handshake converges by construction.

   Applies run under [excl], the serving front end's exclusive lock,
   so replicated mutations never race the read verbs executing on
   worker domains. *)

type excl = { excl : 'a. (unit -> 'a) -> 'a }

let no_excl = { excl = (fun f -> f ()) }

type t = {
  srv : Service.Server.t;
  leader : Net.Server.addr;
  ex : excl;
  backoff_ms : int;
  stop : bool Atomic.t;
  conn : Net.Client.t option ref;
  conn_mutex : Mutex.t;
  connected : bool Atomic.t;
  connects : Telemetry.Counter.t;
  snapshots_installed : Telemetry.Counter.t;
  records_applied : Telemetry.Counter.t;
  stream_errors : Telemetry.Counter.t;
}

let create ?(excl = no_excl) ?(backoff_ms = 100) srv leader =
  let t =
    { srv;
      leader;
      ex = excl;
      backoff_ms = max 1 backoff_ms;
      stop = Atomic.make false;
      conn = ref None;
      conn_mutex = Mutex.create ();
      connected = Atomic.make false;
      connects = Telemetry.Counter.make "replica_connects";
      snapshots_installed = Telemetry.Counter.make "replica_snapshots_installed";
      records_applied = Telemetry.Counter.make "replica_records_applied";
      stream_errors = Telemetry.Counter.make "replica_stream_errors" }
  in
  let registry = Service.Server.registry srv in
  Telemetry.Registry.gauge registry
    ~help:"1 while the replication stream to the leader is up."
    "cxxlookup_replica_connected"
    (fun () -> if Atomic.get t.connected then 1 else 0);
  Telemetry.Registry.attach_counter registry
    ~help:"Replication connections established (reconnects included)."
    "cxxlookup_replica_connects_total" t.connects;
  Telemetry.Registry.attach_counter registry
    ~help:"Snapshots installed from the leader."
    "cxxlookup_replica_snapshots_installed_total" t.snapshots_installed;
  Telemetry.Registry.attach_counter registry
    ~help:"WAL records applied from the leader."
    "cxxlookup_replica_records_applied_total" t.records_applied;
  Telemetry.Registry.attach_counter registry
    ~help:"Streams dropped on a malformed message or an apply error."
    "cxxlookup_replica_stream_errors_total" t.stream_errors;
  t

exception Drop of string

let stream t c =
  Net.Client.send_line c
    (Wire.hello_line ~have:(Service.Server.open_sessions t.srv));
  let continue = ref true in
  while !continue && not (Atomic.get t.stop) do
    match Net.Client.recv_line c with
    | None -> continue := false
    | Some line ->
      (match Wire.parse_server_msg line with
      | Error e -> raise (Drop ("bad message from leader: " ^ e))
      | Ok Wire.Hello -> Atomic.set t.connected true
      | Ok Wire.Ping -> ()
      | Ok (Wire.Error_msg m) -> raise (Drop ("leader refused stream: " ^ m))
      | Ok (Wire.Snapshot snap) ->
        (match t.ex.excl (fun () -> Service.Server.install_snapshot t.srv snap) with
        | Ok () -> Telemetry.Counter.incr t.snapshots_installed
        | Error e -> raise (Drop ("snapshot install failed: " ^ e)))
      | Ok (Wire.Wal { session; record }) ->
        (match
           t.ex.excl (fun () ->
               Service.Server.apply_replicated t.srv ~session
                 ~epoch:record.Store.Wal.rc_epoch record.Store.Wal.rc_mutation)
         with
        | Ok () -> Telemetry.Counter.incr t.records_applied
        | Error e -> raise (Drop ("apply failed: " ^ e))))
  done

let stop t =
  Atomic.set t.stop true;
  Mutex.protect t.conn_mutex (fun () ->
      match !(t.conn) with
      | Some c -> ( try Net.Client.close c with _ -> ())
      | None -> ())

let run t =
  let attempt = ref 0 in
  while not (Atomic.get t.stop) do
    match Net.Client.connect t.leader with
    | exception (Unix.Unix_error _ | Sys_error _) ->
      Thread.delay
        (Net.Client.backoff_delay ~attempt:(min !attempt 6)
           ~backoff_ms:t.backoff_ms);
      incr attempt
    | c ->
      Mutex.protect t.conn_mutex (fun () -> t.conn := Some c);
      if Atomic.get t.stop then stop t
      else begin
        attempt := 0;
        Telemetry.Counter.incr t.connects;
        (try stream t c with
        | Drop _ -> Telemetry.Counter.incr t.stream_errors
        | Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
        Atomic.set t.connected false;
        Mutex.protect t.conn_mutex (fun () ->
            t.conn := None;
            try Net.Client.close c with _ -> ());
        if not (Atomic.get t.stop) then
          Thread.delay (Net.Client.backoff_delay ~attempt:0 ~backoff_ms:t.backoff_ms)
      end
  done
