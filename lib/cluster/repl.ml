(* The leader side of WAL-shipping replication.

   The sender streams the store's own on-disk artifacts: it polls each
   session's WAL file with a {!Store.Wal.Tail_reader} and ships every
   complete frame, resynchronizing from the newest snapshot file
   whenever the tail cannot be extended contiguously.  Reading files
   rather than hooking the request path means replication needs no
   cooperation from the serving loop — anything that makes the store
   durable is, by construction, what followers receive.

   Per-session stream invariant: after a [snapshot] message at epoch E,
   every [wal] message carries epoch E+1, E+2, ... consecutively.  The
   sender maintains it with three resynchronization triggers:
   - the tail reader reports [Reset] (the WAL shrank: compaction, or a
     superseding lineage);
   - a decoded record's epoch skips past [sent + 1] (the records in
     between were compacted away before we read them);
   - the newest snapshot file changed identity (inode) while its epoch
     is at or below what we already streamed — a fresh lineage under a
     reused name, which no epoch arithmetic alone can detect.
   Records at or below the sent epoch are skipped silently: they are
   the same pre-compaction leftovers recovery skips.

   One thread per follower; a slow or dead follower eventually fails
   its socket write (pings guarantee traffic even on an idle leader)
   and costs nothing but its own connection. *)

type t = {
  store : Store.t;
  poll_s : float;
  listen_fd : Unix.file_descr;
  bound : Net.Server.addr;
  stop : bool Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_conn : int Atomic.t;
  followers : int Atomic.t;
  snapshots_sent : Telemetry.Counter.t;
  records_sent : Telemetry.Counter.t;
  resyncs : Telemetry.Counter.t;
}

let create ?(poll_ms = 20) srv addr =
  let store =
    match Service.Server.store srv with
    | Some s -> s
    | None ->
      invalid_arg "Cluster.Repl: replication requires a durable store \
                   (serve --store DIR)"
  in
  let listen_fd, bound = Net.Server.listen_on addr in
  let registry = Service.Server.registry srv in
  let t =
    { store;
      poll_s = float_of_int (max 1 poll_ms) /. 1000.;
      listen_fd;
      bound;
      stop = Atomic.make false;
      conns = Hashtbl.create 4;
      conns_mutex = Mutex.create ();
      next_conn = Atomic.make 0;
      followers = Atomic.make 0;
      snapshots_sent = Telemetry.Counter.make "repl_snapshots_sent";
      records_sent = Telemetry.Counter.make "repl_records_sent";
      resyncs = Telemetry.Counter.make "repl_resyncs" }
  in
  Telemetry.Registry.gauge registry
    ~help:"Follower connections currently streaming."
    "cxxlookup_repl_followers"
    (fun () -> Atomic.get t.followers);
  Telemetry.Registry.attach_counter registry
    ~help:"Snapshots sent to followers (bootstrap + resynchronization)."
    "cxxlookup_repl_snapshots_sent_total" t.snapshots_sent;
  Telemetry.Registry.attach_counter registry
    ~help:"WAL records streamed to followers."
    "cxxlookup_repl_records_sent_total" t.records_sent;
  Telemetry.Registry.attach_counter registry
    ~help:"Stream resynchronizations (snapshot resends past a WAL gap)."
    "cxxlookup_repl_resyncs_total" t.resyncs;
  t

let bound_addr t = t.bound

(* ---- per-follower sender ------------------------------------------- *)

type sstate = {
  mutable ss_sent : int;  (* epoch through which the stream is complete *)
  mutable ss_ino : int;  (* identity of the snapshot the lineage hangs on *)
  mutable ss_reader : Store.Wal.Tail_reader.reader;
}

let snapshot_ino path =
  try Some (Unix.stat path).Unix.st_ino
  with Unix.Unix_error _ -> None

(* Send the newest snapshot and restart the WAL tail behind it.  [None]
   when the snapshot is briefly unreadable (pruned or mid-rename):
   the caller drops the session this round and retries next poll. *)
let resync t oc name =
  match Store.newest_snapshot t.store name with
  | None -> None
  | Some (epoch, path) ->
    (match
       (snapshot_ino path,
        try Some (In_channel.with_open_bin path In_channel.input_all)
        with Sys_error _ -> None)
     with
    | Some ino, Some data ->
      output_string oc (Wire.snapshot_line ~session:name ~epoch data);
      output_char oc '\n';
      Telemetry.Counter.incr t.snapshots_sent;
      Some
        { ss_sent = epoch;
          ss_ino = ino;
          ss_reader = Store.Wal.Tail_reader.create (Store.wal_path t.store name) }
    | _ -> None)

(* Ship one poll's worth of frames; false = stream broken, resync. *)
let send_frames t oc name st records =
  let ok = ref true in
  List.iter
    (fun (r : Store.Wal.record) ->
      if !ok then
        if r.Store.Wal.rc_epoch <= st.ss_sent then ()  (* compaction leftover *)
        else if r.Store.Wal.rc_epoch = st.ss_sent + 1 then begin
          output_string oc (Wire.wal_line ~session:name r);
          output_char oc '\n';
          Telemetry.Counter.incr t.records_sent;
          st.ss_sent <- r.Store.Wal.rc_epoch
        end
        else ok := false)  (* gap: records between were compacted away *)
    records;
  !ok

let step_session t oc name states have =
  let fresh () =
    (* first sight: honor the follower's offer when it already holds
       the session at or past the newest snapshot — the WAL tail can
       extend it without a bootstrap transfer *)
    match Store.newest_snapshot t.store name with
    | None -> ()
    | Some (epoch, path) ->
      (match (List.assoc_opt name have, snapshot_ino path) with
      | Some h, Some ino when h >= epoch ->
        Hashtbl.replace states name
          { ss_sent = h;
            ss_ino = ino;
            ss_reader =
              Store.Wal.Tail_reader.create (Store.wal_path t.store name) }
      | _ ->
        (match resync t oc name with
        | Some st -> Hashtbl.replace states name st
        | None -> ()))
  in
  match Hashtbl.find_opt states name with
  | None -> fresh ()
  | Some st ->
    let do_resync () =
      Telemetry.Counter.incr t.resyncs;
      match resync t oc name with
      | Some st' -> Hashtbl.replace states name st'
      | None -> Hashtbl.remove states name
    in
    let lineage_broken =
      match Store.newest_snapshot t.store name with
      | None -> false  (* transient: mid reset/prune; judged next round *)
      | Some (epoch, path) ->
        (match snapshot_ino path with
        | None -> false
        | Some ino when ino = st.ss_ino -> false
        | Some ino ->
          if epoch <= st.ss_sent then true  (* reused name, new lineage *)
          else begin
            (* compaction moved the snapshot forward past our stream
               position; the WAL tail decides whether we kept up *)
            st.ss_ino <- ino;
            false
          end)
    in
    if lineage_broken then do_resync ()
    else begin
      match Store.Wal.Tail_reader.poll st.ss_reader with
      | Store.Wal.Tail_reader.Nothing -> ()
      | Store.Wal.Tail_reader.Reset -> do_resync ()
      | Store.Wal.Tail_reader.Frames records ->
        if not (send_frames t oc name st records) then do_resync ()
    end

let sender t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  match In_channel.input_line ic with
  | None -> ()
  | Some line ->
    (match Wire.parse_hello line with
    | Error msg ->
      output_string oc (Wire.error_line msg);
      output_char oc '\n';
      flush oc
    | Ok have ->
      output_string oc Wire.hello_ack_line;
      output_char oc '\n';
      flush oc;
      let states : (string, sstate) Hashtbl.t = Hashtbl.create 4 in
      let last_ping = ref (Unix.gettimeofday ()) in
      while not (Atomic.get t.stop) do
        List.iter
          (fun name -> step_session t oc name states have)
          (Store.sessions t.store);
        let now = Unix.gettimeofday () in
        if now -. !last_ping >= 1.0 then begin
          last_ping := now;
          output_string oc Wire.ping_line;
          output_char oc '\n'
        end;
        flush oc;
        Thread.delay t.poll_s
      done)

let handle_follower t conn fd =
  Atomic.incr t.followers;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.followers;
      Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try sender t fd with
      | Sys_error _ | Unix.Unix_error _ | End_of_file -> ())

let stop t = Atomic.set t.stop true

let run t =
  let threads = ref [] in
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        let conn = Atomic.fetch_and_add t.next_conn 1 in
        Mutex.protect t.conns_mutex (fun () -> Hashtbl.add t.conns conn fd);
        threads :=
          Thread.create (fun () -> handle_follower t conn fd) () :: !threads)
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.bound with
  | Net.Server.Unix_path p -> (try Unix.unlink p with Unix.Unix_error _ -> ())
  | Net.Server.Tcp _ -> ());
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  List.iter Thread.join !threads
