module J = Chg.Json
module B = Chg.Binary

(* The replication wire format, [cxxlookup-repl/1]: JSON lines like the
   rpc protocol, binary payloads (snapshot containers and WAL mutation
   codecs — the store's own on-disk formats) carried base64.  One
   handshake line from the follower, then a one-way message stream from
   the leader; the TCP connection itself is the ack channel. *)

let version = "cxxlookup-repl/1"

(* ---- base64 (standard alphabet, padded) ----------------------------- *)

let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_encode s =
  let n = String.length s in
  let out = Buffer.create (((n + 2) / 3) * 4) in
  let byte i = Char.code s.[i] in
  let emit c = Buffer.add_char out b64_alphabet.[c land 63] in
  let i = ref 0 in
  while !i + 2 < n do
    let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    emit (w lsr 18); emit (w lsr 12); emit (w lsr 6); emit w;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
    let w = byte !i lsl 16 in
    emit (w lsr 18); emit (w lsr 12);
    Buffer.add_string out "=="
  | 2 ->
    let w = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
    emit (w lsr 18); emit (w lsr 12); emit (w lsr 6);
    Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let b64_value =
  let table = Array.make 256 (-1) in
  String.iteri (fun i c -> table.(Char.code c) <- i) b64_alphabet;
  fun c -> table.(Char.code c)

let b64_decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64: length not a multiple of 4"
  else begin
    let pad =
      if n = 0 then 0
      else if String.length s >= 2 && s.[n - 2] = '=' then 2
      else if s.[n - 1] = '=' then 1
      else 0
    in
    let out = Buffer.create (n / 4 * 3) in
    let err = ref None in
    (try
       let i = ref 0 in
       while !i < n do
         let digit k =
           let c = s.[!i + k] in
           if c = '=' then
             if !i + 4 < n || k < 2 then (err := Some "base64: stray '='"; raise Exit)
             else 0
           else
             match b64_value c with
             | -1 -> err := Some (Printf.sprintf "base64: bad byte %C" c); raise Exit
             | v -> v
         in
         let w =
           (digit 0 lsl 18) lor (digit 1 lsl 12) lor (digit 2 lsl 6) lor digit 3
         in
         Buffer.add_char out (Char.chr ((w lsr 16) land 0xff));
         if !i + 4 < n || pad < 2 then
           Buffer.add_char out (Char.chr ((w lsr 8) land 0xff));
         if !i + 4 < n || pad < 1 then Buffer.add_char out (Char.chr (w land 0xff));
         i := !i + 4
       done
     with Exit -> ());
    match !err with Some e -> Error e | None -> Ok (Buffer.contents out)
  end

(* ---- messages ------------------------------------------------------- *)

type server_msg =
  | Hello
  | Snapshot of Store.Snapshot.t
  | Wal of { session : string; record : Store.Wal.record }
  | Ping
  | Error_msg of string

(* follower -> leader, the only follower line: what it already has *)
let hello_line ~have =
  J.to_string
    (J.Obj
       [ ("repl", J.String "hello");
         ("protocol", J.String version);
         ("have", J.Obj (List.map (fun (s, e) -> (s, J.Int e)) have)) ])

let parse_hello line =
  match J.of_string line with
  | Error e -> Error ("handshake is not JSON: " ^ e)
  | Ok j ->
    (match (J.member "repl" j, J.member "protocol" j) with
    | Ok (J.String "hello"), Ok (J.String p) when p = version ->
      (match J.member "have" j with
      | Ok (J.Obj fields) ->
        (try
           Ok
             (List.map
                (fun (s, v) ->
                  match v with
                  | J.Int e -> (s, e)
                  | _ -> failwith "have epochs must be integers")
                fields)
         with Failure m -> Error m)
      | Ok _ -> Error "field \"have\" must be an object"
      | Error _ -> Ok [])
    | Ok (J.String "hello"), Ok (J.String p) ->
      Error (Printf.sprintf "protocol mismatch: peer speaks %s, this is %s" p version)
    | _ -> Error "handshake must be a repl/hello message")

let hello_ack_line =
  J.to_string
    (J.Obj [ ("repl", J.String "hello"); ("protocol", J.String version) ])

let ping_line = J.to_string (J.Obj [ ("repl", J.String "ping") ])

let error_line msg =
  J.to_string
    (J.Obj [ ("repl", J.String "error"); ("message", J.String msg) ])

(* The snapshot travels as its on-disk container bytes — CRC-sectioned,
   so a corrupted transfer fails decode rather than installing junk. *)
let snapshot_line ~session ~epoch data =
  J.to_string
    (J.Obj
       [ ("repl", J.String "snapshot");
         ("session", J.String session);
         ("epoch", J.Int epoch);
         ("data", J.String (b64_encode data)) ])

let wal_line ~session (r : Store.Wal.record) =
  let w = B.Writer.create () in
  Store.Mutation.write w r.Store.Wal.rc_mutation;
  J.to_string
    (J.Obj
       [ ("repl", J.String "wal");
         ("session", J.String session);
         ("epoch", J.Int r.Store.Wal.rc_epoch);
         ("data", J.String (b64_encode (B.Writer.contents w))) ])

let str_member name j =
  match J.member name j with
  | Ok (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let int_member name j =
  match J.member name j with
  | Ok (J.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let ( let* ) = Result.bind

let parse_server_msg line =
  match J.of_string line with
  | Error e -> Error ("message is not JSON: " ^ e)
  | Ok j ->
    (match J.member "repl" j with
    | Ok (J.String "hello") -> Ok Hello
    | Ok (J.String "ping") -> Ok Ping
    | Ok (J.String "error") ->
      let* m = str_member "message" j in
      Ok (Error_msg m)
    | Ok (J.String "snapshot") ->
      let* data = str_member "data" j in
      let* bytes = b64_decode data in
      let* snap = Store.Snapshot.decode bytes in
      Ok (Snapshot snap)
    | Ok (J.String "wal") ->
      let* session = str_member "session" j in
      let* epoch = int_member "epoch" j in
      let* data = str_member "data" j in
      let* bytes = b64_decode data in
      (match
         let r = B.Reader.of_string bytes in
         let m = Store.Mutation.read r in
         if B.Reader.at_end r then Ok m else Error "trailing mutation bytes"
       with
      | Ok m ->
        Ok (Wal { session; record = { Store.Wal.rc_epoch = epoch; rc_mutation = m } })
      | Error e -> Error e
      | exception B.Corrupt m -> Error ("mutation decode: " ^ m))
    | Ok (J.String other) -> Error (Printf.sprintf "unknown repl message %S" other)
    | _ -> Error "missing field \"repl\"")
