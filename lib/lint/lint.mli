(** The hierarchy linter: all rules from one shared engine build.

    [run] builds the Figure-8 engine (with witnesses) once over the
    hierarchy, scans every contained (class, member) pair, and derives
    every enabled rule from that single table — graph variants are built
    only where a rule's definition demands one (fragile-dominance
    re-runs one member column per (member, winner) pair; the virtualize
    rule builds one full table per candidate edge set).

    Rule refinements over the literal statements, chosen so the rules
    are non-vacuous (documented in DESIGN.md):
    - {b dead-member} excludes the declaring class itself (lookup(X,m)
      trivially yields X's own declaration) and fires only when X has at
      least one derived class, none of which resolves [m] to [X].
    - {b fragile-dominance} fires when the winner dominates a definition
      in a shared virtual base that stays visible along a derivation
      path bypassing the winner — ordinary single-inheritance-style
      hiding does not fire.
    - {b virtualize-fix-it} candidates are single non-virtual edges
      above an ambiguous class plus the "all edges out of one base"
      group (the symmetric-diamond fix); a candidate is reported iff it
      resolves the ambiguity while every resolved lookup keeps its
      target, no lookup appears or disappears, and no new ambiguity
      arises. *)

(** The lint rule table: identity, severity policy, and descriptions.

    Every rule has a stable kebab-case string id (the [--rules] /
    SARIF [ruleId] namespace), a fixed default severity, and a category
    used for grouping in documentation and SARIF rule metadata.

    Severity policy:
    - {b error} — the program is ill-formed if the member is used
      unqualified (ambiguity);
    - {b warning} — legal but fragile or very likely unintended
      hierarchy shape (replication, dominance-only resolution);
    - {b note} — informational findings and suggestions (dead
      declarations, fix-it proposals, baseline divergence). *)
module Rule : sig
  type id =
    | Ambiguous_lookup
        (** a [(C,m)] whose Defns set has incomparable dominants *)
    | Replicated_base  (** non-virtual repeated base — paper Figure 1 *)
    | Fragile_dominance
        (** lookup resolving only through Definition 5 dominance *)
    | Dead_member  (** declaration never the result of any lookup below *)
    | Virtualize_fixit
        (** an edge whose virtualization would resolve an ambiguity *)
    | Compiler_divergence
        (** a real compiler baseline silently answers differently *)
    | Mro_unsolvable
        (** C3 linearization fails: cyclic precedence constraints *)
    | Semantics_divergence
        (** C++ dominance and C3 linearization answer differently *)
    | Linearization_sensitive
        (** the MRO variants (C3/Python-2.2/Dylan) disagree *)

  (** All rules, in fixed report order.  New rules are appended, so
      {!index} — and every published SARIF [ruleIndex] — is stable. *)
  val all : id list

  (** The rules enabled by {!default_config}: the original six.  The
      cross-semantics rules ({!Mro_unsolvable}, {!Semantics_divergence},
      {!Linearization_sensitive}) are strictly opt-in, keeping default
      lint output byte-compatible across releases. *)
  val default_rules : id list

  (** [index r] is the position of [r] in {!all} (stable across runs;
      used as SARIF [ruleIndex] and for deterministic sorting). *)
  val index : id -> int

  (** [to_string r] is the stable rule id, e.g. ["ambiguous-lookup"]. *)
  val to_string : id -> string

  (** [of_string s] inverts {!to_string}. *)
  val of_string : string -> id option

  val severity : id -> Frontend.Diagnostic.severity

  (** [category r] — e.g. ["correctness"], ["robustness"]. *)
  val category : id -> string

  (** [short_description r] — one sentence, for SARIF rule metadata. *)
  val short_description : id -> string
end

type finding = {
  f_rule : Rule.id;
  f_class : string;  (** subject class (name, graph-independent) *)
  f_member : string option;
  f_diag : Frontend.Diagnostic.t;
  f_baseline : string option;
      (** which baseline / semantics diverged (compiler-divergence:
          ["topo"], ["gxx-buggy"], ["gxx-fixed"];
          semantics-divergence: ["c3"]) — surfaced in the SARIF
          result's property bag *)
}

(** How a finding gets a source position: names to declaration sites
    (see {!Frontend.Locs.locate}).  The default knows nothing and every
    diagnostic carries {!Frontend.Loc.dummy}. *)
type locator = cls:string -> member:string option -> Frontend.Loc.t option

val no_locs : locator

type config = {
  rules : Rule.id list;  (** enabled rules, in any order *)
  spec_witness_limit : int;
      (** max subobject count for exponential spec witness paths *)
  gxx_limit : int;
      (** max subobject count for the exponential g++ baseline scan *)
  virtualize_limit : int;  (** max candidate edge sets tried *)
}

(** {!Rule.default_rules} on; limits 512 / 2048 / 128. *)
val default_config : config

(** [parse_rules "a,b"] parses a comma-separated rule-id list (the
    CLI's [--rules] argument).  The tokens ["all"] and ["default"]
    expand to {!Rule.all} and {!Rule.default_rules}; an unknown id is
    an [Error] listing every valid spelling. *)
val parse_rules : string -> (Rule.id list, string) result

(** {1 Telemetry} *)

type metrics

(** Per-rule fired counters, pair/variant-build/gxx-skip counters, and
    a wall-clock timer for the whole pass. *)
val create_metrics : unit -> metrics

(** Shared no-op bag: increments are skipped entirely. *)
val disabled : metrics

(** [(name, value)] pairs: ["lint_<rule-id>"] per rule plus
    ["lint_pairs_checked"], ["lint_variant_builds"],
    ["lint_gxx_skipped"]. *)
val metrics_counters : metrics -> (string * int) list

(** {1 Running} *)

(** [run ?config ?semantics ?locs ?metrics ?jobs cl] — findings in
    deterministic order: subject class (declaration order), then rule,
    member, message.  [jobs] (default [1]) compiles the lookup table's
    columns on that many domains ({!Lookup_core.Packed.build}); the
    findings are identical for every value.

    [semantics] (default {!Mro.Cpp}) selects the engine behind the
    verdict-shaped rules (ambiguous-lookup, dead-member): under
    [Linearized v] they read the {!Mro.engine} table instead of the
    Figure-8 build, and the C++-subobject-specific rules
    (replicated-base, fragile-dominance, virtualize-fix-it,
    compiler-divergence) are skipped.  The cross-semantics rules
    (mro-unsolvable, semantics-divergence, linearization-sensitive)
    always compare C++ dominance against the linearizations they build
    themselves, whatever [semantics] says. *)
val run : ?config:config -> ?semantics:Mro.semantics -> ?locs:locator ->
  ?metrics:metrics -> ?jobs:int -> Chg.Closure.t -> finding list

(** {1 Summaries and renderers} *)

(** [(errors, warnings, notes)]. *)
val summary : finding list -> int * int * int

val max_severity : finding list -> Frontend.Diagnostic.severity option

(** Pretty text, one finding per line
    ([file:line:col: severity: message [rule]] with a [fix-it:]
    continuation line when present), ending with a summary line. *)
val pp_text : ?file:string -> Format.formatter -> finding list -> unit

(** One finding as a JSON object (the JSON-lines renderer emits one of
    these per line): [rule], [severity], [class], optional [member],
    [file], [line]/[col] (omitted at dummy positions), [message],
    optional [fixit]. *)
val finding_json : ?file:string -> finding -> Chg.Json.t

(** SARIF 2.1.0 rendering.  The document carries the full static rule
    table as [tool.driver.rules] (id, short description, default level,
    category) and one [result] per finding with [ruleId], [ruleIndex],
    [level], [message.text], a [physicalLocation] when the source file
    is known (the [region] is omitted at dummy positions), and the
    fix-it in the result's property bag. *)
module Sarif : sig
  (** The complete [sarifLog] object. *)
  val document : ?file:string -> finding list -> Chg.Json.t

  (** Pretty-printed JSON text of {!document}. *)
  val to_string : ?file:string -> finding list -> string
end
