module G = Chg.Graph
module Closure = Chg.Closure
module Engine = Lookup_core.Engine
module Abs = Lookup_core.Abstraction
module D = Frontend.Diagnostic
module J = Chg.Json

module Rule = struct
  type id =
    | Ambiguous_lookup
    | Replicated_base
    | Fragile_dominance
    | Dead_member
    | Virtualize_fixit
    | Compiler_divergence
    | Mro_unsolvable
    | Semantics_divergence
    | Linearization_sensitive

  (* New rules are appended so the [index] of every pre-existing rule —
     and with it the SARIF [ruleIndex] of every old finding — is
     stable across releases. *)
  let all =
    [ Ambiguous_lookup;
      Replicated_base;
      Fragile_dominance;
      Dead_member;
      Virtualize_fixit;
      Compiler_divergence;
      Mro_unsolvable;
      Semantics_divergence;
      Linearization_sensitive ]

  (* The cross-semantics rules are strictly opt-in (via --rules or the
     protocol), keeping the default text/JSON output byte-compatible. *)
  let default_rules =
    [ Ambiguous_lookup;
      Replicated_base;
      Fragile_dominance;
      Dead_member;
      Virtualize_fixit;
      Compiler_divergence ]

  let index = function
    | Ambiguous_lookup -> 0
    | Replicated_base -> 1
    | Fragile_dominance -> 2
    | Dead_member -> 3
    | Virtualize_fixit -> 4
    | Compiler_divergence -> 5
    | Mro_unsolvable -> 6
    | Semantics_divergence -> 7
    | Linearization_sensitive -> 8

  let to_string = function
    | Ambiguous_lookup -> "ambiguous-lookup"
    | Replicated_base -> "replicated-base"
    | Fragile_dominance -> "fragile-dominance"
    | Dead_member -> "dead-member"
    | Virtualize_fixit -> "virtualize-fix-it"
    | Compiler_divergence -> "compiler-divergence"
    | Mro_unsolvable -> "mro-unsolvable"
    | Semantics_divergence -> "semantics-divergence"
    | Linearization_sensitive -> "linearization-sensitive"

  let of_string = function
    | "ambiguous-lookup" -> Some Ambiguous_lookup
    | "replicated-base" -> Some Replicated_base
    | "fragile-dominance" -> Some Fragile_dominance
    | "dead-member" -> Some Dead_member
    | "virtualize-fix-it" -> Some Virtualize_fixit
    | "compiler-divergence" -> Some Compiler_divergence
    | "mro-unsolvable" -> Some Mro_unsolvable
    | "semantics-divergence" -> Some Semantics_divergence
    | "linearization-sensitive" -> Some Linearization_sensitive
    | _ -> None

  let severity = function
    | Ambiguous_lookup -> D.Error
    | Replicated_base | Fragile_dominance | Mro_unsolvable
    | Semantics_divergence ->
      D.Warning
    | Dead_member | Virtualize_fixit | Compiler_divergence
    | Linearization_sensitive ->
      D.Note

  let category = function
    | Ambiguous_lookup -> "correctness"
    | Replicated_base -> "layout"
    | Fragile_dominance -> "robustness"
    | Dead_member -> "hygiene"
    | Virtualize_fixit -> "refactoring"
    | Compiler_divergence -> "portability"
    | Mro_unsolvable | Semantics_divergence | Linearization_sensitive ->
      "cross-semantics"

  let short_description = function
    | Ambiguous_lookup ->
      "Member lookup is ambiguous: the definition set has incomparable \
       dominant subobjects."
    | Replicated_base ->
      "A non-virtual base is replicated: the object contains multiple \
       copies of it (paper Figure 1)."
    | Fragile_dominance ->
      "Lookup resolves only through the dominance rule; a qualified name \
       would make the choice explicit."
    | Dead_member ->
      "The declaration is never the result of member lookup in any \
       derived class."
    | Virtualize_fixit ->
      "Making one inheritance edge virtual would resolve this ambiguity \
       without changing any other lookup."
    | Compiler_divergence ->
      "A real compiler baseline (g++ 2.7 or Eiffel topological order) \
       silently answers this lookup differently."
    | Mro_unsolvable ->
      "The class has no C3 linearization: its precedence constraints are \
       cyclic (a linearized language rejects the class outright)."
    | Semantics_divergence ->
      "C++ dominance lookup and C3 linearized lookup answer this member \
       differently: the hierarchy's meaning depends on the language."
    | Linearization_sensitive ->
      "The documented MRO variants (C3, Python 2.2, Dylan) disagree on \
       this lookup among themselves."
end

type finding = {
  f_rule : Rule.id;
  f_class : string;
  f_member : string option;
  f_diag : D.t;
  f_baseline : string option;
      (* which compiler baseline / semantics diverged, for the SARIF
         property bag: "topo", "gxx-buggy", "gxx-fixed", "c3" *)
}

type locator = cls:string -> member:string option -> Frontend.Loc.t option

let no_locs ~cls:_ ~member:_ = None

type config = {
  rules : Rule.id list;
  spec_witness_limit : int;
  gxx_limit : int;
  virtualize_limit : int;
}

let default_config =
  { rules = Rule.default_rules;
    spec_witness_limit = 512;
    gxx_limit = 2048;
    virtualize_limit = 128 }

let valid_rule_ids () =
  String.concat ", " (List.map Rule.to_string Rule.all @ [ "all"; "default" ])

let parse_rules s =
  let ids = String.split_on_char ',' s |> List.map String.trim in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | "all" :: rest -> go (List.rev_append Rule.all acc) rest
    | "default" :: rest -> go (List.rev_append Rule.default_rules acc) rest
    | id :: rest ->
      (match Rule.of_string id with
      | Some r -> go (r :: acc) rest
      | None ->
        Error
          (Printf.sprintf "unknown lint rule '%s' (valid: %s)" id
             (valid_rule_ids ())))
  in
  match go [] ids with
  | Ok [] -> Error "empty rule list"
  | r -> r

(* {1 Telemetry} *)

type metrics = {
  enabled : bool;
  fired : Telemetry.Counter.t array;  (* indexed by [Rule.index] *)
  pairs_checked : Telemetry.Counter.t;
  variant_builds : Telemetry.Counter.t;
  gxx_skipped : Telemetry.Counter.t;
  timer : Telemetry.Timer.t;
}

let make_metrics enabled =
  { enabled;
    fired =
      Array.of_list
        (List.map
           (fun r -> Telemetry.Counter.make ("lint_" ^ Rule.to_string r))
           Rule.all);
    pairs_checked = Telemetry.Counter.make "lint_pairs_checked";
    variant_builds = Telemetry.Counter.make "lint_variant_builds";
    gxx_skipped = Telemetry.Counter.make "lint_gxx_skipped";
    timer = Telemetry.Timer.make "lint_run" }

let create_metrics () = make_metrics true
let disabled = make_metrics false

let metrics_counters m =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    (Array.to_list m.fired
    @ [ m.pairs_checked; m.variant_builds; m.gxx_skipped ])

(* {1 Graph variants}

   The fragile-dominance and virtualize rules re-run the engine on a
   modified hierarchy.  Rebuilding through the public builder in
   declaration order preserves every class id, so verdicts of the
   variant are directly comparable to the original. *)

let rebuild ?(base_kind = fun ~derived:_ ~base:_ kind -> kind)
    ?(keep_member = fun ~cls:_ _ -> true) g =
  let b = G.create_builder () in
  List.iter
    (fun c ->
      let bases =
        List.map
          (fun (e : G.base) ->
            ( G.name g e.b_class,
              base_kind ~derived:c ~base:e.b_class e.b_kind,
              e.b_access ))
          (G.bases g c)
      in
      let members = List.filter (keep_member ~cls:c) (G.members g c) in
      ignore (G.add_class b (G.name g c) ~bases ~members))
    (G.classes g);
  G.freeze b

let without_member g ~cls ~member =
  rebuild
    ~keep_member:(fun ~cls:c (m : G.member) ->
      not (c = cls && m.m_name = member))
    g

let virtualize_edges g ~base:x ~derived:ys =
  rebuild
    ~base_kind:(fun ~derived:y ~base:b kind ->
      if b = x && List.mem y ys then G.Virtual else kind)
    g

(* [bypasses g ~lv:x ~winner:l ~context:c] — there is a derivation path
   from the shared virtual base [x] down to [c] whose first edge is
   virtual and which never passes through the dominating class [l]: the
   dominated definition stays visible along a route the winner does not
   control, which is what makes dominance-only resolution fragile. *)
let bypasses g ~lv:x ~winner:l ~context:c =
  let memo = Array.make (G.num_classes g) 0 in
  (* 0 unknown, 1 reaches, 2 does not *)
  let rec reaches y =
    y = c
    || y <> l
       &&
       match memo.(y) with
       | 1 -> true
       | 2 -> false
       | _ ->
         memo.(y) <- 2;
         let r = List.exists (fun (z, _) -> reaches z) (G.derived g y) in
         if r then memo.(y) <- 1;
         r
  in
  List.exists
    (fun (z, kind) -> kind = G.Virtual && z <> l && reaches z)
    (G.derived g x)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* {1 The pass} *)

let fdiag rule ?loc ?fixit fmt =
  let mk =
    match Rule.severity rule with
    | D.Error -> D.error
    | D.Warning -> D.warning
    | D.Note -> D.note
  in
  mk ?loc ~rule:(Rule.to_string rule) ?fixit fmt

let pp_names g ppf cs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf c -> Format.fprintf ppf "'%s'" (G.name g c))
    ppf cs

let pp_lvs g ppf lvs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (Abs.pp_lv g))
    lvs

(* Rules whose logic is specific to C++ subobject semantics (replicated
   subobjects, dominance, virtual-edge rewrites, C++ compiler baselines):
   they are skipped when the pass runs under a linearized semantics. *)
let cpp_only = function
  | Rule.Replicated_base | Rule.Fragile_dominance | Rule.Virtualize_fixit
  | Rule.Compiler_divergence ->
    true
  | Rule.Ambiguous_lookup | Rule.Dead_member | Rule.Mro_unsolvable
  | Rule.Semantics_divergence | Rule.Linearization_sensitive ->
    false

let run ?(config = default_config) ?(semantics = Mro.Cpp) ?(locs = no_locs)
    ?(metrics = disabled) ?(jobs = 1) cl =
  Telemetry.Timer.span metrics.timer @@ fun () ->
  let g = Closure.graph cl in
  let cpp = semantics = Mro.Cpp in
  (* the rules read verdicts and Members[C], never witness paths, so the
     packed parallel build is lossless here *)
  let cpp_engine =
    lazy
      (if jobs <= 1 then Engine.build cl
       else Lookup_core.Packed.to_engine (Lookup_core.Packed.build ~jobs cl))
  in
  let engine =
    match semantics with
    | Mro.Cpp -> Lazy.force cpp_engine
    | Mro.Linearized v -> Mro.engine cl v
  in
  let counts = Subobject.Count.table cl in
  let enabled r = List.mem r config.rules && not (cpp_only r && not cpp) in
  let out = ref [] in
  let push ?baseline rule cls member diag =
    if metrics.enabled then Telemetry.Counter.incr metrics.fired.(Rule.index rule);
    out :=
      { f_rule = rule;
        f_class = G.name g cls;
        f_member = member;
        f_diag = diag;
        f_baseline = baseline }
      :: !out
  in
  let loc_of cls member =
    locs ~cls:(G.name g cls) ~member
  in
  (* One scan over every contained (class, member) pair feeds all the
     verdict-shaped rules: the ambiguous set and, per (member, winner)
     pair, the contexts resolved by a class other than themselves. *)
  let ambiguous = ref [] in
  let winners : (string * G.class_id, G.class_id list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          if metrics.enabled then Telemetry.Counter.incr metrics.pairs_checked;
          match Engine.lookup engine c m with
          | None -> ()
          | Some (Engine.Blue lvs) -> ambiguous := (c, m, lvs) :: !ambiguous
          | Some (Engine.Red r) ->
            let l = r.Abs.r_ldc in
            if l <> c then begin
              match Hashtbl.find_opt winners (m, l) with
              | Some cs -> cs := c :: !cs
              | None -> Hashtbl.add winners (m, l) (ref [ c ])
            end)
        (Engine.members engine c))
    (G.classes g);
  let ambiguous = List.rev !ambiguous in

  (* ambiguous-lookup: incomparable dominants in Defns(C,m).  Witness
     paths come from the executable spec when the subobject count allows
     the exponential enumeration; otherwise the Blue abstraction's
     leastVirtual set stands in. *)
  if enabled Rule.Ambiguous_lookup then
    List.iter
      (fun (c, m, lvs) ->
        let witness =
          (* spec witness paths describe C++ subobjects; under a
             linearized semantics the generic message stands in *)
          if cpp && counts.(c) <= config.spec_witness_limit then
            match Subobject.Spec.lookup_static g c m with
            | Subobject.Spec.Ambiguous reps ->
              Format.asprintf "candidate definition paths: %s"
                (String.concat "; "
                   (List.map (Subobject.Path.to_string g) reps))
            | Subobject.Spec.Resolved _ | Subobject.Spec.Undeclared ->
              Format.asprintf "incomparable definitions with leastVirtual %a"
                (pp_lvs g) lvs
          else
            Format.asprintf "incomparable definitions with leastVirtual %a"
              (pp_lvs g) lvs
        in
        push Rule.Ambiguous_lookup c (Some m)
          (fdiag Rule.Ambiguous_lookup
             ?loc:(loc_of c (Some m))
             "request for member '%s' is ambiguous in '%s'; %s" m
             (G.name g c) witness))
      ambiguous;

  (* replicated-base: the Figure 1 situation — a non-virtual repeated
     base gives the object several copies of the base subobject. *)
  if enabled Rule.Replicated_base then
    List.iter
      (fun c ->
        Chg.Bitset.iter
          (fun x ->
            let copies = Subobject.Count.copies_of cl ~base:x ~within:c in
            if copies > 1 then begin
              let copies_text =
                if copies = max_int then "overflow-many"
                else string_of_int copies
              in
              push Rule.Replicated_base c None
                (fdiag Rule.Replicated_base
                   ?loc:(loc_of c None)
                   "a '%s' object contains %s distinct '%s' subobjects \
                    (replicated non-virtual base); members of '%s' are \
                    ambiguous or must be reached by qualified paths"
                   (G.name g c) copies_text (G.name g x) (G.name g x))
            end)
          (Closure.bases_of cl c))
      (G.classes g);

  (* fragile-dominance: the winner is selected purely by the Definition 5
     dominance rule over a definition living in a shared virtual base
     that stays visible along a derivation path bypassing the winner.
     Detected by deleting the winning declaration and re-running the
     member's column: whatever surfaces is exactly what the winner was
     dominating. *)
  if enabled Rule.Fragile_dominance then begin
    let keys =
      Hashtbl.fold (fun k cs acc -> (k, List.rev !cs) :: acc) winners []
      |> List.sort compare
    in
    List.iter
      (fun ((m, l), contexts) ->
        if metrics.enabled then Telemetry.Counter.incr metrics.variant_builds;
        let g' = without_member g ~cls:l ~member:m in
        let col = Engine.build_member (Closure.compute g') m in
        List.iter
          (fun c ->
            match Engine.lookup col c m with
            | None -> ()
            | Some v ->
              let dominated =
                match v with
                | Engine.Red r -> r.Abs.r_lvs
                | Engine.Blue lvs -> lvs
              in
              let fragile_bases =
                List.filter_map
                  (function
                    | Abs.Lv x
                      when Closure.is_virtual_base cl x l
                           && bypasses g ~lv:x ~winner:l ~context:c ->
                      Some x
                    | Abs.Lv _ | Abs.Omega -> None)
                  dominated
              in
              if fragile_bases <> [] then
                push Rule.Fragile_dominance c (Some m)
                  (fdiag Rule.Fragile_dominance
                     ?loc:(loc_of c (Some m))
                     ~fixit:
                       (Format.asprintf
                          "use the qualified name '%s::%s', or redeclare \
                           '%s' in '%s', to make the choice explicit"
                          (G.name g l) m m (G.name g c))
                     "lookup of '%s' in '%s' resolves to '%s::%s' only by \
                      dominance over definition(s) in virtual base%s %a"
                     m (G.name g c) (G.name g l) m
                     (if List.length fragile_bases = 1 then "" else "s")
                     (pp_names g) fragile_bases))
          contexts)
      keys
  end;

  (* dead-member: a declaration never produced by lookup in any class
     strictly derived from its declarer.  The declaring class itself is
     excluded — lookup(X, m) trivially answers X's own declaration — so
     the rule only fires when the hierarchy actually hides it. *)
  if enabled Rule.Dead_member then
    List.iter
      (fun x ->
        List.iter
          (fun (mem : G.member) ->
            let m = mem.m_name in
            let der = Closure.derived_of cl x in
            let n_der = Chg.Bitset.cardinal der in
            if n_der > 0 then begin
              let alive =
                Chg.Bitset.fold
                  (fun c acc -> acc || Engine.resolves_to engine c m = Some x)
                  der false
              in
              if not alive then
                push Rule.Dead_member x (Some m)
                  (fdiag Rule.Dead_member
                     ?loc:(loc_of x (Some m))
                     "declaration '%s::%s' is never the result of member \
                      lookup in any of the %d class%s derived from '%s' \
                      (always hidden or ambiguous below)"
                     (G.name g x) m n_der
                     (if n_der = 1 then "" else "es")
                     (G.name g x))
            end)
          (G.members g x))
      (G.classes g);

  (* virtualize-fix-it: try hierarchy variants where candidate
     non-virtual edges above an ambiguous class become virtual — single
     edges, plus all edges out of one base at once (the symmetric-diamond
     fix no single edge achieves).  A variant is suggested iff it turns
     some ambiguous pair red while every resolved lookup keeps its
     target, no lookup appears or disappears, and no new ambiguity is
     introduced. *)
  if enabled Rule.Virtualize_fixit && ambiguous <> [] then begin
    let amb_pairs = List.map (fun (c, m, _) -> (c, m)) ambiguous in
    let relevant y =
      List.exists (fun (c, _) -> Closure.is_base_or_self cl y c) amb_pairs
    in
    let edges =
      List.concat_map
        (fun y ->
          if relevant y then
            List.filter_map
              (fun (b : G.base) ->
                if b.b_kind = G.Non_virtual then Some (b.b_class, y)
                else None)
              (G.bases g y)
          else [])
        (G.classes g)
    in
    let groups =
      List.sort_uniq compare (List.map fst edges)
      |> List.filter_map (fun x ->
             let ys =
               List.filter_map
                 (fun (x', y) -> if x' = x then Some y else None)
                 edges
             in
             if List.length ys >= 2 then Some (x, ys) else None)
    in
    let candidates =
      take config.virtualize_limit
        (List.map (fun (x, y) -> (x, [ y ])) edges @ groups)
    in
    let names = G.member_names g in
    let observe e c m =
      match Engine.lookup e c m with
      | None -> `Absent
      | Some (Engine.Blue _) -> `Ambiguous
      | Some (Engine.Red r) -> `Resolved r.Abs.r_ldc
    in
    List.iter
      (fun (x, ys) ->
        if metrics.enabled then Telemetry.Counter.incr metrics.variant_builds;
        let g' = virtualize_edges g ~base:x ~derived:ys in
        let eng' = Engine.build (Closure.compute g') in
        let preserved =
          List.for_all
            (fun c ->
              List.for_all
                (fun m ->
                  match (observe engine c m, observe eng' c m) with
                  | `Absent, `Absent -> true
                  | `Resolved a, `Resolved b -> a = b
                  | `Ambiguous, (`Ambiguous | `Resolved _) -> true
                  | _ -> false)
                names)
            (G.classes g)
        in
        if preserved then
          List.iter
            (fun (c, m, _) ->
              match observe eng' c m with
              | `Resolved l ->
                let fixit =
                  String.concat "; "
                    (List.map
                       (fun y ->
                         Printf.sprintf "%s : virtual %s" (G.name g y)
                           (G.name g x))
                       ys)
                in
                push Rule.Virtualize_fixit c (Some m)
                  (fdiag Rule.Virtualize_fixit
                     ?loc:(loc_of c (Some m))
                     ~fixit
                     "declaring '%s' as a virtual base (%s) resolves the \
                      ambiguity of '%s' in '%s' to '%s::%s' and preserves \
                      every other lookup verdict"
                     (G.name g x) fixit m (G.name g c) (G.name g l) m)
              | `Absent | `Ambiguous -> ())
            ambiguous)
      candidates
  end;

  (* compiler-divergence: lookups where a real compiler baseline
     silently answers differently from ISO (paper) lookup. *)
  if enabled Rule.Compiler_divergence then begin
    if ambiguous <> [] then begin
      let topo = Baselines.Topo_lookup.prepare g in
      List.iter
        (fun (c, m, _) ->
          match Baselines.Topo_lookup.resolve topo c m with
          | Some tgt ->
            push ~baseline:"topo" Rule.Compiler_divergence c (Some m)
              (fdiag Rule.Compiler_divergence
                 ?loc:(loc_of c (Some m))
                 "a topological-order lookup (the Eiffel-style baseline) \
                  silently resolves '%s' in '%s' to '%s::%s' where ISO \
                  C++ lookup is ambiguous"
                 m (G.name g c) (G.name g tgt) m)
          | None -> ())
        ambiguous
    end;
    (* The g++ 2.7 baselines materialize the subobject graph, which is
       exponential in the worst case: classes above the configured count
       are skipped (and counted in the metrics).  Members that are
       static-like anywhere are skipped too — the baseline does not model
       the Definition 17 relaxation. *)
    let static_like =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun c ->
          List.iter
            (fun (mem : G.member) ->
              if G.member_is_static_like mem then
                Hashtbl.replace tbl mem.m_name ())
            (G.members g c))
        (G.classes g);
      fun m -> Hashtbl.mem tbl m
    in
    List.iter
      (fun c ->
        if counts.(c) > config.gxx_limit then begin
          if metrics.enabled then Telemetry.Counter.incr metrics.gxx_skipped
        end
        else begin
          let ms =
            List.filter (fun m -> not (static_like m)) (Engine.members engine c)
          in
          if ms <> [] then begin
            let sg = Subobject.Sgraph.build g c in
            List.iter
              (fun m ->
                let iso = Engine.lookup engine c m in
                let check mode label =
                  let baseline =
                    match mode with
                    | Baselines.Gxx.Buggy -> "gxx-buggy"
                    | Baselines.Gxx.Fixed -> "gxx-fixed"
                  in
                  match (iso, Baselines.Gxx.lookup_in ~mode sg m) with
                  | Some (Engine.Red r), Baselines.Gxx.Ambiguous ->
                    push ~baseline Rule.Compiler_divergence c (Some m)
                      (fdiag Rule.Compiler_divergence
                         ?loc:(loc_of c (Some m))
                         "g++ 2.7 (%s) rejects '%s' in '%s' as ambiguous; \
                          ISO C++ lookup resolves it to '%s::%s'"
                         label m (G.name g c)
                         (G.name g r.Abs.r_ldc)
                         m)
                  | Some (Engine.Red r), Baselines.Gxx.Resolved so
                    when Subobject.Sgraph.ldc sg so <> r.Abs.r_ldc ->
                    push ~baseline Rule.Compiler_divergence c (Some m)
                      (fdiag Rule.Compiler_divergence
                         ?loc:(loc_of c (Some m))
                         "g++ 2.7 (%s) resolves '%s' in '%s' to '%s::%s'; \
                          ISO C++ lookup resolves it to '%s::%s'"
                         label m (G.name g c)
                         (G.name g (Subobject.Sgraph.ldc sg so))
                         m
                         (G.name g r.Abs.r_ldc)
                         m)
                  | Some (Engine.Blue _), Baselines.Gxx.Resolved so ->
                    push ~baseline Rule.Compiler_divergence c (Some m)
                      (fdiag Rule.Compiler_divergence
                         ?loc:(loc_of c (Some m))
                         "g++ 2.7 (%s) silently resolves '%s' in '%s' to \
                          '%s::%s' where ISO C++ lookup is ambiguous"
                         label m (G.name g c)
                         (G.name g (Subobject.Sgraph.ldc sg so))
                         m)
                  | _ -> ()
                in
                check Baselines.Gxx.Buggy "buggy dominance pruning";
                check Baselines.Gxx.Fixed "fixed")
              ms
          end
        end)
      (G.classes g)
  end;

  (* {2 Cross-semantics rules}

     The three rules below compare the C++ dominance answer with the
     linearized (MRO) answers off one shared set of linearization
     tables; they run the same way whatever [semantics] the verdict
     rules above used. *)
  let mro_tables =
    lazy
      (List.map
         (fun v ->
           if metrics.enabled then
             Telemetry.Counter.incr metrics.variant_builds;
           (v, Mro.compute v g))
         Mro.variants)
  in
  let mro_table v = List.assoc v (Lazy.force mro_tables) in
  let pp_cycle ppf cycle =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " < ")
      (fun ppf x -> Format.fprintf ppf "'%s'" (G.name g x))
      ppf
      (cycle @ [ List.hd cycle ])
  in

  (* mro-unsolvable: C3 rejects the class outright.  Only the
     originating class of a constraint cycle is reported — every class
     derived from it inherits the same failure and would only repeat the
     witness. *)
  if enabled Rule.Mro_unsolvable then
    List.iter
      (fun c ->
        match Mro.linearization (mro_table Mro.C3) c with
        | Error f when f.Mro.fl_class = c ->
          push Rule.Mro_unsolvable c None
            (fdiag Rule.Mro_unsolvable
               ?loc:(loc_of c None)
               "class '%s' has no C3 linearization: its local precedence \
                constraints form the cycle %a"
               (G.name g c) pp_cycle f.Mro.fl_cycle)
        | Error _ | Ok _ -> ())
      (G.classes g);

  (* semantics-divergence: C++ dominance and C3 materially disagree on
     (C, m) — different winning declarations, or one semantics resolves
     where the other rejects.  Both targets are reported so the finding
     is directly checkable against either engine. *)
  if enabled Rule.Semantics_divergence then begin
    let eng = Lazy.force cpp_engine in
    let c3 = mro_table Mro.C3 in
    List.iter
      (fun c ->
        List.iter
          (fun m ->
            if metrics.enabled then
              Telemetry.Counter.incr metrics.pairs_checked;
            let qualified l = G.name g l ^ "::" ^ m in
            match (Engine.lookup eng c m, Mro.lookup c3 c m) with
            | Some (Engine.Red r1), Some (Engine.Red r2)
              when r1.Abs.r_ldc <> r2.Abs.r_ldc ->
              push ~baseline:"c3" Rule.Semantics_divergence c (Some m)
                (fdiag Rule.Semantics_divergence
                   ?loc:(loc_of c (Some m))
                   "C++ dominance resolves '%s' in '%s' to '%s' but C3 \
                    linearization resolves it to '%s'"
                   m (G.name g c)
                   (qualified r1.Abs.r_ldc)
                   (qualified r2.Abs.r_ldc))
            | Some (Engine.Blue _), Some (Engine.Red r) ->
              push ~baseline:"c3" Rule.Semantics_divergence c (Some m)
                (fdiag Rule.Semantics_divergence
                   ?loc:(loc_of c (Some m))
                   "lookup of '%s' in '%s' is ambiguous under C++ \
                    dominance but C3 linearization resolves it to '%s'"
                   m (G.name g c)
                   (qualified r.Abs.r_ldc))
            | Some (Engine.Red r), Some (Engine.Blue _) ->
              push ~baseline:"c3" Rule.Semantics_divergence c (Some m)
                (fdiag Rule.Semantics_divergence
                   ?loc:(loc_of c (Some m))
                   "C++ dominance resolves '%s' in '%s' to '%s' but '%s' \
                    has no C3 linearization"
                   m (G.name g c)
                   (qualified r.Abs.r_ldc)
                   (G.name g c))
            | _ -> ())
          (Engine.members eng c))
      (G.classes g)
  end;

  (* linearization-sensitive: the three MRO variants disagree among
     themselves on (C, m) — the hierarchy relies on a particular
     linearization algorithm, not just on linearized semantics. *)
  if enabled Rule.Linearization_sensitive then begin
    let eng = Lazy.force cpp_engine in
    let outcome v c m =
      match Mro.lookup (mro_table v) c m with
      | Some (Engine.Red r) -> `Resolved r.Abs.r_ldc
      | Some (Engine.Blue _) -> `Unsolvable
      | None -> `Absent
    in
    let describe = function
      | `Resolved l, m -> G.name g l ^ "::" ^ m
      | `Unsolvable, _ -> "unsolvable"
      | `Absent, _ -> "absent"
    in
    List.iter
      (fun c ->
        List.iter
          (fun m ->
            let os = List.map (fun v -> (v, outcome v c m)) Mro.variants in
            let distinct =
              match os with
              | (_, o0) :: rest -> List.exists (fun (_, o) -> o <> o0) rest
              | [] -> false
            in
            if distinct then
              push Rule.Linearization_sensitive c (Some m)
                (fdiag Rule.Linearization_sensitive
                   ?loc:(loc_of c (Some m))
                   "the MRO variants disagree on '%s' in '%s': %s"
                   m (G.name g c)
                   (String.concat ", "
                      (List.map
                         (fun (v, o) ->
                           Mro.variant_string v ^ " -> " ^ describe (o, m))
                         os))))
          (Engine.members eng c))
      (G.classes g)
  end;

  (* Deterministic report order: subject class in declaration order,
     then rule, then member, then message text. *)
  let cls_ix f =
    match G.find_opt g f.f_class with Some i -> i | None -> max_int
  in
  List.sort
    (fun a b ->
      match compare (cls_ix a) (cls_ix b) with
      | 0 ->
        (match compare (Rule.index a.f_rule) (Rule.index b.f_rule) with
        | 0 ->
          (match compare a.f_member b.f_member with
          | 0 -> compare a.f_diag.D.message b.f_diag.D.message
          | n -> n)
        | n -> n)
      | n -> n)
    (List.rev !out)

(* {1 Summaries and renderers} *)

let summary findings =
  List.fold_left
    (fun (e, w, n) f ->
      match f.f_diag.D.severity with
      | D.Error -> (e + 1, w, n)
      | D.Warning -> (e, w + 1, n)
      | D.Note -> (e, w, n + 1))
    (0, 0, 0) findings

let max_severity findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.f_diag.D.severity
      | Some s ->
        if D.severity_rank f.f_diag.D.severity > D.severity_rank s then
          Some f.f_diag.D.severity
        else acc)
    None findings

let pp_finding ?file ppf f =
  let d = f.f_diag in
  (match (file, d.D.loc = Frontend.Loc.dummy) with
  | Some fn, false ->
    Format.fprintf ppf "%s:%a: " fn Frontend.Loc.pp d.D.loc
  | Some fn, true -> Format.fprintf ppf "%s: " fn
  | None, false -> Format.fprintf ppf "%a: " Frontend.Loc.pp d.D.loc
  | None, true -> ());
  Format.fprintf ppf "%s: %s [%s]"
    (D.severity_string d.D.severity)
    d.D.message
    (Rule.to_string f.f_rule);
  match d.D.fixit with
  | Some fx -> Format.fprintf ppf "@,    fix-it: %s" fx
  | None -> ()

let pp_text ?file ppf findings =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," (pp_finding ?file) f) findings;
  (match findings with
  | [] -> Format.fprintf ppf "no lint findings@,"
  | _ ->
    let e, w, n = summary findings in
    Format.fprintf ppf "%d finding%s: %d error%s, %d warning%s, %d note%s@,"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
      n
      (if n = 1 then "" else "s"));
  Format.fprintf ppf "@]"

let finding_json ?file f =
  let d = f.f_diag in
  let opt key = function Some v -> [ (key, J.String v) ] | None -> [] in
  J.Obj
    ([ ("rule", J.String (Rule.to_string f.f_rule));
       ("severity", J.String (D.severity_string d.D.severity));
       ("class", J.String f.f_class) ]
    @ opt "member" f.f_member
    @ opt "file" file
    @ (if d.D.loc = Frontend.Loc.dummy then []
       else
         [ ("line", J.Int d.D.loc.Frontend.Loc.line);
           ("col", J.Int d.D.loc.Frontend.Loc.col) ])
    @ [ ("message", J.String d.D.message) ]
    @ opt "fixit" d.D.fixit)

(* {1 SARIF 2.1.0} *)

module Sarif = struct
  let level_of = function
    | D.Error -> "error"
    | D.Warning -> "warning"
    | D.Note -> "note"

  let rule_descriptor r =
    J.Obj
      [ ("id", J.String (Rule.to_string r));
        ( "shortDescription",
          J.Obj [ ("text", J.String (Rule.short_description r)) ] );
        ( "defaultConfiguration",
          J.Obj [ ("level", J.String (level_of (Rule.severity r))) ] );
        ("properties", J.Obj [ ("category", J.String (Rule.category r)) ]) ]

  let result ?file f =
    let d = f.f_diag in
    let location =
      match file with
      | None -> []
      | Some fn ->
        let region =
          if d.D.loc = Frontend.Loc.dummy then []
          else
            [ ( "region",
                J.Obj
                  [ ("startLine", J.Int d.D.loc.Frontend.Loc.line);
                    ("startColumn", J.Int d.D.loc.Frontend.Loc.col) ] ) ]
        in
        [ ( "locations",
            J.List
              [ J.Obj
                  [ ( "physicalLocation",
                      J.Obj
                        (("artifactLocation", J.Obj [ ("uri", J.String fn) ])
                        :: region) ) ] ] ) ]
    in
    let properties =
      let props =
        (match d.D.fixit with
        | Some fx -> [ ("fixit", J.String fx) ]
        | None -> [])
        @
        match f.f_baseline with
        | Some b -> [ ("baseline", J.String b) ]
        | None -> []
      in
      if props = [] then [] else [ ("properties", J.Obj props) ]
    in
    J.Obj
      ([ ("ruleId", J.String (Rule.to_string f.f_rule));
         ("ruleIndex", J.Int (Rule.index f.f_rule));
         ("level", J.String (level_of d.D.severity));
         ("message", J.Obj [ ("text", J.String d.D.message) ]) ]
      @ location @ properties)

  let document ?file findings =
    J.Obj
      [ ("$schema", J.String "https://json.schemastore.org/sarif-2.1.0.json");
        ("version", J.String "2.1.0");
        ( "runs",
          J.List
            [ J.Obj
                [ ( "tool",
                    J.Obj
                      [ ( "driver",
                          J.Obj
                            [ ("name", J.String "cxxlookup-lint");
                              ( "informationUri",
                                J.String
                                  "https://doi.org/10.1145/258915.258916" );
                              ( "rules",
                                J.List (List.map rule_descriptor Rule.all) )
                            ] ) ] );
                  ("results", J.List (List.map (result ?file) findings)) ] ]
        ) ]

  let to_string ?file findings =
    J.to_string ~pretty:true (document ?file findings)
end
