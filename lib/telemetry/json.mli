(** A write-only JSON representation for telemetry output.

    Unlike {!Chg.Json} (which round-trips hierarchies and deliberately
    rejects floats), telemetry output carries timings, so floats are
    supported here and parsing is not: metrics files are consumed by
    external tooling, never read back by this library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string ?pretty j] serializes.  [pretty] (default false) adds
    newlines and two-space indentation.  Floats print with up to six
    significant decimals; non-finite floats degrade to [null]. *)
val to_string : ?pretty:bool -> t -> string

(** [output oc j] writes [to_string ~pretty:true j] plus a final newline. *)
val output : out_channel -> t -> unit
