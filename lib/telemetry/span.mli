(** Span-based phase tracking over a {!Sink}.

    A span context brackets named phases as [span_begin]/[span_end]
    event pairs, tracking nesting depth so a consumer can rebuild the
    phase tree.  The events deliberately carry no duration field — the
    pretty stream must stay byte-for-byte deterministic; durations are
    recoverable from the [at_ns] stamps in JSON output, and phase
    {e totals} belong to {!Timer}s. *)

type t

(** [make sink] is a span context at depth 0.  With a disabled sink every
    operation is a no-op. *)
val make : Sink.t -> t

(** [depth t] is the current nesting depth. *)
val depth : t -> int

(** [run t name f] emits [span_begin name], runs [f], and emits
    [span_end name] (also on exceptions). *)
val run : t -> string -> (unit -> 'a) -> 'a
