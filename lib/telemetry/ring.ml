(* Fixed-size ring buffer: the flight recorder's storage.  Pushing past
   capacity overwrites the oldest entry; [to_list] returns survivors
   oldest-first. *)

type 'a t = {
  slots : 'a option array;
  mutable next : int;  (* slot the next push lands in *)
  mutable pushed : int;  (* total pushes ever *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { slots = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.slots

let push t v =
  t.slots.(t.next) <- Some v;
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.pushed <- t.pushed + 1

let length t = min t.pushed (Array.length t.slots)
let pushed t = t.pushed
let is_empty t = t.pushed = 0

let to_list t =
  let cap = Array.length t.slots in
  let n = length t in
  let start = (t.next - n + cap * 2) mod cap in
  List.init n (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some v -> v
      | None -> assert false)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.pushed <- 0
