type value = Bool of bool | Int of int | Float of float | Str of string

type t = {
  seq : int;
  at_ns : int;
  name : string;
  fields : (string * value) list;
}

let field_opt ev k = List.assoc_opt k ev.fields

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s

let pp ppf ev =
  Format.fprintf ppf "[%d] %-8s" ev.seq ev.name;
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v)
    ev.fields

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s

let to_json ev =
  Json.Obj
    ([ ("seq", Json.Int ev.seq);
       ("at_ns", Json.Int ev.at_ns);
       ("event", Json.String ev.name) ]
    @ List.map (fun (k, v) -> (k, value_to_json v)) ev.fields)
