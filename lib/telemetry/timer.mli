(** Accumulating phase timers.

    A timer accumulates total duration and span count across repeated
    [start]/[stop] (or bracketed {!span}) uses, so one timer can cover a
    phase that runs many times — e.g. every [Engine.build_member] call of
    a benchmark sweep. *)

type t

val make : string -> t

val name : t -> string

(** [start t] begins a span.  Starting an already-running timer restarts
    the current span (the previous partial span is discarded). *)
val start : t -> unit

(** [stop t] ends the current span, folding its duration into the total.
    A no-op if the timer is not running. *)
val stop : t -> unit

(** [span t f] brackets [f ()] between [start]/[stop]; the stop happens
    even if [f] raises. *)
val span : t -> (unit -> 'a) -> 'a

(** [total_ns t] is the accumulated nanoseconds over all finished spans. *)
val total_ns : t -> int

(** [count t] is the number of finished spans. *)
val count : t -> int

val reset : t -> unit

(** [pp] prints as [name: 1.23 ms over 4 spans]. *)
val pp : Format.formatter -> t -> unit

(** [pp_ns] prints a raw nanosecond count with a readable unit. *)
val pp_ns : Format.formatter -> int -> unit
