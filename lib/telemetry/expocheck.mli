(** A pure-OCaml validator for the Prometheus text exposition format
    0.0.4 — the consumer-side check behind `make metrics-smoke`.
    Validates line grammar, metric/label name syntax, HELP/TYPE
    placement, duplicate samples, counter value sanity, and histogram
    structure (cumulative buckets, +Inf bucket equal to _count). *)

val check : string -> (int, string) result
(** Validate one scrape; [Ok n] returns the number of samples. *)

val check_monotone : prev:string -> next:string -> (unit, string) result
(** Across two scrapes of the same process: every counter or histogram
    series present in both must not decrease. *)
