(** Named monotonic operation counters.

    A counter is an atomic int behind a name: incrementing one is a
    single atomic add, cheap enough to sit on the hot paths of the
    lookup engines and safe to bump from concurrent server domains.  Zero-cost-when-disabled is the {e caller's} contract — the
    engines guard every bump with their metrics bag's [enabled] flag so a
    disabled run never touches a counter at all. *)

type t

(** [make name] is a fresh counter at zero.  [name] is the stable key
    used in pretty and JSON output (snake_case by convention). *)
val make : string -> t

val name : t -> string
val value : t -> int

(** [incr t] adds one. *)
val incr : t -> unit

(** [add t n] adds [n] ([n >= 0]). *)
val add : t -> int -> unit

val reset : t -> unit

(** [pp] prints as [name=value]. *)
val pp : Format.formatter -> t -> unit
