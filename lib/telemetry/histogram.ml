(* Log-bucketed latency/size histogram, HDR-style.

   The bucket layout is FIXED — the same for every histogram ever
   created — so two histograms recorded on different domains (or
   different machines) merge losslessly by adding bucket counts, and
   encodings are deterministic.

   Layout: non-negative values; [sub_bits] = 3, so each power-of-two
   octave is split into 8 linear sub-buckets.  Values below 2^sub_bits
   get one bucket each (exact).  A value v with top bit p >= sub_bits
   lands in bucket (p - sub_bits) * 8 + (v lsr (p - sub_bits)); the
   bucket spans [lo, lo + 2^(p - sub_bits)), so every quantile estimate
   carries a relative error of at most 2^-sub_bits = 12.5% (the bucket
   width over its lower bound).  62 octaves cover the full positive
   int range in 488 buckets. *)

let sub_bits = 3
let sub_count = 1 lsl sub_bits (* 8 *)

(* Highest bucket index + 1: values < 2^sub_bits take indices 0..15
   under the general formula's degenerate prefix; see [index]. *)
let num_buckets = (62 - sub_bits) * sub_count + (2 * sub_count)

let top_bit v =
  (* position of the most significant set bit; v > 0 *)
  let rec go v p = if v <= 1 then p else go (v lsr 1) (p + 1) in
  go v 0

let index v =
  let v = if v < 0 then 0 else v in
  if v < 2 * sub_count then v (* exact buckets 0..15 *)
  else
    let p = top_bit v in
    ((p - sub_bits) * sub_count) + (v lsr (p - sub_bits))

(* Inclusive lower bound of bucket [i]. *)
let lower_bound i =
  if i < 2 * sub_count then i
  else
    let q = (i / sub_count) - 1 in
    let r = i land (sub_count - 1) in
    (sub_count + r) lsl q

(* Inclusive upper bound of bucket [i] (= next bucket's lower - 1). *)
let upper_bound i =
  if i < 2 * sub_count - 1 then i
  else if i = num_buckets - 1 then max_int
  else lower_bound (i + 1) - 1

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;  (* exact extremes, tracked outside the buckets *)
  mutable max_v : int;
}

let create () =
  { counts = Array.make num_buckets 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0 }

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let is_empty t = t.count = 0

let reset t =
  Array.fill t.counts 0 num_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* Lossless merge: bucket layouts are identical by construction, so the
   merge of two histograms is exactly the histogram of the concatenated
   record streams (associative and commutative — the join step of a
   parallel build). *)
let merge_into ~into src =
  for i = 0 to num_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

let equal a b =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && a.counts = b.counts

(* The q-quantile estimate: the upper bound of the bucket holding the
   ceil(q * count)-th observation, clamped to the exact recorded
   extremes — so p0 is the true minimum, p100 the true maximum, and
   anything between is within its bucket's bounds (<= 12.5% relative
   error). *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      max 1 (int_of_float (ceil (q *. float_of_int t.count)))
    in
    let rec go i seen =
      if i >= num_buckets then t.max_v
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then upper_bound i else go (i + 1) seen
    in
    let v = go 0 0 in
    if v < t.min_v then t.min_v else if v > t.max_v then t.max_v else v
  end

(* Bounds of the bucket that answered [quantile t q] — the interval the
   true quantile is guaranteed to lie in. *)
let quantile_bounds t q =
  if t.count = 0 then (0, 0)
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      max 1 (int_of_float (ceil (q *. float_of_int t.count)))
    in
    let rec go i seen =
      if i >= num_buckets then (t.min_v, t.max_v)
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then (lower_bound i, upper_bound i) else go (i + 1) seen
    in
    go 0 0
  end

let observations_above t threshold =
  (* exact for thresholds on bucket boundaries; otherwise counts whole
     buckets strictly above the threshold's bucket plus that bucket if
     its lower bound exceeds the threshold — callers use it for
     slow-query counts where the threshold is a bucket bound anyway *)
  let rec go i acc =
    if i >= num_buckets then acc
    else
      go (i + 1)
        (if lower_bound i > threshold then acc + t.counts.(i) else acc)
  in
  go 0 0

(* Cumulative counts at power-of-two boundaries, for exposition: pairs
   (le, cumulative) for le = 1, 2, 4, ... up to the first power of two
   >= the maximum recorded value (at least 1).  Coarser than the
   internal 8-per-octave buckets, but deterministic and compact; the
   +Inf bucket is the total count and is the renderer's job. *)
let exposition_buckets t =
  let rec boundaries le acc =
    let cum = ref 0 in
    for i = 0 to num_buckets - 1 do
      if upper_bound i <= le then cum := !cum + t.counts.(i)
    done;
    let acc = (le, !cum) :: acc in
    if le >= t.max_v || le >= max_int / 2 then List.rev acc
    else boundaries (le * 2) acc
  in
  boundaries 1 []

let percentile_fields t =
  [ ("p50", quantile t 0.50); ("p90", quantile t 0.90);
    ("p99", quantile t 0.99); ("p999", quantile t 0.999);
    ("max", max_value t) ]

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "empty"
  else begin
    Format.fprintf ppf "n=%d mean=%.0f" t.count (mean t);
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%d" k v)
      (percentile_fields t)
  end
