(* Prometheus text exposition format 0.0.4 over a registry snapshot.

   One HELP and one TYPE line per metric name, then one sample line per
   series; histograms expand to cumulative `_bucket{le="..."}` samples
   at power-of-two boundaries plus `_sum` and `_count`.  The registry's
   collect order is deterministic, so two renders of the same state are
   byte-identical — which is what makes the atomic-rewrite
   textfile-collector mode and the cram goldens stable. *)

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"")
           labels)
    ^ "}"

let type_string = function
  | Registry.Counter _ -> "counter"
  | Registry.Gauge _ -> "gauge"
  | Registry.Histogram _ -> "histogram"

let add_sample buf name labels value =
  Buffer.add_string buf name;
  Buffer.add_string buf (render_labels labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int value);
  Buffer.add_char buf '\n'

let add_series buf (s : Registry.series) =
  match s.s_instrument with
  | Registry.Counter c -> add_sample buf s.s_name s.s_labels (Counter.value c)
  | Registry.Gauge read -> add_sample buf s.s_name s.s_labels (read ())
  | Registry.Histogram h ->
    List.iter
      (fun (le, cum) ->
        add_sample buf (s.s_name ^ "_bucket")
          (s.s_labels @ [ ("le", string_of_int le) ])
          cum)
      (Histogram.exposition_buckets h);
    add_sample buf (s.s_name ^ "_bucket")
      (s.s_labels @ [ ("le", "+Inf") ])
      (Histogram.count h);
    add_sample buf (s.s_name ^ "_sum") s.s_labels (Histogram.sum h);
    add_sample buf (s.s_name ^ "_count") s.s_labels (Histogram.count h)

let render registry =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, series) ->
      (match series with
      | [] -> ()
      | s :: _ ->
        if s.Registry.s_help <> "" then begin
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name
               (escape_help s.Registry.s_help))
        end;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name
             (type_string s.Registry.s_instrument)));
      List.iter (add_series buf) series)
    (Registry.collect registry);
  Buffer.contents buf

(* Textfile-collector style: write the whole exposition to a temp file
   in the target's directory, then rename over it, so a scraper never
   observes a half-written file. *)
let write_file path registry =
  let data = render registry in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc -> Out_channel.output_string oc data);
  Sys.rename tmp path;
  String.length data
