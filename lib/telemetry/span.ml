type t = { sink : Sink.t; mutable depth : int }

let make sink = { sink; depth = 0 }
let depth t = t.depth

let run t name f =
  if not (Sink.enabled t.sink) then f ()
  else begin
    Sink.emit t.sink "span_begin"
      [ ("span", Event.Str name); ("depth", Event.Int t.depth) ];
    t.depth <- t.depth + 1;
    Fun.protect
      ~finally:(fun () ->
        t.depth <- t.depth - 1;
        Sink.emit t.sink "span_end"
          [ ("span", Event.Str name); ("depth", Event.Int t.depth) ])
      f
  end
