(** Log-bucketed latency/size histogram with a fixed, universal bucket
    layout: O(1) record, lossless merge (merging two histograms yields
    exactly the histogram of the concatenated record streams), and
    quantile estimation with a documented error bound.

    Buckets: values below 16 are exact; every power-of-two octave above
    is split into 8 linear sub-buckets, so any quantile estimate lies
    within its bucket's bounds — at most 2^-3 = 12.5% relative error.
    Extremes are tracked exactly, so [quantile t 0.] and [quantile t 1.]
    are the true minimum and maximum. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one non-negative observation (negatives clamp to 0). *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float
val is_empty : t -> bool
val reset : t -> unit

val merge_into : into:t -> t -> unit
(** Add [src]'s buckets into [into]; lossless, associative,
    commutative. *)

val merge : t -> t -> t
val copy : t -> t

val equal : t -> t -> bool
(** Structural equality of the full bucket state (the determinism
    contract: per-domain histograms merged in any order compare
    equal). *)

val quantile : t -> float -> int
(** [quantile t q] for q in [0,1]: the upper bound of the bucket holding
    the ceil(q*count)-th observation, clamped to the exact extremes.
    0 on an empty histogram. *)

val quantile_bounds : t -> float -> int * int
(** The (lower, upper) bounds of the bucket that answers [quantile]:
    the true quantile is guaranteed to lie in this interval. *)

val observations_above : t -> int -> int
(** Observations whose bucket lies strictly above the threshold
    (approximate when the threshold is not a bucket boundary — may
    undercount by at most one bucket). *)

val exposition_buckets : t -> (int * int) list
(** Cumulative (le, count) pairs at power-of-two boundaries up to the
    maximum recorded value — the Prometheus bucket view.  The +Inf
    bucket (= [count]) is the renderer's job. *)

val percentile_fields : t -> (string * int) list
(** [("p50", _); ("p90", _); ("p99", _); ("p999", _); ("max", _)]. *)

val pp : Format.formatter -> t -> unit

(**/**)

val index : int -> int
val lower_bound : int -> int
val upper_bound : int -> int
val num_buckets : int
