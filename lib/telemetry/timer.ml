type t = {
  name : string;
  mutable total_ns : int;
  mutable count : int;
  mutable started : int option;  (* Clock.now_ns at start, when running *)
}

let make name = { name; total_ns = 0; count = 0; started = None }
let name t = t.name
let start t = t.started <- Some (Clock.now_ns ())

let stop t =
  match t.started with
  | None -> ()
  | Some since ->
    t.total_ns <- t.total_ns + Clock.elapsed_ns ~since;
    t.count <- t.count + 1;
    t.started <- None

let span t f =
  start t;
  Fun.protect ~finally:(fun () -> stop t) f

let total_ns t = t.total_ns
let count t = t.count

let reset t =
  t.total_ns <- 0;
  t.count <- 0;
  t.started <- None

let pp_ns ppf ns =
  let f = float_of_int ns in
  if ns < 1_000 then Format.fprintf ppf "%d ns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else if ns < 1_000_000_000 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)

let pp ppf t =
  Format.fprintf ppf "%s: %a over %d span%s" t.name pp_ns t.total_ns t.count
    (if t.count = 1 then "" else "s")
