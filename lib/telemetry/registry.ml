(* A named metric registry: the single place every subsystem (server,
   sessions, table caches, the store, the packed compiler) registers
   its counters, gauges and histograms, and the single source the
   Prometheus renderer and the `metrics` verb scrape.

   Series are keyed by (metric name, label set); registering the same
   key twice returns the existing instrument, so hot paths can call
   [counter] per request and pay one hash probe.  Gauges are pull-based
   callbacks, sampled at [collect] time — byte budgets and open-session
   counts read their live value instead of being pushed on every
   change. *)

type labels = (string * string) list

type instrument =
  | Counter of Counter.t
  | Gauge of (unit -> int)
  | Histogram of Histogram.t

type series = {
  s_name : string;
  s_help : string;
  s_labels : labels;
  s_instrument : instrument;
}

type t = {
  table : (string, series) Hashtbl.t;  (* key: name + rendered labels *)
  mutable order : string list;  (* registration order of keys, reversed *)
  lock : Mutex.t;
      (* guards [table]/[order]: find-or-create runs on every request
         from any worker domain, concurrently with scrapes *)
}

let create () = { table = Hashtbl.create 64; order = []; lock = Mutex.create () }

let valid_name n =
  n <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n
  && (match n.[0] with '0' .. '9' -> false | _ -> true)

let valid_label_name n =
  (* label names are stricter than metric names: no ':' (reserved for
     recording rules), and no "__" prefix (reserved by Prometheus) *)
  valid_name n
  && (not (String.contains n ':'))
  && not (String.length n >= 2 && String.sub n 0 2 = "__")

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let register ?(replace = false) t ~name ~help ~labels instrument =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Registry: invalid label name %S" k))
    labels;
  let labels = canon_labels labels in
  let k = key name labels in
  let s = { s_name = name; s_help = help; s_labels = labels;
            s_instrument = instrument }
  in
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | Some existing when not replace -> existing.s_instrument
  | Some _ ->
    (* attach under a live key: the new instrument supersedes the old
       series — the reopened-session path, where a fresh session reuses
       the name (and hence the label set) of a closed one *)
    Hashtbl.replace t.table k s;
    instrument
  | None ->
    Hashtbl.add t.table k s;
    t.order <- k :: t.order;
    instrument

let counter t ?(help = "") ?(labels = []) name =
  match register t ~name ~help ~labels (Counter (Counter.make name)) with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is already registered as a non-counter")

let attach_counter t ?(help = "") ?(labels = []) name c =
  ignore (register ~replace:true t ~name ~help ~labels (Counter c))

let gauge t ?(help = "") ?(labels = []) name read =
  ignore (register ~replace:true t ~name ~help ~labels (Gauge read))

let histogram t ?(help = "") ?(labels = []) name =
  match register t ~name ~help ~labels (Histogram (Histogram.create ())) with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is already registered as a non-histogram")

let attach_histogram t ?(help = "") ?(labels = []) name h =
  ignore (register ~replace:true t ~name ~help ~labels (Histogram h))

(* Every registered series, grouped by metric name; groups ordered by
   name, series within a group by label set — a deterministic scrape
   order, so two renders of the same state are byte-identical. *)
let collect t =
  let all =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) t.table [])
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.s_name b.s_name with
        | 0 -> compare a.s_labels b.s_labels
        | c -> c)
      all
  in
  let rec group = function
    | [] -> []
    | s :: rest ->
      let same, others =
        List.partition (fun s' -> s'.s_name = s.s_name) rest
      in
      (s.s_name, s :: same) :: group others
  in
  group sorted

let find_values t name =
  collect t
  |> List.concat_map (fun (n, ss) -> if n = name then ss else [])
  |> List.filter_map (fun s ->
         match s.s_instrument with
         | Counter c -> Some (s.s_labels, Counter.value c)
         | Gauge read -> Some (s.s_labels, read ())
         | Histogram _ -> None)
