(** Named metric registry: counters, pull-based gauges and histograms
    keyed by (name, static labels).  Registering an existing key
    returns the existing instrument, so per-request registration is one
    hash probe.  [collect] yields a deterministic, name-sorted view for
    the exposition renderer. *)

type labels = (string * string) list

type instrument =
  | Counter of Counter.t
  | Gauge of (unit -> int)
  | Histogram of Histogram.t

type series = {
  s_name : string;
  s_help : string;
  s_labels : labels;
  s_instrument : instrument;
}

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:labels -> string -> Counter.t
(** Find-or-create a monotone counter series. *)

val attach_counter :
  t -> ?help:string -> ?labels:labels -> string -> Counter.t -> unit
(** Register an existing counter (e.g. a subsystem's private counter)
    under a metric name.  Attaching under a live key replaces the
    series — the reopened-session path, where a fresh session reuses
    the name (and hence label set) of a closed one. *)

val gauge : t -> ?help:string -> ?labels:labels -> string -> (unit -> int) -> unit
(** Register a pull gauge: the callback is sampled at [collect] time.
    Re-registering a live key replaces the callback. *)

val histogram : t -> ?help:string -> ?labels:labels -> string -> Histogram.t
(** Find-or-create a histogram series. *)

val attach_histogram :
  t -> ?help:string -> ?labels:labels -> string -> Histogram.t -> unit

val collect : t -> (string * series list) list
(** All series grouped by metric name, names sorted, label sets sorted
    within each name — a deterministic scrape. *)

val find_values : t -> string -> (labels * int) list
(** Current values of every counter/gauge series under [name]. *)

val valid_name : string -> bool
val valid_label_name : string -> bool
