(** Fixed-size ring buffer holding the last N pushed values (the flight
    recorder's storage). *)

type 'a t

val create : int -> 'a t
(** [create capacity]; capacity must be >= 1. *)

val capacity : 'a t -> int
val push : 'a t -> 'a -> unit
val length : 'a t -> int
val pushed : 'a t -> int
(** Total pushes ever, including overwritten ones. *)

val is_empty : 'a t -> bool
val to_list : 'a t -> 'a list
(** Surviving entries, oldest first. *)

val clear : 'a t -> unit
