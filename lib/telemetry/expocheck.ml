(* A small, pure-OCaml validator for the Prometheus text exposition
   format 0.0.4 — the `make metrics-smoke` checker.  It is a consumer's
   view of the format, independent of the renderer, so renderer bugs
   (bad label syntax, TYPE after samples, non-cumulative buckets,
   counters that go backwards between scrapes) fail loudly instead of
   only surfacing in a real Prometheus.

   Checks, per scrape:
     - line grammar: `# HELP name text`, `# TYPE name type`, or
       `name[{labels}] value`
     - metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*
       (labels without the ':'), label values are quoted, escapes are
       limited to backslash, quote and newline
     - at most one HELP/TYPE per name, TYPE before that name's samples,
       TYPE is one of counter|gauge|histogram|summary|untyped
     - no duplicate (name, labels) sample
     - values parse as numbers; counter values are >= 0
     - histograms: per label-set, `_bucket` series carry `le`, the
       cumulative counts are monotone in `le`, a `+Inf` bucket exists
       and equals `_count`
   And across two scrapes ([check_monotone]): every counter series
   present in both has a value in the later scrape >= the earlier. *)

type series = { sr_type : string; sr_samples : (string * float) list }
(* samples keyed by the canonical rendered label string *)

type scrape = {
  sc_series : (string * series) list;  (* by metric name, in order *)
  sc_samples : int;
}

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_metric_name n =
  n <> "" && is_name_start n.[0] && String.for_all is_name_char n

let valid_label_name n =
  n <> ""
  && (let c = n.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_')
       n

let ( let* ) = Result.bind

let fail lineno fmt =
  Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt

(* Parse `{k="v",...}`; returns the canonical label string (sorted) and
   the label assoc. *)
let parse_labels lineno s pos =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let labels = ref [] in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec label i =
    let i = skip_ws i in
    let start = i in
    let rec name j = if j < n && is_name_char s.[j] then name (j + 1) else j in
    let j = name i in
    if j = start then fail lineno "empty label name"
    else
      let lname = String.sub s start (j - start) in
      if not (valid_label_name lname) then
        fail lineno "invalid label name %S" lname
      else
        let j = skip_ws j in
        if j >= n || s.[j] <> '=' then fail lineno "expected '=' after label name"
        else
          let j = skip_ws (j + 1) in
          if j >= n || s.[j] <> '"' then fail lineno "label value must be quoted"
          else begin
            Buffer.clear buf;
            let rec value k =
              if k >= n then fail lineno "unterminated label value"
              else
                match s.[k] with
                | '"' -> Ok (k + 1)
                | '\\' ->
                  if k + 1 >= n then fail lineno "dangling escape"
                  else
                    (match s.[k + 1] with
                    | '\\' -> Buffer.add_char buf '\\'; value (k + 2)
                    | '"' -> Buffer.add_char buf '"'; value (k + 2)
                    | 'n' -> Buffer.add_char buf '\n'; value (k + 2)
                    | c -> fail lineno "bad escape '\\%c' in label value" c)
                | c -> Buffer.add_char buf c; value (k + 1)
            in
            let* k = value (j + 1) in
            labels := (lname, Buffer.contents buf) :: !labels;
            let k = skip_ws k in
            if k < n && s.[k] = ',' then label (k + 1)
            else if k < n && s.[k] = '}' then Ok (k + 1)
            else fail lineno "expected ',' or '}' in label set"
          end
  in
  let* after =
    let i = skip_ws pos in
    if i < n && s.[i] = '}' then Ok (i + 1) (* empty {} *) else label i
  in
  let canon =
    List.sort compare !labels
    |> List.map (fun (k, v) -> k ^ "=" ^ String.escaped v)
    |> String.concat ","
  in
  Ok (canon, List.rev !labels, after)

type line =
  | Help of string
  | Type of string * string
  | Sample of string * string * (string * string) list * float
  | Blank

let parse_line lineno s =
  if String.trim s = "" then Ok Blank
  else if String.length s >= 1 && s.[0] = '#' then begin
    match String.split_on_char ' ' s with
    | "#" :: "HELP" :: name :: _rest ->
      if valid_metric_name name then Ok (Help name)
      else fail lineno "HELP for invalid metric name %S" name
    | "#" :: "TYPE" :: name :: ty :: [] ->
      if not (valid_metric_name name) then
        fail lineno "TYPE for invalid metric name %S" name
      else if
        not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
      then fail lineno "unknown TYPE %S for %s" ty name
      else Ok (Type (name, ty))
    | "#" :: "TYPE" :: _ -> fail lineno "malformed TYPE line"
    | _ -> Ok Blank (* arbitrary comment *)
  end
  else begin
    let n = String.length s in
    let rec name j = if j < n && is_name_char s.[j] then name (j + 1) else j in
    let j = name 0 in
    if j = 0 then fail lineno "expected a metric name"
    else
      let mname = String.sub s 0 j in
      if not (valid_metric_name mname) then
        fail lineno "invalid metric name %S" mname
      else
        let* canon, labels, j =
          if j < n && s.[j] = '{' then parse_labels lineno s (j + 1)
          else Ok ("", [], j)
        in
        let rest = String.trim (String.sub s j (n - j)) in
        (* a sample may carry an optional timestamp; take the first tok *)
        let value_s =
          match String.index_opt rest ' ' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        let value =
          match value_s with
          | "+Inf" -> Some infinity
          | "-Inf" -> Some neg_infinity
          | "NaN" -> Some nan
          | v -> float_of_string_opt v
        in
        (match value with
        | None -> fail lineno "sample value %S is not a number" value_s
        | Some v -> Ok (Sample (mname, canon, labels, v)))
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let series : (string, series ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let helps = Hashtbl.create 16 in
  let samples = ref 0 in
  let get name =
    match Hashtbl.find_opt series name with
    | Some r -> r
    | None ->
      let r = ref { sr_type = "untyped"; sr_samples = [] } in
      Hashtbl.add series name r;
      order := name :: !order;
      r
  in
  let rec go lineno = function
    | [] -> Ok ()
    | l :: rest ->
      let* parsed = parse_line lineno l in
      let* () =
        match parsed with
        | Blank -> Ok ()
        | Help name ->
          if Hashtbl.mem helps name then
            fail lineno "duplicate HELP for %s" name
          else begin
            Hashtbl.add helps name ();
            Ok ()
          end
        | Type (name, ty) ->
          if Hashtbl.mem series name then
            fail lineno "TYPE for %s after its samples (or duplicate TYPE)"
              name
          else begin
            let r = get name in
            r := { !r with sr_type = ty };
            Ok ()
          end
        | Sample (name, canon, _labels, v) ->
          (* histogram/summary child series belong to the base name *)
          let base =
            let strip suffix =
              if Filename.check_suffix name suffix then
                Some (String.sub name 0 (String.length name - String.length suffix))
              else None
            in
            match (strip "_bucket", strip "_sum", strip "_count") with
            | Some b, _, _ when Hashtbl.mem series b -> b
            | _, Some b, _ when Hashtbl.mem series b -> b
            | _, _, Some b when Hashtbl.mem series b -> b
            | _ -> name
          in
          let child = if base = name then "" else String.sub name (String.length base) (String.length name - String.length base) in
          let r = get base in
          let k = child ^ "\x00" ^ canon in
          if List.mem_assoc k !r.sr_samples then
            fail lineno "duplicate sample %s{%s}" name canon
          else begin
            incr samples;
            r := { !r with sr_samples = (k, v) :: !r.sr_samples };
            (match !r.sr_type with
            | "counter" when Float.is_nan v || v < 0. ->
              fail lineno "counter %s has non-monotone-capable value %g" name v
            | _ -> Ok ())
          end
      in
      go (lineno + 1) rest
  in
  let* () = go 1 lines in
  let sc =
    { sc_series =
        List.rev_map
          (fun name -> (name, !(Hashtbl.find series name)))
          !order;
      sc_samples = !samples }
  in
  Ok sc

(* Structural histogram checks over a parsed scrape. *)
let check_histograms sc =
  let rec go = function
    | [] -> Ok ()
    | (name, s) :: rest when s.sr_type = "histogram" ->
      (* group bucket samples by label set (canon minus the le label) *)
      let buckets = Hashtbl.create 8 in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (k, v) ->
          match String.index_opt k '\x00' with
          | None -> ()
          | Some i ->
            let child = String.sub k 0 i in
            let canon = String.sub k (i + 1) (String.length k - i - 1) in
            if child = "_bucket" then begin
              (* split out le=... from the canon string *)
              let parts =
                String.split_on_char ',' canon
                |> List.partition (fun p ->
                       String.length p >= 3 && String.sub p 0 3 = "le=")
              in
              match parts with
              | [ le ], others ->
                let key = String.concat "," others in
                let le_v = String.sub le 3 (String.length le - 3) in
                let prev =
                  match Hashtbl.find_opt buckets key with
                  | Some l -> l
                  | None -> []
                in
                Hashtbl.replace buckets key ((le_v, v) :: prev)
              | _ -> ()
            end
            else if child = "_count" then Hashtbl.replace counts canon v)
        s.sr_samples;
      let err = ref None in
      Hashtbl.iter
        (fun key les ->
          if !err = None then begin
            let le_value s =
              (* canon escaped the quotes' content; values are plain *)
              match s with
              | "+Inf" -> infinity
              | s -> (try float_of_string s with _ -> nan)
            in
            let sorted =
              List.sort
                (fun (a, _) (b, _) -> compare (le_value a) (le_value b))
                les
            in
            let rec monotone prev = function
              | [] -> true
              | (_, v) :: rest -> v >= prev && monotone v rest
            in
            if not (monotone 0. sorted) then
              err :=
                Some
                  (Printf.sprintf "histogram %s{%s}: bucket counts not cumulative"
                     name key)
            else
              match List.rev sorted with
              | ("+Inf", total) :: _ ->
                (match Hashtbl.find_opt counts key with
                | Some c when c <> total ->
                  err :=
                    Some
                      (Printf.sprintf
                         "histogram %s{%s}: +Inf bucket %g <> _count %g" name
                         key total c)
                | Some _ -> ()
                | None ->
                  err :=
                    Some (Printf.sprintf "histogram %s{%s}: missing _count" name key))
              | _ ->
                err :=
                  Some (Printf.sprintf "histogram %s{%s}: no +Inf bucket" name key)
          end)
        buckets;
      (match !err with Some e -> Error e | None -> go rest)
    | _ :: rest -> go rest
  in
  go sc.sc_series

let check text =
  let* sc = parse text in
  let* () = check_histograms sc in
  Ok sc.sc_samples

(* Counters (and histogram bucket/count/sum children of histograms)
   must not go backwards between two scrapes of the same process. *)
let check_monotone ~prev ~next =
  let* p = parse prev in
  let* n = parse next in
  let rec go = function
    | [] -> Ok ()
    | (name, ns) :: rest ->
      (match List.assoc_opt name p.sc_series with
      | Some ps when ps.sr_type = ns.sr_type
                     && (ns.sr_type = "counter" || ns.sr_type = "histogram") ->
        let rec cmp = function
          | [] -> Ok ()
          | (k, nv) :: more ->
            (match List.assoc_opt k ps.sr_samples with
            | Some pv when nv < pv ->
              Error
                (Printf.sprintf "%s series %S went backwards: %g -> %g" name
                   (String.map (fun c -> if c = '\x00' then '|' else c) k)
                   pv nv)
            | _ -> cmp more)
        in
        let* () = cmp ns.sr_samples in
        go rest
      | _ -> go rest)
  in
  go n.sc_series
