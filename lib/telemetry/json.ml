type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string ?(pretty = false) j =
  let buf = Buffer.create 256 in
  let nl indent =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * indent) ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      Buffer.add_string buf
        (if Float.is_finite f then float_repr f else "null")
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          go (indent + 1) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 1);
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (indent + 1) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let output oc j =
  output_string oc (to_string ~pretty:true j);
  output_char oc '\n'
