(** Timestamps for the telemetry layer.

    [now_ns] is the best clock the sealed container offers:
    [Unix.gettimeofday] scaled to integer nanoseconds.  It is wall-clock
    rather than truly monotonic, but all telemetry consumers only ever
    subtract nearby samples taken inside one process run, where the
    distinction is immaterial; a dedicated monotonic source can be
    dropped in here without touching any caller. *)

(** [now_ns ()] is the current time in integer nanoseconds. *)
val now_ns : unit -> int

(** [elapsed_ns ~since] is [now_ns () - since], clamped to [>= 0] so a
    stepping wall clock can never produce negative durations. *)
val elapsed_ns : since:int -> int
