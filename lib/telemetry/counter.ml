type t = { name : string; mutable value : int }

let make name = { name; value = 0 }
let name t = t.name
let value t = t.value
let incr t = t.value <- t.value + 1
let add t n = t.value <- t.value + n
let reset t = t.value <- 0
let pp ppf t = Format.fprintf ppf "%s=%d" t.name t.value
