type t = { name : string; value : int Atomic.t }

let make name = { name; value = Atomic.make 0 }
let name t = t.name
let value t = Atomic.get t.value
let incr t = Atomic.incr t.value
let add t n = ignore (Atomic.fetch_and_add t.value n)
let reset t = Atomic.set t.value 0
let pp ppf t = Format.fprintf ppf "%s=%d" t.name (Atomic.get t.value)
