type t = {
  enabled : bool;
  limit : int option;
  t0_ns : int;
  mutable seq : int;
  mutable rev_events : Event.t list;
  mutable stored : int;
  mutable dropped : int;
}

let create ?limit () =
  { enabled = true;
    limit;
    t0_ns = Clock.now_ns ();
    seq = 0;
    rev_events = [];
    stored = 0;
    dropped = 0 }

let null =
  { enabled = false;
    limit = Some 0;
    t0_ns = 0;
    seq = 0;
    rev_events = [];
    stored = 0;
    dropped = 0 }

let enabled t = t.enabled

let emit t name fields =
  if t.enabled then begin
    let keep =
      match t.limit with None -> true | Some l -> t.stored < l
    in
    if keep then begin
      let ev =
        { Event.seq = t.seq;
          at_ns = Clock.elapsed_ns ~since:t.t0_ns;
          name;
          fields }
      in
      t.rev_events <- ev :: t.rev_events;
      t.stored <- t.stored + 1
    end
    else t.dropped <- t.dropped + 1;
    t.seq <- t.seq + 1
  end

let events t = List.rev t.rev_events
let length t = t.stored
let dropped t = t.dropped

let clear t =
  t.seq <- 0;
  t.rev_events <- [];
  t.stored <- 0;
  t.dropped <- 0

let pp ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." Event.pp ev) (events t)

let to_json t = Json.List (List.map Event.to_json (events t))
