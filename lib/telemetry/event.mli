(** Structured telemetry events.

    An event is a name plus a flat list of typed fields, stamped with a
    sequence number and a timestamp relative to its sink's creation.
    Pretty output deliberately omits the timestamp so that trace streams
    are byte-for-byte reproducible (the cram tests rely on this); JSON
    output carries it. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type t = {
  seq : int;  (** 0-based position in the sink's stream *)
  at_ns : int;  (** nanoseconds since the sink was created *)
  name : string;
  fields : (string * value) list;
}

(** [field_opt ev k] is the value of field [k], if present. *)
val field_opt : t -> string -> value option

(** [pp] prints as [[seq] name key=value key=value] — no timestamp. *)
val pp : Format.formatter -> t -> unit

val value_to_json : value -> Json.t
val to_json : t -> Json.t
