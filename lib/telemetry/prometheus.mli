(** Prometheus text exposition format 0.0.4 renderer over a
    {!Registry}.  Deterministic: two renders of the same registry state
    are byte-identical. *)

val render : Registry.t -> string

val write_file : string -> Registry.t -> int
(** Atomically rewrite [path] (tmp + rename in the same directory) with
    the current exposition; returns the byte count written —
    textfile-collector style, a scraper never sees a torn file. *)

val escape_label_value : string -> string
val render_labels : (string * string) list -> string
