(** An in-memory structured event sink.

    The sink is the zero-cost-when-disabled boundary for tracing: a
    disabled sink (notably the shared {!null}) drops [emit] calls
    without allocating, and emission sites are expected to guard any
    field-list construction behind {!enabled}:

    {[
      if Sink.enabled sink then
        Sink.emit sink "flow" [ ("from", Str a); ("to", Str b) ]
    ]}

    Events are kept in order; an optional [limit] turns the sink into a
    guard against runaway traces (excess events are counted but not
    stored, see {!dropped}). *)

type t

(** [create ?limit ()] is an enabled, empty sink keeping at most [limit]
    events (unbounded by default). *)
val create : ?limit:int -> unit -> t

(** [null] is the shared, permanently disabled sink. *)
val null : t

val enabled : t -> bool

(** [emit t name fields] appends an event, stamping sequence number and
    relative timestamp.  A no-op on a disabled sink. *)
val emit : t -> string -> (string * Event.value) list -> unit

(** [events t] in emission order. *)
val events : t -> Event.t list

(** [length t] is the number of stored events. *)
val length : t -> int

(** [dropped t] is the number of events discarded because of [limit]. *)
val dropped : t -> int

val clear : t -> unit

(** [pp] prints one event per line ({!Event.pp}). *)
val pp : Format.formatter -> t -> unit

(** [to_json t] is the event list as a JSON array. *)
val to_json : t -> Json.t
