(* A minimal blocking JSON-lines client for the networked server: one
   socket, buffered channels, line in / line out.  Used by the load
   generator, the `cxxlookup client` verb and the smoke tests — it is
   deliberately the simplest correct implementation, not a pooled or
   pipelining client. *)

type t = { ic : in_channel; oc : out_channel }

let sockaddr_of = function
  | Server.Tcp (host, port) ->
    let addr =
      if host = "" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (addr, port)
  | Server.Unix_path path -> Unix.ADDR_UNIX path

let connect addr =
  let ic, oc = Unix.open_connection (sockaddr_of addr) in
  (match addr with
  | Server.Tcp _ ->
    (try Unix.setsockopt (Unix.descr_of_out_channel oc) Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ())
  | Server.Unix_path _ -> ());
  { ic; oc }

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

(* A partial write with no newline — only the torn-line tests want
   this; a framed request should go through [send_line]. *)
let send_raw t s =
  output_string t.oc s;
  flush t.oc

let recv_line t = In_channel.input_line t.ic

(* One synchronous round trip; [None] when the server closed on us. *)
let request t line =
  send_line t line;
  recv_line t

let close t =
  try Unix.shutdown_connection t.ic; close_in t.ic
  with Unix.Unix_error _ | Sys_error _ -> ()
