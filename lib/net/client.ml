(* A minimal blocking JSON-lines client for the networked server: one
   socket, buffered channels, line in / line out.  Used by the load
   generator, the `cxxlookup client` verb and the smoke tests — it is
   deliberately the simplest correct implementation, not a pooled or
   pipelining client. *)

type t = { ic : in_channel; oc : out_channel }

let sockaddr_of = function
  | Server.Tcp (host, port) ->
    let addr =
      if host = "" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (addr, port)
  | Server.Unix_path path -> Unix.ADDR_UNIX path

(* Exponential backoff with +/-25% jitter, so a fleet of reconnecting
   clients (or router backend slots) spreads out instead of stampeding
   the moment a server comes back. *)
let backoff_delay ~attempt ~backoff_ms =
  let base = float_of_int backoff_ms *. (2. ** float_of_int attempt) in
  base *. (0.75 +. Random.float 0.5) /. 1000.

let connect_once addr =
  Server.ignore_sigpipe ();
  let ic, oc = Unix.open_connection (sockaddr_of addr) in
  (match addr with
  | Server.Tcp _ ->
    (try Unix.setsockopt (Unix.descr_of_out_channel oc) Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ())
  | Server.Unix_path _ -> ());
  { ic; oc }

(* Refusal means "nothing is listening (yet)" — the retryable class.  A
   resolution failure or a bad address stays fatal on the first try. *)
let retryable = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ETIMEDOUT
  | Unix.EHOSTUNREACH | Unix.ENETUNREACH ->
    true
  | _ -> false

let connect ?(retries = 0) ?(backoff_ms = 50) addr =
  let rec go attempt =
    match connect_once addr with
    | t -> t
    | exception Unix.Unix_error (err, _, _) when
        attempt < retries && retryable err ->
      Thread.delay (backoff_delay ~attempt ~backoff_ms);
      go (attempt + 1)
  in
  go 0

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

(* A partial write with no newline — only the torn-line tests want
   this; a framed request should go through [send_line]. *)
let send_raw t s =
  output_string t.oc s;
  flush t.oc

let recv_line t = In_channel.input_line t.ic

(* One synchronous round trip; [None] when the server closed on us. *)
let request t line =
  send_line t line;
  recv_line t

let overloaded line =
  match Chg.Json.of_string line with
  | Error _ -> false
  | Ok j ->
    (match Chg.Json.member "error" j with
    | Ok e ->
      (match Chg.Json.member "code" e with
      | Ok (Chg.Json.String "overloaded") -> true
      | _ -> false)
    | Error _ -> false)

(* A round trip that retries — on the same connection — when the server
   sheds the request with an [overloaded] error, backing off between
   resends.  Any other response (or a closed connection) returns
   immediately; admission pressure is the one condition where blind
   resending is known-safe, because a shed request was never executed. *)
let request_admitted ?(retries = 0) ?(backoff_ms = 50) t line =
  let rec go attempt =
    match request t line with
    | Some resp when attempt < retries && overloaded resp ->
      Thread.delay (backoff_delay ~attempt ~backoff_ms);
      go (attempt + 1)
    | r -> r
  in
  go 0

(* ---- binary (cxxlookup-rpc/1b) framing ------------------------------

   Frames share the socket with JSON lines — negotiation is per
   message, so a client may fetch [symbols] over JSON and then switch
   to frames on the same connection (or interleave both). *)

let send_frame t f =
  output_string t.oc f;
  flush t.oc

(* Read one complete response frame.  The header declares the payload
   length, so the read never scans; [None] on a closed connection or a
   byte stream that is not a response frame (after which the stream
   position is unrecoverable — callers should close). *)
let recv_frame t =
  match really_input_string t.ic Service.Frame.header_len with
  | exception End_of_file -> None
  | hdr ->
    if Char.code hdr.[0] <> Service.Frame.response_magic then None
    else
      let len =
        Chg.Binary.Reader.u32 (Chg.Binary.Reader.of_string ~pos:2 hdr)
      in
      (match really_input_string t.ic len with
      | exception End_of_file -> None
      | body -> Some (hdr ^ body))

let request_frame t f =
  send_frame t f;
  recv_frame t

(* The binary twin of {!overloaded}: error frames decode independently
   of the op, so probing with any op is sound. *)
let frame_overloaded f =
  match Service.Frame.decode_response ~op:Service.Frame.op_lookup f with
  | Ok (_, Service.Frame.Err (Service.Protocol.Overloaded, _)) -> true
  | _ -> false

let request_frame_admitted ?(retries = 0) ?(backoff_ms = 50) t f =
  let rec go attempt =
    match request_frame t f with
    | Some resp when attempt < retries && frame_overloaded resp ->
      Thread.delay (backoff_delay ~attempt ~backoff_ms);
      go (attempt + 1)
    | r -> r
  in
  go 0

let close t =
  try Unix.shutdown_connection t.ic; close_in t.ic
  with Unix.Unix_error _ | Sys_error _ -> ()
