(* A bounded blocking queue: the backpressure primitive of the
   networked server.

   Each connection runs a small pipeline (reader → executor → writer)
   joined by these queues, and every queue has a hard capacity — the
   server never buffers without limit.  A full queue blocks the
   producer: the reader thread stops consuming bytes (so TCP pushes
   back on the client), or the executor stalls behind a slow consumer.
   [close] drains cooperatively: producers are refused, consumers keep
   popping until the queue is empty, then see [None]. *)

type 'a t = {
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false }

let capacity t = t.capacity
let length t = Mutex.protect t.m (fun () -> Queue.length t.items)

(* Blocking push; [false] iff the queue was closed (the item is
   dropped — the consumer is gone). *)
let push t x =
  Mutex.protect t.m @@ fun () ->
  while (not t.closed) && Queue.length t.items >= t.capacity do
    Condition.wait t.not_full t.m
  done;
  if t.closed then false
  else begin
    Queue.add x t.items;
    Condition.signal t.not_empty;
    true
  end

(* Non-blocking push; [false] if full or closed. *)
let try_push t x =
  Mutex.protect t.m @@ fun () ->
  if t.closed || Queue.length t.items >= t.capacity then false
  else begin
    Queue.add x t.items;
    Condition.signal t.not_empty;
    true
  end

(* Blocking pop; [None] iff the queue is closed and drained. *)
let pop t =
  Mutex.protect t.m @@ fun () ->
  while (not t.closed) && Queue.is_empty t.items do
    Condition.wait t.not_empty t.m
  done;
  match Queue.take_opt t.items with
  | Some x ->
    Condition.signal t.not_full;
    Some x
  | None -> None

let close t =
  Mutex.protect t.m @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full
