(* A writers-preference read/write lock over Mutex + Condition.

   The networked server classifies every verb with
   [Service.Protocol.read_only]: read verbs take the lock shared and
   execute concurrently against the immutable packed columns, while
   mutations take it exclusive — the single-writer path that owns the
   session table and WAL.  Writers preference keeps a steady read
   stream from starving a pending mutation: once a writer is waiting,
   new readers queue behind it. *)

type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (* threads currently holding it shared *)
  mutable writer : bool;  (* one thread holds it exclusive *)
  mutable waiting_writers : int;
}

let create () =
  { m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0 }

let read_lock t =
  Mutex.protect t.m @@ fun () ->
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.m
  done;
  t.readers <- t.readers + 1

let read_unlock t =
  Mutex.protect t.m @@ fun () ->
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write

let write_lock t =
  Mutex.protect t.m @@ fun () ->
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true

let write_unlock t =
  Mutex.protect t.m @@ fun () ->
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
