module J = Chg.Json
module P = Service.Protocol

(* The networked front end for the cxxlookup-rpc/1 JSON-lines
   protocol.

   Topology: the accept loop runs on the calling domain; [workers]
   spawned domains each own a mailbox of freshly accepted connections,
   filled round-robin.  A worker runs every connection assigned to it
   on three systhreads — reader, executor, writer — which attach to
   the worker's domain: blocking I/O releases the domain's runtime
   lock, so connection pipelines interleave within a domain while
   executors on different domains run OCaml code in parallel.

   Concurrency contract: every verb is classified by
   [Service.Protocol.read_only].  Read verbs execute under the shared
   side of one server-wide {!Rwlock} — concurrently across domains,
   against immutable packed columns — while mutations take it
   exclusive, the single-writer path owning the session table and the
   WAL.  Per-connection execution is serial (one executor), so
   responses leave in request order and a single-connection transcript
   is byte-identical to stdin/stdout mode.

   Backpressure: the per-connection job and output queues are bounded
   ({!Bqueue}); a full job queue blocks the reader (TCP pushes back on
   the client), a full output queue stalls only that connection's
   executor.  Globally, at most [queue_depth] admitted requests
   execute at once — request [queue_depth + 1] is answered with an
   explicit [overloaded] protocol error, never buffered.

   Robustness: a line longer than [max_line] is discarded to its
   newline and answered [bad_request] in arrival order, without
   killing the connection.  A connection that stays silent — or dribbles
   a partial line (slowloris) — past [idle_timeout] is closed cleanly:
   pending responses still drain, then the socket closes and the
   timed-out counter ticks. *)

type addr = Tcp of string * int | Unix_path of string

type config = {
  workers : int;
  max_conns : int;
  queue_depth : int;  (* global admission bound *)
  conn_queue : int;  (* per-connection job / output queue bound *)
  idle_timeout : float;  (* seconds; also the slowloris deadline *)
  max_line : int;  (* bytes, excluding the newline *)
}

let default_config =
  { workers = 1;
    max_conns = 64;
    queue_depth = 64;
    conn_queue = 16;
    idle_timeout = 30.;
    max_line = 1 lsl 20 }

type t = {
  srv : Service.Server.t;
  cfg : config;
  lock : Rwlock.t;  (* verb-class lock: readers shared, mutations exclusive *)
  listen_fd : Unix.file_descr;
  bound : addr;  (* actual address — the ephemeral port resolved *)
  stop : bool Atomic.t;
  next_conn : int Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;  (* open sockets, for stop *)
  conns_mutex : Mutex.t;
  mailboxes : (int * Unix.file_descr) Bqueue.t array;  (* one per worker *)
}

(* ---- setup ---------------------------------------------------------- *)

let resolve_host host =
  if host = "" then Unix.inet_addr_loopback
  else
    try Unix.inet_addr_of_string host
    with Failure _ ->
      (match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "cannot resolve host %S" host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
        failwith (Printf.sprintf "cannot resolve host %S" host))

(* A peer that vanished (kill -9, RST) must surface as EPIPE on the
   write path, not as a process-killing SIGPIPE — the replication
   sender and the per-connection writers all write to sockets whose
   peer may be gone. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let listen_on addr =
  ignore_sigpipe ();
  match addr with
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen fd 128;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp (host, p)
      | _ -> addr
    in
    (fd, bound)
  | Unix_path path ->
    (try
       if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    (fd, addr)

let create ?(config = default_config) srv addr =
  if config.workers < 1 then invalid_arg "Net.Server: workers must be >= 1";
  let listen_fd, bound = listen_on addr in
  { srv;
    cfg = config;
    lock = Rwlock.create ();
    listen_fd;
    bound;
    stop = Atomic.make false;
    next_conn = Atomic.make 0;
    conns = Hashtbl.create 16;
    conns_mutex = Mutex.create ();
    mailboxes =
      Array.init config.workers (fun _ ->
          Bqueue.create (config.max_conns + 1)) }

let bound_addr t = t.bound

(* The replica applier's hook: replication writes take the same
   exclusive side of the verb-class lock mutations would, so read verbs
   in flight never observe a session mid-apply. *)
let exclusively t f = Rwlock.with_write t.lock f

let addr_string = function
  | Tcp (host, port) ->
    Printf.sprintf "%s:%d" (if host = "" then "127.0.0.1" else host) port
  | Unix_path path -> path

(* ---- per-connection pipeline ---------------------------------------- *)

type job =
  | Line of string  (* one complete framed request line *)
  | Oversized of int  (* a discarded line and its observed length *)
  | Frame of string  (* one complete binary (1b) frame, header included *)
  | Oversized_frame of int  (* a discarded frame and its declared length *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Reader: dual framing directly over the socket.  At each message
   boundary the first byte chooses: 0xB1 starts a binary (1b) frame —
   6-byte header, then exactly the declared payload — anything else is
   a JSON line up to its newline.  Negotiation is per message, so one
   connection may interleave framings freely.

   Guards, shared across framings.  Max-line: a line over the bound is
   discarded to its newline and reported as one [Oversized] job; a
   frame declaring a payload over the same bound is discarded by its
   known length ([Oversized_frame]) — the connection survives both, and
   the error answers in arrival order through the same job queue.
   Idle / slowloris: the deadline arms at connection start and re-arms
   only on each *complete* message, so a client dribbling bytes of a
   never-finished line or frame times out exactly like a silent one.
   Backpressure: a full job queue blocks here, which stops socket reads
   and lets TCP push back. *)
let reader t fd req_q timed_out () =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let discarding = ref false in
  let discarded = ref 0 in
  (* binary-frame state: [in_frame] accumulates into [fbuf];
     [frame_total] is the full frame length once the header is in
     (-1 before); [frame_skip] counts payload bytes of an oversized
     frame still to discard ([frame_over] its declared length) *)
  let fbuf = Buffer.create 256 in
  let in_frame = ref false in
  let frame_total = ref (-1) in
  let frame_skip = ref 0 in
  let frame_over = ref 0 in
  let deadline = ref (Unix.gettimeofday () +. t.cfg.idle_timeout) in
  let alive = ref true in
  let rearm () = deadline := Unix.gettimeofday () +. t.cfg.idle_timeout in
  let emit_line () =
    let line = Buffer.contents acc in
    Buffer.clear acc;
    rearm ();
    if !discarding then begin
      let n = !discarded + String.length line in
      discarding := false;
      discarded := 0;
      if not (Bqueue.push req_q (Oversized n)) then alive := false
    end
    else begin
      let line =
        (* tolerate CRLF framing from casual clients *)
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
        else line
      in
      if String.trim line = "" then ()  (* blank lines skipped, as stdin *)
      else if not (Bqueue.push req_q (Line line)) then alive := false
    end
  in
  let emit_frame () =
    let f = Buffer.contents fbuf in
    Buffer.clear fbuf;
    in_frame := false;
    frame_total := -1;
    rearm ();
    if not (Bqueue.push req_q (Frame f)) then alive := false
  in
  let frame_byte c =
    Buffer.add_char fbuf c;
    if !frame_total < 0 && Buffer.length fbuf = Service.Frame.header_len
    then begin
      match Service.Frame.parse_header (Buffer.contents fbuf) with
      | Error _ ->
        (* unreachable: the magic matched and the header is complete *)
        Buffer.clear fbuf;
        in_frame := false
      | Ok (_op, len) ->
        if len > t.cfg.max_line then begin
          (* discard the declared payload without buffering it *)
          Buffer.clear fbuf;
          in_frame := false;
          frame_over := len;
          frame_skip := len  (* > 0: len exceeds a positive bound *)
        end
        else frame_total := Service.Frame.header_len + len
    end;
    if !frame_total >= 0 && Buffer.length fbuf = !frame_total then
      emit_frame ()
  in
  (try
     while !alive do
       let wait = !deadline -. Unix.gettimeofday () in
       if wait <= 0. then begin
         timed_out := true;
         alive := false
       end
       else begin
         match Unix.select [ fd ] [] [] wait with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | [], _, _ -> ()  (* re-check the deadline *)
         | _ ->
           let n = try Unix.read fd buf 0 (Bytes.length buf) with
             | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) -> 0
           in
           if n = 0 then alive := false
           else
             for i = 0 to n - 1 do
               let c = Bytes.get buf i in
               if !frame_skip > 0 then begin
                 decr frame_skip;
                 if !frame_skip = 0 then begin
                   rearm ();
                   if not (Bqueue.push req_q (Oversized_frame !frame_over))
                   then alive := false
                 end
               end
               else if !in_frame then frame_byte c
               else if
                 Buffer.length acc = 0 && (not !discarding)
                 && Char.code c = Service.Frame.request_magic
               then begin
                 (* message boundary + 0xB1: binary framing this message *)
                 in_frame := true;
                 frame_total := -1;
                 Buffer.clear fbuf;
                 Buffer.add_char fbuf c
               end
               else
                 match c with
                 | '\n' -> emit_line ()
                 | c ->
                   if !discarding then incr discarded
                   else begin
                     Buffer.add_char acc c;
                     if Buffer.length acc > t.cfg.max_line then begin
                       (* switch to discard mode: the line is already
                          over budget, stop accumulating its bytes *)
                       discarding := true;
                       discarded := Buffer.length acc;
                       Buffer.clear acc
                     end
                   end
             done
       end
     done
   with Unix.Unix_error _ -> ());
  (* a torn partial line or frame at close is dropped, never executed *)
  Bqueue.close req_q

(* Executor: per-connection serial request execution — the property
   that makes pipelined responses leave in request order and keeps a
   single-connection transcript byte-identical to stdin mode.  Global
   admission happens here, after parsing: past [queue_depth] admitted
   requests the verb is answered [overloaded] through the server's
   reject path (so the rejection is counted, logged and
   flight-recorded), and the executor moves on. *)
(* The lock class and metric verb of a frame, from its op byte alone —
   no payload decode needed before admission. *)
let frame_read_only op =
  op = Service.Frame.op_lookup
  || op = Service.Frame.op_batch_lookup
  || op = Service.Frame.op_symbols

let frame_verb op =
  if op = Service.Frame.op_lookup then "lookup"
  else if op = Service.Frame.op_batch_lookup then "batch_lookup"
  else if op = Service.Frame.op_add_member then "mutate"
  else if op = Service.Frame.op_add_class then "mutate"
  else if op = Service.Frame.op_symbols then "symbols"
  else "invalid"

let executor t ~conn req_q out_q () =
  let net = Service.Server.net t.srv in
  let respond_raw s = ignore (Bqueue.push out_q s) in
  let respond j = respond_raw (J.to_string j ^ "\n") in
  let admit ~rejected run =
    let admitted =
      Atomic.fetch_and_add net.Service.Server.net_admitted 1
      < t.cfg.queue_depth
    in
    if not admitted then begin
      Atomic.decr net.Service.Server.net_admitted;
      rejected ()
    end
    else
      Fun.protect
        ~finally:(fun () -> Atomic.decr net.Service.Server.net_admitted)
        run
  in
  let overload_msg =
    Printf.sprintf "server at admission capacity (%d in flight); retry"
      t.cfg.queue_depth
  in
  let rec loop () =
    match Bqueue.pop req_q with
    | None -> ()
    | Some (Oversized n) ->
      respond
        (Service.Server.reject ~conn t.srv ~verb:"invalid" ~id:J.Null
           P.Bad_request
           (Printf.sprintf "line exceeds %d bytes (%d read)" t.cfg.max_line n));
      loop ()
    | Some (Oversized_frame n) ->
      respond_raw
        (Service.Server.reject_frame ~conn t.srv ~verb:"invalid" ~id:0
           P.Bad_request
           (Printf.sprintf "frame payload exceeds %d bytes (%d declared)"
              t.cfg.max_line n));
      loop ()
    | Some (Line line) ->
      (match P.parse_request line with
      | Error (id, code, msg) ->
        respond (Service.Server.reject ~conn t.srv ~verb:"invalid" ~id code msg)
      | Ok rq ->
        admit
          ~rejected:(fun () ->
            respond
              (Service.Server.reject ~conn t.srv
                 ~verb:(P.op_string rq.P.rq_op) ~id:rq.P.rq_id P.Overloaded
                 overload_msg))
          (fun () ->
            let run () = Service.Server.handle_request ~conn t.srv rq in
            respond
              (if P.read_only rq.P.rq_op then Rwlock.with_read t.lock run
               else Rwlock.with_write t.lock run)));
      loop ()
    | Some (Frame f) ->
      let op = Char.code f.[1] in
      admit
        ~rejected:(fun () ->
          (* echo the id when the prefix survives — all the decode the
             rejection path affords *)
          let id =
            match
              Service.Frame.session_of_request
                (String.sub f Service.Frame.header_len
                   (String.length f - Service.Frame.header_len))
            with
            | Ok (id, _) -> id
            | Error _ -> 0
          in
          respond_raw
            (Service.Server.reject_frame ~conn t.srv ~verb:(frame_verb op)
               ~id P.Overloaded overload_msg))
        (fun () ->
          let run () = Service.Server.handle_frame ~conn t.srv f in
          respond_raw
            (if frame_read_only op then Rwlock.with_read t.lock run
             else Rwlock.with_write t.lock run));
      loop ()
  in
  loop ();
  Bqueue.close out_q

(* Writer: drains the bounded output queue to the socket.  A client
   that stops reading fills its TCP window, then this queue, then
   stalls only its own executor — never another connection, never the
   server's memory. *)
let writer fd out_q () =
  let rec loop () =
    match Bqueue.pop out_q with
    | None -> ()
    | Some s ->
      (match write_all fd s with
      | () -> loop ()
      | exception Unix.Unix_error _ ->
        (* client is gone; stop consuming so the executor backs up and
           the reader's queue closure unwinds the pipeline *)
        Bqueue.close out_q)
  in
  loop ()

let handle_conn t ~conn fd =
  let net = Service.Server.net t.srv in
  let req_q = Bqueue.create t.cfg.conn_queue in
  let out_q = Bqueue.create t.cfg.conn_queue in
  let timed_out = ref false in
  let rd = Thread.create (reader t fd req_q timed_out) () in
  let wr = Thread.create (writer fd out_q) () in
  executor t ~conn req_q out_q ();
  (* executor done ⇒ req_q drained; make sure a reader blocked in
     [select] wakes up rather than waiting out the idle timeout *)
  (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
  Thread.join rd;
  Thread.join wr;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn);
  Atomic.decr net.Service.Server.net_active;
  Telemetry.Counter.incr net.Service.Server.net_closed;
  if !timed_out then
    Telemetry.Counter.incr net.Service.Server.net_timed_out

(* ---- worker domains and the accept loop ----------------------------- *)

let worker_loop t mailbox () =
  let threads = ref [] in
  let rec loop () =
    match Bqueue.pop mailbox with
    | None -> ()
    | Some (conn, fd) ->
      threads := Thread.create (fun () -> handle_conn t ~conn fd) () :: !threads;
      loop ()
  in
  loop ();
  List.iter Thread.join !threads

let stop t = Atomic.set t.stop true

let run t =
  let net = Service.Server.net t.srv in
  let workers =
    Array.map (fun mb -> Domain.spawn (worker_loop t mb)) t.mailboxes
  in
  let overload_line =
    J.to_string
      (P.error_response ~id:J.Null P.Overloaded
         (Printf.sprintf "connection limit reached (%d)" t.cfg.max_conns))
    ^ "\n"
  in
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        (match t.bound with
        | Tcp _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ())
        | Unix_path _ -> ());
        if Atomic.get net.Service.Server.net_active >= t.cfg.max_conns
        then begin
          (* refuse at the door, in-band: one overloaded line, close *)
          Telemetry.Counter.incr net.Service.Server.net_overloaded;
          (try write_all fd overload_line with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          let conn = Atomic.fetch_and_add t.next_conn 1 + 1 in
          Atomic.incr net.Service.Server.net_active;
          Telemetry.Counter.incr net.Service.Server.net_accepted;
          Mutex.protect t.conns_mutex (fun () ->
              Hashtbl.add t.conns conn fd);
          let mb = t.mailboxes.((conn - 1) mod Array.length t.mailboxes) in
          if not (Bqueue.push mb (conn, fd)) then (
            try Unix.close fd with Unix.Unix_error _ -> ())
        end)
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.bound with
  | Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (* wake every connection: readers see EOF, pipelines drain, workers
     join their threads and exit *)
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  Array.iter Bqueue.close t.mailboxes;
  Array.iter Domain.join workers
