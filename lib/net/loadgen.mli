(** An open-loop, coordinated-omission-safe load generator for the
    networked server.

    Open loop ([qps > 0]): every request's send time is scheduled
    before the run starts and latency is measured from the scheduled
    time — a stalled server charges the stall to every request due
    during it, as a real client queue would.  Closed loop
    ([qps = 0.]): each connection sends as fast as the server answers;
    the achieved rate is the saturation throughput.

    One domain per connection, each with a private
    {!Telemetry.Histogram}; the report merges them losslessly.  The
    verb mix is a deterministic weighted rotation — two runs of one
    config issue identical request streams. *)

type config = {
  conns : int;
  qps : float;  (** aggregate target; [0.] = closed-loop saturation *)
  duration : float;  (** seconds *)
  mix : (string * int) list;  (** verb -> weight, over {!verbs} *)
  batch_size : int;  (** queries per [batch_lookup] request *)
  binary : bool;
      (** drive [lookup] / [batch_lookup] / [mutate] over the
          [cxxlookup-rpc/1b] binary framing with interned ids (one
          [symbols] round trip per connection); [stats] and [lint] stay
          JSON lines on the same socket — negotiation is per message *)
}

(** The verbs a mix may weight: the concurrent read set ([lookup],
    [batch_lookup], [stats], [lint]) plus [mutate] — each (connection,
    request) pair adds a uniquely-named member, so a mutating mix is
    collision-free and still deterministic. *)
val verbs : string list

(** 4 connections, closed loop, 2 s, 9:1 lookup:batch, JSON framing. *)
val default_config : config

type report = {
  sent : int;
  answered : int;
  errors : int;  (** in-band [ok:false] responses, overloaded included *)
  elapsed : float;  (** wall seconds *)
  hist : Telemetry.Histogram.t;  (** latency, ns *)
  achieved_qps : float;
}

(** [run addr cfg ~session ~queries] — [session] must already be open
    on the server; [queries] are the (class, member) candidates the
    mix draws from.  Raises [Invalid_argument] on an empty mix, an
    unknown mix verb, no queries, or [conns < 1]; connection failures
    end that connection's stream early (visible as [sent >
    answered]). *)
val run :
  Server.addr -> config -> session:string -> queries:(string * string) array ->
  report

(** The report as one JSON object: counts, elapsed, achieved QPS, and
    [latency_p50/p90/p99/p999/max_ns]. *)
val report_json : report -> Chg.Json.t
