(** A writers-preference read/write lock.

    Read verbs ([lookup] / [batch_lookup] / [stats] / [metrics] /
    [lint]) hold it shared; mutations ([open] / [mutate] / [snapshot] /
    [restore] / [close]) hold it exclusive.  Once a writer is waiting,
    arriving readers queue behind it, so a steady read stream cannot
    starve mutations. *)

type t

val create : unit -> t
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

(** [with_read t f] / [with_write t f] run [f ()] under the shared /
    exclusive lock, releasing on any exit (including exceptions). *)
val with_read : t -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a
