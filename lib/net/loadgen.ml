module J = Chg.Json

(* An open-loop load generator for the networked server.

   Coordinated-omission safety: in open-loop mode ([qps > 0]) every
   request has a *scheduled* send time fixed before the run starts
   (conn [i] sends at [start + i*interval/conns + k*interval]), and
   latency is measured from the scheduled time, not the actual send.
   A server that stalls therefore charges the stall to every request
   scheduled during it — the back-of-queue wait a real client would
   see — instead of silently suppressing the measurements a
   closed-loop generator would never have issued.

   [qps = 0.] switches to closed-loop saturation mode: each connection
   sends as fast as the server answers, latency measured per round
   trip, and the achieved rate is the saturation throughput.

   The verb mix is a deterministic weighted rotation (no RNG), so two
   runs of the same config issue the same request stream.  Each
   connection runs on its own domain with a private histogram; the
   report merges them losslessly. *)

type config = {
  conns : int;
  qps : float;  (* aggregate target; 0. = closed-loop saturation *)
  duration : float;  (* seconds *)
  mix : (string * int) list;  (* verb -> weight; verbs of {!verbs} *)
  batch_size : int;  (* queries per batch_lookup request *)
  binary : bool;
      (* drive lookup / batch_lookup / mutate over the cxxlookup-rpc/1b
         binary framing with interned ids (one symbols round trip per
         connection); verbs without a binary form (stats, lint) stay
         JSON lines on the same connection — negotiation is per
         message *)
}

let verbs = [ "lookup"; "batch_lookup"; "stats"; "lint"; "mutate" ]

let default_config =
  { conns = 4;
    qps = 0.;
    duration = 2.;
    mix = [ ("lookup", 9); ("batch_lookup", 1) ];
    batch_size = 8;
    binary = false }

type report = {
  sent : int;
  answered : int;
  errors : int;  (* in-band ok:false responses (overloaded included) *)
  elapsed : float;  (* wall seconds of the measurement window *)
  hist : Telemetry.Histogram.t;  (* latency, ns, CO-safe in open loop *)
  achieved_qps : float;
}

(* The flattened mix: verb [i] of a request stream is
   [schedule.(i mod length)] — deterministic, proportional, and
   interleaved per connection by a stride coprime to the length. *)
let build_schedule mix =
  let mix = List.filter (fun (_, w) -> w > 0) mix in
  if mix = [] then invalid_arg "Loadgen: empty verb mix";
  List.iter
    (fun (v, _) ->
      if not (List.mem v verbs) then
        invalid_arg (Printf.sprintf "Loadgen: unknown mix verb %S" v))
    mix;
  Array.concat
    (List.map (fun (v, w) -> Array.make w v) mix)

let request_line ~session ~queries ~batch_size ~verb ~id ~k ~conn =
  let q i =
    let c, m = queries.(i mod Array.length queries) in
    (c, m)
  in
  let j =
    match verb with
    | "lookup" ->
      let c, m = q k in
      J.Obj
        [ ("id", J.Int id); ("op", J.String "lookup");
          ("session", J.String session); ("class", J.String c);
          ("member", J.String m) ]
    | "batch_lookup" ->
      J.Obj
        [ ("id", J.Int id); ("op", J.String "batch_lookup");
          ("session", J.String session);
          ( "queries",
            J.List
              (List.init batch_size (fun i ->
                   let c, m = q (k + i) in
                   J.Obj [ ("class", J.String c); ("member", J.String m) ]))
          ) ]
    | "stats" ->
      J.Obj
        [ ("id", J.Int id); ("op", J.String "stats");
          ("session", J.String session) ]
    | "lint" ->
      J.Obj
        [ ("id", J.Int id); ("op", J.String "lint");
          ("session", J.String session) ]
    | "mutate" ->
      (* each (conn, k) adds a member name no other request adds, so the
         stream never collides with itself and stays deterministic; it
         grows the hierarchy, exercising the router's leader-forwarding
         path and the single-writer path under read load *)
      let c, _ = q k in
      J.Obj
        [ ("id", J.Int id); ("op", J.String "mutate");
          ("session", J.String session);
          ( "add_member",
            J.Obj
              [ ("class", J.String c);
                ( "member",
                  J.Obj
                    [ ("name",
                       J.String (Printf.sprintf "lg_c%d_%d" conn id)) ] ) ] )
        ]
    | v -> invalid_arg ("Loadgen: unknown verb " ^ v)
  in
  J.to_string j

type conn_result = {
  c_sent : int;
  c_answered : int;
  c_errors : int;
  c_hist : Telemetry.Histogram.t;
}

let is_error line =
  match J.of_string line with
  | Ok j -> (match J.member "ok" j with Ok (J.Bool true) -> false | _ -> true)
  | Error _ -> true

(* ---- the binary stream ----------------------------------------------

   The id maps come from one [symbols] frame per connection; queries
   are then (class id, member id) pairs and the request stream is pure
   frames for the verbs that have a binary form.  Mix verbs without one
   (stats, lint) drop to JSON lines on the same socket — the listener
   negotiates per message. *)

type ids = {
  class_ids : (string, int) Hashtbl.t;
  member_ids : (string, int) Hashtbl.t;
}

let fetch_ids cl ~session =
  let req =
    Service.Frame.encode_request
      { Service.Frame.fr_id = 0; fr_session = session;
        fr_op = Service.Frame.Symbols }
  in
  match Client.request_frame cl req with
  | None -> None
  | Some resp ->
    (match
       Service.Frame.decode_response ~op:Service.Frame.op_symbols resp
     with
    | Ok (_, Service.Frame.Ok_symbols { os_classes; os_members; _ }) ->
      let class_ids = Hashtbl.create (Array.length os_classes) in
      let member_ids = Hashtbl.create (Array.length os_members) in
      Array.iteri (fun i n -> Hashtbl.replace class_ids n i) os_classes;
      Array.iteri (fun i n -> Hashtbl.replace member_ids n i) os_members;
      Some { class_ids; member_ids }
    | _ -> None)

(* The frame for verb [k] of the stream, or [None] when the verb has no
   binary form (caller falls back to the JSON line).  Returns the
   request op too — the client needs it to type the response. *)
let request_frame ids ~session ~queries ~batch_size ~verb ~id ~k ~conn =
  let idq i =
    let c, m = queries.(i mod Array.length queries) in
    match
      (Hashtbl.find_opt ids.class_ids c, Hashtbl.find_opt ids.member_ids m)
    with
    | Some ci, Some mi -> Some (ci, mi)
    | _ -> None
  in
  let frame op = Some (Service.Frame.encode_request
    { Service.Frame.fr_id = id; fr_session = session; fr_op = op })
  in
  match verb with
  | "lookup" ->
    Option.bind (idq k) (fun (ci, mi) ->
        frame (Service.Frame.Lookup { lk_class = ci; lk_member = mi }))
  | "batch_lookup" ->
    let qs = Array.init batch_size (fun i -> idq (k + i)) in
    if Array.for_all Option.is_some qs then
      frame (Service.Frame.Batch_lookup (Array.map Option.get qs))
    else None
  | "mutate" ->
    let c, _ = queries.(k mod Array.length queries) in
    Option.bind (Hashtbl.find_opt ids.class_ids c) (fun ci ->
        frame
          (Service.Frame.Add_member
             { am_class = ci;
               am_member =
                 Chg.Graph.member (Printf.sprintf "lg_c%d_%d" conn id) }))
  | _ -> None

let frame_is_error resp =
  String.length resp > 1 && Char.code resp.[1] <> 0

let run_conn addr cfg ~session ~queries ~schedule ~conn_idx ~start =
  let cl = Client.connect addr in
  let hist = Telemetry.Histogram.create () in
  let sent = ref 0 and answered = ref 0 and errors = ref 0 in
  let stride = 1 + (conn_idx mod max 1 (Array.length schedule - 1)) in
  let verb_of k = schedule.((k * stride) mod Array.length schedule) in
  let deadline = start +. cfg.duration in
  let ids =
    if cfg.binary then begin
      match fetch_ids cl ~session with
      | Some _ as ids -> ids
      | None ->
        prerr_endline
          "loadgen: warning: symbols fetch failed; falling back to JSON";
        None
    end
    else None
  in
  (* one request, framing chosen per verb: a binary form when ids are
     loaded and the verb has one, the JSON line otherwise.  [None] =
     connection gone; [Some err] = answered, [err] in band. *)
  let exchange ~verb ~id ~k =
    let over_json () =
      let line =
        request_line ~session ~queries ~batch_size:cfg.batch_size ~verb ~id
          ~k ~conn:conn_idx
      in
      Option.map is_error (Client.request cl line)
    in
    match ids with
    | None -> over_json ()
    | Some ids ->
      (match
         request_frame ids ~session ~queries ~batch_size:cfg.batch_size
           ~verb ~id ~k ~conn:conn_idx
       with
      | Some f -> Option.map frame_is_error (Client.request_frame cl f)
      | None -> over_json ())
  in
  (try
     if cfg.qps > 0. then begin
       (* open loop: per-connection interval, phase-shifted so the
          aggregate stream is evenly spaced *)
       let interval = float_of_int cfg.conns /. cfg.qps in
       let phase = interval *. float_of_int conn_idx /. float_of_int cfg.conns in
       let k = ref 0 in
       let next () = start +. phase +. (interval *. float_of_int !k) in
       while next () < deadline do
         let scheduled = next () in
         let now = Unix.gettimeofday () in
         if now < scheduled then
           Thread.delay (scheduled -. now);
         incr sent;
         (match exchange ~verb:(verb_of !k) ~id:!k ~k:(!k * 17) with
         | None -> raise Exit
         | Some err ->
           incr answered;
           if err then incr errors;
           let lat_s = Unix.gettimeofday () -. scheduled in
           Telemetry.Histogram.record hist
             (int_of_float (lat_s *. 1e9)));
         incr k
       done
     end
     else begin
       (* closed loop: as fast as the server answers *)
       let k = ref 0 in
       while Unix.gettimeofday () < deadline do
         let t0 = Telemetry.Clock.now_ns () in
         incr sent;
         (match exchange ~verb:(verb_of !k) ~id:!k ~k:(!k * 17) with
         | None -> raise Exit
         | Some err ->
           incr answered;
           if err then incr errors;
           Telemetry.Histogram.record hist
             (Telemetry.Clock.elapsed_ns ~since:t0));
         incr k
       done
     end
   with Exit | Unix.Unix_error _ | Sys_error _ -> ());
  Client.close cl;
  { c_sent = !sent; c_answered = !answered; c_errors = !errors;
    c_hist = hist }

let run addr cfg ~session ~queries =
  if cfg.conns < 1 then invalid_arg "Loadgen: conns must be >= 1";
  if Array.length queries = 0 then invalid_arg "Loadgen: no queries";
  let schedule = build_schedule cfg.mix in
  let start = Unix.gettimeofday () +. 0.05 in
  let domains =
    List.init cfg.conns (fun conn_idx ->
        Domain.spawn (fun () ->
            run_conn addr cfg ~session ~queries ~schedule ~conn_idx ~start))
  in
  let results = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. start in
  let hist = Telemetry.Histogram.create () in
  List.iter (fun r -> Telemetry.Histogram.merge_into ~into:hist r.c_hist)
    results;
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let answered = sum (fun r -> r.c_answered) in
  { sent = sum (fun r -> r.c_sent);
    answered;
    errors = sum (fun r -> r.c_errors);
    elapsed;
    hist;
    achieved_qps =
      (if elapsed > 0. then float_of_int answered /. elapsed else 0.) }

let report_json r =
  J.Obj
    (("sent", J.Int r.sent)
     :: ("answered", J.Int r.answered)
     :: ("errors", J.Int r.errors)
     :: ("elapsed_ms", J.Int (int_of_float (r.elapsed *. 1000.)))
     :: ("achieved_qps", J.Int (int_of_float r.achieved_qps))
     :: List.map
          (fun (k, v) -> ("latency_" ^ k ^ "_ns", J.Int v))
          (Telemetry.Histogram.percentile_fields r.hist))
