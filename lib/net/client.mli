(** A minimal blocking JSON-lines client (one socket, synchronous or
    manually pipelined).  The load generator, the [cxxlookup client]
    verb and the smoke tests are built on it. *)

type t

(** [connect ?retries ?backoff_ms addr] — with [retries] (default 0:
    fail immediately), a refused / unreachable connection is retried up
    to that many additional times with jittered exponential backoff
    ([backoff_ms], default 50, doubling per attempt, +/-25% jitter).
    Raises [Unix.Unix_error] once the attempts are exhausted.  The
    router's backend pool and [cxxlookup client --retry] reconnect
    through this. *)
val connect : ?retries:int -> ?backoff_ms:int -> Server.addr -> t

(** [backoff_delay ~attempt ~backoff_ms] — the jittered exponential
    delay (seconds) the retry paths sleep between attempts. *)
val backoff_delay : attempt:int -> backoff_ms:int -> float

(** [overloaded line] — the response is an in-band [overloaded]
    error (the one condition where blindly resending is safe: a shed
    request was never executed). *)
val overloaded : string -> bool

val send_line : t -> string -> unit

(** A partial write: no newline appended, flushed.  For torn-line
    tests. *)
val send_raw : t -> string -> unit

(** [None] on server-side close. *)
val recv_line : t -> string option

(** One synchronous round trip. *)
val request : t -> string -> string option

(** Like {!request}, but an [overloaded] response is resent (same
    connection) up to [retries] times with the jittered backoff. *)
val request_admitted : ?retries:int -> ?backoff_ms:int -> t -> string ->
  string option

(** {1 Binary ([cxxlookup-rpc/1b]) framing}

    Frames share the socket with JSON lines (negotiation is per
    message): fetch [symbols] over JSON, then switch to frames on the
    same connection, or interleave both. *)

(** [send_frame t f] writes one encoded request frame, flushed. *)
val send_frame : t -> string -> unit

(** [recv_frame t] reads one complete response frame (header +
    payload).  [None] on server-side close or a non-frame byte stream
    (after which the connection should be closed — the position is
    unrecoverable). *)
val recv_frame : t -> string option

(** One synchronous binary round trip. *)
val request_frame : t -> string -> string option

(** [frame_overloaded f] — the response frame is an in-band
    [overloaded] error. *)
val frame_overloaded : string -> bool

(** Like {!request_frame}, but an [overloaded] response is resent (same
    connection) up to [retries] times with the jittered backoff. *)
val request_frame_admitted :
  ?retries:int -> ?backoff_ms:int -> t -> string -> string option

val close : t -> unit
