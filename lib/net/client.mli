(** A minimal blocking JSON-lines client (one socket, synchronous or
    manually pipelined).  The load generator, the [cxxlookup client]
    verb and the smoke tests are built on it. *)

type t

(** Raises [Unix.Unix_error] when the connection is refused. *)
val connect : Server.addr -> t

val send_line : t -> string -> unit

(** A partial write: no newline appended, flushed.  For torn-line
    tests. *)
val send_raw : t -> string -> unit

(** [None] on server-side close. *)
val recv_line : t -> string option

(** One synchronous round trip. *)
val request : t -> string -> string option

val close : t -> unit
