(** A bounded blocking queue — the server's backpressure primitive.

    Hard capacity: a full queue blocks the producer (the reader thread
    stops consuming bytes, so TCP pushes back; the executor stalls
    behind a slow consumer).  [close] refuses further pushes while
    consumers drain what is queued, then pop [None]. *)

type 'a t

(** Raises [Invalid_argument] when [capacity < 1]. *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Blocks while full; [false] iff closed (the item is dropped). *)
val push : 'a t -> 'a -> bool

(** Never blocks; [false] if full or closed. *)
val try_push : 'a t -> 'a -> bool

(** Blocks while empty; [None] iff closed and drained. *)
val pop : 'a t -> 'a option

val close : 'a t -> unit
