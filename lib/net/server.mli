(** The networked front end for [cxxlookup-rpc/1]: a TCP /
    Unix-domain-socket JSON-lines server over a shared
    {!Service.Server.t}.

    Topology: the accept loop runs on the calling domain and hands
    connections round-robin to [workers] spawned domains; each
    connection runs a reader → executor → writer systhread pipeline on
    its worker's domain.  Read verbs execute concurrently under a
    shared {!Rwlock}; mutations serialize through its exclusive side —
    the single writer path owning the session table and WAL.

    Ordering: per-connection execution is serial, so pipelined
    responses leave in request order and a single-connection
    transcript is byte-identical to stdin/stdout mode.

    Backpressure: bounded per-connection job/output queues (a full job
    queue stops socket reads, so TCP pushes back; a slow consumer
    stalls only its own executor) plus a global admission bound of
    [queue_depth] executing requests — past it, requests are answered
    with explicit [overloaded] protocol errors, never buffered without
    limit.  [max_conns] is enforced at accept: the excess connection
    receives one [overloaded] line and is closed.

    Timeouts: a connection silent — or dribbling a partial line
    (slowloris) — for [idle_timeout] seconds is closed cleanly after
    its pending responses drain.  Lines over [max_line] bytes are
    discarded to their newline and answered [bad_request] in arrival
    order without killing the connection. *)

type addr = Tcp of string * int | Unix_path of string

type config = {
  workers : int;  (** worker domains executing requests *)
  max_conns : int;  (** connections accepted concurrently *)
  queue_depth : int;  (** global admission bound (requests in flight) *)
  conn_queue : int;  (** per-connection job / output queue bound *)
  idle_timeout : float;  (** seconds; also the slowloris deadline *)
  max_line : int;  (** request line length bound, bytes *)
}

val default_config : config

type t

(** [create ?config srv addr] binds and listens (an ephemeral TCP port
    resolves immediately — see {!bound_addr}) but accepts nothing
    until {!run}.  Raises [Unix.Unix_error] when the bind fails and
    [Invalid_argument] on a non-positive worker count. *)
val create : ?config:config -> Service.Server.t -> addr -> t

(** The actual listening address: [Tcp] with the kernel-chosen port
    when created on port 0. *)
val bound_addr : t -> addr

val addr_string : addr -> string

(** Make a vanished peer surface as EPIPE on the write path instead of
    a process-killing SIGPIPE.  Called by {!listen_on} and the client's
    connect; idempotent. *)
val ignore_sigpipe : unit -> unit

(** [listen_on addr] binds and listens, returning the socket and the
    resolved address (ephemeral TCP ports concrete).  Shared by this
    server and the cluster layer's replication / router listeners. *)
val listen_on : addr -> Unix.file_descr * addr

(** [exclusively t f] runs [f] under the exclusive (writer) side of the
    server's verb-class lock — how the replication applier mutates
    sessions without racing the read verbs executing on worker
    domains. *)
val exclusively : t -> (unit -> 'a) -> 'a

(** [run t] spawns the worker domains and runs the accept loop on the
    calling domain until {!stop}; then it closes the listener, wakes
    every open connection, drains the pipelines and joins the
    workers. *)
val run : t -> unit

(** Signal-safe: sets a flag the accept loop polls (≤ 0.2 s latency).
    Full teardown happens inside {!run}, never in handler context. *)
val stop : t -> unit
