module B = Chg.Binary
module G = Chg.Graph

type t =
  | Add_class of {
      ac_name : string;
      ac_bases : (string * G.edge_kind * G.access) list;
      ac_members : G.member list;
    }
  | Add_member of { am_class : string; am_member : G.member }

let write w = function
  | Add_class { ac_name; ac_bases; ac_members } ->
    B.Writer.u8 w 1;
    B.Writer.string w ac_name;
    B.Writer.u32 w (List.length ac_bases);
    List.iter
      (fun (base, kind, access) ->
        B.Writer.string w base;
        B.write_edge_kind w kind;
        B.write_access w access)
      ac_bases;
    B.Writer.u32 w (List.length ac_members);
    List.iter (B.write_member w) ac_members
  | Add_member { am_class; am_member } ->
    B.Writer.u8 w 2;
    B.Writer.string w am_class;
    B.write_member w am_member

let read r =
  match B.Reader.u8 r with
  | 1 ->
    let ac_name = B.Reader.string r in
    let ac_bases =
      B.read_list r (fun r ->
          let base = B.Reader.string r in
          let kind = B.read_edge_kind r in
          let access = B.read_access r in
          (base, kind, access))
    in
    let ac_members = B.read_list r B.read_member in
    Add_class { ac_name; ac_bases; ac_members }
  | 2 ->
    let am_class = B.Reader.string r in
    let am_member = B.read_member r in
    Add_member { am_class; am_member }
  | n -> raise (B.Corrupt (Printf.sprintf "bad mutation tag %d" n))

let apply b = function
  | Add_class { ac_name; ac_bases; ac_members } ->
    ignore (G.add_class b ac_name ~bases:ac_bases ~members:ac_members)
  | Add_member { am_class; am_member } -> G.add_member b am_class am_member

let describe = function
  | Add_class { ac_name; _ } -> Printf.sprintf "add_class %s" ac_name
  | Add_member { am_class; am_member; _ } ->
    Printf.sprintf "add_member %s::%s" am_class am_member.G.m_name
