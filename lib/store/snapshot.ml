module B = Chg.Binary

type t = {
  s_session : string;
  s_epoch : int;
  s_protocol : string;
  s_graph : Chg.Graph.t;
  s_columns : (string * Lookup_core.Packed.column) list;
}

let magic = "CXLSNAP0"
let format_version = 1

(* section tags; unknown tags are skipped on decode (forward compat).
   Columns have three encodings: tag 3 is the legacy boxed verdict
   codec (still read, converted on load), tag 4 the per-column packed
   codec (still read), and tag 5 — what we write — the whole table as
   one position-independent image whose word area is 8-aligned in the
   file, so {!open_mapped} can serve it straight from a Bigarray
   mapping while {!decode} falls back to a byte-at-a-time read. *)
let tag_meta = 1
let tag_graph = 2
let tag_columns_boxed = 3
let tag_columns_packed = 4
let tag_table_image = 5

let crc_int s = Int32.to_int (B.crc32_string s) land 0xffffffff

let write_section w tag payload =
  B.Writer.u8 w tag;
  B.Writer.u32 w (String.length payload);
  B.Writer.u32 w (crc_int payload);
  B.Writer.raw w payload

let section f =
  let w = B.Writer.create () in
  f w;
  B.Writer.contents w

(* container prefix: 8-byte magic + u32 version + u32 section count;
   each section adds a 9-byte header before its payload *)
let container_prefix = 16
let section_header = 9

let encode t =
  let w = B.Writer.create ~initial_size:4096 () in
  B.Writer.raw w magic;
  B.Writer.u32 w format_version;
  (* meta and graph are built first so the image payload's file offset
     is known — the image writer pads its own prefix to land the word
     area 8-aligned in the file *)
  let meta_payload =
    section (fun w ->
        B.Writer.string w t.s_session;
        B.Writer.i64 w t.s_epoch;
        B.Writer.string w t.s_protocol)
  in
  let graph_payload = section (fun w -> B.write_graph w t.s_graph) in
  let image_offset =
    container_prefix
    + section_header + String.length meta_payload
    + section_header + String.length graph_payload
    + section_header
  in
  let image_payload =
    section (fun w ->
        Lookup_core.Packed.write_image w ~file_offset:image_offset t.s_columns)
  in
  let sections =
    [ (tag_meta, meta_payload);
      (tag_graph, graph_payload);
      (tag_table_image, image_payload) ]
  in
  B.Writer.u32 w (List.length sections);
  List.iter (fun (tag, payload) -> write_section w tag payload) sections;
  B.Writer.contents w

let decode s =
  try
    let r = B.Reader.of_string s in
    if B.Reader.remaining r < String.length magic then
      raise (B.Corrupt "snapshot shorter than its magic");
    if B.Reader.raw r (String.length magic) <> magic then
      raise (B.Corrupt "bad snapshot magic");
    let version = B.Reader.u32 r in
    if version <> format_version then
      raise
        (B.Corrupt
           (Printf.sprintf "unsupported snapshot format version %d" version));
    let nsections = B.Reader.u32 r in
    let meta = ref None and graph = ref None and columns = ref [] in
    for _ = 1 to nsections do
      let tag = B.Reader.u8 r in
      let len = B.Reader.u32 r in
      let crc = B.Reader.u32 r in
      let payload = B.Reader.raw r len in
      if crc_int payload <> crc then
        raise (B.Corrupt (Printf.sprintf "section %d fails its CRC" tag));
      let pr = B.Reader.of_string payload in
      if tag = tag_meta then begin
        let session = B.Reader.string pr in
        let epoch = B.Reader.i64 pr in
        let protocol = B.Reader.string pr in
        meta := Some (session, epoch, protocol)
      end
      else if tag = tag_graph then graph := Some (B.read_graph pr)
      else if tag = tag_columns_packed then
        columns :=
          B.read_list pr (fun pr ->
              let m = B.Reader.string pr in
              let col = Lookup_core.Packed.read_column pr in
              (m, col))
      else if tag = tag_columns_boxed then
        (* pre-packing snapshot: decode the boxed codec, pack on load *)
        columns :=
          B.read_list pr (fun pr ->
              let m = B.Reader.string pr in
              let col = Lookup_core.Verdict_io.read_column pr in
              (m, Lookup_core.Packed.pack_column col))
      else if tag = tag_table_image then
        (* the mmap-able image, decoded byte-at-a-time — the path taken
           when the caller didn't (or couldn't) map the file *)
        columns := Lookup_core.Packed.read_image pr
      (* unknown tag: CRC-checked above, content ignored *)
    done;
    match (!meta, !graph) with
    | Some (s_session, s_epoch, s_protocol), Some s_graph ->
      (* a column must index exactly the snapshot's classes; anything
         else is a stale or cross-wired section *)
      let n = Chg.Graph.num_classes s_graph in
      List.iter
        (fun (m, col) ->
          let len = Lookup_core.Packed.column_classes col in
          if len <> n then
            raise
              (B.Corrupt
                 (Printf.sprintf "column %S has %d entries for %d classes" m
                    len n)))
        !columns;
      Ok { s_session; s_epoch; s_protocol; s_graph; s_columns = !columns }
    | None, _ -> Error "snapshot has no meta section"
    | _, None -> Error "snapshot has no graph section"
  with
  | B.Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg

let write_file path t =
  let data = encode t in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = Unix.write_substring fd data 0 (String.length data) in
      assert (n = String.length data);
      Unix.fsync fd);
  Sys.rename tmp path;
  (* best-effort directory sync so the rename itself is durable *)
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
     Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ());
  String.length data

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> decode data
  | exception Sys_error msg -> Error msg

(* ---- zero-copy restore ---------------------------------------------

   [open_mapped] streams only the small sections (meta, graph) through
   the normal CRC-checked decode, locates the table-image section, and
   maps its word area with [Unix.map_file] — restore cost is page-in,
   independent of table size.  [~verify] additionally reads the image
   payload once to check its CRC (sequential read, still no decode);
   without it, integrity rests on the probe word, the O(m) structural
   checks, and the views' per-access bounds checks.

   Any failure — legacy snapshot with no image section, misaligned word
   area, filesystem without mmap, truncation — is an [Error], and the
   caller falls back to {!read_file}. *)

let open_mapped ?(verify = true) path =
  try
    let ic = In_channel.open_bin path in
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () ->
        let need n =
          match In_channel.really_input_string ic n with
          | Some s -> s
          | None -> raise (B.Corrupt "snapshot truncated")
        in
        let u8 () = Char.code (need 1).[0] in
        let u32 () = B.Reader.u32 (B.Reader.of_string (need 4)) in
        if need 8 <> magic then raise (B.Corrupt "bad snapshot magic");
        let version = u32 () in
        if version <> format_version then
          raise
            (B.Corrupt
               (Printf.sprintf "unsupported snapshot format version %d" version));
        let nsections = u32 () in
        let meta = ref None and graph = ref None and image = ref None in
        for _ = 1 to nsections do
          let tag = u8 () in
          let len = u32 () in
          let crc = u32 () in
          let payload_off = Int64.to_int (In_channel.pos ic) in
          if tag = tag_meta || tag = tag_graph then begin
            let payload = need len in
            if crc_int payload <> crc then
              raise (B.Corrupt (Printf.sprintf "section %d fails its CRC" tag));
            let pr = B.Reader.of_string payload in
            if tag = tag_meta then begin
              let session = B.Reader.string pr in
              let epoch = B.Reader.i64 pr in
              let protocol = B.Reader.string pr in
              meta := Some (session, epoch, protocol)
            end
            else graph := Some (B.read_graph pr)
          end
          else if tag = tag_table_image then begin
            let names, word_off =
              if verify then begin
                let payload = need len in
                if crc_int payload <> crc then
                  raise (B.Corrupt "table image section fails its CRC");
                Lookup_core.Packed.image_header (B.Reader.of_string payload)
              end
              else begin
                (* fast mode: read only the byte-addressed prefix *)
                let names_len = u32 () in
                let blob = B.Reader.of_string (need names_len) in
                let count = B.Reader.u32 blob in
                let names =
                  Array.init count (fun _ -> B.Reader.string blob)
                in
                let pad = u32 () in
                if pad > 7 then
                  raise (B.Corrupt "table image: bad pad length");
                String.iter
                  (fun c ->
                    if c <> '\000' then
                      raise (B.Corrupt "table image: non-zero pad"))
                  (need pad);
                (names, 4 + names_len + 4 + pad)
              end
            in
            In_channel.seek ic (Int64.of_int (payload_off + len));
            image := Some (payload_off, len, word_off, names)
          end
          else In_channel.seek ic (Int64.of_int (payload_off + len))
        done;
        match (!meta, !graph, !image) with
        | None, _, _ -> Error "snapshot has no meta section"
        | _, None, _ -> Error "snapshot has no graph section"
        | _, _, None -> Error "snapshot has no table-image section"
        | ( Some (s_session, s_epoch, s_protocol),
            Some s_graph,
            Some (payload_off, len, word_off, names) ) ->
          let word_pos = payload_off + word_off in
          let word_bytes = len - word_off in
          if word_pos mod 8 <> 0 then
            raise (B.Corrupt "table image word area is not 8-aligned");
          if word_bytes < 0 || word_bytes mod 8 <> 0 then
            raise (B.Corrupt "table image word area is not whole words");
          let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
          let buf =
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                Bigarray.array1_of_genarray
                  (Unix.map_file fd ~pos:(Int64.of_int word_pos) Bigarray.int
                     Bigarray.c_layout false
                     [| word_bytes / 8 |]))
          in
          let s_columns = Lookup_core.Packed.map_image buf ~names in
          let n = Chg.Graph.num_classes s_graph in
          List.iter
            (fun (m, col) ->
              let cn = Lookup_core.Packed.column_classes col in
              if cn <> n then
                raise
                  (B.Corrupt
                     (Printf.sprintf "column %S has %d entries for %d classes"
                        m cn n)))
            s_columns;
          Ok { s_session; s_epoch; s_protocol; s_graph; s_columns })
  with
  | B.Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg
  | Sys_error msg -> Error msg
  | End_of_file -> Error "snapshot truncated"
  | Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
