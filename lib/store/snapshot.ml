module B = Chg.Binary

type t = {
  s_session : string;
  s_epoch : int;
  s_protocol : string;
  s_graph : Chg.Graph.t;
  s_columns : (string * Lookup_core.Packed.column) list;
}

let magic = "CXLSNAP0"
let format_version = 1

(* section tags; unknown tags are skipped on decode (forward compat).
   Columns have two encodings: tag 3 is the legacy boxed verdict codec
   (still read, converted on load), tag 4 writes the packed arrays
   directly — resident and durable columns share one representation, so
   a snapshot is a straight dump with no re-encode. *)
let tag_meta = 1
let tag_graph = 2
let tag_columns_boxed = 3
let tag_columns_packed = 4

let crc_int s = Int32.to_int (B.crc32_string s) land 0xffffffff

let write_section w tag payload =
  B.Writer.u8 w tag;
  B.Writer.u32 w (String.length payload);
  B.Writer.u32 w (crc_int payload);
  B.Writer.raw w payload

let section f =
  let w = B.Writer.create () in
  f w;
  B.Writer.contents w

let encode t =
  let w = B.Writer.create ~initial_size:4096 () in
  B.Writer.raw w magic;
  B.Writer.u32 w format_version;
  let sections =
    [ ( tag_meta,
        section (fun w ->
            B.Writer.string w t.s_session;
            B.Writer.i64 w t.s_epoch;
            B.Writer.string w t.s_protocol) );
      (tag_graph, section (fun w -> B.write_graph w t.s_graph));
      ( tag_columns_packed,
        section (fun w ->
            B.Writer.u32 w (List.length t.s_columns);
            List.iter
              (fun (m, col) ->
                B.Writer.string w m;
                Lookup_core.Packed.write_column w col)
              t.s_columns) ) ]
  in
  B.Writer.u32 w (List.length sections);
  List.iter (fun (tag, payload) -> write_section w tag payload) sections;
  B.Writer.contents w

let decode s =
  try
    let r = B.Reader.of_string s in
    if B.Reader.remaining r < String.length magic then
      raise (B.Corrupt "snapshot shorter than its magic");
    if B.Reader.raw r (String.length magic) <> magic then
      raise (B.Corrupt "bad snapshot magic");
    let version = B.Reader.u32 r in
    if version <> format_version then
      raise
        (B.Corrupt
           (Printf.sprintf "unsupported snapshot format version %d" version));
    let nsections = B.Reader.u32 r in
    let meta = ref None and graph = ref None and columns = ref [] in
    for _ = 1 to nsections do
      let tag = B.Reader.u8 r in
      let len = B.Reader.u32 r in
      let crc = B.Reader.u32 r in
      let payload = B.Reader.raw r len in
      if crc_int payload <> crc then
        raise (B.Corrupt (Printf.sprintf "section %d fails its CRC" tag));
      let pr = B.Reader.of_string payload in
      if tag = tag_meta then begin
        let session = B.Reader.string pr in
        let epoch = B.Reader.i64 pr in
        let protocol = B.Reader.string pr in
        meta := Some (session, epoch, protocol)
      end
      else if tag = tag_graph then graph := Some (B.read_graph pr)
      else if tag = tag_columns_packed then
        columns :=
          B.read_list pr (fun pr ->
              let m = B.Reader.string pr in
              let col = Lookup_core.Packed.read_column pr in
              (m, col))
      else if tag = tag_columns_boxed then
        (* pre-packing snapshot: decode the boxed codec, pack on load *)
        columns :=
          B.read_list pr (fun pr ->
              let m = B.Reader.string pr in
              let col = Lookup_core.Verdict_io.read_column pr in
              (m, Lookup_core.Packed.pack_column col))
      (* unknown tag: CRC-checked above, content ignored *)
    done;
    match (!meta, !graph) with
    | Some (s_session, s_epoch, s_protocol), Some s_graph ->
      (* a column must index exactly the snapshot's classes; anything
         else is a stale or cross-wired section *)
      let n = Chg.Graph.num_classes s_graph in
      List.iter
        (fun (m, col) ->
          let len = Lookup_core.Packed.column_classes col in
          if len <> n then
            raise
              (B.Corrupt
                 (Printf.sprintf "column %S has %d entries for %d classes" m
                    len n)))
        !columns;
      Ok { s_session; s_epoch; s_protocol; s_graph; s_columns = !columns }
    | None, _ -> Error "snapshot has no meta section"
    | _, None -> Error "snapshot has no graph section"
  with
  | B.Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg

let write_file path t =
  let data = encode t in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = Unix.write_substring fd data 0 (String.length data) in
      assert (n = String.length data);
      Unix.fsync fd);
  Sys.rename tmp path;
  (* best-effort directory sync so the rename itself is durable *)
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
     Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ());
  String.length data

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> decode data
  | exception Sys_error msg -> Error msg
