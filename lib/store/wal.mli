(** The append-only write-ahead log of session mutations.

    File layout: an 8-byte magic (["CXLWAL00"]) then a sequence of
    self-checking frames
    {v
    u32 payload_len | u32 crc32(payload) | payload
    payload = i64 epoch | mutation        (see {!Mutation})
    v}

    [epoch] is the session epoch {e after} the mutation applied, so
    recovery replays exactly the records whose epoch exceeds the
    snapshot's.

    Durability contract: each {!append} issues a single [write] of the
    whole frame, so a SIGKILL never loses acknowledged records (they are
    in the kernel), and a power cut tears at most the final frame —
    {!read_file} stops at the first frame that fails its length or CRC
    check and reports the valid prefix plus a [torn] flag.
    {!open_append} truncates any torn tail before appending.  The fsync
    policy trades power-cut durability for append latency:
    [Always] fsyncs every record, [Every n] fsyncs each [n]-th,
    [Never] leaves flushing to the kernel. *)

type fsync_policy = Always | Every of int | Never

val fsync_policy_to_string : fsync_policy -> string

type record = { rc_epoch : int; rc_mutation : Mutation.t }

type tail = {
  tl_records : record list;  (** the valid prefix, in append order *)
  tl_torn : bool;  (** trailing bytes failed their frame checks *)
  tl_valid_bytes : int;  (** length of the well-formed prefix *)
}

val empty_tail : tail

(** [scan data] / [read_file path] — decode the valid prefix; never
    raises.  A missing file is an empty, untorn tail. *)
val scan : string -> tail

val read_file : string -> tail

(** {1 Appending} *)

type t

(** [open_append ?fsync ?append_ns ?fsync_ns path] opens (creating if
    needed) for append, truncating any torn tail first.  [fsync]
    defaults to [Every 8].  [append_ns]/[fsync_ns] are shared latency
    histograms (typically the store's): every append's write time and
    every fsync's duration are recorded into them. *)
val open_append :
  ?fsync:fsync_policy ->
  ?append_ns:Telemetry.Histogram.t ->
  ?fsync_ns:Telemetry.Histogram.t ->
  string ->
  t

(** [append t ~epoch m] frames, checksums and writes one record;
    returns the bytes appended. *)
val append : t -> epoch:int -> Mutation.t -> int

(** [sync t] forces an [fsync] now, whatever the policy. *)
val sync : t -> unit

(** {1 Incremental tailing}

    A poll-based reader over a WAL file another handle is appending
    to — how the replication sender follows its leader's own log
    without re-scanning history.  The offset advances over complete,
    CRC-valid frames only; an incomplete or CRC-failing suffix is
    {e re-validated from the same offset on every poll} (it may be a
    frame whose single [write] has not landed yet), rather than judged
    torn once and skipped.  A shrink (compaction's {!reset}, or a new
    lineage) reports [Reset]: the consumer must resynchronize — for
    replication, resend the newest snapshot. *)
module Tail_reader : sig
  type poll_result =
    | Frames of record list  (** new complete records, in append order *)
    | Reset  (** the file shrank or vanished: resynchronize *)
    | Nothing  (** no complete new frame yet *)

  type reader

  val create : string -> reader

  (** Bytes of the file consumed so far (0 until the magic checks). *)
  val offset : reader -> int

  val poll : reader -> poll_result
end

(** [reset t] empties the log back to its magic — the compaction step
    after a fresh snapshot has made the records redundant. *)
val reset : t -> unit

val size : t -> int
val path : t -> string

(** Handle-lifetime counters (the store aggregates them). *)

val appends : t -> int

val fsyncs : t -> int

val close : t -> unit
