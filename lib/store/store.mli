(** The durable store: a directory of per-session snapshots plus
    write-ahead logs, and the recovery path over them.

    Layout, one subdirectory per session (names escaped injectively so
    arbitrary wire names are safe on disk):
    {v
    DIR/<session>/snap-<epoch>.snap     versioned binary snapshots
    DIR/<session>/wal.log               mutation WAL since the newest
    v}

    The protocol, end to end:
    + opening a session under a store writes an epoch-0 snapshot;
    + every applied mutation appends one WAL record ({!log_mutation});
    + when the WAL outgrows [compact_bytes], the owner writes a fresh
      snapshot ({!write_snapshot}), which resets the WAL {e after} the
      snapshot file is durably renamed in — so a crash in between only
      leaves redundant records, which recovery skips by epoch;
    + {!recover} loads the newest snapshot that decodes (a damaged newer
      file falls back to the previous one), replays the WAL records
      whose epochs consecutively extend it, and reports — but is never
      killed by — a torn final record.

    Nothing here trusts the disk: snapshots are CRC-sectioned, WAL
    frames are CRC-checked, and the recovery property test replays
    arbitrary kill points against the spec oracle. *)

(** The library's root module; the pieces re-exported: *)

module Mutation = Mutation
module Snapshot = Snapshot
module Wal = Wal

(** How {!recover} restores snapshots: [`Verify] (default) maps the
    table image zero-copy after one streaming CRC pass over it;
    [`Fast] maps without the CRC pass (probe word + structural checks
    + per-access bounds checks only); [`Off] always decodes.  Every
    mode falls back to {!Snapshot.read_file} when mapping fails —
    legacy snapshots, unmappable filesystems, corrupt image sections. *)
type mmap_mode = [ `Off | `Verify | `Fast ]

type config = {
  fsync : Wal.fsync_policy;  (** applied to every session WAL *)
  compact_bytes : int;  (** WAL size that makes {!needs_compaction} true *)
  keep_snapshots : int;  (** snapshot files retained per session *)
  mmap_restore : mmap_mode;  (** restore path for snapshot files *)
}

(** fsync every 8th append, compact past 1 MiB, keep 2 snapshots,
    mmap restore with CRC verification *)
val default_config : config

type t

(** [open_dir ?config dir] creates [dir] (and parents) if needed. *)
val open_dir : ?config:config -> string -> t

val dir : t -> string
val config : t -> config

(** [sessions t] — names with at least one snapshot on disk, sorted. *)
val sessions : t -> string list

(** File-level views for the replication sender, which streams the
    store's own on-disk artifacts: the session's WAL path (for a
    {!Wal.Tail_reader}) and its newest snapshot as [(epoch, path)]. *)

val wal_path : t -> string -> string

val newest_snapshot : t -> string -> (int * string) option

(** {1 Recovery} *)

type recovery = {
  rv_snapshot : Snapshot.t;
  rv_replayed : Wal.record list;  (** the WAL tail, in apply order *)
  rv_torn : bool;  (** a torn final record was detected and skipped *)
  rv_stale_snapshots : int;  (** newer snapshot files that failed to decode *)
}

(** The session epoch after replaying [rv_replayed]. *)
val recovered_epoch : recovery -> int

(** [recover t name] — [Ok None] when the store holds nothing for
    [name]; [Error] only when every stored snapshot fails to decode. *)
val recover : t -> string -> (recovery option, string) result

(** {1 Writing} *)

(** [log_mutation t ~session ~epoch m] appends one WAL record ([epoch]
    is the session epoch {e after} [m] applied). *)
val log_mutation : t -> session:string -> epoch:int -> Mutation.t -> unit

(** [write_snapshot t snap] writes the snapshot file, resets the
    session's WAL and prunes old snapshots past the retention count;
    returns the snapshot's byte size. *)
val write_snapshot : t -> Snapshot.t -> int

(** [reset_session t name] deletes every snapshot and empties the WAL
    for [name] — the fresh-[open] path, where a new lineage supersedes
    whatever the store held under that name. *)
val reset_session : t -> string -> unit

val wal_size : t -> session:string -> int
val needs_compaction : t -> session:string -> bool

(** [note_compaction t] bumps the compaction counter (the session owner
    performs compaction as snapshot + reset; this records that it was
    threshold-triggered). *)
val note_compaction : t -> unit

(** [sync t] fsyncs every open WAL now. *)
val sync : t -> unit

val close : t -> unit

(** [store_snapshots_written], [store_snapshot_bytes],
    [store_wal_appends], [store_wal_append_bytes], [store_wal_fsyncs],
    [store_recoveries], [store_replayed_records],
    [store_torn_records_skipped], [store_compactions],
    [store_mmap_restores]. *)
val counters : t -> (string * int) list

(** Latency distributions, all in nanoseconds and shared across every
    session WAL under this store: [wal_append_ns] (frame + write, not
    the policy fsync), [wal_fsync_ns], [snapshot_write_ns],
    [snapshot_restore_ns] (successful restores by either path),
    [mmap_restore_ns] (successful zero-copy restores only). *)
val histograms : t -> (string * Telemetry.Histogram.t) list

(** [register t registry] attaches every counter (as
    [cxxlookup_store_<name>_total]) and every latency histogram (as
    [cxxlookup_store_<name>]) to [registry] for Prometheus exposition. *)
val register : t -> Telemetry.Registry.t -> unit
