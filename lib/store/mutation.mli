(** A persisted [mutate] operation — the unit the write-ahead log
    records and recovery replays.

    Mirrors the service protocol's mutation vocabulary ([add_class] /
    [add_member]) but lives below it: the store must not depend on the
    wire protocol, and a WAL record must stay decodable whatever the
    JSON layer does.  Bases are by name, exactly as a session applies
    them. *)

type t =
  | Add_class of {
      ac_name : string;
      ac_bases : (string * Chg.Graph.edge_kind * Chg.Graph.access) list;
      ac_members : Chg.Graph.member list;
    }
  | Add_member of { am_class : string; am_member : Chg.Graph.member }

val write : Chg.Binary.Writer.t -> t -> unit

(** @raise Chg.Binary.Corrupt on malformed input *)
val read : Chg.Binary.Reader.t -> t

(** [apply b m] replays the mutation into a graph builder — the
    recovery oracle path (sessions replay through their own engines).
    @raise Chg.Graph.Error like the builder. *)
val apply : Chg.Graph.builder -> t -> unit

val describe : t -> string
