module B = Chg.Binary

let magic = "CXLWAL00"

type fsync_policy = Always | Every of int | Never

let fsync_policy_to_string = function
  | Always -> "always"
  | Every n -> Printf.sprintf "every %d" n
  | Never -> "never"

type record = { rc_epoch : int; rc_mutation : Mutation.t }

type tail = {
  tl_records : record list;
  tl_torn : bool;
  tl_valid_bytes : int;  (** length of the well-formed prefix, incl. magic *)
}

let empty_tail = { tl_records = []; tl_torn = false; tl_valid_bytes = 0 }

let crc_int s = Int32.to_int (B.crc32_string s) land 0xffffffff

(* ---- scanning ------------------------------------------------------ *)

(* One record on disk is [u32 len | u32 crc | payload]; the payload is
   [i64 epoch | mutation].  The scan stops at the first frame that does
   not check out — a short header, a length past EOF, a CRC mismatch, or
   an undecodable payload — and reports everything before it.  That is
   exactly the kill-point contract: a crash can only tear the final
   append, so the valid prefix is the recovered history. *)
let scan data =
  let total = String.length data in
  let ml = String.length magic in
  if total < ml || String.sub data 0 ml <> magic then
    { empty_tail with tl_torn = total > 0 }
  else begin
    let r = B.Reader.of_string ~pos:ml data in
    let records = ref [] in
    let valid = ref ml in
    let torn = ref false in
    (try
       while not (B.Reader.at_end r) do
         if B.Reader.remaining r < 8 then raise Exit;
         let len = B.Reader.u32 r in
         let crc = B.Reader.u32 r in
         if len > B.Reader.remaining r then raise Exit;
         let payload = B.Reader.raw r len in
         if crc_int payload <> crc then raise Exit;
         let pr = B.Reader.of_string payload in
         let rc_epoch = B.Reader.i64 pr in
         let rc_mutation = Mutation.read pr in
         if not (B.Reader.at_end pr) then raise Exit;
         records := { rc_epoch; rc_mutation } :: !records;
         valid := B.Reader.pos r
       done
     with Exit | B.Corrupt _ -> torn := true);
    { tl_records = List.rev !records;
      tl_torn = !torn;
      tl_valid_bytes = !valid }
  end

let read_file path =
  if not (Sys.file_exists path) then empty_tail
  else scan (In_channel.with_open_bin path In_channel.input_all)

(* ---- the append handle --------------------------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : fsync_policy;
  mutable size : int;
  mutable since_sync : int;
  mutable appends : int;
  mutable fsyncs : int;
  append_ns : Telemetry.Histogram.t option;  (* shared observability *)
  fsync_ns : Telemetry.Histogram.t option;
}

let open_append ?(fsync = Every 8) ?append_ns ?fsync_ns path =
  (match fsync with
  | Every n when n < 1 -> invalid_arg "Wal.open_append: Every must be >= 1"
  | _ -> ());
  let tail = read_file path in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let size =
    if tail.tl_valid_bytes = 0 then begin
      (* fresh file, or one whose very magic is damaged: start over *)
      Unix.ftruncate fd 0;
      ignore (Unix.write_substring fd magic 0 (String.length magic));
      String.length magic
    end
    else begin
      (* drop any torn tail so new appends extend the valid prefix *)
      Unix.ftruncate fd tail.tl_valid_bytes;
      ignore (Unix.lseek fd tail.tl_valid_bytes Unix.SEEK_SET);
      tail.tl_valid_bytes
    end
  in
  { path; fd; fsync; size; since_sync = 0; appends = 0; fsyncs = 0;
    append_ns; fsync_ns }

let observe hist since =
  match hist with
  | None -> ()
  | Some h ->
    Telemetry.Histogram.record h (Telemetry.Clock.elapsed_ns ~since)

let sync t =
  let t0 = Telemetry.Clock.now_ns () in
  Unix.fsync t.fd;
  observe t.fsync_ns t0;
  t.fsyncs <- t.fsyncs + 1;
  t.since_sync <- 0

let append t ~epoch mutation =
  let t0 = Telemetry.Clock.now_ns () in
  let pw = B.Writer.create () in
  B.Writer.i64 pw epoch;
  Mutation.write pw mutation;
  let payload = B.Writer.contents pw in
  let w = B.Writer.create ~initial_size:(String.length payload + 8) () in
  B.Writer.u32 w (String.length payload);
  B.Writer.u32 w (crc_int payload);
  B.Writer.raw w payload;
  let frame = B.Writer.contents w in
  (* one write() per record: the kernel has the whole frame even if the
     process dies right after, and a crash mid-call tears at most this
     final record — which the scan detects and drops *)
  let n = Unix.write_substring t.fd frame 0 (String.length frame) in
  assert (n = String.length frame);
  t.size <- t.size + n;
  t.appends <- t.appends + 1;
  t.since_sync <- t.since_sync + 1;
  (* append latency covers frame + write, not the policy's fsync —
     fsync cost has its own distribution *)
  observe t.append_ns t0;
  (match t.fsync with
  | Always -> sync t
  | Every k -> if t.since_sync >= k then sync t
  | Never -> ());
  n

(* ---- incremental tailing ------------------------------------------- *)

(* A poll-based reader over a WAL file someone else is appending to —
   the replication sender's view of its own leader's log.  Each [poll]
   stats the file and decodes only the bytes past the reader's offset,
   so a long-lived tail never re-scans history.

   The offset advances over complete, CRC-valid frames only.  A
   trailing frame that fails its checks is *not* skipped and *not*
   remembered as bad: the writer may simply not have finished its
   single [write] yet, so the suffix is re-validated from the same
   offset on every poll until it completes (or is truncated away).
   This is the fix for the one-shot torn-tail judgement [scan] makes:
   a scan decides "torn" once, a tail must keep re-checking.

   A file that shrinks — compaction's [reset], or a superseding
   lineage — cannot be tailed through: the reader rewinds and reports
   [Reset] so the consumer can resynchronize (for replication, resend
   the newest snapshot). *)
module Tail_reader = struct
  type poll_result =
    | Frames of record list  (** new complete records, in append order *)
    | Reset  (** the file shrank or vanished: resynchronize *)
    | Nothing  (** no complete new frame yet *)

  type reader = {
    tr_path : string;
    mutable tr_offset : int;  (* next unread byte; 0 = magic unchecked *)
  }

  let create path = { tr_path = path; tr_offset = 0 }
  let offset r = r.tr_offset

  let read_span path ~pos ~len =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        ignore (Unix.lseek fd pos Unix.SEEK_SET);
        let buf = Bytes.create len in
        let got = ref 0 in
        (try
           while !got < len do
             let n = Unix.read fd buf !got (len - !got) in
             if n = 0 then raise Exit;
             got := !got + n
           done
         with Exit -> ());
        Bytes.sub_string buf 0 !got)

  (* Decode complete frames from [data]; returns them with the byte
     count consumed.  An incomplete or invalid suffix consumes
     nothing of itself. *)
  let decode_frames data =
    let r = B.Reader.of_string data in
    let records = ref [] in
    let consumed = ref 0 in
    (try
       while not (B.Reader.at_end r) do
         if B.Reader.remaining r < 8 then raise Exit;
         let len = B.Reader.u32 r in
         let crc = B.Reader.u32 r in
         if len > B.Reader.remaining r then raise Exit;
         let payload = B.Reader.raw r len in
         if crc_int payload <> crc then raise Exit;
         let pr = B.Reader.of_string payload in
         let rc_epoch = B.Reader.i64 pr in
         let rc_mutation = Mutation.read pr in
         if not (B.Reader.at_end pr) then raise Exit;
         records := { rc_epoch; rc_mutation } :: !records;
         consumed := B.Reader.pos r
       done
     with Exit | B.Corrupt _ -> ());
    (List.rev !records, !consumed)

  let poll r =
    let ml = String.length magic in
    match Unix.stat r.tr_path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      if r.tr_offset > 0 then begin
        r.tr_offset <- 0;
        Reset
      end
      else Nothing
    | st ->
      let size = st.Unix.st_size in
      if size < r.tr_offset then begin
        (* shrank below what we already consumed: a WAL reset *)
        r.tr_offset <- 0;
        Reset
      end
      else if r.tr_offset = 0 && size < ml then Nothing  (* magic pending *)
      else begin
        let start = if r.tr_offset = 0 then 0 else r.tr_offset in
        let data = read_span r.tr_path ~pos:start ~len:(size - start) in
        let base, data =
          if r.tr_offset = 0 then
            if String.length data >= ml && String.sub data 0 ml = magic then
              (ml, String.sub data ml (String.length data - ml))
            else (0, "")  (* header damaged: treat as resync *)
          else (start, data)
        in
        if base = 0 then Reset
        else begin
          let records, consumed = decode_frames data in
          r.tr_offset <- base + consumed;
          if records = [] then Nothing else Frames records
        end
      end
end

let reset t =
  Unix.ftruncate t.fd (String.length magic);
  ignore (Unix.lseek t.fd (String.length magic) Unix.SEEK_SET);
  t.size <- String.length magic;
  t.since_sync <- 0

let size t = t.size
let path t = t.path
let appends t = t.appends
let fsyncs t = t.fsyncs
let close t = Unix.close t.fd
