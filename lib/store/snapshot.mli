(** Versioned binary snapshots of a session's durable state.

    Container layout (all integers little-endian):
    {v
    "CXLSNAP0"              8-byte magic
    u32 format_version      currently 1
    u32 section_count
    section*:  u8 tag | u32 payload_len | u32 crc32(payload) | payload
    v}

    Sections: [1] meta (session name, epoch, protocol version),
    [2] graph (the {!Chg.Binary} graph codec), [5] the whole compiled
    table as a position-independent image ({!Lookup_core.Packed}) whose
    64-bit word area the writer pads to an 8-aligned file offset —
    what {!open_mapped} serves zero-copy from a [Bigarray] mapping and
    {!decode} reads byte-at-a-time.  Legacy column sections are still
    decoded: tag [4] (per-column packed codec) and tag [3] (boxed
    {!Lookup_core.Verdict_io}, packed on load).  Unknown tags are
    CRC-checked and skipped, so later format minors can add sections
    without breaking this reader; a major layout change bumps
    [format_version] and is rejected.

    Every section carries its own CRC-32: a flipped bit anywhere turns
    {!decode} into an [Error], never into a wrong hierarchy.  Columns
    are positional over class ids, so decode rejects any column whose
    class count disagrees with the graph section. *)

type t = {
  s_session : string;
  s_epoch : int;  (** mutations applied when the snapshot was taken *)
  s_protocol : string;  (** the rpc protocol version that wrote it *)
  s_graph : Chg.Graph.t;
  s_columns : (string * Lookup_core.Packed.column) list;
      (** compiled verdict columns resident at snapshot time — restoring
          them is what makes a warm start skip recomputation *)
}

val format_version : int

val encode : t -> string

val decode : string -> (t, string) result

(** [write_file path t] writes atomically (temp file + [rename]), with
    an [fsync] of the file and a best-effort [fsync] of its directory;
    returns the byte size. *)
val write_file : string -> t -> int

val read_file : string -> (t, string) result

(** [open_mapped ?verify path] restores with the table columns served
    {e in place} from a memory-mapped view of the snapshot file: only
    the small meta and graph sections are decoded; the table image's
    word area is mapped read-only, so restore cost is O(1) page-in
    regardless of table size.  [verify] (default [true]) additionally
    streams the image payload once to check its section CRC; [false]
    trusts the probe word, the O(m) structural validation, and the
    views' per-access bounds checks.

    Returns [Error] — and the caller should fall back to
    {!read_file} — when the snapshot predates the image section (tags
    3/4), the word area is misaligned, the filesystem refuses the
    mapping, or any validation fails.  The mapping stays valid after
    this call returns (the fd is closed; the pages are not).  The
    returned columns are immutable views: mutations materialize to the
    heap, never write through. *)
val open_mapped : ?verify:bool -> string -> (t, string) result
