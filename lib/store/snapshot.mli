(** Versioned binary snapshots of a session's durable state.

    Container layout (all integers little-endian):
    {v
    "CXLSNAP0"              8-byte magic
    u32 format_version      currently 1
    u32 section_count
    section*:  u8 tag | u32 payload_len | u32 crc32(payload) | payload
    v}

    Sections: [1] meta (session name, epoch, protocol version),
    [2] graph (the {!Chg.Binary} graph codec), [4] compiled columns in
    the packed representation (member name + {!Lookup_core.Packed}
    column each — the same flat arrays that serve queries, dumped with
    no re-encode).  Tag [3], the legacy boxed
    {!Lookup_core.Verdict_io} column codec, is still decoded (packed on
    load) so pre-packing snapshots restore.  Unknown tags are
    CRC-checked and skipped, so later format minors can add sections
    without breaking this reader; a major layout change bumps
    [format_version] and is rejected.

    Every section carries its own CRC-32: a flipped bit anywhere turns
    {!decode} into an [Error], never into a wrong hierarchy.  Columns
    are positional over class ids, so decode rejects any column whose
    class count disagrees with the graph section. *)

type t = {
  s_session : string;
  s_epoch : int;  (** mutations applied when the snapshot was taken *)
  s_protocol : string;  (** the rpc protocol version that wrote it *)
  s_graph : Chg.Graph.t;
  s_columns : (string * Lookup_core.Packed.column) list;
      (** compiled verdict columns resident at snapshot time — restoring
          them is what makes a warm start skip recomputation *)
}

val format_version : int

val encode : t -> string

val decode : string -> (t, string) result

(** [write_file path t] writes atomically (temp file + [rename]), with
    an [fsync] of the file and a best-effort [fsync] of its directory;
    returns the byte size. *)
val write_file : string -> t -> int

val read_file : string -> (t, string) result
