(* This file is the library's root module, so the pieces are re-exported
   here: [Store.Wal], [Store.Snapshot], [Store.Mutation]. *)
module Mutation = Mutation
module Snapshot = Snapshot
module Wal = Wal

type mmap_mode = [ `Off | `Verify | `Fast ]

type config = {
  fsync : Wal.fsync_policy;
  compact_bytes : int;
  keep_snapshots : int;
  mmap_restore : mmap_mode;
}

let default_config =
  { fsync = Wal.Every 8;
    compact_bytes = 1 lsl 20;
    keep_snapshots = 2;
    mmap_restore = `Verify }

type t = {
  dir : string;
  config : config;
  wals : (string, Wal.t) Hashtbl.t;  (* by session name *)
  snapshots_written : Telemetry.Counter.t;
  snapshot_bytes : Telemetry.Counter.t;
  wal_appends : Telemetry.Counter.t;
  wal_append_bytes : Telemetry.Counter.t;
  wal_fsyncs : Telemetry.Counter.t;
  recoveries : Telemetry.Counter.t;
  replayed_records : Telemetry.Counter.t;
  torn_records_skipped : Telemetry.Counter.t;
  compactions : Telemetry.Counter.t;
  mmap_restores : Telemetry.Counter.t;
  (* latency distributions, shared by every session WAL under this store *)
  wal_append_ns : Telemetry.Histogram.t;
  wal_fsync_ns : Telemetry.Histogram.t;
  snapshot_write_ns : Telemetry.Histogram.t;
  snapshot_restore_ns : Telemetry.Histogram.t;
  mmap_restore_ns : Telemetry.Histogram.t;
}

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go path

let open_dir ?(config = default_config) dir =
  if config.compact_bytes < 1 then
    invalid_arg "Store.open_dir: compact_bytes must be >= 1";
  if config.keep_snapshots < 1 then
    invalid_arg "Store.open_dir: keep_snapshots must be >= 1";
  mkdir_p dir;
  { dir;
    config;
    wals = Hashtbl.create 8;
    snapshots_written = Telemetry.Counter.make "store_snapshots_written";
    snapshot_bytes = Telemetry.Counter.make "store_snapshot_bytes";
    wal_appends = Telemetry.Counter.make "store_wal_appends";
    wal_append_bytes = Telemetry.Counter.make "store_wal_append_bytes";
    wal_fsyncs = Telemetry.Counter.make "store_wal_fsyncs";
    recoveries = Telemetry.Counter.make "store_recoveries";
    replayed_records = Telemetry.Counter.make "store_replayed_records";
    torn_records_skipped = Telemetry.Counter.make "store_torn_records_skipped";
    compactions = Telemetry.Counter.make "store_compactions";
    mmap_restores = Telemetry.Counter.make "store_mmap_restores";
    wal_append_ns = Telemetry.Histogram.create ();
    wal_fsync_ns = Telemetry.Histogram.create ();
    snapshot_write_ns = Telemetry.Histogram.create ();
    snapshot_restore_ns = Telemetry.Histogram.create ();
    mmap_restore_ns = Telemetry.Histogram.create () }

let dir t = t.dir
let config t = t.config

(* Session names come off the wire, so their directory form is escaped:
   alphanumerics, '-', '_' and '.' pass through, anything else becomes
   %XX.  The escaping is injective, so distinct sessions never collide. *)
let encode_session name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' ->
        Buffer.add_char buf c
      | '.' when Buffer.length buf > 0 -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  Buffer.contents buf

let decode_session enc =
  let buf = Buffer.create (String.length enc) in
  let n = String.length enc in
  let rec go i =
    if i < n then
      if enc.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf
          (Char.chr (int_of_string ("0x" ^ String.sub enc (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf enc.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let session_dir t name = Filename.concat t.dir (encode_session name)
let wal_path t name = Filename.concat (session_dir t name) "wal.log"

let snap_name epoch = Printf.sprintf "snap-%010d.snap" epoch

let snap_epoch_of_name file =
  if String.length file = 20
     && String.sub file 0 5 = "snap-"
     && Filename.check_suffix file ".snap"
  then int_of_string_opt (String.sub file 5 10)
  else None

(* Snapshot files for one session, newest (highest epoch) first. *)
let snapshot_files t name =
  let d = session_dir t name in
  if not (Sys.file_exists d) then []
  else
    Sys.readdir d |> Array.to_list
    |> List.filter_map (fun f ->
           match snap_epoch_of_name f with
           | Some e -> Some (e, Filename.concat d f)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let newest_snapshot t name =
  match snapshot_files t name with [] -> None | newest :: _ -> Some newest

let sessions t =
  if not (Sys.file_exists t.dir) then []
  else
    Sys.readdir t.dir |> Array.to_list
    |> List.filter (fun f -> Sys.is_directory (Filename.concat t.dir f))
    |> List.map decode_session
    |> List.filter (fun name -> snapshot_files t name <> [])
    |> List.sort compare

let wal t name =
  match Hashtbl.find_opt t.wals name with
  | Some w -> w
  | None ->
    mkdir_p (session_dir t name);
    let w =
      Wal.open_append ~fsync:t.config.fsync ~append_ns:t.wal_append_ns
        ~fsync_ns:t.wal_fsync_ns (wal_path t name)
    in
    Hashtbl.add t.wals name w;
    w

(* ---- recovery ------------------------------------------------------ *)

type recovery = {
  rv_snapshot : Snapshot.t;
  rv_replayed : Wal.record list;
  rv_torn : bool;
  rv_stale_snapshots : int;  (** newer snapshot files that failed to decode *)
}

let recovered_epoch rv =
  match List.rev rv.rv_replayed with
  | last :: _ -> last.Wal.rc_epoch
  | [] -> rv.rv_snapshot.Snapshot.s_epoch

(* The newest snapshot that decodes wins; a damaged newer file only
   costs the mutations since the previous snapshot — which the WAL
   still holds, because compaction truncates it only after a snapshot
   write succeeds. *)
let recover t name =
  match snapshot_files t name with
  | [] -> Ok None
  | files ->
    let rec pick skipped = function
      | [] ->
        Error
          (Printf.sprintf "session %S: no snapshot of %d decodes" name
             (List.length files))
      | (_, path) :: rest ->
        let t0 = Telemetry.Clock.now_ns () in
        (* mmap first when configured: O(1) page-in, with the decode
           path as fallback for legacy snapshots or unmappable files *)
        let mapped =
          match t.config.mmap_restore with
          | `Off -> Error "mmap restore disabled"
          | `Verify -> Snapshot.open_mapped ~verify:true path
          | `Fast -> Snapshot.open_mapped ~verify:false path
        in
        (match mapped with
        | Ok s ->
          let dt = Telemetry.Clock.elapsed_ns ~since:t0 in
          Telemetry.Histogram.record t.mmap_restore_ns dt;
          Telemetry.Histogram.record t.snapshot_restore_ns dt;
          Telemetry.Counter.incr t.mmap_restores;
          Ok (s, skipped)
        | Error _ ->
          (match Snapshot.read_file path with
          | Ok s ->
            Telemetry.Histogram.record t.snapshot_restore_ns
              (Telemetry.Clock.elapsed_ns ~since:t0);
            Ok (s, skipped)
          | Error _ -> pick (skipped + 1) rest))
    in
    (match pick 0 files with
    | Error e -> Error e
    | Ok (snap, skipped) ->
      let tail = Wal.read_file (wal_path t name) in
      (* replay strictly increasing epochs past the snapshot: records at
         or below it are pre-compaction leftovers (crash between
         snapshot write and WAL reset), never replayed twice *)
      let replayed, _ =
        List.fold_left
          (fun (acc, prev) (r : Wal.record) ->
            if r.Wal.rc_epoch = prev + 1 then (r :: acc, r.Wal.rc_epoch)
            else (acc, prev))
          ([], snap.Snapshot.s_epoch)
          tail.Wal.tl_records
      in
      let rv =
        { rv_snapshot = snap;
          rv_replayed = List.rev replayed;
          rv_torn = tail.Wal.tl_torn;
          rv_stale_snapshots = skipped }
      in
      Telemetry.Counter.incr t.recoveries;
      Telemetry.Counter.add t.replayed_records (List.length rv.rv_replayed);
      if rv.rv_torn then Telemetry.Counter.incr t.torn_records_skipped;
      Ok (Some rv))

(* ---- writing ------------------------------------------------------- *)

let log_mutation t ~session ~epoch m =
  let w = wal t session in
  let fsyncs_before = Wal.fsyncs w in
  let bytes = Wal.append w ~epoch m in
  Telemetry.Counter.incr t.wal_appends;
  Telemetry.Counter.add t.wal_append_bytes bytes;
  Telemetry.Counter.add t.wal_fsyncs (Wal.fsyncs w - fsyncs_before)

let prune_snapshots t name =
  snapshot_files t name
  |> List.filteri (fun i _ -> i >= t.config.keep_snapshots)
  |> List.iter (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())

let write_snapshot t snap =
  let name = snap.Snapshot.s_session in
  mkdir_p (session_dir t name);
  let path =
    Filename.concat (session_dir t name) (snap_name snap.Snapshot.s_epoch)
  in
  let t0 = Telemetry.Clock.now_ns () in
  let bytes = Snapshot.write_file path snap in
  Telemetry.Histogram.record t.snapshot_write_ns
    (Telemetry.Clock.elapsed_ns ~since:t0);
  (* order matters: records become redundant only once the snapshot is
     safely on disk, so the WAL resets strictly after the rename *)
  Wal.reset (wal t name);
  prune_snapshots t name;
  Telemetry.Counter.incr t.snapshots_written;
  Telemetry.Counter.add t.snapshot_bytes bytes;
  bytes

(* A fresh [open] under a stored name supersedes the old lineage: its
   snapshots must go, or recovery would prefer their higher epochs over
   the new epoch-0 snapshot. *)
let reset_session t name =
  List.iter
    (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())
    (snapshot_files t name);
  (match Hashtbl.find_opt t.wals name with
  | Some w -> Wal.reset w
  | None ->
    let p = wal_path t name in
    if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())

let wal_size t ~session =
  match Hashtbl.find_opt t.wals session with
  | Some w -> Wal.size w
  | None ->
    (try (Unix.stat (wal_path t session)).Unix.st_size with
    | Unix.Unix_error (Unix.ENOENT, _, _) -> 0)

let needs_compaction t ~session = wal_size t ~session > t.config.compact_bytes

let note_compaction t = Telemetry.Counter.incr t.compactions

let sync t = Hashtbl.iter (fun _ w -> Wal.sync w) t.wals

let close t =
  Hashtbl.iter (fun _ w -> Wal.close w) t.wals;
  Hashtbl.reset t.wals

let counters t =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    [ t.snapshots_written; t.snapshot_bytes; t.wal_appends;
      t.wal_append_bytes; t.wal_fsyncs; t.recoveries; t.replayed_records;
      t.torn_records_skipped; t.compactions; t.mmap_restores ]

let histograms t =
  [ ("wal_append_ns", t.wal_append_ns);
    ("wal_fsync_ns", t.wal_fsync_ns);
    ("snapshot_write_ns", t.snapshot_write_ns);
    ("snapshot_restore_ns", t.snapshot_restore_ns);
    ("mmap_restore_ns", t.mmap_restore_ns) ]

(* Exposition names: store_<counter> already carries its subsystem, the
   renderer adds the cxxlookup_ prefix and _total suffix for counters. *)
let register t registry =
  List.iter
    (fun c ->
      Telemetry.Registry.attach_counter registry
        ~help:
          (Printf.sprintf "Store counter %s (lifetime of this process)."
             (Telemetry.Counter.name c))
        (Printf.sprintf "cxxlookup_%s_total" (Telemetry.Counter.name c))
        c)
    [ t.snapshots_written; t.snapshot_bytes; t.wal_appends;
      t.wal_append_bytes; t.wal_fsyncs; t.recoveries; t.replayed_records;
      t.torn_records_skipped; t.compactions; t.mmap_restores ];
  List.iter
    (fun (name, h) ->
      Telemetry.Registry.attach_histogram registry
        ~help:(Printf.sprintf "Store %s latency distribution."
                 (String.concat " " (String.split_on_char '_' name)))
        (Printf.sprintf "cxxlookup_store_%s" name)
        h)
    (histograms t)
