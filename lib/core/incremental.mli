(** An incrementally maintained lookup table.

    The eager algorithm processes classes in topological order, and a
    class's verdicts depend only on its direct bases' verdicts — so when
    a program is processed declaration by declaration (as a compiler or
    an IDE does), each new class costs only its own row:
    [O(Members[C] * (1 + indegree))] amortized, never recomputing earlier
    classes.  The closure information the dominance test needs (the
    virtual-bases sets) is equally monotone and is grown in place.

    The table agrees with {!Engine.build} on the frozen graph after every
    insertion (property-tested). *)

type t

(** [create ?static_rule ?metrics ()] is an empty hierarchy.

    [metrics] (default {!Metrics.disabled}) counts per-row cost
    ([incr_rows] / [incr_row_members]: verdicts computed for each added
    class) and closure growth ([incr_closure_bits]: bits in the new
    row's bases and virtual-bases sets), plus the shared propagation
    units of each row's combines. *)
val create : ?static_rule:bool -> ?metrics:Metrics.t -> unit -> t

(** [add_class t name ~bases ~members] declares a class (bases must
    already be declared, as in C++) and computes its lookup-table row.
    @raise Chg.Graph.Error like the graph builder on ill-formed input. *)
val add_class :
  t ->
  string ->
  bases:(string * Chg.Graph.edge_kind * Chg.Graph.access) list ->
  members:Chg.Graph.member list ->
  Chg.Graph.class_id

(** [add_member t cls m] adds member [m] to the already-declared class
    [cls] and repairs the resident table: only [m]'s column can change,
    and only at [cls] and its derived classes, so one increasing sweep
    over those rows (bases-first, since ids are a topological order)
    recomputes exactly the affected entries —
    [O(affected * (1 + indegree))] combines, never the whole table.
    Returns the number of rows recomputed (the service layer reports it
    and uses it to invalidate compiled tables).
    @raise Chg.Graph.Error on unknown class or duplicate member. *)
val add_member : t -> string -> Chg.Graph.member -> int

(** [lookup t c m] — same verdicts as the eager engine. *)
val lookup : t -> Chg.Graph.class_id -> string -> Engine.verdict option

(** [resolves_to t c m] is the declaring class of an unambiguous lookup. *)
val resolves_to : t -> Chg.Graph.class_id -> string -> Chg.Graph.class_id option

(** [num_classes t] is the number of classes added so far. *)
val num_classes : t -> int

(** [find t name] is the id of a declared class.
    @raise Not_found if absent. *)
val find : t -> string -> Chg.Graph.class_id

(** [snapshot t] freezes the current hierarchy as a plain graph (used by
    tests to compare against the batch engine). *)
val snapshot : t -> Chg.Graph.t
