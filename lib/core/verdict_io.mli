(** Binary codec for engine verdicts — the payload of the durable
    store's compiled-column snapshot sections.

    A verdict is closed data over class ids ({!Abstraction.red} /
    {!Abstraction.lv}), so the encoding is positional and carries no
    names; a decoded column is only meaningful against the graph whose
    snapshot it was written next to (the store's CRC-framed sections
    keep them together). *)

val write : Chg.Binary.Writer.t -> Engine.verdict option -> unit

(** @raise Chg.Binary.Corrupt on malformed input *)
val read : Chg.Binary.Reader.t -> Engine.verdict option

(** Whole columns (verdict per class id, as promoted by the service's
    table cache). *)

val write_column : Chg.Binary.Writer.t -> Engine.verdict option array -> unit

val read_column : Chg.Binary.Reader.t -> Engine.verdict option array
