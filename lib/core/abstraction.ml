type lv = Omega | Lv of Chg.Graph.class_id
type red = { r_ldc : Chg.Graph.class_id; r_lvs : lv list }

let o v x kind =
  match v with
  | Lv _ -> v
  | Omega ->
    (match kind with Chg.Graph.Virtual -> Lv x | Chg.Graph.Non_virtual -> Omega)

let lv_equal a b =
  match (a, b) with
  | Omega, Omega -> true
  | Lv x, Lv y -> x = y
  | Omega, Lv _ | Lv _, Omega -> false

let lv_compare a b =
  match (a, b) with
  | Omega, Omega -> 0
  | Omega, Lv _ -> -1
  | Lv _, Omega -> 1
  | Lv x, Lv y -> compare x y

let extend_red r x kind =
  (* [o] is monotone w.r.t. lv_compare only trivially; re-sort to keep the
     invariant.  Two distinct Lv values never merge under [o] (it only
     rewrites Omega), so uniqueness is preserved except for Omegas all
     mapping to the same Lv x. *)
  { r with r_lvs = List.sort_uniq lv_compare (List.map (fun v -> o v x kind) r.r_lvs) }

(* [o] only rewrites Ω, and a sorted deduped list carries Ω at most once,
   at its head.  So extending a whole blue set is the identity unless the
   edge is virtual and Ω is present, in which case Ω becomes [Lv x]: a
   single ordered insertion into the (still sorted) Lv tail. *)
let extend_blue s x kind =
  match (s, kind) with
  | Omega :: rest, Chg.Graph.Virtual ->
    let rec insert = function
      | [] -> [ Lv x ]
      | Lv y :: _ as l when y > x -> Lv x :: l
      | (Lv y :: _) as l when y = x -> l
      | hd :: tl -> hd :: insert tl
    in
    insert rest
  | _ -> s

type vbase = Chg.Graph.class_id -> Chg.Graph.class_id -> bool

let dominates1 vbase (l1, v1) (_l2, v2) =
  (match v2 with
  | Lv x -> vbase x l1
  | Omega -> false)
  || (lv_equal v1 v2 && v1 <> Omega)

let dominates_blue vbase (l, vs) b =
  match b with
  | Lv x -> vbase x l || List.exists (lv_equal b) vs
  | Omega -> false

let abstract_path p =
  { r_ldc = Subobject.Path.ldc p;
    r_lvs =
      [ (match Subobject.Path.least_virtual p with
        | None -> Omega
        | Some c -> Lv c) ] }

let pp_lv g ppf = function
  | Omega -> Format.pp_print_string ppf "Ω"
  | Lv c -> Format.pp_print_string ppf (Chg.Graph.name g c)

let pp_red g ppf r =
  match r.r_lvs with
  | [ v ] ->
    Format.fprintf ppf "(%s, %a)" (Chg.Graph.name g r.r_ldc) (pp_lv g) v
  | vs ->
    Format.fprintf ppf "(%s, {%a})"
      (Chg.Graph.name g r.r_ldc)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_lv g))
      vs
