(** Packed verdict columns and multicore column compilation.

    The eager engine's table boxes every entry
    ([Absent | Verdict of ...] with list-spined lv sets): ~6–10 heap
    words per resolved member, pointer chasing on every query.  This
    module is the query-serving representation: a member's whole column
    is two flat [int array]s — one tagged immediate entry per class,
    plus a shared arena for the rare multi-lv verdicts — so the common
    red verdict costs one array load and no allocation to classify.

    {2 Column format}

    An entry's low 2 bits are the tag; [n] is the class count and lv
    codes map [Ω ↦ n], [Lv c ↦ c] (no class id can be [n], so the
    coding is unambiguous within a column):

    - tag 0, absent: the entry is [0].
    - tag 1, red with a singleton lv group:
      [(ldc * (n+1) + lv) << 2 | 1] — fully immediate.
    - tag 2, red with a Section-6 group: [(off << 2) | 2], arena slice
      [\[ldc; len; lv codes...\]] at [off].
    - tag 3, blue: [(off << 2) | 3], arena slice [\[len; lv codes...\]].

    Arena slices keep the canonical verdict order
    ({!Abstraction.lv_compare}: Ω first, then increasing class ids), so
    equal verdicts pack to identical bits and a whole table's encoding
    is a deterministic function of its verdicts — the property the
    parallel build's determinism contract (DESIGN.md) rests on.

    Conversion to and from the boxed engine is lossless (modulo witness
    paths, which the boxed table only carries under [~witnesses:true]).

    {2 Views and the table image}

    A column's flat sequences live either on the OCaml heap or as a
    zero-copy view over an external word buffer — a {!buf} Bigarray,
    typically memory-mapped over a snapshot file's table-image section.
    Views answer {!column_get}/{!column_color}/{!column_resolves_to}
    through the same accessors as heap columns (with bounds checks so a
    corrupt mapping cannot read outside the buffer); {!column_append}
    materializes back to the heap.  {!write_image} lays a whole table
    out position-independently (8-aligned little-endian words, offsets
    not pointers) so {!map_image} can serve it in place — the O(1)
    restore path — while {!read_image} decodes the same bytes into heap
    columns when mapping is unavailable.

    {2 Parallel compilation}

    {!build} compiles member columns on [jobs] OCaml 5 domains.  Columns
    are independent (one topological pass each over the shared read-only
    closure), distributed by an atomic cursor, and written to
    preallocated per-member slots — output is bit-identical for every
    job count and schedule. *)

(** {1 Columns} *)

type column

(** [column_classes col] is [n], the number of classes the column
    covers. *)
val column_classes : column -> int

(** [pack_column col] packs a boxed column ([None] = absent).
    @raise Invalid_argument beyond [2^30 - 1] classes (the red immediate
    must fit a 63-bit int after the 2-bit tag). *)
val pack_column : Engine.verdict option array -> column

val unpack_column : column -> Engine.verdict option array

(** [column_get col c] decodes one entry (allocates the verdict). *)
val column_get : column -> Chg.Graph.class_id -> Engine.verdict option

(** [column_color col c] classifies without allocating. *)
val column_color : column -> Chg.Graph.class_id -> [ `Absent | `Red | `Blue ]

(** [column_resolves_to col c] is the declaring class of an unambiguous
    lookup — the service fast path; no allocation. *)
val column_resolves_to : column -> Chg.Graph.class_id -> Chg.Graph.class_id option

(** [column_resolve_code col c] is the int-only classification the
    binary hot path encodes from: [-1] absent, [-2] ambiguous (blue),
    otherwise the declaring class id of an unambiguous lookup.  Zero
    allocation. *)
val column_resolve_code : column -> Chg.Graph.class_id -> int

(** [column_is_view col] is [true] when the column serves from an
    external buffer ({!map_image}) rather than the OCaml heap. *)
val column_is_view : column -> bool

(** [column_append col v] extends the column with one more class's
    verdict (the service's add_class path).  Lv/ldc codes are
    base-[n+1], so this re-encodes: O(n), same as the boxed
    [Array.append] it replaces. *)
val column_append : column -> Engine.verdict option -> column

(** [column_bytes col] is the column's real resident size in bytes (its
    two flat arrays plus headers) — what a byte budget should charge. *)
val column_bytes : column -> int

(** [boxed_column_bytes col] is what the same column would cost boxed
    (option + verdict + list spine per entry), for packed-vs-boxed
    reporting. *)
val boxed_column_bytes : column -> int

val column_equal : column -> column -> bool

(** {2 Codec}

    Deterministic little-endian layout via {!Chg.Binary}: u32 class
    count, u32 arena length, entries as i64, arena as u32.
    {!read_column} validates every tag, offset and lv code and raises
    {!Chg.Binary.Corrupt} on malformed input. *)

val write_column : Chg.Binary.Writer.t -> column -> unit
val read_column : Chg.Binary.Reader.t -> column

(** [validate_column col] proves [col] well-formed — every tag, arena
    offset, slice bound and lv code — through the accessor layer, so it
    applies to decoded, image-decoded and mapped columns alike.
    @raise Chg.Binary.Corrupt on any violation. *)
val validate_column : ?what:string -> column -> unit

(** {2 The table image}

    A whole table as one position-independent payload whose word area
    can be served in place from a memory-mapped snapshot file.  Layout
    (see the implementation header for the full diagram): a
    byte-addressed prefix (u32-prefixed names blob, u32 pad length,
    zero pad), then little-endian 64-bit words — probe constant, column
    count [m], class count [n], an [m+1]-entry arena directory, [m*n]
    entry words, and the concatenated arenas.  The writer pads so the
    word area lands 8-aligned in the file; the probe word rejects
    endianness/word-size mismatches before any structural read. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [write_image w ~file_offset cols] appends the image payload for
    [cols] to [w], padding for a payload that will start at byte
    [file_offset] of its file so the word area is 8-aligned.
    @raise Invalid_argument when columns disagree on class count. *)
val write_image :
  Chg.Binary.Writer.t -> file_offset:int -> (string * column) list -> unit

(** [read_image r] decodes an image payload into fully validated heap
    columns — the fallback when the file cannot be mapped.
    @raise Chg.Binary.Corrupt on malformed input. *)
val read_image : Chg.Binary.Reader.t -> (string * column) list

(** [image_header r] reads just the byte-addressed prefix: the member
    names and the byte offset of the word area within the payload.
    @raise Chg.Binary.Corrupt on malformed input. *)
val image_header : Chg.Binary.Reader.t -> string array * int

(** [map_image buf ~names] builds zero-copy column views over a mapped
    word area.  Validation is O(m) — probe, dimensions, directory —
    with per-access bounds checks guarding the rest; byte integrity is
    the snapshot CRC's job.
    @raise Chg.Binary.Corrupt when the area is not a valid image. *)
val map_image : buf -> names:string array -> (string * column) list

(** {1 Tables} *)

type t

(** [build ?static_rule ?jobs ?metrics cl] compiles every member's
    packed column.  [static_rule] as in {!Engine.build}.  [jobs]
    (default [1]) is the number of domains; [1] runs inline on the
    calling domain without spawning.  The result is bit-identical for
    every [jobs] value.  [metrics] receives the merged counters of all
    worker domains ({!Metrics.merge_into}); with [jobs > 1] the
    [build] timer spans the whole parallel region (wall clock, not CPU
    time).
    @raise Invalid_argument when [jobs < 1]. *)
val build : ?static_rule:bool -> ?jobs:int -> ?metrics:Metrics.t ->
  Chg.Closure.t -> t

(** [default_jobs ()] is the [CXXLOOKUP_JOBS] environment variable when
    set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [of_engine e] packs a boxed engine's full table; [to_engine t]
    rebuilds a boxed engine (without witness paths).  Both are lossless
    on verdicts: [to_engine (of_engine e)] answers every lookup exactly
    as [e] does. *)
val of_engine : Engine.t -> t

val to_engine : t -> Engine.t

val lookup : t -> Chg.Graph.class_id -> string -> Engine.verdict option
val resolves_to : t -> Chg.Graph.class_id -> string -> Chg.Graph.class_id option

val graph : t -> Chg.Graph.t
val closure : t -> Chg.Closure.t

(** [member_universe t] is the member-name universe in interning
    (first-declaration) order — identical to the eager engine's. *)
val member_universe : t -> string array

val num_members : t -> int
val find_column : t -> string -> column option

(** [columns t] is every (member name, packed column) pair in member-id
    order. *)
val columns : t -> (string * column) list

(** [bytes t] / [boxed_bytes t] total {!column_bytes} resp.
    {!boxed_column_bytes} over all columns. *)
val bytes : t -> int

val boxed_bytes : t -> int

(** [encode t] is the table's canonical byte string (member count, then
    each name + column in member-id order) — the determinism witness:
    two builds of the same hierarchy encode byte-identically regardless
    of [jobs]. *)
val encode : t -> string
