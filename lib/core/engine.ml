open Abstraction

type verdict = Red of Abstraction.red | Blue of Abstraction.lv list

type entry = Absent | Verdict of verdict

type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  member_ids : (string, int) Hashtbl.t;
  member_names : string array;
  table : entry array array;  (* table.(c).(mid) *)
  witness_table : Subobject.Path.t option array array;  (* empty if disabled *)
  member_sets : Chg.Bitset.t array;  (* Members[C] as member-id sets *)
}

(* Both inputs are kept sorted by [lv_compare] and deduplicated (the
   representation invariant of every Blue set), so the union is a single
   linear merge — no [List.sort_uniq] over the concatenation, which
   allocated and re-sorted already-sorted data on every combine. *)
let rec blue_union s1 s2 =
  match (s1, s2) with
  | [], s | s, [] -> s
  | a :: t1, b :: t2 ->
    let c = lv_compare a b in
    if c < 0 then a :: blue_union t1 s2
    else if c > 0 then b :: blue_union s1 t2
    else a :: blue_union t1 t2

let pp_verdict g ppf = function
  | Red r -> Format.fprintf ppf "red %a" (pp_red g) r
  | Blue s ->
    Format.fprintf ppf "blue {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_lv g))
      s

(* One combine step: the verdict for a class from its direct bases'
   verdicts, already pushed through their edges.

   This is Figure 8 lines [14]-[44] reformulated as an explicit
   maximal-set computation, which both matches the paper's candidate scan
   when no static members are involved and handles the Section 6
   extension correctly.  The reformulation is needed because a
   statically-resolved lookup stands for a *group* of subobjects (same
   ldc, different leastVirtual); a definition arriving later may dominate
   some group members and not others, so a single representative (as a
   literal reading of Section 6 would keep) is unsound — the test suite's
   random-static oracle property exposes this.

   Incoming red verdicts are expanded into individual (ldc, lv) dominance
   atoms.  Two atoms with equal (L, V), V ≠ Ω, denote the same subobject
   (their fixed parts are maximal definitions in lookup(V, m) sharing the
   ldc L, hence the same static entity) and are merged; equal (L, Ω)
   atoms from different edges denote distinct subobjects and are kept.

   The verdict is Red iff the maximal atoms all share one ldc L, the
   group is a singleton or m is static in L, and every blue abstraction
   is dominated by some maximal atom.  Otherwise Blue carries the lvs of
   the maximal atoms plus the undominated blues (dominated definitions
   may be dropped by Corollary 1).

   Each dominates1/dominates_blue call is one Lemma-4 constant-time
   probe; [metrics] counts them, along with the verdict colors and the
   red→blue demotions that drive the worst case. *)
let combine ?(metrics = Metrics.disabled) ~vbase ~is_static_at incoming =
  let dom1 a b =
    Metrics.bump metrics metrics.dominance_probes;
    dominates1 vbase a b
  in
  let dom_blue lvs b =
    Metrics.bump metrics metrics.dominance_probes;
    dominates_blue vbase lvs b
  in
  let atoms = ref [] in  (* (ldc, lv, witness) with (l, v<>Ω) deduped *)
  let blues = ref [] in
  List.iter
    (fun (v, w) ->
      match v with
      | Red r ->
        List.iter
          (fun lv ->
            let duplicate =
              lv <> Omega
              && List.exists
                   (fun (l', lv', _) -> l' = r.r_ldc && lv_equal lv' lv)
                   !atoms
            in
            if not duplicate then atoms := (r.r_ldc, lv, w) :: !atoms)
          r.r_lvs
      | Blue s -> blues := blue_union !blues s)
    incoming;
  let atoms = List.rev !atoms in
  let strictly_dominated (l, v, _) =
    List.exists
      (fun (l', v', _) ->
        dom1 (l', v') (l, v) && not (dom1 (l, v) (l', v')))
      atoms
  in
  let maximal = List.filter (fun a -> not (strictly_dominated a)) atoms in
  let resolved =
    match maximal with
    | [] -> None
    | (l, _, w) :: rest ->
      if not (List.for_all (fun (l', _, _) -> l' = l) rest) then None
      else if rest <> [] && not (is_static_at l) then None
      else begin
        let lvs =
          List.sort_uniq lv_compare (List.map (fun (_, v, _) -> v) maximal)
        in
        if List.for_all (dom_blue (l, lvs)) !blues then
          Some ({ r_ldc = l; r_lvs = lvs }, w)
        else None
      end
  in
  match resolved with
  | Some (r, w) ->
    Metrics.bump metrics metrics.red_verdicts;
    (Red r, w)
  | None ->
    let max_lvs =
      List.sort_uniq lv_compare (List.map (fun (_, v, _) -> v) maximal)
    in
    let undominated_blues =
      List.filter
        (fun b ->
          not
            (List.exists (fun (l, v, _) -> dom_blue (l, [ v ]) b) maximal))
        !blues
    in
    Metrics.bump metrics metrics.blue_verdicts;
    if
      Metrics.enabled metrics
      && List.exists (function Red _, _ -> true | _ -> false) incoming
    then Metrics.bump metrics metrics.red_demotions;
    (Blue (blue_union max_lvs undominated_blues), None)

let combine_incoming = combine

let build_general ?(static_rule = true) ?(witnesses = false)
    ?(metrics = Metrics.disabled) cl ~only =
  Telemetry.Timer.span metrics.Metrics.build_timer @@ fun () ->
  let g = Chg.Closure.graph cl in
  let n = Chg.Graph.num_classes g in
  let sink = metrics.Metrics.sink in
  let tracing = Telemetry.Sink.enabled sink in
  (* Intern member names.  When [only] restricts to a single member, the
     universe is that one name. *)
  let member_ids = Hashtbl.create 64 in
  let rev_names = ref [] in
  let intern name =
    match Hashtbl.find_opt member_ids name with
    | Some id -> id
    | None ->
      let id = Hashtbl.length member_ids in
      Hashtbl.add member_ids name id;
      rev_names := name :: !rev_names;
      id
  in
  Telemetry.Span.run metrics.Metrics.spans "intern" (fun () ->
      match only with
      | Some m -> ignore (intern m)
      | None ->
        Chg.Graph.iter_classes g (fun c ->
            List.iter
              (fun (mem : Chg.Graph.member) -> ignore (intern mem.m_name))
              (Chg.Graph.members g c)));
  let num_members = Hashtbl.length member_ids in
  let member_names = Array.of_list (List.rev !rev_names) in
  let member_sets = Array.init n (fun _ -> Chg.Bitset.create num_members) in
  let table = Array.init n (fun _ -> Array.make num_members Absent) in
  let witness_table =
    if witnesses then Array.init n (fun _ -> Array.make num_members None)
    else [||]
  in
  let wanted name =
    match only with None -> true | Some m -> String.equal m name
  in
  let is_static_at mid l =
    static_rule
    &&
    match Chg.Graph.find_member g l member_names.(mid) with
    | Some mem -> Chg.Graph.member_is_static_like mem
    | None -> false
  in
  let class_str c = Telemetry.Event.Str (Chg.Graph.name g c) in
  let verdict_str v =
    Telemetry.Event.Str (Format.asprintf "%a" (pp_verdict g) v)
  in
  (* Class ids are topological (bases before derived): one increasing
     pass implements the paper's traversal. *)
  Telemetry.Span.run metrics.Metrics.spans "propagate" @@ fun () ->
  for c = 0 to n - 1 do
    Metrics.bump metrics metrics.Metrics.classes_visited;
    (* Members[C] := M[C] ∪ (∪_X Members[X])   (Figure 8 lines [7]-[9]) *)
    List.iter
      (fun (mem : Chg.Graph.member) ->
        if wanted mem.m_name then
          Chg.Bitset.add member_sets.(c) (intern mem.m_name))
      (Chg.Graph.members g c);
    List.iter
      (fun (b : Chg.Graph.base) ->
        ignore
          (Chg.Bitset.union_into ~into:member_sets.(c)
             member_sets.(b.b_class)))
      (Chg.Graph.bases g c);
    if tracing then
      Telemetry.Sink.emit sink "visit"
        [ ("class", class_str c);
          ("id", Telemetry.Event.Int c);
          ("members",
           Telemetry.Event.Int (Chg.Bitset.cardinal member_sets.(c))) ];
    Chg.Bitset.iter
      (fun mid ->
        Metrics.bump metrics metrics.Metrics.members_processed;
        let name = member_names.(mid) in
        if Chg.Graph.declares g c name then begin
          (* Lines [11]-[12]: a generated definition kills everything. *)
          table.(c).(mid) <- Verdict (Red { r_ldc = c; r_lvs = [ Omega ] });
          Metrics.bump metrics metrics.Metrics.declared_kills;
          Metrics.bump metrics metrics.Metrics.red_verdicts;
          if tracing then
            Telemetry.Sink.emit sink "declare"
              [ ("class", class_str c);
                ("member", Telemetry.Event.Str name) ];
          if witnesses then
            witness_table.(c).(mid) <- Some (Subobject.Path.trivial c)
        end
        else begin
          let incoming =
            List.concat_map
              (fun (b : Chg.Graph.base) ->
                let x = b.b_class in
                Metrics.bump metrics metrics.Metrics.edge_traversals;
                if not (Chg.Bitset.mem member_sets.(x) mid) then []
                else begin
                  let contribution =
                    match table.(x).(mid) with
                    | Absent -> []
                    | Verdict (Red r) ->
                      Metrics.bump_n metrics metrics.Metrics.o_extensions
                        (List.length r.r_lvs);
                      let w =
                        if witnesses then
                          Option.map
                            (fun p -> Subobject.Path.extend p b.b_kind c)
                            witness_table.(x).(mid)
                        else None
                      in
                      [ (Red (extend_red r x b.b_kind), w) ]
                    | Verdict (Blue s) ->
                      Metrics.bump_n metrics metrics.Metrics.o_extensions
                        (List.length s);
                      [ (Blue (extend_blue s x b.b_kind), None) ]
                  in
                  (if tracing then
                     match contribution with
                     | [] -> ()
                     | (v, _) :: _ ->
                       Telemetry.Sink.emit sink "flow"
                         [ ("from", class_str x);
                           ("to", class_str c);
                           ("via",
                            Telemetry.Event.Str
                              (match b.b_kind with
                              | Chg.Graph.Virtual -> "virtual"
                              | Chg.Graph.Non_virtual -> "non-virtual"));
                           ("member", Telemetry.Event.Str name);
                           ("verdict", verdict_str v) ]);
                  contribution
                end)
              (Chg.Graph.bases g c)
          in
          let v, w =
            combine ~metrics ~vbase:(Chg.Closure.is_virtual_base cl)
              ~is_static_at:(is_static_at mid) incoming
          in
          table.(c).(mid) <- Verdict v;
          if tracing then
            Telemetry.Sink.emit sink "verdict"
              [ ("class", class_str c);
                ("member", Telemetry.Event.Str name);
                ("color",
                 Telemetry.Event.Str
                   (match v with Red _ -> "red" | Blue _ -> "blue"));
                ("verdict", verdict_str v) ];
          if witnesses then witness_table.(c).(mid) <- w
        end)
      member_sets.(c)
  done;
  { g; cl; member_ids; member_names; table; witness_table; member_sets }

let build ?static_rule ?witnesses ?metrics cl =
  build_general ?static_rule ?witnesses ?metrics cl ~only:None

let build_member ?static_rule ?witnesses ?metrics cl m =
  build_general ?static_rule ?witnesses ?metrics cl ~only:(Some m)

let lookup t c m =
  match Hashtbl.find_opt t.member_ids m with
  | None -> None
  | Some mid ->
    (match t.table.(c).(mid) with Absent -> None | Verdict v -> Some v)

let witness t c m =
  if Array.length t.witness_table = 0 then None
  else
    match Hashtbl.find_opt t.member_ids m with
    | None -> None
    | Some mid -> t.witness_table.(c).(mid)

let resolves_to t c m =
  match lookup t c m with
  | Some (Red r) -> Some r.r_ldc
  | Some (Blue _) | None -> None

let members t c =
  List.map (fun mid -> t.member_names.(mid))
    (Chg.Bitset.elements t.member_sets.(c))

let graph t = t.g
let closure t = t.cl

let member_universe t = Array.copy t.member_names

let column t m =
  let n = Chg.Graph.num_classes t.g in
  match Hashtbl.find_opt t.member_ids m with
  | None -> Array.make n None
  | Some mid ->
    Array.init n (fun c ->
        match t.table.(c).(mid) with Absent -> None | Verdict v -> Some v)

(* Rebuild an engine value from per-member columns (the packed
   representation's [to_engine] path).  The member sets are implied by
   the table: a name is in Members[C] exactly when its entry is not
   Absent — the build loop writes a verdict for every member of
   member_sets.(c) and nothing else. *)
let of_columns cl ~names ~columns =
  let g = Chg.Closure.graph cl in
  let n = Chg.Graph.num_classes g in
  let num_members = Array.length names in
  if Array.length columns <> num_members then
    invalid_arg "Engine.of_columns: names/columns length mismatch";
  let member_ids = Hashtbl.create (max 16 num_members) in
  Array.iteri (fun mid name -> Hashtbl.replace member_ids name mid) names;
  let member_sets = Array.init n (fun _ -> Chg.Bitset.create num_members) in
  let table = Array.init n (fun _ -> Array.make num_members Absent) in
  Array.iteri
    (fun mid col ->
      if Array.length col <> n then
        invalid_arg "Engine.of_columns: column length mismatch";
      Array.iteri
        (fun c v ->
          match v with
          | None -> ()
          | Some v ->
            table.(c).(mid) <- Verdict v;
            Chg.Bitset.add member_sets.(c) mid)
        col)
    columns;
  { g;
    cl;
    member_ids;
    member_names = Array.copy names;
    table;
    witness_table = [||];
    member_sets }

let agrees_with_spec t ~spec_verdict c m =
  match (lookup t c m, spec_verdict) with
  | None, Subobject.Spec.Undeclared -> true
  | Some (Red r), Subobject.Spec.Resolved p ->
    let l = Subobject.Path.ldc p in
    let spec_lv =
      match Subobject.Path.least_virtual p with
      | None -> Omega
      | Some v -> Lv v
    in
    (* The spec returns one representative of the winning group; the
       engine's group must contain its abstraction. *)
    r.r_ldc = l && List.exists (lv_equal spec_lv) r.r_lvs
  | Some (Blue _), Subobject.Spec.Ambiguous _ -> true
  | _ -> false
