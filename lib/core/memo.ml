open Abstraction

type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  static_rule : bool;
  cache : (Chg.Graph.class_id * string, Engine.verdict option) Hashtbl.t;
  order : (Chg.Graph.class_id * string) Queue.t;
      (* insertion order, for capped-residency eviction *)
  max_entries : int option;
  root_queries : (string, int) Hashtbl.t;
      (* per member name: external (depth-0) lookups, never internal
         fills — the promotion signal a service layer watches *)
  metrics : Metrics.t;
  mutable depth : int;  (* >0 while inside a recursive fill *)
}

let create ?(static_rule = true) ?(metrics = Metrics.disabled) ?max_entries cl
    =
  (match max_entries with
  | Some n when n < 1 -> invalid_arg "Memo.create: max_entries must be >= 1"
  | _ -> ());
  { g = Chg.Closure.graph cl;
    cl;
    static_rule;
    cache = Hashtbl.create 64;
    order = Queue.create ();
    max_entries;
    root_queries = Hashtbl.create 16;
    metrics;
    depth = 0 }

(* Evict the oldest entry still resident.  The queue may hold stale keys
   (evicted then recomputed ones appear twice); skip those. *)
let evict_one t =
  let rec go () =
    match Queue.take_opt t.order with
    | None -> false
    | Some key ->
      if Hashtbl.mem t.cache key then begin
        Hashtbl.remove t.cache key;
        true
      end
      else go ()
  in
  go ()

let evict t n =
  let evicted = ref 0 in
  while !evicted < n && evict_one t do
    incr evicted
  done;
  !evicted

let clear t =
  Hashtbl.reset t.cache;
  Queue.clear t.order

let remember t key v =
  Hashtbl.add t.cache key v;
  Queue.add key t.order;
  match t.max_entries with
  | Some cap when Hashtbl.length t.cache > cap -> ignore (evict_one t)
  | _ -> ()

let rec lookup_filling t c m =
  match Hashtbl.find_opt t.cache (c, m) with
  | Some v ->
    Metrics.bump t.metrics t.metrics.Metrics.memo_hits;
    v
  | None ->
    Metrics.bump t.metrics t.metrics.Metrics.memo_misses;
    if t.depth > 0 then
      Metrics.bump t.metrics t.metrics.Metrics.memo_recursive_fills;
    t.depth <- t.depth + 1;
    let v =
      Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1) (fun () ->
          compute t c m)
    in
    remember t (c, m) v;
    v

and compute t c m =
  if Chg.Graph.declares t.g c m then begin
    Metrics.bump t.metrics t.metrics.Metrics.declared_kills;
    Metrics.bump t.metrics t.metrics.Metrics.red_verdicts;
    Some (Engine.Red { r_ldc = c; r_lvs = [ Omega ] })
  end
  else begin
    let incoming =
      List.concat_map
        (fun (b : Chg.Graph.base) ->
          let x = b.b_class in
          Metrics.bump t.metrics t.metrics.Metrics.edge_traversals;
          match lookup_filling t x m with
          | None -> []
          | Some (Engine.Red r) ->
            Metrics.bump_n t.metrics t.metrics.Metrics.o_extensions
              (List.length r.r_lvs);
            [ (Engine.Red (extend_red r x b.b_kind), None) ]
          | Some (Engine.Blue s) ->
            Metrics.bump_n t.metrics t.metrics.Metrics.o_extensions
              (List.length s);
            [ (Engine.Blue (extend_blue s x b.b_kind), None) ])
        (Chg.Graph.bases t.g c)
    in
    match incoming with
    | [] -> None
    | _ ->
      let is_static_at l =
        t.static_rule
        &&
        match Chg.Graph.find_member t.g l m with
        | Some mem -> Chg.Graph.member_is_static_like mem
        | None -> false
      in
      let v, _w =
        Engine.combine_incoming ~metrics:t.metrics
          ~vbase:(Chg.Closure.is_virtual_base t.cl) ~is_static_at incoming
      in
      Some v
  end

let lookup t c m =
  Hashtbl.replace t.root_queries m
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.root_queries m));
  lookup_filling t c m

let root_queries t m =
  Option.value ~default:0 (Hashtbl.find_opt t.root_queries m)

let materialize_column t m =
  Packed.pack_column
    (Array.init (Chg.Graph.num_classes t.g) (fun c -> lookup_filling t c m))

let cached_entries t = Hashtbl.length t.cache
