open Abstraction

type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  static_rule : bool;
  cache : (Chg.Graph.class_id * string, Engine.verdict option) Hashtbl.t;
  metrics : Metrics.t;
  mutable depth : int;  (* >0 while inside a recursive fill *)
}

let create ?(static_rule = true) ?(metrics = Metrics.disabled) cl =
  { g = Chg.Closure.graph cl;
    cl;
    static_rule;
    cache = Hashtbl.create 64;
    metrics;
    depth = 0 }

let rec lookup t c m =
  match Hashtbl.find_opt t.cache (c, m) with
  | Some v ->
    Metrics.bump t.metrics t.metrics.Metrics.memo_hits;
    v
  | None ->
    Metrics.bump t.metrics t.metrics.Metrics.memo_misses;
    if t.depth > 0 then
      Metrics.bump t.metrics t.metrics.Metrics.memo_recursive_fills;
    t.depth <- t.depth + 1;
    let v =
      Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1) (fun () ->
          compute t c m)
    in
    Hashtbl.add t.cache (c, m) v;
    v

and compute t c m =
  if Chg.Graph.declares t.g c m then begin
    Metrics.bump t.metrics t.metrics.Metrics.declared_kills;
    Metrics.bump t.metrics t.metrics.Metrics.red_verdicts;
    Some (Engine.Red { r_ldc = c; r_lvs = [ Omega ] })
  end
  else begin
    let incoming =
      List.concat_map
        (fun (b : Chg.Graph.base) ->
          let x = b.b_class in
          Metrics.bump t.metrics t.metrics.Metrics.edge_traversals;
          match lookup t x m with
          | None -> []
          | Some (Engine.Red r) ->
            Metrics.bump_n t.metrics t.metrics.Metrics.o_extensions
              (List.length r.r_lvs);
            [ (Engine.Red (extend_red r x b.b_kind), None) ]
          | Some (Engine.Blue s) ->
            Metrics.bump_n t.metrics t.metrics.Metrics.o_extensions
              (List.length s);
            [ (Engine.Blue (List.map (fun v -> o v x b.b_kind) s), None) ])
        (Chg.Graph.bases t.g c)
    in
    match incoming with
    | [] -> None
    | _ ->
      let is_static_at l =
        t.static_rule
        &&
        match Chg.Graph.find_member t.g l m with
        | Some mem -> Chg.Graph.member_is_static_like mem
        | None -> false
      in
      let v, _w =
        Engine.combine_incoming ~metrics:t.metrics
          ~vbase:(Chg.Closure.is_virtual_base t.cl) ~is_static_at incoming
      in
      Some v
  end

let cached_entries t = Hashtbl.length t.cache
