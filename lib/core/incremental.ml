open Abstraction

type row = {
  r_bases : (int * Chg.Graph.edge_kind) list;  (* resolved direct bases *)
  r_members : (string, Chg.Graph.member) Hashtbl.t;  (* declared here *)
  r_verdicts : (string, Engine.verdict) Hashtbl.t;  (* Members[C] keyed *)
  r_vbases : Chg.Bitset.t;  (* virtual bases of this class *)
  r_bases_set : Chg.Bitset.t;  (* strict bases *)
}

type t = {
  static_rule : bool;
  builder : Chg.Graph.builder;  (* kept in lockstep for snapshots *)
  mutable rows : row array;  (* grow-doubling; first [count] are live *)
  mutable count : int;
  ids : (string, int) Hashtbl.t;
  mutable capacity : int;
  metrics : Metrics.t;
}

let create ?(static_rule = true) ?(metrics = Metrics.disabled) () =
  { static_rule;
    builder = Chg.Graph.create_builder ();
    rows = [||];
    count = 0;
    ids = Hashtbl.create 16;
    capacity = 0;
    metrics }

let num_classes t = t.count
let find t name = Hashtbl.find t.ids name

let row t c =
  if c < 0 || c >= t.count then invalid_arg "Incremental: bad class id";
  t.rows.(c)

(* Bitsets are fixed-capacity; classes only ever refer to earlier classes,
   so per-row sets sized to the row's own id suffice: row i's sets live in
   universe [0..i]. *)
let is_virtual_base t x y =
  if y >= t.count || x >= t.count then false
  else x < Chg.Bitset.length (row t y).r_vbases
       && Chg.Bitset.mem (row t y).r_vbases x

let ensure_capacity t =
  if t.count = t.capacity then begin
    let cap = max 8 (t.capacity * 2) in
    let fresh = Array.make cap None in
    Array.iteri (fun i r -> fresh.(i) <- Some r) (Array.sub t.rows 0 t.count);
    t.rows <-
      Array.map
        (function
          | Some r -> r
          | None ->
            (* placeholder rows beyond [count] are never read *)
            { r_bases = [];
              r_members = Hashtbl.create 1;
              r_verdicts = Hashtbl.create 1;
              r_vbases = Chg.Bitset.create 0;
              r_bases_set = Chg.Bitset.create 0 })
        fresh;
    t.capacity <- cap
  end

(* One Figure-8 combine for member [mname] at live row [id], reading the
   current verdicts of the row's direct bases.  Shared between the
   add_class path (fresh row, verdicts computed once) and the add_member
   path (existing rows whose column must be recomputed). *)
let recompute_member t id mname =
  let r = row t id in
  Metrics.bump t.metrics t.metrics.Metrics.incr_row_members;
  if Hashtbl.mem r.r_members mname then begin
    Metrics.bump t.metrics t.metrics.Metrics.declared_kills;
    Metrics.bump t.metrics t.metrics.Metrics.red_verdicts;
    Hashtbl.replace r.r_verdicts mname
      (Engine.Red { r_ldc = id; r_lvs = [ Omega ] })
  end
  else begin
    let incoming =
      List.filter_map
        (fun (x, kind) ->
          Metrics.bump t.metrics t.metrics.Metrics.edge_traversals;
          match Hashtbl.find_opt (row t x).r_verdicts mname with
          | None -> None
          | Some (Engine.Red red) ->
            Metrics.bump_n t.metrics t.metrics.Metrics.o_extensions
              (List.length red.r_lvs);
            Some (Engine.Red (extend_red red x kind), None)
          | Some (Engine.Blue s) ->
            Metrics.bump_n t.metrics t.metrics.Metrics.o_extensions
              (List.length s);
            Some (Engine.Blue (extend_blue s x kind), None))
        r.r_bases
    in
    match incoming with
    | [] -> Hashtbl.remove r.r_verdicts mname
    | _ ->
      (* is_static_at is only ever called with ldcs of incoming
         definitions, which are earlier (live) classes *)
      let is_static_at l =
        t.static_rule
        &&
        match Hashtbl.find_opt (row t l).r_members mname with
        | Some mem -> Chg.Graph.member_is_static_like mem
        | None -> false
      in
      let v, _ =
        Engine.combine_incoming ~metrics:t.metrics
          ~vbase:(is_virtual_base t) ~is_static_at incoming
      in
      Hashtbl.replace r.r_verdicts mname v
  end

let add_class t name ~bases ~members =
  (* Validate + record through the ordinary builder so all Graph.Error
     cases behave identically. *)
  let id = Chg.Graph.add_class t.builder name ~bases ~members in
  assert (id = t.count);
  ensure_capacity t;
  Hashtbl.add t.ids name id;
  let resolved_bases =
    List.map (fun (bname, kind, _) -> (Hashtbl.find t.ids bname, kind)) bases
  in
  (* closure rows, universe [0..id] *)
  let vbases = Chg.Bitset.create (id + 1) in
  let bases_set = Chg.Bitset.create (id + 1) in
  List.iter
    (fun (b, kind) ->
      Chg.Bitset.add bases_set b;
      Chg.Bitset.iter (fun x -> Chg.Bitset.add bases_set x)
        (row t b).r_bases_set;
      (match kind with
      | Chg.Graph.Virtual -> Chg.Bitset.add vbases b
      | Chg.Graph.Non_virtual -> ());
      Chg.Bitset.iter (fun x -> Chg.Bitset.add vbases x) (row t b).r_vbases)
    resolved_bases;
  let member_tbl = Hashtbl.create (max 4 (List.length members)) in
  List.iter (fun (m : Chg.Graph.member) ->
      Hashtbl.replace member_tbl m.m_name m)
    members;
  (* Members[C] = M[C] ∪ bases' Members; one combine per member name. *)
  let member_names = Hashtbl.create 16 in
  List.iter (fun (m : Chg.Graph.member) ->
      Hashtbl.replace member_names m.m_name ())
    members;
  List.iter
    (fun (b, _) ->
      Hashtbl.iter
        (fun mname _ -> Hashtbl.replace member_names mname ())
        (row t b).r_verdicts)
    resolved_bases;
  Metrics.bump t.metrics t.metrics.Metrics.incr_rows;
  Metrics.bump_n t.metrics t.metrics.Metrics.incr_closure_bits
    (Chg.Bitset.cardinal bases_set + Chg.Bitset.cardinal vbases);
  let r =
    { r_bases = resolved_bases;
      r_members = member_tbl;
      r_verdicts = Hashtbl.create 16;
      r_vbases = vbases;
      r_bases_set = bases_set }
  in
  t.rows.(id) <- r;
  t.count <- t.count + 1;
  Hashtbl.iter (fun mname () -> recompute_member t id mname) member_names;
  id

let add_member t cls (m : Chg.Graph.member) =
  (* Validate + record through the builder (unknown class, duplicate
     member) so snapshots stay in lockstep. *)
  Chg.Graph.add_member t.builder cls m;
  let c = Hashtbl.find t.ids cls in
  Hashtbl.replace (row t c).r_members m.m_name m;
  (* Only [cls] and the classes derived from it can see the new
     declaration; their ids are all > c (topological id order), so one
     increasing sweep recomputes the member's column bases-first. *)
  let affected = ref 0 in
  for j = c to t.count - 1 do
    let rj = row t j in
    if
      j = c
      || (c < Chg.Bitset.length rj.r_bases_set
          && Chg.Bitset.mem rj.r_bases_set c)
    then begin
      incr affected;
      recompute_member t j m.m_name
    end
  done;
  !affected

let lookup t c m = Hashtbl.find_opt (row t c).r_verdicts m

let resolves_to t c m =
  match lookup t c m with
  | Some (Engine.Red r) -> Some r.r_ldc
  | Some (Engine.Blue _) | None -> None

let snapshot t = Chg.Graph.freeze t.builder
