(** The member lookup algorithm of Ramalingam & Srinivasan — Figure 8 of
    the paper, eagerly tabulated.

    One pass over the classes in topological order (bases first) computes,
    for every class [C] and member name [m] contained in a [C] object, a
    verdict:

    - [Red (L, Vs)] — the lookup is unambiguous and resolves to a member
      declared in class [L]; [Vs] are the [leastVirtual] abstractions of
      the winning definition paths, kept so that classes derived from [C]
      can run the constant-time dominance test of Lemma 4.  [Vs] is a
      singleton except when the Section 6 static-member rule merged
      several same-ldc subobjects into one resolution group (see
      {!Abstraction.red}).
    - [Blue S] — the lookup is ambiguous; [S] abstracts the set of
      definitions that created the ambiguity and must keep flowing to
      derived classes (the paper's key observation: a blue definition can
      never win, but it can {e prevent} a red definition from winning —
      see Figure 5's [bar] example).

    Complexity (paper Section 5): building the whole table is
    [O(|M| * |N| * (|N| + |E|))] in general and
    [O((|M| + |N|) * (|N| + |E|))] when every lookup is unambiguous, with
    [|M|] member names, [|N|] classes, [|E|] inheritance edges; a single
    member's column is [O(|N| * (|N| + |E|))] resp. [O(|N| + |E|)]. *)

type verdict =
  | Red of Abstraction.red
  | Blue of Abstraction.lv list
      (** sorted by {!Abstraction.lv_compare}, without duplicates *)

type t

(** [build ?static_rule ?witnesses cl] runs the algorithm over every
    member name of the program.

    [static_rule] (default [true]) enables the Section 6 extension: two
    definitions in distinct subobjects with the same least derived class
    do not conflict when the member is declared [static] there.

    [witnesses] (default [false]) additionally records, for every red
    verdict, a full CHG definition path (the paper's
    [(ldc, leastVirtual, path)] triple) — compilers want the path to
    generate code; it does not change the complexity since at most one red
    definition crosses each edge.

    [metrics] (default {!Metrics.disabled}) counts the pass's unit
    operations — edge traversals, [o]-extensions, Lemma-4 dominance
    probes, verdict colors — times the build, and (when the bag was
    created with [~trace:true]) records the Figure-8 propagation as a
    replayable event stream: [visit] per class in topological order,
    [declare] for lines [11]-[12] kills, [flow] per verdict pushed
    through an edge, [verdict] per combine result. *)
val build :
  ?static_rule:bool -> ?witnesses:bool -> ?metrics:Metrics.t ->
  Chg.Closure.t -> t

(** [build_member ?static_rule ?witnesses ?metrics cl m] runs the
    algorithm for the single member name [m] — the per-member column, in
    [O(|N| + |E|)] when no lookup of [m] is ambiguous.  With [metrics],
    [edge_traversals] counts exactly the units of that bound (the
    telemetry property tests assert it). *)
val build_member :
  ?static_rule:bool -> ?witnesses:bool -> ?metrics:Metrics.t ->
  Chg.Closure.t -> string -> t

(** [lookup t c m] is the verdict for member [m] in class [c], or [None]
    when no subobject of [c] contains a member [m] (or [t] was built for a
    different single member). *)
val lookup : t -> Chg.Graph.class_id -> string -> verdict option

(** [witness t c m] is a full definition path for a red verdict, when [t]
    was built with [~witnesses:true]: a CHG path [p] with
    [Path.mdc p = c] and [Path.ldc p] the resolving class.  For plain
    (singleton-group) resolutions [Path.key p] names the resolved
    subobject; for static-rule groups it names one of the group's
    subobjects, which is sufficient for code generation since a static
    member is a single entity regardless of the subobject. *)
val witness : t -> Chg.Graph.class_id -> string -> Subobject.Path.t option

(** [resolves_to t c m] is the declaring class of an unambiguous lookup. *)
val resolves_to : t -> Chg.Graph.class_id -> string -> Chg.Graph.class_id option

(** [members t c] are the member-name ids contained in a [c] object —
    the paper's Members[C] — as names. *)
val members : t -> Chg.Graph.class_id -> string list

(** [graph t] / [closure t] give back the inputs. *)
val graph : t -> Chg.Graph.t
val closure : t -> Chg.Closure.t

(** [agrees_with_spec t ~spec_verdict c m] checks an engine verdict
    against the executable specification ({!Subobject.Spec}): resolved
    verdicts must name the same least-derived class and [leastVirtual];
    both must agree on ambiguity / absence.  Used by the test oracle. *)
val agrees_with_spec :
  t -> spec_verdict:Subobject.Spec.verdict -> Chg.Graph.class_id -> string
  -> bool

val pp_verdict : Chg.Graph.t -> Format.formatter -> verdict -> unit

(**/**)

(** Internal: one combine step of Figure 8 (lines [14]-[44]) for a class
    whose direct-base verdicts have already been pushed through their
    edges.  [is_static_at l] decides whether the member under lookup is a
    static member of class [l] (constantly [false] disables the Section 6
    extension).  [metrics] counts dominance probes, verdict colors and
    red→blue demotions.  Shared with {!Memo} and {!Incremental}; not part
    of the stable API. *)
val combine_incoming :
  ?metrics:Metrics.t ->
  vbase:Abstraction.vbase ->
  is_static_at:(Chg.Graph.class_id -> bool) ->
  (verdict * Subobject.Path.t option) list ->
  verdict * Subobject.Path.t option

(** Internal: [blue_union s1 s2] merges two blue abstraction sets.  Both
    inputs must be sorted by {!Abstraction.lv_compare} and deduplicated
    (the Blue representation invariant); the result is their sorted,
    deduplicated union in one linear pass. *)
val blue_union : Abstraction.lv list -> Abstraction.lv list -> Abstraction.lv list

(** Internal: the member-name universe of the table, in interning
    (first-declaration) order — member id [i] is [member_universe t).(i)]. *)
val member_universe : t -> string array

(** Internal: [column t m] is member [m]'s full output column indexed by
    class id ([None] where no subobject contains [m]). *)
val column : t -> string -> verdict option array

(** Internal: rebuild an engine from per-member columns over [cl] —
    the inverse of {!column} applied over {!member_universe}; used by
    {!Packed.to_engine}.  Witness paths are not representable in columns,
    so the result behaves like a [~witnesses:false] build. *)
val of_columns :
  Chg.Closure.t -> names:string array -> columns:verdict option array array
  -> t

(**/**)
