(** Telemetry for the lookup engines: the unit operations of the paper's
    complexity model as observable counters, plus phase timers and an
    optional Figure-8 propagation trace.

    Section 5 bounds the algorithm by counting edge traversals and
    constant-time dominance probes (Lemma 4); this bag makes exactly
    those units measurable so the bounds become executable assertions
    (see the telemetry property tests) instead of wall-clock folklore.

    A single bag can be threaded through all three engines
    ({!Engine.build}, {!Memo}, {!Incremental}), or one bag per engine
    when their costs must be attributed separately (as [cxxlookup stats]
    does).  The shared {!disabled} bag is inert: every instrumentation
    site guards on {!enabled}, so un-instrumented runs pay one load and
    branch per site and never mutate shared state. *)

type t = {
  enabled : bool;
  (* Figure-8 propagation (eager engine; shared combine step) *)
  classes_visited : Telemetry.Counter.t;
      (** classes processed in topological order *)
  members_processed : Telemetry.Counter.t;
      (** (class, member) table entries computed *)
  edge_traversals : Telemetry.Counter.t;
      (** base edges examined while collecting a member's incoming
          verdicts — the unit of the O(|N|+|E|) per-member bound *)
  o_extensions : Telemetry.Counter.t;
      (** applications of the paper's [o] edge-extension to an lv *)
  dominance_probes : Telemetry.Counter.t;
      (** Lemma-4 constant-time dominance tests inside combine *)
  declared_kills : Telemetry.Counter.t;
      (** lines [11]-[12]: local declaration kills all base verdicts *)
  red_verdicts : Telemetry.Counter.t;  (** unambiguous entries created *)
  blue_verdicts : Telemetry.Counter.t;  (** ambiguous entries created *)
  red_demotions : Telemetry.Counter.t;
      (** combines with red input forced to a blue output — the paper's
          worst-case driver *)
  (* lazy memoising engine *)
  memo_hits : Telemetry.Counter.t;
  memo_misses : Telemetry.Counter.t;
  memo_recursive_fills : Telemetry.Counter.t;
      (** cache fills triggered from inside another fill (base-class
          recursion), as opposed to root queries *)
  (* incremental engine *)
  incr_rows : Telemetry.Counter.t;  (** classes added *)
  incr_row_members : Telemetry.Counter.t;
      (** per-row member verdicts computed *)
  incr_closure_bits : Telemetry.Counter.t;
      (** closure growth: bits in the new row's bases/virtual-bases sets *)
  (* distributions *)
  column_cost : Telemetry.Histogram.t;
      (** per-compiled-column edge-traversal cost: one observation per
          member column built by {!Packed.build}.  Deterministic for a
          given hierarchy, so per-domain histograms merged at join are
          equal for every job count. *)
  (* timers *)
  build_timer : Telemetry.Timer.t;  (** whole eager build *)
  (* propagation trace *)
  spans : Telemetry.Span.t;
  sink : Telemetry.Sink.t;
}

(** [disabled] is the shared inert bag ([enabled = false], null sink).
    It is the default for every engine's [?metrics] argument. *)
val disabled : t

(** [create ?trace ?trace_limit ()] is a live bag.  [trace] (default
    [false]) additionally records the propagation event stream into
    {!sink} (capped at [trace_limit] events, default unbounded). *)
val create : ?trace:bool -> ?trace_limit:int -> unit -> t

val enabled : t -> bool

(** [bump m c] / [bump_n m c n] increment counter [c] iff [m] is
    enabled.  [c] should be a counter of [m]. *)
val bump : t -> Telemetry.Counter.t -> unit

val bump_n : t -> Telemetry.Counter.t -> int -> unit

(** [observe_column m ~cost] records one compiled column's
    edge-traversal cost into {!column_cost} iff [m] is enabled. *)
val observe_column : t -> cost:int -> unit

(** [counters m] is every counter with its current value, in a stable
    order (the declaration order above). *)
val counters : t -> (string * int) list

(** [merge_into ~into m] adds every counter of [m] into the matching
    counter of [into], and merges the {!column_cost} histogram — the
    join step of a parallel build, where each worker domain bumped a
    private bag.  [m]'s timers and trace sink are not propagated.  A
    no-op when [into] is disabled. *)
val merge_into : into:t -> t -> unit

val reset : t -> unit

(** [pp_summary] prints the non-zero counters and non-empty timers,
    grouped, one per line — the human side of [cxxlookup stats]. *)
val pp_summary : Format.formatter -> t -> unit

(** [counters_json m] is a flat JSON object [name -> value] over all
    counters (zeros included: consumers should not have to know the
    schema by heart). *)
val counters_json : t -> Telemetry.Json.t

(** [timers_json m] is [{ "build": { "total_ns": n, "spans": k } }]. *)
val timers_json : t -> Telemetry.Json.t

(** [column_cost_json m] summarizes the {!column_cost} distribution:
    observation count, sum, and p50/p90/p99/p999/max. *)
val column_cost_json : t -> Telemetry.Json.t

(** [register m ?labels registry] attaches every counter (as
    [cxxlookup_engine_<name>_total]) and the {!column_cost} histogram
    (as [cxxlookup_engine_column_cost]) to [registry] under [labels]
    (typically [[("engine", ...)]]). *)
val register :
  t -> ?labels:(string * string) list -> Telemetry.Registry.t -> unit
