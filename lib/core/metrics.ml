type t = {
  enabled : bool;
  classes_visited : Telemetry.Counter.t;
  members_processed : Telemetry.Counter.t;
  edge_traversals : Telemetry.Counter.t;
  o_extensions : Telemetry.Counter.t;
  dominance_probes : Telemetry.Counter.t;
  declared_kills : Telemetry.Counter.t;
  red_verdicts : Telemetry.Counter.t;
  blue_verdicts : Telemetry.Counter.t;
  red_demotions : Telemetry.Counter.t;
  memo_hits : Telemetry.Counter.t;
  memo_misses : Telemetry.Counter.t;
  memo_recursive_fills : Telemetry.Counter.t;
  incr_rows : Telemetry.Counter.t;
  incr_row_members : Telemetry.Counter.t;
  incr_closure_bits : Telemetry.Counter.t;
  column_cost : Telemetry.Histogram.t;
      (* per-column edge-traversal cost distribution: one observation per
         compiled member column.  Deterministic for a given hierarchy, so
         per-domain histograms merged at join compare equal for any job
         count — the observability side of the determinism contract. *)
  build_timer : Telemetry.Timer.t;
  spans : Telemetry.Span.t;
  sink : Telemetry.Sink.t;
}

let make ~enabled ~sink =
  { enabled;
    classes_visited = Telemetry.Counter.make "classes_visited";
    members_processed = Telemetry.Counter.make "members_processed";
    edge_traversals = Telemetry.Counter.make "edge_traversals";
    o_extensions = Telemetry.Counter.make "o_extensions";
    dominance_probes = Telemetry.Counter.make "dominance_probes";
    declared_kills = Telemetry.Counter.make "declared_kills";
    red_verdicts = Telemetry.Counter.make "red_verdicts";
    blue_verdicts = Telemetry.Counter.make "blue_verdicts";
    red_demotions = Telemetry.Counter.make "red_demotions";
    memo_hits = Telemetry.Counter.make "memo_hits";
    memo_misses = Telemetry.Counter.make "memo_misses";
    memo_recursive_fills = Telemetry.Counter.make "memo_recursive_fills";
    incr_rows = Telemetry.Counter.make "incr_rows";
    incr_row_members = Telemetry.Counter.make "incr_row_members";
    incr_closure_bits = Telemetry.Counter.make "incr_closure_bits";
    column_cost = Telemetry.Histogram.create ();
    build_timer = Telemetry.Timer.make "build";
    spans = Telemetry.Span.make sink;
    sink }

let disabled = make ~enabled:false ~sink:Telemetry.Sink.null

let create ?(trace = false) ?trace_limit () =
  let sink =
    if trace then Telemetry.Sink.create ?limit:trace_limit ()
    else Telemetry.Sink.null
  in
  make ~enabled:true ~sink

let enabled m = m.enabled
let bump m c = if m.enabled then Telemetry.Counter.incr c
let bump_n m c n = if m.enabled then Telemetry.Counter.add c n
let observe_column m ~cost = if m.enabled then Telemetry.Histogram.record m.column_cost cost

let all_counters m =
  [ m.classes_visited; m.members_processed; m.edge_traversals;
    m.o_extensions; m.dominance_probes; m.declared_kills; m.red_verdicts;
    m.blue_verdicts; m.red_demotions; m.memo_hits; m.memo_misses;
    m.memo_recursive_fills; m.incr_rows; m.incr_row_members;
    m.incr_closure_bits ]

let counters m =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    (all_counters m)

(* Fold one bag's counts into another — the join step of a parallel
   build, where each worker domain bumped a private bag.  Counters and
   the column-cost histogram (whose merge is lossless): timers and
   sinks stay with the bag that recorded them. *)
let merge_into ~into m =
  if into.enabled then begin
    List.iter2
      (fun dst src -> Telemetry.Counter.add dst (Telemetry.Counter.value src))
      (all_counters into) (all_counters m);
    Telemetry.Histogram.merge_into ~into:into.column_cost m.column_cost
  end

let reset m =
  List.iter Telemetry.Counter.reset (all_counters m);
  Telemetry.Histogram.reset m.column_cost;
  Telemetry.Timer.reset m.build_timer;
  if Telemetry.Sink.enabled m.sink then Telemetry.Sink.clear m.sink

let pp_summary ppf m =
  List.iter
    (fun (name, v) ->
      if v <> 0 then Format.fprintf ppf "  %-22s %d@." name v)
    (counters m);
  if Telemetry.Timer.count m.build_timer > 0 then
    Format.fprintf ppf "  %a@." Telemetry.Timer.pp m.build_timer

let counters_json m =
  Telemetry.Json.Obj
    (List.map (fun (name, v) -> (name, Telemetry.Json.Int v)) (counters m))

let column_cost_json m =
  let h = m.column_cost in
  Telemetry.Json.Obj
    (("columns", Telemetry.Json.Int (Telemetry.Histogram.count h))
     :: ("sum", Telemetry.Json.Int (Telemetry.Histogram.sum h))
     :: List.map
          (fun (k, v) -> (k, Telemetry.Json.Int v))
          (Telemetry.Histogram.percentile_fields h))

let timers_json m =
  Telemetry.Json.Obj
    [ ( Telemetry.Timer.name m.build_timer,
        Telemetry.Json.Obj
          [ ("total_ns", Telemetry.Json.Int
               (Telemetry.Timer.total_ns m.build_timer));
            ("spans", Telemetry.Json.Int
               (Telemetry.Timer.count m.build_timer)) ] ) ]

(* Exposition: every counter as cxxlookup_engine_<name>_total plus the
   column-cost histogram, labelled (typically engine=eager/memo/...) so
   several bags coexist in one registry. *)
let register m ?(labels = []) registry =
  List.iter
    (fun c ->
      Telemetry.Registry.attach_counter registry ~labels
        ~help:
          (Printf.sprintf "Engine counter %s." (Telemetry.Counter.name c))
        (Printf.sprintf "cxxlookup_engine_%s_total"
           (Telemetry.Counter.name c))
        c)
    (all_counters m);
  Telemetry.Registry.attach_histogram registry ~labels
    ~help:"Per-compiled-column edge-traversal cost."
    "cxxlookup_engine_column_cost" m.column_cost
