module B = Chg.Binary

let corrupt fmt = Printf.ksprintf (fun m -> raise (B.Corrupt m)) fmt

let write_lv w = function
  | Abstraction.Omega -> B.Writer.u8 w 0
  | Abstraction.Lv c ->
    B.Writer.u8 w 1;
    B.Writer.u32 w c

let read_lv r =
  match B.Reader.u8 r with
  | 0 -> Abstraction.Omega
  | 1 -> Abstraction.Lv (B.Reader.u32 r)
  | n -> corrupt "bad lv tag %d" n

let write_lvs w lvs =
  B.Writer.u32 w (List.length lvs);
  List.iter (write_lv w) lvs

let read_lvs r = B.read_list r read_lv

let write w = function
  | None -> B.Writer.u8 w 0
  | Some (Engine.Red red) ->
    B.Writer.u8 w 1;
    B.Writer.u32 w red.Abstraction.r_ldc;
    write_lvs w red.Abstraction.r_lvs
  | Some (Engine.Blue lvs) ->
    B.Writer.u8 w 2;
    write_lvs w lvs

let read r =
  match B.Reader.u8 r with
  | 0 -> None
  | 1 ->
    let r_ldc = B.Reader.u32 r in
    let r_lvs = read_lvs r in
    Some (Engine.Red { Abstraction.r_ldc; r_lvs })
  | 2 -> Some (Engine.Blue (read_lvs r))
  | n -> corrupt "bad verdict tag %d" n

let write_column w col =
  B.Writer.u32 w (Array.length col);
  Array.iter (write w) col

let read_column r =
  let n = B.Reader.u32 r in
  (* each verdict is at least one byte: a bigger count is corruption,
     caught here before Array.make trusts it *)
  if n > B.Reader.remaining r then corrupt "column count %d too large" n;
  let col = Array.make n None in
  for i = 0 to n - 1 do
    col.(i) <- read r
  done;
  col
