(** Path abstractions (paper Section 4, "Abstracting Paths").

    The efficient algorithm never manipulates full CHG paths.  A blue
    definition [β] is abstracted to [leastVirtual β ∈ N ∪ {Ω}]
    (Definition 14); a red definition [α] to the pair
    [(ldc α, leastVirtual α)].  Lemma 4 shows these abstractions suffice
    for every dominance test the algorithm performs, because such tests
    only ever compare definitions arriving along different edges and at
    most one red definition flows per edge. *)

(** [leastVirtual] values: [Omega] is the paper's Ω (the path has no
    virtual edge); [Lv c] is the most derived class of the path's fixed
    part. *)
type lv = Omega | Lv of Chg.Graph.class_id

(** Abstraction of an unambiguous lookup result.  In the paper a red
    definition [α] abstracts to the pair [(ldc α, leastVirtual α)].  With
    the static-member extension (Section 6, Definition 17) a lookup may
    resolve to a {e group} of subobjects — all with the same least derived
    class, whose member is static there — and a later definition can
    dominate some group members but not others, so the abstraction must
    keep {e every} group member's [leastVirtual]: [r_lvs] is that set
    (sorted, without [Lv]-duplicates, nonempty; a singleton whenever the
    static rule played no part). *)
type red = { r_ldc : Chg.Graph.class_id; r_lvs : lv list }

(** [o v (x, kind, _y)] is the paper's [V o (X -> Y)] operation
    (Definition 15), abstracting path extension:
    if [v <> Ω] it is unchanged; otherwise it becomes [X] when the edge is
    virtual and stays [Ω] when it is not.  Satisfies
    [leastVirtual (β.(X->Y)) = leastVirtual β o (X->Y)]. *)
val o : lv -> Chg.Graph.class_id -> Chg.Graph.edge_kind -> lv

(** [extend_red r x kind] propagates a red abstraction through the edge
    [x -> _]: the ldc is unchanged, each lv component goes through {!o}. *)
val extend_red : red -> Chg.Graph.class_id -> Chg.Graph.edge_kind -> red

(** [extend_blue s x kind] pushes a whole blue abstraction set through the
    edge [x -> _]: every element goes through {!o}, and the result is kept
    sorted by {!lv_compare} without duplicates.  Requires [s] sorted and
    deduplicated; runs in one linear pass (no re-sort: {!o} only ever
    rewrites the lone [Ω] head into [Lv x], an ordered insertion). *)
val extend_blue :
  lv list -> Chg.Graph.class_id -> Chg.Graph.edge_kind -> lv list

(** [is_virtual_base x y] predicates come from {!Chg.Closure} for frozen
    graphs, or from an incrementally maintained closure
    ({!Incremental}). *)
type vbase = Chg.Graph.class_id -> Chg.Graph.class_id -> bool

(** [dominates1 vbase (l1, v1) (l2, v2)] is the constant-time dominance
    test of Figure 8 lines [1]-[3], justified by Lemma 4: [(L1,V1)]
    dominates [(L2,V2)] iff [V2] is a virtual base of [L1], or
    [V1 = V2 ≠ Ω]. *)
val dominates1 :
  vbase ->
  Chg.Graph.class_id * lv ->
  Chg.Graph.class_id * lv ->
  bool

(** [dominates_blue vbase (l, vs) b] — a red group dominates the blue
    abstraction [b] iff one of its members does: [b] is a virtual base of
    [l], or [b ∈ vs] and [b ≠ Ω] (Figure 8 line [38] lifted to groups). *)
val dominates_blue : vbase -> Chg.Graph.class_id * lv list -> lv -> bool

val lv_equal : lv -> lv -> bool
val lv_compare : lv -> lv -> int

(** [abstract_path p] is the [(ldc, leastVirtual)] singleton abstraction
    of a definition path. *)
val abstract_path : Subobject.Path.t -> red

val pp_lv : Chg.Graph.t -> Format.formatter -> lv -> unit
val pp_red : Chg.Graph.t -> Format.formatter -> red -> unit
