open Abstraction
module B = Chg.Binary

(* ---- column representation ----------------------------------------

   One member's verdicts over every class, with no boxing on the common
   path.  Entries are tagged immediate ints (low 2 bits):

     tag 0  absent      entry = 0
     tag 1  red         entry = (ldc * (n+1) + lv) << 2 | 1
                        (singleton group; lv codes Ω as n, Lv c as c)
     tag 2  red group   entry = (off << 2) | 2
                        arena[off] = ldc, arena[off+1] = len,
                        arena[off+2 ..] = len lv codes
     tag 3  blue        entry = (off << 2) | 3
                        arena[off] = len, arena[off+1 ..] = len lv codes

   Arena slices hold lv codes in the canonical verdict order
   (lv_compare: Ω first, then Lv ids increasing), so decoding is a
   straight map and two equal verdict sets always produce identical
   slices.  The arena is column-local: a column is a value, safe to
   share read-only across domains and to write byte-for-byte into a
   snapshot. *)

type column = {
  pc_classes : int;
  pc_entries : int array;
  pc_arena : int array;
}

let tag_absent = 0
let tag_red = 1
let tag_red_group = 2
let tag_blue = 3

let column_classes col = col.pc_classes
let column_equal (a : column) b = a = b

(* Ω codes as n so that every lv of an n-class column fits [0, n] — the
   one value no class id can take. *)
let lv_code n = function
  | Omega -> n
  | Lv c ->
    if c < 0 || c >= n then invalid_arg "Packed: lv out of range";
    c

let lv_of_code n k = if k = n then Omega else Lv k

let pack_column col =
  let n = Array.length col in
  (* (n+1)^2 must fit in an immediate int once shifted past the tag *)
  if n >= 1 lsl 30 then invalid_arg "Packed.pack_column: too many classes";
  let entries = Array.make n 0 in
  let arena = ref [||] in
  let alen = ref 0 in
  let push v =
    if !alen = Array.length !arena then begin
      let fresh = Array.make (max 16 (2 * !alen)) 0 in
      Array.blit !arena 0 fresh 0 !alen;
      arena := fresh
    end;
    !arena.(!alen) <- v;
    incr alen
  in
  Array.iteri
    (fun c v ->
      entries.(c) <-
        (match v with
        | None -> tag_absent
        | Some (Engine.Red { r_ldc; r_lvs = [ lv ] }) ->
          if r_ldc < 0 || r_ldc >= n then
            invalid_arg "Packed: ldc out of range";
          (((r_ldc * (n + 1)) + lv_code n lv) lsl 2) lor tag_red
        | Some (Engine.Red { r_ldc; r_lvs }) ->
          if r_ldc < 0 || r_ldc >= n then
            invalid_arg "Packed: ldc out of range";
          let off = !alen in
          push r_ldc;
          push (List.length r_lvs);
          List.iter (fun lv -> push (lv_code n lv)) r_lvs;
          (off lsl 2) lor tag_red_group
        | Some (Engine.Blue lvs) ->
          let off = !alen in
          push (List.length lvs);
          List.iter (fun lv -> push (lv_code n lv)) lvs;
          (off lsl 2) lor tag_blue))
    col;
  { pc_classes = n;
    pc_entries = entries;
    pc_arena = Array.sub !arena 0 !alen }

let column_get col c =
  let e = col.pc_entries.(c) in
  let n = col.pc_classes in
  match e land 3 with
  | 0 -> None
  | 1 ->
    let v = e lsr 2 in
    Some
      (Engine.Red { r_ldc = v / (n + 1); r_lvs = [ lv_of_code n (v mod (n + 1)) ] })
  | 2 ->
    let off = e lsr 2 in
    let ldc = col.pc_arena.(off) and len = col.pc_arena.(off + 1) in
    Some
      (Engine.Red
         { r_ldc = ldc;
           r_lvs = List.init len (fun i -> lv_of_code n col.pc_arena.(off + 2 + i))
         })
  | _ ->
    let off = e lsr 2 in
    let len = col.pc_arena.(off) in
    Some
      (Engine.Blue
         (List.init len (fun i -> lv_of_code n col.pc_arena.(off + 1 + i))))

let column_color col c =
  match col.pc_entries.(c) land 3 with
  | 0 -> `Absent
  | 1 | 2 -> `Red
  | _ -> `Blue

let column_resolves_to col c =
  let e = col.pc_entries.(c) in
  match e land 3 with
  | 1 -> Some (e lsr 2 / (col.pc_classes + 1))
  | 2 -> Some col.pc_arena.(e lsr 2)
  | _ -> None

let unpack_column col = Array.init col.pc_classes (column_get col)

(* Appends are the add_class mutation path: the lv/ldc coding base is
   the class count, so growing the universe re-encodes the column.  One
   O(n) pass per mutation — the boxed representation's Array.append was
   already O(n). *)
let column_append col v =
  pack_column (Array.append (unpack_column col) [| v |])

(* Real resident size: two flat int arrays plus the record, in bytes.
   Exact up to the fixed per-block header words. *)
let column_bytes col =
  8 * (4 + Array.length col.pc_entries + Array.length col.pc_arena)

(* What the same column costs boxed (the heap-words estimator the table
   cache budgeted with before packing): option + verdict constructor +
   list spine per entry.  Kept for packed-vs-boxed reporting. *)
let boxed_column_bytes col =
  let words = ref 0 in
  Array.iter
    (fun e ->
      words :=
        !words
        +
        match e land 3 with
        | 0 -> 1
        | 1 -> 4 + 2
        | 2 -> 4 + (2 * col.pc_arena.((e lsr 2) + 1))
        | _ -> 2 + (2 * col.pc_arena.(e lsr 2)))
    col.pc_entries;
  8 * (2 + Array.length col.pc_entries + !words)

(* ---- column codec --------------------------------------------------
   Little-endian, deterministic: u32 class count, u32 arena length,
   entries as i64 (a packed red immediate exceeds u32 past ~2^15
   classes), arena as u32.  Readers validate tags, offsets and codes so
   a corrupt snapshot section fails loud, not subtly wrong. *)

let corrupt fmt = Printf.ksprintf (fun m -> raise (B.Corrupt m)) fmt

let write_column w col =
  B.Writer.u32 w col.pc_classes;
  B.Writer.u32 w (Array.length col.pc_arena);
  Array.iter (fun e -> B.Writer.i64 w e) col.pc_entries;
  Array.iter (fun a -> B.Writer.u32 w a) col.pc_arena

let read_column r =
  let n = B.Reader.u32 r in
  let alen = B.Reader.u32 r in
  if (8 * n) + (4 * alen) > B.Reader.remaining r then
    corrupt "packed column larger than its payload (%d classes, %d arena)" n
      alen;
  let entries = Array.init n (fun _ -> B.Reader.i64 r) in
  let arena = Array.init alen (fun _ -> B.Reader.u32 r) in
  let check_lv what k =
    if k < 0 || k > n then corrupt "packed column: bad lv code %d in %s" k what
  in
  Array.iteri
    (fun c e ->
      match e land 3 with
      | 0 -> if e <> 0 then corrupt "packed column: bad absent entry at %d" c
      | 1 ->
        let v = e lsr 2 in
        if v >= (n + 1) * (n + 1) then
          corrupt "packed column: red immediate out of range at %d" c;
        check_lv "red" (v mod (n + 1))
      | tag ->
        let off = e lsr 2 in
        let header = if tag = tag_red_group then 2 else 1 in
        if off + header > alen then
          corrupt "packed column: arena offset %d out of range at %d" off c;
        let len = arena.(off + header - 1) in
        if len < 0 || off + header + len > alen then
          corrupt "packed column: arena slice [%d..+%d] out of range at %d"
            off len c;
        if tag = tag_red_group && arena.(off) >= n then
          corrupt "packed column: group ldc %d out of range at %d" arena.(off)
            c;
        for i = 0 to len - 1 do
          check_lv "arena slice" arena.(off + header + i)
        done)
    entries;
  { pc_classes = n; pc_entries = entries; pc_arena = arena }

(* ---- whole tables --------------------------------------------------- *)

type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  member_ids : (string, int) Hashtbl.t;
  member_names : string array;
  columns : column array;  (* by member id *)
}

let graph t = t.g
let closure t = t.cl
let member_universe t = Array.copy t.member_names
let num_members t = Array.length t.member_names

let find_column t m =
  Option.map (fun mid -> t.columns.(mid)) (Hashtbl.find_opt t.member_ids m)

let lookup t c m =
  match Hashtbl.find_opt t.member_ids m with
  | None -> None
  | Some mid -> column_get t.columns.(mid) c

let resolves_to t c m =
  match Hashtbl.find_opt t.member_ids m with
  | None -> None
  | Some mid -> column_resolves_to t.columns.(mid) c

let columns t =
  Array.to_list (Array.mapi (fun mid col -> (t.member_names.(mid), col)) t.columns)

let bytes t = Array.fold_left (fun acc c -> acc + column_bytes c) 0 t.columns

let boxed_bytes t =
  Array.fold_left (fun acc c -> acc + boxed_column_bytes c) 0 t.columns

let ids_of_names names =
  let ids = Hashtbl.create (max 16 (Array.length names)) in
  Array.iteri (fun mid name -> Hashtbl.replace ids name mid) names;
  ids

let of_engine e =
  let names = Engine.member_universe e in
  { g = Engine.graph e;
    cl = Engine.closure e;
    member_ids = ids_of_names names;
    member_names = names;
    columns = Array.map (fun m -> pack_column (Engine.column e m)) names }

let to_engine t =
  Engine.of_columns t.cl ~names:t.member_names
    ~columns:(Array.map unpack_column t.columns)

(* The table encoding is the determinism witness: member count, then
   each name and column in member-id (first-declaration) order.  Two
   builds of the same hierarchy are byte-identical here iff they packed
   identical verdicts in identical order — regardless of how many
   domains compiled them. *)
let encode t =
  let w = B.Writer.create ~initial_size:4096 () in
  B.Writer.u32 w (Array.length t.member_names);
  Array.iteri
    (fun mid name ->
      B.Writer.string w name;
      write_column w t.columns.(mid))
    t.member_names;
  B.Writer.contents w

(* ---- parallel compilation ------------------------------------------

   Members are embarrassingly parallel: each column is one independent
   topological pass over the shared read-only CHG + closure.  A single
   atomic cursor fans member ids out to [jobs] domains; every column
   lands in its own slot of a preallocated array, so the result is
   bit-identical for any job count or schedule.  Worker domains bump
   private metrics bags, merged at join (counters only — per-domain
   event traces are not propagated). *)

let default_jobs () =
  match Sys.getenv_opt "CXXLOOKUP_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let empty_column = { pc_classes = 0; pc_entries = [||]; pc_arena = [||] }

let build ?(static_rule = true) ?(jobs = 1) ?(metrics = Metrics.disabled) cl =
  if jobs < 1 then invalid_arg "Packed.build: jobs must be >= 1";
  let g = Chg.Closure.graph cl in
  (* member universe in first-declaration order — the eager engine's
     interning order, so member ids line up with Engine.build *)
  let member_ids = Hashtbl.create 64 in
  let rev_names = ref [] in
  Chg.Graph.iter_classes g (fun c ->
      List.iter
        (fun (mem : Chg.Graph.member) ->
          if not (Hashtbl.mem member_ids mem.m_name) then begin
            Hashtbl.add member_ids mem.m_name (Hashtbl.length member_ids);
            rev_names := mem.m_name :: !rev_names
          end)
        (Chg.Graph.members g c));
  let names = Array.of_list (List.rev !rev_names) in
  let nm = Array.length names in
  let columns = Array.make nm empty_column in
  let compile_one bag i =
    let before = Telemetry.Counter.value bag.Metrics.edge_traversals in
    let eng = Engine.build_member ~static_rule ~metrics:bag cl names.(i) in
    columns.(i) <- pack_column (Engine.column eng names.(i));
    (* bags are domain-private, so the counter delta is this column's
       cost alone — one histogram observation per compiled column *)
    Metrics.observe_column bag
      ~cost:(Telemetry.Counter.value bag.Metrics.edge_traversals - before)
  in
  let jobs = min jobs (max 1 nm) in
  if jobs = 1 then
    for i = 0 to nm - 1 do
      compile_one metrics i
    done
  else
    Telemetry.Timer.span metrics.Metrics.build_timer (fun () ->
        let next = Atomic.make 0 in
        let worker bag () =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < nm then begin
              compile_one bag i;
              loop ()
            end
          in
          loop ()
        in
        let bags =
          Array.init jobs (fun _ ->
              if Metrics.enabled metrics then Metrics.create ()
              else Metrics.disabled)
        in
        let others =
          Array.init (jobs - 1) (fun k -> Domain.spawn (worker bags.(k + 1)))
        in
        worker bags.(0) ();
        Array.iter Domain.join others;
        Array.iter (fun b -> Metrics.merge_into ~into:metrics b) bags);
  { g; cl; member_ids; member_names = names; columns }
