open Abstraction
module B = Chg.Binary

(* ---- column representation ----------------------------------------

   One member's verdicts over every class, with no boxing on the common
   path.  Entries are tagged immediate ints (low 2 bits):

     tag 0  absent      entry = 0
     tag 1  red         entry = (ldc * (n+1) + lv) << 2 | 1
                        (singleton group; lv codes Ω as n, Lv c as c)
     tag 2  red group   entry = (off << 2) | 2
                        arena[off] = ldc, arena[off+1] = len,
                        arena[off+2 ..] = len lv codes
     tag 3  blue        entry = (off << 2) | 3
                        arena[off] = len, arena[off+1 ..] = len lv codes

   Arena slices hold lv codes in the canonical verdict order
   (lv_compare: Ω first, then Lv ids increasing), so decoding is a
   straight map and two equal verdict sets always produce identical
   slices.  The arena is column-local: a column is a value, safe to
   share read-only across domains and to write byte-for-byte into a
   snapshot.

   A column's two flat int sequences live either on the OCaml heap
   ([Arr]) or as a slice of an external word buffer ([Big]) — typically
   a Bigarray mapped over a snapshot file's table-image section, so a
   restored column serves queries without ever being copied into the
   heap.  Both shapes answer through the same accessors; the mutation
   path ({!column_append}) always materializes to the heap. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type vec =
  | Arr of int array
  | Big of { vb : buf; vb_off : int; vb_len : int }

let vlen = function Arr a -> Array.length a | Big b -> b.vb_len

let vget v i =
  match v with
  | Arr a -> a.(i)
  | Big b ->
    if i < 0 || i >= b.vb_len then invalid_arg "Packed: view index out of range";
    Bigarray.Array1.unsafe_get b.vb (b.vb_off + i)

type column = {
  pc_classes : int;
  pc_entries : vec;
  pc_arena : vec;
}

let tag_absent = 0
let tag_red = 1
let tag_red_group = 2
let tag_blue = 3

let column_classes col = col.pc_classes
let column_is_view col =
  match col.pc_entries with Big _ -> true | Arr _ -> false

let column_equal (a : column) b =
  let veq x y =
    let n = vlen x in
    n = vlen y
    &&
    let rec go i = i >= n || (vget x i = vget y i && go (i + 1)) in
    go 0
  in
  a.pc_classes = b.pc_classes
  && veq a.pc_entries b.pc_entries
  && veq a.pc_arena b.pc_arena

(* Ω codes as n so that every lv of an n-class column fits [0, n] — the
   one value no class id can take. *)
let lv_code n = function
  | Omega -> n
  | Lv c ->
    if c < 0 || c >= n then invalid_arg "Packed: lv out of range";
    c

let lv_of_code n k = if k = n then Omega else Lv k

let pack_column col =
  let n = Array.length col in
  (* (n+1)^2 must fit in an immediate int once shifted past the tag *)
  if n >= 1 lsl 30 then invalid_arg "Packed.pack_column: too many classes";
  let entries = Array.make n 0 in
  let arena = ref [||] in
  let alen = ref 0 in
  let push v =
    if !alen = Array.length !arena then begin
      let fresh = Array.make (max 16 (2 * !alen)) 0 in
      Array.blit !arena 0 fresh 0 !alen;
      arena := fresh
    end;
    !arena.(!alen) <- v;
    incr alen
  in
  Array.iteri
    (fun c v ->
      entries.(c) <-
        (match v with
        | None -> tag_absent
        | Some (Engine.Red { r_ldc; r_lvs = [ lv ] }) ->
          if r_ldc < 0 || r_ldc >= n then
            invalid_arg "Packed: ldc out of range";
          (((r_ldc * (n + 1)) + lv_code n lv) lsl 2) lor tag_red
        | Some (Engine.Red { r_ldc; r_lvs }) ->
          if r_ldc < 0 || r_ldc >= n then
            invalid_arg "Packed: ldc out of range";
          let off = !alen in
          push r_ldc;
          push (List.length r_lvs);
          List.iter (fun lv -> push (lv_code n lv)) r_lvs;
          (off lsl 2) lor tag_red_group
        | Some (Engine.Blue lvs) ->
          let off = !alen in
          push (List.length lvs);
          List.iter (fun lv -> push (lv_code n lv)) lvs;
          (off lsl 2) lor tag_blue))
    col;
  { pc_classes = n;
    pc_entries = Arr entries;
    pc_arena = Arr (Array.sub !arena 0 !alen) }

let column_get col c =
  let e = vget col.pc_entries c in
  let n = col.pc_classes in
  match e land 3 with
  | 0 -> None
  | 1 ->
    let v = e lsr 2 in
    Some
      (Engine.Red { r_ldc = v / (n + 1); r_lvs = [ lv_of_code n (v mod (n + 1)) ] })
  | 2 ->
    let off = e lsr 2 in
    let ldc = vget col.pc_arena off and len = vget col.pc_arena (off + 1) in
    Some
      (Engine.Red
         { r_ldc = ldc;
           r_lvs = List.init len (fun i -> lv_of_code n (vget col.pc_arena (off + 2 + i)))
         })
  | _ ->
    let off = e lsr 2 in
    let len = vget col.pc_arena off in
    Some
      (Engine.Blue
         (List.init len (fun i -> lv_of_code n (vget col.pc_arena (off + 1 + i)))))

let column_color col c =
  match vget col.pc_entries c land 3 with
  | 0 -> `Absent
  | 1 | 2 -> `Red
  | _ -> `Blue

let column_resolves_to col c =
  let e = vget col.pc_entries c in
  match e land 3 with
  | 1 -> Some (e lsr 2 / (col.pc_classes + 1))
  | 2 -> Some (vget col.pc_arena (e lsr 2))
  | _ -> None

(* The int-only classification the binary hot path encodes from: no
   option, no allocation.  [-1] absent, [-2] ambiguous (blue), a class
   id = the declaring class of an unambiguous lookup. *)
let column_resolve_code col c =
  let e = vget col.pc_entries c in
  match e land 3 with
  | 0 -> -1
  | 1 -> e lsr 2 / (col.pc_classes + 1)
  | 2 -> vget col.pc_arena (e lsr 2)
  | _ -> -2

let unpack_column col = Array.init col.pc_classes (column_get col)

(* Appends are the add_class mutation path: the lv/ldc coding base is
   the class count, so growing the universe re-encodes the column.  One
   O(n) pass per mutation — the boxed representation's Array.append was
   already O(n).  A mapped view materializes to the heap here: mutations
   never write through to a snapshot file. *)
let column_append col v =
  pack_column (Array.append (unpack_column col) [| v |])

(* Budgeted size: two flat int sequences plus the record, in bytes.
   Deliberately representation-independent — a mapped view charges the
   same as its heap twin, so cache accounting (and the stats wire
   shapes) are identical whichever restore path produced the column. *)
let column_bytes col =
  8 * (4 + vlen col.pc_entries + vlen col.pc_arena)

(* What the same column costs boxed (the heap-words estimator the table
   cache budgeted with before packing): option + verdict constructor +
   list spine per entry.  Kept for packed-vs-boxed reporting. *)
let boxed_column_bytes col =
  let words = ref 0 in
  for c = 0 to vlen col.pc_entries - 1 do
    let e = vget col.pc_entries c in
    words :=
      !words
      +
      match e land 3 with
      | 0 -> 1
      | 1 -> 4 + 2
      | 2 -> 4 + (2 * vget col.pc_arena ((e lsr 2) + 1))
      | _ -> 2 + (2 * vget col.pc_arena (e lsr 2))
  done;
  8 * (2 + vlen col.pc_entries + !words)

(* ---- column codec --------------------------------------------------
   Little-endian, deterministic: u32 class count, u32 arena length,
   entries as i64 (a packed red immediate exceeds u32 past ~2^15
   classes), arena as u32.  Readers validate tags, offsets and codes so
   a corrupt snapshot section fails loud, not subtly wrong. *)

let corrupt fmt = Printf.ksprintf (fun m -> raise (B.Corrupt m)) fmt

let write_column w col =
  B.Writer.u32 w col.pc_classes;
  B.Writer.u32 w (vlen col.pc_arena);
  for c = 0 to vlen col.pc_entries - 1 do
    B.Writer.i64 w (vget col.pc_entries c)
  done;
  for i = 0 to vlen col.pc_arena - 1 do
    B.Writer.u32 w (vget col.pc_arena i)
  done

(* Shared validation over the accessor layer: every tag, arena offset,
   slice bound and lv code of [col] is checked, so any column — decoded,
   image-decoded, or mapped — can be proven well-formed before it
   serves.  Raises {!Chg.Binary.Corrupt}. *)
let validate_column ?(what = "packed column") col =
  let n = col.pc_classes in
  let alen = vlen col.pc_arena in
  if vlen col.pc_entries <> n then
    corrupt "%s: %d entries for %d classes" what (vlen col.pc_entries) n;
  let check_lv where k =
    if k < 0 || k > n then corrupt "%s: bad lv code %d in %s" what k where
  in
  for c = 0 to n - 1 do
    let e = vget col.pc_entries c in
    match e land 3 with
    | 0 -> if e <> 0 then corrupt "%s: bad absent entry at %d" what c
    | 1 ->
      let v = e lsr 2 in
      if v >= (n + 1) * (n + 1) then
        corrupt "%s: red immediate out of range at %d" what c;
      check_lv "red" (v mod (n + 1))
    | tag ->
      let off = e lsr 2 in
      let header = if tag = tag_red_group then 2 else 1 in
      if off + header > alen then
        corrupt "%s: arena offset %d out of range at %d" what off c;
      let len = vget col.pc_arena (off + header - 1) in
      if len < 0 || off + header + len > alen then
        corrupt "%s: arena slice [%d..+%d] out of range at %d" what off len c;
      if tag = tag_red_group && vget col.pc_arena off >= n then
        corrupt "%s: group ldc %d out of range at %d" what
          (vget col.pc_arena off) c;
      for i = 0 to len - 1 do
        check_lv "arena slice" (vget col.pc_arena (off + header + i))
      done
  done

let read_column r =
  let n = B.Reader.u32 r in
  let alen = B.Reader.u32 r in
  if (8 * n) + (4 * alen) > B.Reader.remaining r then
    corrupt "packed column larger than its payload (%d classes, %d arena)" n
      alen;
  let entries = Array.init n (fun _ -> B.Reader.i64 r) in
  let arena = Array.init alen (fun _ -> B.Reader.u32 r) in
  let col = { pc_classes = n; pc_entries = Arr entries; pc_arena = Arr arena } in
  validate_column col;
  col

(* ---- the table image ------------------------------------------------

   A whole table of columns as one position-independent byte payload,
   laid out so the word area can be served in place from a memory-mapped
   snapshot file: every value is a 64-bit little-endian word holding an
   OCaml immediate int, every reference is an offset relative to the
   word area, and the word area itself starts 8-byte-aligned in the
   file (the writer pads for the file offset it is told).

   Payload layout:

     u32  names_len          byte length of the names blob
     names blob              u32 count, then count length-prefixed names
     u32  pad_len            0..7 zero bytes
     pad                     aligns the word area to 8 in the file
     word area               little-endian 64-bit words:
       w[0]                  probe constant (magic + endian/word check)
       w[1]                  m, the column (member) count
       w[2]                  n, the class count (shared by all columns)
       w[3 .. 3+m]           arena directory: arena_off[0..m], words,
                             nondecreasing, arena_off[0] = 0 and
                             arena_off[m] = total arena words
       entries               column i at word (m+4) + i*n, n words each
       arena                 column i's slice at arena_base + arena_off[i]

   The probe word is the first defense: a file written on (or read as)
   the wrong word size or endianness cannot reproduce it, and the reader
   falls back to the byte-at-a-time codec instead of mis-mapping. *)

let image_probe = 0x314C42544C5843 (* "CXLTBL1\x00", little-endian *)

let image_all_heap cols =
  (* the image shares one [n] across all columns; enforce the snapshot
     invariant rather than silently truncate *)
  match cols with
  | [] -> 0
  | (_, c0) :: rest ->
    List.iter
      (fun (m, c) ->
        if c.pc_classes <> c0.pc_classes then
          invalid_arg
            (Printf.sprintf
               "Packed.write_image: column %S has %d classes, expected %d" m
               c.pc_classes c0.pc_classes))
      rest;
    c0.pc_classes

let names_blob cols =
  let w = B.Writer.create () in
  B.Writer.u32 w (List.length cols);
  List.iter (fun (m, _) -> B.Writer.string w m) cols;
  B.Writer.contents w

let write_image w ~file_offset cols =
  let n = image_all_heap cols in
  let names = names_blob cols in
  let header_len = String.length names in
  let word_start = file_offset + 4 + header_len + 4 in
  let pad = (8 - (word_start mod 8)) mod 8 in
  B.Writer.u32 w header_len;
  B.Writer.raw w names;
  B.Writer.u32 w pad;
  B.Writer.raw w (String.make pad '\000');
  let m = List.length cols in
  B.Writer.i64 w image_probe;
  B.Writer.i64 w m;
  B.Writer.i64 w n;
  let off = ref 0 in
  List.iter
    (fun (_, c) ->
      B.Writer.i64 w !off;
      off := !off + vlen c.pc_arena)
    cols;
  B.Writer.i64 w !off;
  List.iter
    (fun (_, c) ->
      for i = 0 to n - 1 do
        B.Writer.i64 w (vget c.pc_entries i)
      done)
    cols;
  List.iter
    (fun (_, c) ->
      for i = 0 to vlen c.pc_arena - 1 do
        B.Writer.i64 w (vget c.pc_arena i)
      done)
    cols

(* Parse the byte-addressed prefix of an image payload: the member
   names and the byte offset of the word area within the payload. *)
let image_header r =
  let header_len = B.Reader.u32 r in
  let names_r = B.Reader.of_string (B.Reader.raw r header_len) in
  let count = B.Reader.u32 names_r in
  if count > header_len then corrupt "table image: %d names in %d bytes" count header_len;
  let names = Array.init count (fun _ -> B.Reader.string names_r) in
  let pad = B.Reader.u32 r in
  if pad > 7 then corrupt "table image: pad of %d bytes" pad;
  let z = B.Reader.raw r pad in
  String.iter (fun c -> if c <> '\000' then corrupt "table image: non-zero pad") z;
  (names, 4 + header_len + 4 + pad)

(* The byte-at-a-time fallback: decode the image payload into heap
   columns, fully validated — the path taken when the file cannot be
   mapped (legacy reader, unaligned section, no-mmap filesystem). *)
let read_image r =
  let names, _ = image_header r in
  if B.Reader.remaining r mod 8 <> 0 then
    corrupt "table image: word area is %d bytes, not 8-aligned"
      (B.Reader.remaining r);
  let words = B.Reader.remaining r / 8 in
  if words < 3 then corrupt "table image: word area too small (%d words)" words;
  if B.Reader.i64 r <> image_probe then
    corrupt "table image: bad probe word";
  let m = B.Reader.i64 r in
  let n = B.Reader.i64 r in
  if m <> Array.length names then
    corrupt "table image: %d columns for %d names" m (Array.length names);
  if n < 0 || m < 0 || n >= 1 lsl 30 then
    corrupt "table image: bad dimensions (%d columns, %d classes)" m n;
  if words < m + 4 then corrupt "table image: truncated directory";
  let dir = Array.init (m + 1) (fun _ -> B.Reader.i64 r) in
  Array.iteri
    (fun i o ->
      if o < 0 || (i > 0 && o < dir.(i - 1)) then
        corrupt "table image: arena directory not nondecreasing")
    dir;
  if dir.(0) <> 0 then corrupt "table image: arena directory must start at 0";
  if words <> m + 4 + (m * n) + dir.(m) then
    corrupt "table image: %d words, expected %d" words (m + 4 + (m * n) + dir.(m));
  let entries = Array.init m (fun _ -> Array.init n (fun _ -> B.Reader.i64 r)) in
  let arena = Array.init dir.(m) (fun _ -> B.Reader.i64 r) in
  List.init m (fun i ->
      let col =
        { pc_classes = n;
          pc_entries = Arr entries.(i);
          pc_arena = Arr (Array.sub arena dir.(i) (dir.(i + 1) - dir.(i))) }
      in
      validate_column ~what:(Printf.sprintf "table image column %S" names.(i)) col;
      (names.(i), col))

(* Zero-copy: build column views straight over the mapped word area.
   Validation here is O(m) — probe, dimensions, directory — not O(size):
   per-word integrity is the CRC's job (when the caller verified it) and
   the accessors' bounds checks keep even a corrupt fast-mode file from
   reading outside the mapping.  Raises {!Chg.Binary.Corrupt}. *)
let map_image buf ~names =
  let dim = Bigarray.Array1.dim buf in
  if dim < 3 then corrupt "table image: mapped area too small (%d words)" dim;
  if Bigarray.Array1.get buf 0 <> image_probe then
    corrupt "table image: bad probe word (endianness or word size mismatch)";
  let m = Bigarray.Array1.get buf 1 in
  let n = Bigarray.Array1.get buf 2 in
  if m <> Array.length names then
    corrupt "table image: %d columns for %d names" m (Array.length names);
  if n < 0 || n >= 1 lsl 30 then corrupt "table image: bad class count %d" n;
  if dim < m + 4 then corrupt "table image: truncated directory";
  let dir_at i = Bigarray.Array1.get buf (3 + i) in
  for i = 0 to m do
    let o = dir_at i in
    if o < 0 || (i > 0 && o < dir_at (i - 1)) then
      corrupt "table image: arena directory not nondecreasing"
  done;
  if m > 0 && dir_at 0 <> 0 then
    corrupt "table image: arena directory must start at 0";
  let entries_base = m + 4 in
  let arena_base = entries_base + (m * n) in
  if dim <> arena_base + dir_at m then
    corrupt "table image: %d words, expected %d" dim (arena_base + dir_at m);
  List.init m (fun i ->
      ( names.(i),
        { pc_classes = n;
          pc_entries = Big { vb = buf; vb_off = entries_base + (i * n); vb_len = n };
          pc_arena =
            Big
              { vb = buf;
                vb_off = arena_base + dir_at i;
                vb_len = dir_at (i + 1) - dir_at i } } ))

(* ---- whole tables --------------------------------------------------- *)

type t = {
  g : Chg.Graph.t;
  cl : Chg.Closure.t;
  member_ids : (string, int) Hashtbl.t;
  member_names : string array;
  columns : column array;  (* by member id *)
}

let graph t = t.g
let closure t = t.cl
let member_universe t = Array.copy t.member_names
let num_members t = Array.length t.member_names

let find_column t m =
  Option.map (fun mid -> t.columns.(mid)) (Hashtbl.find_opt t.member_ids m)

let lookup t c m =
  match Hashtbl.find_opt t.member_ids m with
  | None -> None
  | Some mid -> column_get t.columns.(mid) c

let resolves_to t c m =
  match Hashtbl.find_opt t.member_ids m with
  | None -> None
  | Some mid -> column_resolves_to t.columns.(mid) c

let columns t =
  Array.to_list (Array.mapi (fun mid col -> (t.member_names.(mid), col)) t.columns)

let bytes t = Array.fold_left (fun acc c -> acc + column_bytes c) 0 t.columns

let boxed_bytes t =
  Array.fold_left (fun acc c -> acc + boxed_column_bytes c) 0 t.columns

let ids_of_names names =
  let ids = Hashtbl.create (max 16 (Array.length names)) in
  Array.iteri (fun mid name -> Hashtbl.replace ids name mid) names;
  ids

let of_engine e =
  let names = Engine.member_universe e in
  { g = Engine.graph e;
    cl = Engine.closure e;
    member_ids = ids_of_names names;
    member_names = names;
    columns = Array.map (fun m -> pack_column (Engine.column e m)) names }

let to_engine t =
  Engine.of_columns t.cl ~names:t.member_names
    ~columns:(Array.map unpack_column t.columns)

(* The table encoding is the determinism witness: member count, then
   each name and column in member-id (first-declaration) order.  Two
   builds of the same hierarchy are byte-identical here iff they packed
   identical verdicts in identical order — regardless of how many
   domains compiled them. *)
let encode t =
  let w = B.Writer.create ~initial_size:4096 () in
  B.Writer.u32 w (Array.length t.member_names);
  Array.iteri
    (fun mid name ->
      B.Writer.string w name;
      write_column w t.columns.(mid))
    t.member_names;
  B.Writer.contents w

(* ---- parallel compilation ------------------------------------------

   Members are embarrassingly parallel: each column is one independent
   topological pass over the shared read-only CHG + closure.  A single
   atomic cursor fans member ids out to [jobs] domains; every column
   lands in its own slot of a preallocated array, so the result is
   bit-identical for any job count or schedule.  Worker domains bump
   private metrics bags, merged at join (counters only — per-domain
   event traces are not propagated). *)

let default_jobs () =
  match Sys.getenv_opt "CXXLOOKUP_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let empty_column = { pc_classes = 0; pc_entries = Arr [||]; pc_arena = Arr [||] }

let build ?(static_rule = true) ?(jobs = 1) ?(metrics = Metrics.disabled) cl =
  if jobs < 1 then invalid_arg "Packed.build: jobs must be >= 1";
  let g = Chg.Closure.graph cl in
  (* member universe in first-declaration order — the eager engine's
     interning order, so member ids line up with Engine.build *)
  let member_ids = Hashtbl.create 64 in
  let rev_names = ref [] in
  Chg.Graph.iter_classes g (fun c ->
      List.iter
        (fun (mem : Chg.Graph.member) ->
          if not (Hashtbl.mem member_ids mem.m_name) then begin
            Hashtbl.add member_ids mem.m_name (Hashtbl.length member_ids);
            rev_names := mem.m_name :: !rev_names
          end)
        (Chg.Graph.members g c));
  let names = Array.of_list (List.rev !rev_names) in
  let nm = Array.length names in
  let columns = Array.make nm empty_column in
  let compile_one bag i =
    let before = Telemetry.Counter.value bag.Metrics.edge_traversals in
    let eng = Engine.build_member ~static_rule ~metrics:bag cl names.(i) in
    columns.(i) <- pack_column (Engine.column eng names.(i));
    (* bags are domain-private, so the counter delta is this column's
       cost alone — one histogram observation per compiled column *)
    Metrics.observe_column bag
      ~cost:(Telemetry.Counter.value bag.Metrics.edge_traversals - before)
  in
  let jobs = min jobs (max 1 nm) in
  if jobs = 1 then
    for i = 0 to nm - 1 do
      compile_one metrics i
    done
  else
    Telemetry.Timer.span metrics.Metrics.build_timer (fun () ->
        let next = Atomic.make 0 in
        let worker bag () =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < nm then begin
              compile_one bag i;
              loop ()
            end
          in
          loop ()
        in
        let bags =
          Array.init jobs (fun _ ->
              if Metrics.enabled metrics then Metrics.create ()
              else Metrics.disabled)
        in
        let others =
          Array.init (jobs - 1) (fun k -> Domain.spawn (worker bags.(k + 1)))
        in
        worker bags.(0) ();
        Array.iter Domain.join others;
        Array.iter (fun b -> Metrics.merge_into ~into:metrics b) bags);
  { g; cl; member_ids; member_names = names; columns }
