(** The lazy, memoising variant of the lookup algorithm (paper Section 5:
    "It is easy enough to modify the algorithm into a memoising lazy
    algorithm that does not compute table entries that are unnecessary: a
    request for lookup[C,m] will recursively invoke lookup[B,m] for every
    direct base class B of C if necessary").

    Useful when a compiler resolves only a few accesses: a single query
    touches only the bases of the queried class, and results are cached so
    the total work over any query sequence never exceeds the eager
    table's.

    Long-running callers (notably the {!Service} layer) can cap residency:
    the cache is pure memoisation, so evicting any entry is always
    correct — a later query just recomputes it. *)

type t

(** [create ?static_rule ?metrics ?max_entries cl] prepares an empty cache
    over [cl].

    [max_entries] (default unbounded) caps the number of resident
    (class, member) entries; past the cap, entries are evicted oldest
    first.  Raises [Invalid_argument] if not positive.

    [metrics] (default {!Metrics.disabled}) counts cache consults
    ([memo_hits] / [memo_misses]), fills triggered from inside another
    fill ([memo_recursive_fills]: the base-class recursion, as opposed to
    root queries), and the shared propagation units (edge traversals,
    [o]-extensions, dominance probes) of each fill. *)
val create :
  ?static_rule:bool -> ?metrics:Metrics.t -> ?max_entries:int ->
  Chg.Closure.t -> t

(** [lookup t c m] resolves member [m] in class [c], computing and caching
    any base-class entries it needs.  Verdicts are identical to
    {!Engine.lookup} on the eager table.  Each call counts one root query
    of [m] (see {!root_queries}); internal base-class fills do not. *)
val lookup : t -> Chg.Graph.class_id -> string -> Engine.verdict option

(** [root_queries t m] is the number of {!lookup} calls made for member
    name [m] so far (any class).  The service layer promotes a member to a
    compiled table when this count crosses its threshold. *)
val root_queries : t -> string -> int

(** [materialize_column t m] is the full Figure-8 output column for member
    [m] — the verdict for every class, indexed by class id — already in
    the packed query-serving representation.  Fills (and caches) whatever
    entries are still missing; does {e not} count as root queries.  This
    is the promotion path from the memo engine to a compiled table. *)
val materialize_column : t -> string -> Packed.column

(** [evict t n] drops up to [n] cached entries, oldest first, returning
    how many were dropped.  Never affects correctness, only residency. *)
val evict : t -> int -> int

(** [clear t] drops every cached entry (root-query counts are kept: they
    are a workload signal, not cache state). *)
val clear : t -> unit

(** [cached_entries t] is the number of (class, member) pairs resident —
    used by tests to check laziness and by callers to watch residency. *)
val cached_entries : t -> int
