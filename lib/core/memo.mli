(** The lazy, memoising variant of the lookup algorithm (paper Section 5:
    "It is easy enough to modify the algorithm into a memoising lazy
    algorithm that does not compute table entries that are unnecessary: a
    request for lookup[C,m] will recursively invoke lookup[B,m] for every
    direct base class B of C if necessary").

    Useful when a compiler resolves only a few accesses: a single query
    touches only the bases of the queried class, and results are cached so
    the total work over any query sequence never exceeds the eager
    table's. *)

type t

(** [create ?static_rule ?metrics cl] prepares an empty cache over [cl].

    [metrics] (default {!Metrics.disabled}) counts cache consults
    ([memo_hits] / [memo_misses]), fills triggered from inside another
    fill ([memo_recursive_fills]: the base-class recursion, as opposed to
    root queries), and the shared propagation units (edge traversals,
    [o]-extensions, dominance probes) of each fill. *)
val create : ?static_rule:bool -> ?metrics:Metrics.t -> Chg.Closure.t -> t

(** [lookup t c m] resolves member [m] in class [c], computing and caching
    any base-class entries it needs.  Verdicts are identical to
    {!Engine.lookup} on the eager table. *)
val lookup : t -> Chg.Graph.class_id -> string -> Engine.verdict option

(** [cached_entries t] is the number of (class, member) pairs computed so
    far — used by tests to check laziness. *)
val cached_entries : t -> int
