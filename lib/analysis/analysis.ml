module G = Chg.Graph
module Engine = Lookup_core.Engine

type class_report = {
  cr_class : G.class_id;
  cr_direct_bases : int;
  cr_all_bases : int;
  cr_virtual_bases : int;
  cr_depth : int;
  cr_subobjects : int;
  cr_replicated : (G.class_id * int) list;
  cr_ambiguous : string list;
}

type t = {
  graph : G.t;
  reports : class_report array;
  max_depth : int;
  ambiguous_pairs : int;
  classes_with_replication : int;
}

let run cl =
  let g = Chg.Closure.graph cl in
  let n = G.num_classes g in
  let engine = Engine.build cl in
  let counts = Subobject.Count.table cl in
  (* depth: longest chain above each class, one topological pass *)
  let depth = Array.make n 0 in
  for c = 0 to n - 1 do
    List.iter
      (fun (b : G.base) -> depth.(c) <- max depth.(c) (depth.(b.b_class) + 1))
      (G.bases g c)
  done;
  let reports =
    Array.init n (fun c ->
        let replicated =
          Chg.Bitset.fold
            (fun x acc ->
              let copies = Subobject.Count.copies_of cl ~base:x ~within:c in
              if copies > 1 then (x, copies) :: acc else acc)
            (Chg.Closure.bases_of cl c)
            []
          |> List.rev
        in
        let ambiguous =
          List.filter
            (fun m ->
              match Engine.lookup engine c m with
              | Some (Engine.Blue _) -> true
              | Some (Engine.Red _) | None -> false)
            (Engine.members engine c)
        in
        { cr_class = c;
          cr_direct_bases = List.length (G.bases g c);
          cr_all_bases = Chg.Bitset.cardinal (Chg.Closure.bases_of cl c);
          cr_virtual_bases =
            Chg.Bitset.cardinal (Chg.Closure.virtual_bases_of cl c);
          cr_depth = depth.(c);
          cr_subobjects = counts.(c);
          cr_replicated = replicated;
          cr_ambiguous = ambiguous })
  in
  { graph = g;
    reports;
    max_depth = Array.fold_left (fun acc d -> max acc d) 0 depth;
    ambiguous_pairs =
      Array.fold_left
        (fun acc r -> acc + List.length r.cr_ambiguous)
        0 reports;
    classes_with_replication =
      Array.fold_left
        (fun acc r -> if r.cr_replicated = [] then acc else acc + 1)
        0 reports }

let report t c = t.reports.(c)

(* Subobject counts saturate at [max_int] (see Subobject.Count); a
   saturated figure is meaningless as a number, so render it as an
   overflow marker instead. *)
let pp_count ppf n =
  if n = max_int then Format.pp_print_string ppf "overflow"
  else Format.pp_print_int ppf n

let pp_class t ppf r =
  let g = t.graph in
  Format.fprintf ppf "@[<v>%s: depth %d, %d direct / %d total bases (%d virtual), %a subobjects@,"
    (G.name g r.cr_class) r.cr_depth r.cr_direct_bases r.cr_all_bases
    r.cr_virtual_bases pp_count r.cr_subobjects;
  List.iter
    (fun (x, k) ->
      Format.fprintf ppf "  replicated base %s: %a copies@," (G.name g x)
        pp_count k)
    r.cr_replicated;
  List.iter
    (fun m -> Format.fprintf ppf "  ambiguous member: %s@," m)
    r.cr_ambiguous;
  Format.fprintf ppf "@]"

let pp_summary ppf t =
  Format.fprintf ppf
    "%d classes, max depth %d, %d with replicated bases, %d ambiguous \
     (class, member) pairs"
    (G.num_classes t.graph) t.max_depth t.classes_with_replication
    t.ambiguous_pairs
