(** Whole-hierarchy analysis built on the lookup algorithm: the
    "compiler warning pass" view of a class hierarchy.

    For every class it reports inheritance shape (depth, bases, virtual
    bases), object composition (subobject counts via the closed form,
    which bases are {e replicated} — the Figure 1 situation that makes
    lookups ambiguous), and the members whose lookup is ambiguous at that
    class (latent errors that any use would trigger).

    The paper's motivation section notes member lookups can consume "as
    much as 15% of the total compilation time"; this pass runs the whole
    table once and reuses it for every per-class report. *)

type class_report = {
  cr_class : Chg.Graph.class_id;
  cr_direct_bases : int;
  cr_all_bases : int;  (** transitive *)
  cr_virtual_bases : int;  (** transitive, paper's definition *)
  cr_depth : int;  (** longest inheritance chain above this class *)
  cr_subobjects : int;  (** may saturate at [max_int] *)
  cr_replicated : (Chg.Graph.class_id * int) list;
      (** bases with more than one subobject copy, with their counts *)
  cr_ambiguous : string list;
      (** member names whose lookup at this class is ambiguous *)
}

type t = {
  graph : Chg.Graph.t;
  reports : class_report array;  (** indexed by class id *)
  max_depth : int;
  ambiguous_pairs : int;  (** total ambiguous (class, member) pairs *)
  classes_with_replication : int;
}

(** [run cl] analyzes the whole hierarchy (one engine build + closed-form
    counting; no exponential structure is materialized). *)
val run : Chg.Closure.t -> t

(** [report t c] is class [c]'s report. *)
val report : t -> Chg.Graph.class_id -> class_report

(** [pp_class t ppf r] renders one class report.  Subobject and
    replication counts saturated at [max_int] print as ["overflow"]
    rather than a bogus number. *)
val pp_class : t -> Format.formatter -> class_report -> unit
val pp_summary : Format.formatter -> t -> unit
