(** Query workloads over a hierarchy: sequences of (class, member)
    lookups with controllable locality, for comparing the eager table
    against the lazy memoising variant (paper Section 5: a compiler
    resolving only a few accesses should not tabulate everything), and
    for replay through the lookup service ([cxxlookup-rpc/1] streams). *)

type query = { q_class : Chg.Graph.class_id; q_member : string }

(** What a workload's lookups came back as — the structured checksum the
    drivers return (counts, not just a hit total, so callers can see
    ambiguity rates). *)
type summary = { resolved : int; ambiguous : int; not_found : int }

val empty_summary : summary

(** [total s] is the number of queries the summary accounts for. *)
val total : summary -> int

val pp_summary : Format.formatter -> summary -> unit

(** [sparse g ~queries ~classes ~seed] — [queries] lookups drawn from a
    random subset of [classes] classes (locality: real translation units
    touch few classes), members drawn from the program's member names. *)
val sparse :
  Chg.Graph.t -> queries:int -> classes:int -> seed:int -> query list

(** [exhaustive g] — every (class, member-name) pair once, in order: the
    whole-program static analysis workload. *)
val exhaustive : Chg.Graph.t -> query list

(** [run_memo memo ws] / [run_engine eng ws] — drive a workload,
    returning how its lookups resolved. *)
val run_memo : Lookup_core.Memo.t -> query list -> summary

val run_engine : Lookup_core.Engine.t -> query list -> summary

(** [to_protocol_lines ?session g ws] — the workload as one
    [cxxlookup-rpc/1] [lookup] request per line (ids [q0], [q1], ...),
    ready to pipe into [cxxlookup serve] or replay with
    [cxxlookup batch]. *)
val to_protocol_lines : ?session:string -> Chg.Graph.t -> query list -> string list

(** [to_batch_request ?id ?session g ws] — the whole workload as a
    single [batch_lookup] request line. *)
val to_batch_request :
  ?id:string -> ?session:string -> Chg.Graph.t -> query list -> string
