type query = { q_class : Chg.Graph.class_id; q_member : string }

type summary = { resolved : int; ambiguous : int; not_found : int }

let empty_summary = { resolved = 0; ambiguous = 0; not_found = 0 }
let total s = s.resolved + s.ambiguous + s.not_found

let count s = function
  | Some (Lookup_core.Engine.Red _) -> { s with resolved = s.resolved + 1 }
  | Some (Lookup_core.Engine.Blue _) ->
    { s with ambiguous = s.ambiguous + 1 }
  | None -> { s with not_found = s.not_found + 1 }

let pp_summary ppf s =
  Format.fprintf ppf "%d resolved, %d ambiguous, %d not found" s.resolved
    s.ambiguous s.not_found

let sparse g ~queries ~classes ~seed =
  let st = Random.State.make [| seed; queries; classes |] in
  let n = Chg.Graph.num_classes g in
  let members = Array.of_list (Chg.Graph.member_names g) in
  if n = 0 || Array.length members = 0 then []
  else begin
    let pool =
      Array.init (min classes n) (fun _ -> Random.State.int st n)
    in
    List.init queries (fun _ ->
        { q_class = pool.(Random.State.int st (Array.length pool));
          q_member = members.(Random.State.int st (Array.length members)) })
  end

let exhaustive g =
  List.concat_map
    (fun c ->
      List.map
        (fun m -> { q_class = c; q_member = m })
        (Chg.Graph.member_names g))
    (Chg.Graph.classes g)

let run_memo memo ws =
  List.fold_left
    (fun acc q ->
      count acc (Lookup_core.Memo.lookup memo q.q_class q.q_member))
    empty_summary ws

let run_engine eng ws =
  List.fold_left
    (fun acc q ->
      count acc (Lookup_core.Engine.lookup eng q.q_class q.q_member))
    empty_summary ws

(* ---- cxxlookup-rpc/1 query streams --------------------------------- *)

let query_json g q extra =
  Chg.Json.Obj
    (extra
     @ [ ("class", Chg.Json.String (Chg.Graph.name g q.q_class));
         ("member", Chg.Json.String q.q_member) ])

let to_protocol_lines ?session g ws =
  let session_field =
    match session with
    | Some s -> [ ("session", Chg.Json.String s) ]
    | None -> []
  in
  List.mapi
    (fun i q ->
      Chg.Json.to_string
        (query_json g q
           ([ ("id", Chg.Json.String (Printf.sprintf "q%d" i));
              ("op", Chg.Json.String "lookup") ]
            @ session_field)))
    ws

let to_batch_request ?(id = "batch") ?session g ws =
  let session_field =
    match session with
    | Some s -> [ ("session", Chg.Json.String s) ]
    | None -> []
  in
  Chg.Json.to_string
    (Chg.Json.Obj
       ([ ("id", Chg.Json.String id);
          ("op", Chg.Json.String "batch_lookup") ]
        @ session_field
        @ [ ("queries",
             Chg.Json.List (List.map (fun q -> query_json g q []) ws)) ]))
