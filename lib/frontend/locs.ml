(** Source locations of hierarchy entities.

    The CHG itself is location-free — it can come from JSON interchange,
    a snapshot, or a generator — so passes that want to point back into
    source code (the linter, chiefly) consult this side table, built from
    the AST when the hierarchy was elaborated by the C++ front end.  Keys
    are names rather than class ids so the table survives graph rebuilds
    that preserve declarations. *)

type t = {
  classes : (string, Loc.t) Hashtbl.t;
  members : (string * string, Loc.t) Hashtbl.t;
}

let empty () = { classes = Hashtbl.create 1; members = Hashtbl.create 1 }

let of_program (program : Ast.program) =
  let t =
    { classes = Hashtbl.create 16; members = Hashtbl.create 32 }
  in
  List.iter
    (fun (c : Ast.class_decl) ->
      if not (Hashtbl.mem t.classes c.c_name) then
        Hashtbl.add t.classes c.c_name c.c_loc;
      List.iter
        (fun (m : Ast.member_decl) ->
          let key = (c.c_name, m.md_name) in
          if not (Hashtbl.mem t.members key) then
            Hashtbl.add t.members key m.md_loc)
        c.c_members)
    program.classes;
  t

let class_loc t cls = Hashtbl.find_opt t.classes cls

let member_loc t ~cls member = Hashtbl.find_opt t.members (cls, member)

(* The shape the linter consumes: most specific location available —
   the member declaration if we have it, else the class header. *)
let locate t ~cls ~member =
  match member with
  | Some m ->
    (match member_loc t ~cls m with
    | Some _ as l -> l
    | None -> class_loc t cls)
  | None -> class_loc t cls
