(** Compiler and linter diagnostics with source positions.

    One diagnostic type serves both the semantic analyzer ([Sema]) and
    the hierarchy linter ([Lint]): the lint pass adds a stable rule
    identifier and an optional machine-applicable fix-it, both absent
    ([None]) on compiler diagnostics, so every renderer — pretty text,
    JSON lines, SARIF — consumes the same value. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
  rule : string option;  (** lint rule id, e.g. ["ambiguous-lookup"] *)
  fixit : string option;  (** suggested replacement or qualification *)
}

let mk severity loc rule fixit fmt =
  Format.kasprintf
    (fun message -> { severity; loc; message; rule; fixit })
    fmt

let error ?(loc = Loc.dummy) ?rule ?fixit fmt = mk Error loc rule fixit fmt
let warning ?(loc = Loc.dummy) ?rule ?fixit fmt = mk Warning loc rule fixit fmt
let note ?(loc = Loc.dummy) ?rule ?fixit fmt = mk Note loc rule fixit fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

(* Note < Warning < Error; used by [--fail-on] threshold filtering. *)
let severity_rank = function Note -> 1 | Warning -> 2 | Error -> 3

let pp ppf d =
  Format.fprintf ppf "%a: %s: %s" Loc.pp d.loc (severity_string d.severity)
    d.message;
  match d.rule with
  | Some r -> Format.fprintf ppf " [%s]" r
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
