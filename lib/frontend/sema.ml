module G = Chg.Graph
module Engine = Lookup_core.Engine

type resolution = {
  res_loc : Loc.t;
  res_context : G.class_id;
  res_member : string;
  res_target : G.class_id;
  res_path : Subobject.Path.t option;
  res_visibility : Access.visibility;
}

type t = {
  graph : G.t;
  engine : Engine.t;
  locs : Locs.t;
  resolutions : resolution list;
  diagnostics : Diagnostic.t list;
}

type state = {
  mutable diags : Diagnostic.t list;  (* reversed *)
  mutable resols : resolution list;  (* reversed *)
  member_types : (string * string, Ast.ty) Hashtbl.t;
      (* (class, member) -> declared type, for resolving selection chains *)
}

let add_diag st d = st.diags <- d :: st.diags

(* Pass 1: build the CHG from class declarations, validating as C++
   does (a base class must be completely declared before use). *)
let build_graph st (program : Ast.program) =
  let builder = G.create_builder () in
  List.iter
    (fun (c : Ast.class_decl) ->
      let default_base_access =
        match c.c_kind with `Class -> G.Private | `Struct -> G.Public
      in
      let bases =
        List.map
          (fun (b : Ast.base_spec) ->
            ( b.b_name,
              (if b.b_virtual then G.Virtual else G.Non_virtual),
              Option.value b.b_access ~default:default_base_access ))
          c.c_bases
      in
      let members =
        List.filter_map
          (fun (m : Ast.member_decl) ->
            if m.md_virtual && m.md_kind = G.Data then begin
              add_diag st
                (Diagnostic.error ~loc:m.md_loc
                   "data member '%s' cannot be virtual" m.md_name);
              None
            end
            else if m.md_virtual && m.md_static then begin
              add_diag st
                (Diagnostic.error ~loc:m.md_loc
                   "member '%s' cannot be both static and virtual" m.md_name);
              None
            end
            else begin
              Hashtbl.replace st.member_types (c.c_name, m.md_name) m.md_type;
              Some
                { G.m_name = m.md_name;
                  m_kind = m.md_kind;
                  m_static = m.md_static;
                  m_virtual = m.md_virtual;
                  m_access = m.md_access }
            end)
          c.c_members
      in
      match G.add_class builder c.c_name ~bases ~members with
      | _id -> ()
      | exception G.Error e ->
        add_diag st (Diagnostic.error ~loc:c.c_loc "%s" (G.error_to_string e)))
    program.classes;
  G.freeze builder

(* Pass 2: resolve member accesses in function and member-function
   bodies.  [enclosing] is the class whose member function we are in
   ([None] for free functions): it provides the implicit class scope for
   unqualified names (paper Section 6) and relaxes access checking. *)

let class_of_type g st loc (ty : Ast.ty) =
  match ty.t_base with
  | Ast.Builtin b ->
    add_diag st
      (Diagnostic.error ~loc "'%s' is not a class type; it has no members" b);
    None
  | Ast.Named n ->
    (match G.find_opt g n with
    | Some id -> Some id
    | None ->
      add_diag st (Diagnostic.error ~loc "unknown class '%s'" n);
      None)

let resolve_member graph engine st loc ~enclosing cls member =
  match Engine.lookup engine cls member with
  | None ->
    add_diag st
      (Diagnostic.error ~loc "class '%s' has no member named '%s'"
         (G.name graph cls) member);
    None
  | Some (Engine.Blue _) ->
    add_diag st
      (Diagnostic.error ~loc "request for member '%s' is ambiguous in '%s'"
         member (G.name graph cls));
    None
  | Some (Engine.Red r) ->
    let path = Engine.witness engine cls member in
    let target = r.Lookup_core.Abstraction.r_ldc in
    let visibility =
      (* C++ grants access if any path to the resolved subobject does:
         evaluate the best visibility over the whole ≈-class. *)
      match (path, G.find_member graph target member) with
      | Some p, Some mem ->
        Access.best_effective (Engine.closure engine) p ~member:mem
      | _ -> Access.Inaccessible
    in
    let allowed =
      (* Inside a member function of the accessed class, private and
         protected members are usable; from a free function only public
         ones are. *)
      match enclosing with
      | Some encl when encl = cls -> visibility <> Access.Inaccessible
      | Some _ | None -> Access.accessible_from_outside visibility
    in
    if not allowed then begin
      match visibility with
      | Access.Inaccessible ->
        add_diag st
          (Diagnostic.error ~loc
             "member '%s::%s' is not accessible (private in a base class)"
             (G.name graph target) member)
      | Access.Accessible a ->
        add_diag st
          (Diagnostic.error ~loc "member '%s::%s' is %s within this context"
             (G.name graph target) member
             (match a with
             | G.Private -> "private"
             | G.Protected -> "protected"
             | G.Public -> "public"))
    end;
    let resolution =
      { res_loc = loc;
        res_context = cls;
        res_member = member;
        res_target = target;
        res_path = path;
        res_visibility = visibility }
    in
    st.resols <- resolution :: st.resols;
    Some (target, resolution)

(* Resolve an expression to its static type (when it has a class-relevant
   one); records resolutions and diagnostics as side effects. *)
let rec type_of_expr graph engine st ~enclosing env (e : Ast.expr) :
    Ast.ty option =
  match e with
  | Ast.Var (name, loc) ->
    (match Hashtbl.find_opt env name with
    | Some ty -> Some ty
    | None ->
      (* Unqualified-name lookup (Section 6): not a local, so try the
         enclosing class scope — an implicit this-> access. *)
      (match enclosing with
      | Some cls when Engine.lookup engine cls name <> None ->
        (match resolve_member graph engine st loc ~enclosing cls name with
        | None -> None
        | Some (target, _) ->
          Hashtbl.find_opt st.member_types (G.name graph target, name))
      | Some _ | None ->
        add_diag st (Diagnostic.error ~loc "unknown variable '%s'" name);
        None))
  | Ast.Qualified (cls_name, member, loc) ->
    (match G.find_opt graph cls_name with
    | None ->
      add_diag st (Diagnostic.error ~loc "unknown class '%s'" cls_name);
      None
    | Some cls ->
      (match resolve_member graph engine st loc ~enclosing cls member with
      | None -> None
      | Some (target, _) ->
        Hashtbl.find_opt st.member_types (G.name graph target, member)))
  | Ast.Call (callee, loc) ->
    let callee_member =
      match callee with
      | Ast.Var (n, _) -> Some n
      | Ast.Select (_, sel) -> Some sel.s_member
      | Ast.Qualified (_, m, _) -> Some m
      | Ast.Call _ -> None
    in
    let ty = type_of_expr graph engine st ~enclosing env callee in
    (* the freshest resolution, if it is the callee's member, must be
       callable *)
    (match (st.resols, callee_member) with
    | res :: _, Some m when res.res_member = m ->
      (match G.find_member graph res.res_target res.res_member with
      | Some mem when mem.G.m_kind <> G.Function ->
        add_diag st
          (Diagnostic.error ~loc "'%s::%s' is not a function"
             (G.name graph res.res_target) res.res_member)
      | Some _ | None -> ())
    | _ -> ());
    ty
  | Ast.Select (base, sel) ->
    (match type_of_expr graph engine st ~enclosing env base with
    | None -> None
    | Some ty ->
      if sel.s_arrow && not ty.Ast.t_pointer then
        add_diag st
          (Diagnostic.error ~loc:sel.s_loc
             "'->' used on a non-pointer (did you mean '.'?)")
      else if (not sel.s_arrow) && ty.Ast.t_pointer then
        add_diag st
          (Diagnostic.error ~loc:sel.s_loc
             "'.' used on a pointer (did you mean '->'?)");
      (match class_of_type graph st sel.s_loc ty with
      | None -> None
      | Some cls ->
        (match
           resolve_member graph engine st sel.s_loc ~enclosing cls
             sel.s_member
         with
        | None -> None
        | Some (target, _) ->
          Hashtbl.find_opt st.member_types (G.name graph target, sel.s_member))))

let analyze_body graph engine st ~enclosing stmts =
  let env : (string, Ast.ty) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Var_decl { v_type; v_name; v_loc } ->
        (match v_type.Ast.t_base with
        | Ast.Named n when G.find_opt graph n = None ->
          add_diag st
            (Diagnostic.error ~loc:v_loc
               "variable '%s' has unknown class type '%s'" v_name n)
        | Ast.Named _ | Ast.Builtin _ -> Hashtbl.replace env v_name v_type)
      | Ast.Expr e -> ignore (type_of_expr graph engine st ~enclosing env e)
      | Ast.Assign (lhs, rhs) ->
        ignore (type_of_expr graph engine st ~enclosing env lhs);
        (match rhs with
        | Ast.Rint _ -> ()
        | Ast.Raddr e -> ignore (type_of_expr graph engine st ~enclosing env e)))
    stmts

let analyze_funcs graph engine st (program : Ast.program) =
  List.iter
    (fun (f : Ast.func) ->
      analyze_body graph engine st ~enclosing:None f.f_body)
    program.funcs

let analyze_methods graph engine st (program : Ast.program) =
  List.iter
    (fun (c : Ast.class_decl) ->
      match G.find_opt graph c.c_name with
      | None -> ()  (* the class failed to build; already diagnosed *)
      | Some cls ->
        List.iter
          (fun (m : Ast.member_decl) ->
            match m.md_body with
            | Some body ->
              analyze_body graph engine st ~enclosing:(Some cls) body
            | None -> ())
          c.c_members)
    program.classes

let analyze (program : Ast.program) =
  let st =
    { diags = []; resols = []; member_types = Hashtbl.create 32 }
  in
  let graph = build_graph st program in
  let engine =
    Engine.build ~static_rule:true ~witnesses:true (Chg.Closure.compute graph)
  in
  analyze_methods graph engine st program;
  analyze_funcs graph engine st program;
  { graph;
    engine;
    locs = Locs.of_program program;
    resolutions = List.rev st.resols;
    diagnostics = List.rev st.diags }

let analyze_source src =
  match Parser.parse src with
  | Ok program -> analyze program
  | Error d ->
    let graph = G.freeze (G.create_builder ()) in
    let engine = Engine.build (Chg.Closure.compute graph) in
    { graph;
      engine;
      locs = Locs.empty ();
      resolutions = [];
      diagnostics = [ d ] }

let ok t = not (Diagnostic.has_errors t.diagnostics)

let pp_resolution g ppf r =
  Format.fprintf ppf "%a: %s::%s -> %s::%s%a" Loc.pp r.res_loc
    (G.name g r.res_context) r.res_member (G.name g r.res_target) r.res_member
    (fun ppf -> function
      | Some p -> Format.fprintf ppf " via %a" (Subobject.Path.pp g) p
      | None -> ())
    r.res_path
