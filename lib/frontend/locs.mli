(** Source locations of hierarchy entities, keyed by name.

    Built from the AST by the front end and threaded through
    {!Sema.t} so downstream passes (the linter) can attach source
    positions to diagnostics about classes and member declarations.
    Hierarchies that never went through the front end (JSON, snapshots,
    generators) use {!empty}; lookups then return [None] and renderers
    omit the position. *)

type t

(** [empty ()] knows no locations. *)
val empty : unit -> t

(** [of_program p] records the declaration site of every class and of
    every member declaration (first declaration wins on duplicates,
    matching the front end's error recovery). *)
val of_program : Ast.program -> t

(** [class_loc t cls] is the location of the class-head of [cls]. *)
val class_loc : t -> string -> Loc.t option

(** [member_loc t ~cls m] is the location of the declaration of [m]
    directly in [cls]. *)
val member_loc : t -> cls:string -> string -> Loc.t option

(** [locate t ~cls ~member] is the most specific location available:
    the member declaration when [member] is [Some m] and known,
    otherwise the class head. *)
val locate : t -> cls:string -> member:string option -> Loc.t option
