(** Semantic analysis: elaborate a parsed translation unit into a class
    hierarchy graph, then statically resolve every member access with the
    paper's lookup algorithm, applying access control afterwards (Section
    6).  This is the "compiler front end" end-to-end driver the paper's
    introduction motivates: the compiler analyzing [x.m] must resolve [m]
    in the context of the static type of [x]. *)

(** The outcome of resolving one member access expression. *)
type resolution = {
  res_loc : Loc.t;
  res_context : Chg.Graph.class_id;  (** static class the lookup ran in *)
  res_member : string;
  res_target : Chg.Graph.class_id;  (** declaring class of the winner *)
  res_path : Subobject.Path.t option;  (** witness definition path *)
  res_visibility : Access.visibility;
}

type t = {
  graph : Chg.Graph.t;
  engine : Lookup_core.Engine.t;
  locs : Locs.t;  (** declaration sites, for downstream diagnostics *)
  resolutions : resolution list;  (** in source order *)
  diagnostics : Diagnostic.t list;  (** in source order *)
}

(** [analyze program] runs both passes.  Ill-formed classes (unknown or
    duplicate bases, duplicate members) are reported and dropped;
    analysis of the remaining program continues, like a real compiler
    recovering from errors.  Ambiguous lookups, unknown members, unknown
    variables or classes, [.]/[->] misuse, and inaccessible members all
    produce diagnostics. *)
val analyze : Ast.program -> t

(** [analyze_source src] parses then analyzes.  A parse error yields an
    empty graph and that single diagnostic. *)
val analyze_source : string -> t

(** [ok t] — no error-severity diagnostics. *)
val ok : t -> bool

val pp_resolution : Chg.Graph.t -> Format.formatter -> resolution -> unit
