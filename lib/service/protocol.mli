(** The [cxxlookup-rpc/1] wire protocol: JSON-lines requests and
    responses for the resident lookup service.

    One request object per line, one response object per line, in order.
    Every request may carry an ["id"] (any JSON value, echoed verbatim in
    the response), an optional ["rpc"] version tag (rejected with
    [bad_version] when it names another protocol), and an ["op"]
    selecting the verb:

    - [open] — create a session from an inline hierarchy: either
      ["chg"] (a cxxlookup-chg v1 document) or ["source"] (C++-subset
      text).  Optional ["session"] names the session; otherwise the
      server assigns [s0], [s1], ...
    - [lookup] — ["session"], ["class"], ["member"], optional
      ["semantics"] ([cpp]|[c3]|[py22]|[dylan], default [cpp]): resolve
      under C++ dominance or a linearized (MRO) semantics.  An unknown
      value is a [bad_request].
    - [batch_lookup] — ["session"] and ["queries"]: an array of
      [{"class":..., "member":...}] objects, answered in one response
      with per-query results and a resolved/ambiguous/not-found summary.
      Optional ["semantics"] applies to every query of the batch.
    - [mutate] — ["session"] plus exactly one of ["add_class"]
      ([{"name":..., "bases":[...], "members":[...]}], cxxlookup-chg
      field shapes with optional defaults) or ["add_member"]
      ([{"class":..., "member":{...}}]).
    - [lint] — ["session"], optional ["rules"] (array of rule-id
      strings; default the classic six) and ["semantics"]: run the
      hierarchy linter over the session-resident hierarchy and answer
      the findings as structured diagnostics plus severity and per-rule
      counts.
    - [snapshot] — ["session"]: persist the session's durable state
      (snapshot file + WAL reset) now.  Requires the server to run over
      a store ([cxxlookup serve --store DIR]); [store_error] otherwise.
    - [restore] — ["session"]: reopen a session from the store (newest
      valid snapshot + WAL-tail replay).  The name must not be open.
    - [symbols] — ["session"]: the session's intern tables — class
      names in class-id order and member names in member-id order, plus
      the epoch they describe.  Ids are dense, assigned append-only
      within a server lifetime (mutations extend, never renumber), and
      are what the binary framing ([cxxlookup-rpc/1b], see
      {!Frame}) carries instead of names.
    - [stats] — service-level counters, or one session's with
      ["session"].
    - [metrics] — the full Prometheus text-format 0.0.4 exposition of
      the server's metric registry, answered as
      [{"format":"text/plain; version=0.0.4", "body":...}].
    - [close] — ["session"].  Durable state, if any, survives the close
      and can be reopened with [restore].

    Responses are [{"id":..., "ok":true, ...}] or [{"id":..., "ok":false,
    "error":{"code":..., "message":...}}] with a stable error-code
    vocabulary (see {!error_code}). *)

val version : string

type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Bad_request  (** missing or ill-typed field *)
  | Bad_version  (** ["rpc"] names a protocol this server does not speak *)
  | Unknown_op
  | Unknown_session
  | Duplicate_session
  | Unknown_class
  | Bad_hierarchy  (** open/mutate input is structurally invalid *)
  | Store_error
      (** no store is configured, nothing is stored under that session
          name, or the stored state is unreadable *)
  | Overloaded
      (** the networked server shed this request: the global admission
          queue was full (or the connection limit was hit); retry later *)
  | Not_leader
      (** this node is a read-only replica: mutating verbs must go to
          the leader (the router forwards them there automatically) *)
  | Backend_unavailable
      (** the router could not reach any backend able to serve this
          request, after retries and failover *)
  | Internal

val code_string : error_code -> string

(** Stable u8 encodings of {!error_code} for the binary framing
    ([cxxlookup-rpc/1b]); never renumbered.  [code_of_byte] is [None]
    for unassigned bytes. *)
val code_byte : error_code -> int

val code_of_byte : int -> error_code option

type query = { q_class : string; q_member : string }

type hierarchy =
  | Chg_json of Chg.Json.t  (** inline cxxlookup-chg document *)
  | Source of string  (** C++-subset translation unit text *)

type mutation =
  | Add_class of {
      mc_name : string;
      mc_bases : (string * Chg.Graph.edge_kind * Chg.Graph.access) list;
      mc_members : Chg.Graph.member list;
    }
  | Add_member of { mm_class : string; mm_member : Chg.Graph.member }

type op =
  | Open of { o_session : string option; o_hierarchy : hierarchy }
  | Lookup of { lk_query : query; lk_semantics : Mro.semantics }
  | Batch_lookup of { bl_queries : query list; bl_semantics : Mro.semantics }
  | Mutate of mutation
  | Lint of { l_rules : string list option; l_semantics : Mro.semantics }
      (** rule-id strings, validated by the server; [None] = the
          default rule set *)
  | Symbols
  | Snapshot
  | Restore
  | Stats
  | Metrics
  | Close

type request = { rq_id : Chg.Json.t; rq_session : string option; rq_op : op }

(** The verb's wire name — what the [op] field carries and what
    per-verb metric labels use. *)
val op_string : op -> string

(** [read_only op] — true for the verbs the networked server may execute
    concurrently (lookup, batch_lookup, lint, stats, metrics); the rest
    serialize through the single writer path. *)
val read_only : op -> bool

(** [request_of_json j] / [parse_request line] — a typed request, or the
    id to echo plus a structured error. *)
val request_of_json :
  Chg.Json.t -> (request, Chg.Json.t * error_code * string) result

val parse_request :
  string -> (request, Chg.Json.t * error_code * string) result

val ok_response : id:Chg.Json.t -> (string * Chg.Json.t) list -> Chg.Json.t

val error_response :
  id:Chg.Json.t -> error_code -> string -> Chg.Json.t

(** [verdict_fields g v] — the response encoding of a verdict:
    [("verdict", "red"|"blue"|"none")], plus [resolves_to] (red) and
    [detail] (the pretty verdict, red/blue). *)
val verdict_fields :
  Chg.Graph.t -> Lookup_core.Engine.verdict option ->
  (string * Chg.Json.t) list
