(** The compiled-table cache: fully materialized per-member verdict
    columns under an LRU budget.

    A column is the Figure-8 output for one member name over {e every}
    class — the paper's lookup[*, m] — promoted from the memo engine once
    a member's root-query count crosses the session's threshold, held in
    the packed representation ({!Lookup_core.Packed}): two flat int
    arrays per column, so a compiled lookup decodes one tagged immediate
    with no hashing and no combine work at all — the fastest resident
    path the service offers.

    Residency is bounded two ways: a maximum number of columns and an
    optional byte budget.  Since packing, the budget charges the
    column's {e real} resident size ({!Lookup_core.Packed.column_bytes}),
    not an estimate — typically several times smaller than the boxed
    representation, so more columns stay resident under the same cap.
    The boxed-equivalent size is still tracked per entry for
    packed-vs-boxed reporting ({!column_stats}, [cxxlookup stats]).
    Past either bound the least recently used column is evicted; the
    column just promoted always survives its own promotion.

    Invalidation is the session's job (see DESIGN.md): [add_member]
    invalidates exactly the mutated member's column, [add_class] extends
    every resident column by the new class's verdict via
    {!update_columns}. *)

type column = Lookup_core.Packed.column

type t

(** [create ?max_entries ?max_bytes ()] — at most [max_entries] columns
    (default 64) and, when given, at most [max_bytes] packed bytes.
    Raises [Invalid_argument] on non-positive bounds. *)
val create : ?max_entries:int -> ?max_bytes:int -> unit -> t

(** [find t m] is member [m]'s compiled column, bumping its LRU stamp and
    the hit counter — or [None], bumping the miss counter. *)
val find : t -> string -> column option

(** [find_fast t m] is the lock-free hit path: it consults an
    atomically published immutable snapshot of the cache, so concurrent
    reader domains can probe while a writer (holding the owner's lock)
    restructures the underlying table.  A hit counts and touches
    exactly like {!find}; a miss counts nothing and returns [None] —
    fall back to {!find} under the owner's lock to attribute it. *)
val find_fast : t -> string -> column option

(** [peek t m] probes the published snapshot lock-free with no counter
    or LRU effect — for callers that already attributed the query and
    only want the column (the session's interned-id promotion). *)
val peek : t -> string -> column option

(** [note_fast_hit t] counts one hit served from a column this cache
    published but that the caller held outside it (the session symtab's
    id-indexed cache), keeping hit ratios comparable across framings. *)
val note_fast_hit : t -> unit

(** [promote t m col] installs (or refreshes) [m]'s column and enforces
    the budget, evicting least-recently-used columns as needed. *)
val promote : t -> string -> column -> unit

(** [invalidate t m] drops [m]'s column if resident; [true] iff it was. *)
val invalidate : t -> string -> bool

(** [clear t] drops everything (counted as invalidations). *)
val clear : t -> unit

(** [update_columns t f] rewrites every resident column ([None] drops
    it) — the [add_class] path: extend each column by the new class's
    verdict instead of throwing the warm cache away. *)
val update_columns : t -> (string -> column -> column option) -> unit

(** [columns t] — every resident column, sorted by member name (the
    deterministic order snapshots are written in).  Does not touch LRU
    stamps or hit counters. *)
val columns : t -> (string * column) list

(** [column_stats t] — [(member, packed bytes, boxed-equivalent bytes)]
    per resident column, sorted by member name. *)
val column_stats : t -> (string * int * int) list

val mem : t -> string -> bool
val entries : t -> int

(** [bytes t] is the real resident size of all packed columns — the
    quantity [create]'s byte budget bounds. *)
val bytes : t -> int

(** [boxed_bytes t] is what the same columns would cost in the boxed
    representation (the pre-packing estimator), for savings reporting. *)
val boxed_bytes : t -> int

(** [counters t] — [table_hits], [table_misses], [table_promotions],
    [table_evictions], [table_invalidations], in that order. *)
val counters : t -> (string * int) list

val hits : t -> int
val misses : t -> int

(** [register t ?labels registry] attaches the five counters (as
    [cxxlookup_table_<name>_total]) and live-size gauges
    ([cxxlookup_table_entries] / [_bytes] / [_boxed_bytes]) to
    [registry], all under [labels] (typically
    [[("session", name)]]). *)
val register :
  t -> ?labels:(string * string) list -> Telemetry.Registry.t -> unit
