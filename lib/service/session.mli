(** One resident hierarchy: the session a [cxxlookup-rpc/1] client opens,
    queries, and mutates.

    A session layers three lookup representations, fastest first:

    + the {b compiled-table cache} ({!Table_cache}): per-member verdict
      columns, one array read per lookup;
    + the {b memo engine} ({!Lookup_core.Memo}): lazy per-entry fills
      over the current snapshot, and the promotion source for compiled
      columns;
    + the {b incremental engine} ({!Lookup_core.Incremental}): the
      resident source of truth — every class row stays materialized, and
      [add_class] / [add_member] update it in place instead of rebuilding
      the table.

    Mutations refresh the snapshot-facing state (frozen graph, closure,
    an empty memo) and repair the compiled tables precisely: [add_class]
    {e extends} every resident column by the new class's
    already-computed verdict; [add_member] {e invalidates} exactly the
    mutated member's column.  See DESIGN.md, "The compiled-table
    cache". *)

type config = {
  promote_threshold : int;
      (** root queries of a member before its column is compiled *)
  table_max_entries : int;  (** compiled-column count budget *)
  table_max_bytes : int option;  (** compiled-column byte budget, in
                                     real packed bytes *)
  memo_max_entries : int option;  (** memo residency cap *)
  jobs : int;
      (** domains for whole-table column compilation (the lint verb);
          [1] never spawns *)
}

(** threshold 3, 64 columns, unbounded bytes, unbounded memo, 1 job *)
val default_config : config

(** Which layer answered a lookup (reported as ["via"] on the wire). *)
type served = Compiled | Memoised

val served_string : served -> string

type t

(** [create ?config ~name g] opens a session over [g].  The incremental
    engine is materialized lazily — the class-by-class replay runs on
    the first mutation, not at open time — so opening (and restoring
    from a snapshot) costs only the closure computation. *)
val create : ?config:config -> name:string -> Chg.Graph.t -> t

(** [restore ?config ~name ~epoch ~columns g] reopens a session from
    durable state: the snapshot graph, its mutation epoch, and the
    compiled verdict columns that were resident when the snapshot was
    taken (installed directly into the table cache, so the warm serving
    path needs no recomputation).  Columns whose class count disagrees
    with [g] are dropped rather than trusted. *)
val restore :
  ?config:config ->
  name:string ->
  epoch:int ->
  columns:(string * Table_cache.column) list ->
  Chg.Graph.t ->
  t

val name : t -> string

(** [graph t] is the current frozen snapshot (refreshed per mutation). *)
val graph : t -> Chg.Graph.t

(** [epoch t] counts mutations applied so far. *)
val epoch : t -> int

val cache : t -> Table_cache.t

(** [compiled_columns t] — the resident compiled columns, sorted by
    member name: what a snapshot of this session persists. *)
val compiled_columns : t -> (string * Table_cache.column) list

(** [lookup t cls member] serves one query (table, then memo, promoting
    past the threshold).  [Error cls] when the class is unknown. *)
val lookup :
  t -> string -> string ->
  (Lookup_core.Engine.verdict option * served, string) result

(** {2 Interned ids — the binary hot path}

    Classes are addressed by graph id (declaration order, append-only);
    members by the session's dense intern ids, assigned in
    first-declaration order at open and append-only across mutations —
    never renumbered within a server lifetime, so a client's table plus
    mutation deltas stays valid.  (Ids are {e not} stable across server
    restarts; clients re-fetch [symbols] per session open.) *)

(** [symbols t] — (epoch, class names by class id, member names by
    member id): the [symbols] verb's payload.  Fresh arrays. *)
val symbols : t -> int * string array * string array

val num_member_symbols : t -> int
val member_symbol_name : t -> int -> string
val member_symbol : t -> string -> int option

(** [member_symbols_from t k] — the intern delta: every [(id, name)]
    with [id >= k], for mutation responses ([k] = the count before the
    mutation). *)
val member_symbols_from : t -> int -> (int * string) list

(** [lookup_code t ~cls ~member] answers by interned ids with a resolve
    code: [-1] absent, [-2] ambiguous, else the declaring class id.
    Counter accounting matches {!lookup}; when the member's compiled
    column is cached in the session's symbol table the path allocates
    nothing. *)
val lookup_code :
  t -> cls:int -> member:int ->
  (int * served, [ `Bad_class | `Bad_member ]) result

(** [mro_lookup t v cls member] serves one query under the linearized
    semantics [v] (the protocol's opt-in ["semantics"] field): the
    session keeps one {!Mro.t} per requested variant, computed from the
    current snapshot and invalidated by mutation epoch.  [Error cls]
    when the class is unknown. *)
val mro_lookup :
  t -> Mro.variant -> string -> string ->
  (Lookup_core.Engine.verdict option, string) result

(** [add_class t ~cls ~bases ~members] — the incremental engine computes
    just the new row; resident columns are extended, not dropped.
    Returns the new class id.
    @raise Chg.Graph.Error like {!Lookup_core.Incremental.add_class}. *)
val add_class :
  t ->
  cls:string ->
  bases:(string * Chg.Graph.edge_kind * Chg.Graph.access) list ->
  members:Chg.Graph.member list ->
  Chg.Graph.class_id

(** [add_member t ~cls member] — the incremental engine recomputes only
    the affected rows of that member's column; the member's compiled
    column (if any) is invalidated.  Returns (rows recomputed, column
    was resident).
    @raise Chg.Graph.Error like {!Lookup_core.Incremental.add_member}. *)
val add_member : t -> cls:string -> Chg.Graph.member -> int * bool

(** [counters t] — [lookups], [resolved], [ambiguous], [not_found],
    [mutations]. *)
val counters : t -> (string * int) list

(** [stats_json t] is the session's [stats]-verb payload: hierarchy
    shape, epoch, configured domains, query counters, table counters
    (with hit ratio, real packed bytes, boxed-equivalent bytes, and the
    per-column packed-vs-boxed breakdown), memo residency.
    Deterministic (no wall-clock). *)
val stats_json : t -> Chg.Json.t

(** [register t registry] attaches the session's counters (as
    [cxxlookup_session_<name>_total]), live gauges (epoch, classes,
    memo entries) and its table cache's series to [registry], all
    labelled [session=<name>].  Reopening a name replaces the closed
    session's series. *)
val register : t -> Telemetry.Registry.t -> unit
