module G = Chg.Graph
module Engine = Lookup_core.Engine
module Memo = Lookup_core.Memo
module Incremental = Lookup_core.Incremental
module Packed = Lookup_core.Packed

type config = {
  promote_threshold : int;
  table_max_entries : int;
  table_max_bytes : int option;
  memo_max_entries : int option;
  jobs : int;
}

let default_config =
  { promote_threshold = 3;
    table_max_entries = 64;
    table_max_bytes = None;
    memo_max_entries = None;
    jobs = 1 }

type served = Compiled | Memoised

let served_string = function Compiled -> "table" | Memoised -> "memo"

(* The per-epoch symbol snapshot the binary hot path reads lock-free:
   class names frozen in graph-id order, plus a member-id-indexed cache
   of compiled columns (filled lazily from the table cache; entries are
   immutable columns, so racy fills across reader domains are benign —
   a stale [None] just re-probes).  Member names live on the session
   itself: ids are assigned append-only across mutations, never
   renumbered, so a client's intern table stays valid under deltas. *)
type symtab = {
  st_epoch : int;
  st_classes : string array;
  st_cols : Packed.column option array;
}

type t = {
  name : string;
  config : config;
  inc : Incremental.t Lazy.t;
      (* resident source of truth, mutated in place.  Lazy so that a
         session restored from a snapshot (or one that is never mutated)
         does not pay the class-by-class replay at open time: the first
         mutation forces it; lookups are served by the memo and the
         compiled tables, which need only the frozen graph. *)
  cache : Table_cache.t;
  mutable graph : G.t;  (* snapshot of [inc], refreshed per mutation *)
  mutable closure : Chg.Closure.t;
  mutable memo : Memo.t;  (* read-through engine over the snapshot *)
  mutable epoch : int;  (* mutations applied so far *)
  mutable mro : (int * Mro.variant * Mro.t) list;
      (* linearization tables for the opt-in MRO semantics, one per
         variant, keyed by the epoch they were computed at; mutations
         invalidate by epoch mismatch (stale entries are dropped on the
         next fill) *)
  member_syms : (string, int) Hashtbl.t;
      (* member name -> dense id; append-only, written only under the
         mutation path's exclusivity *)
  mutable member_names_arr : string array;  (* id -> name, doubling *)
  mutable member_count : int;
  symtab : symtab Atomic.t;
      (* published per-epoch snapshot; rebuilt under [lock] on epoch
         mismatch, read lock-free everywhere else *)
  lookups : Telemetry.Counter.t;
  resolved : Telemetry.Counter.t;
  ambiguous : Telemetry.Counter.t;
  not_found : Telemetry.Counter.t;
  mutations : Telemetry.Counter.t;
  lock : Mutex.t;
      (* guards the memo path and cache promotion under the networked
         server, where read verbs run on several worker domains at
         once.  The compiled-table hit path stays lock-free
         ([Table_cache.find_fast]); only memo fills — which mutate the
         memo's tables — and promotions serialize here.  Uncontended
         (and byte-identical in accounting) on the stdin path. *)
}

let fresh_memo t cl = Memo.create ?max_entries:t.config.memo_max_entries cl

let refresh t =
  t.graph <- Incremental.snapshot (Lazy.force t.inc);
  t.closure <- Chg.Closure.compute t.graph;
  t.memo <- fresh_memo t t.closure

let replay_into_incremental g =
  let inc = Incremental.create () in
  G.iter_classes g (fun c ->
      ignore
        (Incremental.add_class inc (G.name g c)
           ~bases:
             (List.map
                (fun (b : G.base) -> (G.name g b.b_class, b.b_kind, b.b_access))
                (G.bases g c))
           ~members:(G.members g c)));
  inc

let intern t name =
  match Hashtbl.find_opt t.member_syms name with
  | Some id -> id
  | None ->
    let id = t.member_count in
    if id >= Array.length t.member_names_arr then begin
      let fresh = Array.make (max 16 (2 * (id + 1))) "" in
      Array.blit t.member_names_arr 0 fresh 0 id;
      t.member_names_arr <- fresh
    end;
    t.member_names_arr.(id) <- name;
    Hashtbl.add t.member_syms name id;
    t.member_count <- id + 1;
    id

(* seed the intern table in first-declaration order — the same order
   {!Lookup_core.Packed.build} and the eager engine use *)
let intern_graph t g =
  G.iter_classes g (fun c ->
      List.iter
        (fun (m : G.member) -> ignore (intern t m.G.m_name))
        (G.members g c))

let make ?(config = default_config) ~name ~epoch g =
  let closure = Chg.Closure.compute g in
  let t =
    { name;
      config;
      inc = lazy (replay_into_incremental g);
      cache =
        Table_cache.create ~max_entries:config.table_max_entries
          ?max_bytes:config.table_max_bytes ();
      graph = g;
      closure;
      memo = Memo.create ?max_entries:config.memo_max_entries closure;
      epoch;
      mro = [];
      member_syms = Hashtbl.create 64;
      member_names_arr = [||];
      member_count = 0;
      symtab =
        Atomic.make { st_epoch = -1; st_classes = [||]; st_cols = [||] };
      lookups = Telemetry.Counter.make "lookups";
      resolved = Telemetry.Counter.make "resolved";
      ambiguous = Telemetry.Counter.make "ambiguous";
      not_found = Telemetry.Counter.make "not_found";
      mutations = Telemetry.Counter.make "mutations";
      lock = Mutex.create () }
  in
  intern_graph t g;
  t

let create ?config ~name g = make ?config ~name ~epoch:0 g

let restore ?config ~name ~epoch ~columns g =
  let t = make ?config ~name ~epoch g in
  let n = G.num_classes g in
  List.iter
    (fun (m, col) ->
      if Packed.column_classes col = n then Table_cache.promote t.cache m col)
    columns;
  t

let name t = t.name
let graph t = t.graph
let epoch t = t.epoch
let cache t = t.cache
let compiled_columns t = Table_cache.columns t.cache

let count_verdict t = function
  | Some (Engine.Red _) -> Telemetry.Counter.incr t.resolved
  | Some (Engine.Blue _) -> Telemetry.Counter.incr t.ambiguous
  | None -> Telemetry.Counter.incr t.not_found

(* The serving path: compiled table first (one array read), then the
   memo engine; a memo-served member whose root-query count has crossed
   the threshold is promoted — its full column materialized from the
   memo's cache — so later queries take the compiled path. *)
let lookup t cls member =
  match G.find_opt t.graph cls with
  | None -> Error cls
  | Some c ->
    Telemetry.Counter.incr t.lookups;
    (match Table_cache.find_fast t.cache member with
    | Some col ->
      (* lock-free: an immutable packed column read on any domain *)
      let v = Packed.column_get col c in
      count_verdict t v;
      Ok (v, Compiled)
    | None ->
      Mutex.protect t.lock @@ fun () ->
      (* re-probe under the lock: another domain may have promoted this
         member between our fast-path miss and acquiring the lock (the
         locked find also attributes the miss to the counters) *)
      (match Table_cache.find t.cache member with
      | Some col ->
        let v = Packed.column_get col c in
        count_verdict t v;
        Ok (v, Compiled)
      | None ->
        let v = Memo.lookup t.memo c member in
        if Memo.root_queries t.memo member >= t.config.promote_threshold then
          Table_cache.promote t.cache member
            (Memo.materialize_column t.memo member);
        count_verdict t v;
        Ok (v, Memoised)))

(* ---- the interned-id path ------------------------------------------

   Classes are addressed by graph id (declaration order, append-only by
   construction); members by the session's dense intern ids.  Both are
   what the binary framing carries, so the resolved hot path below is
   int-only: bounds checks, one array read into the published symtab,
   one packed probe, no allocation. *)

let symtab t =
  let st = Atomic.get t.symtab in
  if st.st_epoch = t.epoch then st
  else
    Mutex.protect t.lock @@ fun () ->
    let st = Atomic.get t.symtab in
    if st.st_epoch = t.epoch then st
    else begin
      let st =
        { st_epoch = t.epoch;
          st_classes =
            Array.init (G.num_classes t.graph) (fun c -> G.name t.graph c);
          st_cols = Array.make t.member_count None }
      in
      Atomic.set t.symtab st;
      st
    end

let num_member_symbols t = t.member_count
let member_symbol_name t id = t.member_names_arr.(id)

let member_symbols_from t k =
  List.init (t.member_count - k) (fun i -> (k + i, t.member_names_arr.(k + i)))

let member_symbol t name = Hashtbl.find_opt t.member_syms name

(* (epoch, class names, member names) — the symbols verb's payload.
   Both arrays are copies: the response must not alias the growable
   member store or the published symtab. *)
let symbols t =
  let st = symtab t in
  (st.st_epoch, Array.copy st.st_classes, Array.sub t.member_names_arr 0 t.member_count)

let code_of_verdict = function
  | Some (Engine.Red { Lookup_core.Abstraction.r_ldc; _ }) -> r_ldc
  | Some (Engine.Blue _) -> -2
  | None -> -1

let count_code t code =
  if code >= 0 then Telemetry.Counter.incr t.resolved
  else if code = -2 then Telemetry.Counter.incr t.ambiguous
  else Telemetry.Counter.incr t.not_found

(* [lookup_code t ~cls ~member] — verdict as a resolve code ([-1]
   absent, [-2] ambiguous, else the declaring class id), by interned
   ids.  Counter accounting is identical to {!lookup} for the same
   query.  On the path where the member's compiled column is cached in
   the symtab, this performs zero allocation. *)
let lookup_code t ~cls ~member =
  if cls < 0 || cls >= G.num_classes t.graph then Error `Bad_class
  else if member < 0 || member >= t.member_count then Error `Bad_member
  else begin
    let st = symtab t in
    match if member < Array.length st.st_cols then st.st_cols.(member) else None with
    | Some col ->
      Telemetry.Counter.incr t.lookups;
      (* the table cache's hit accounting must match the by-name path *)
      Table_cache.note_fast_hit t.cache;
      let code = Packed.column_resolve_code col cls in
      count_code t code;
      Ok (code, Compiled)
    | None ->
      let name = t.member_names_arr.(member) in
      (match lookup t (st.st_classes.(cls)) name with
      | Error _ -> Error `Bad_class
      | Ok (v, served) ->
        (* promote into the symtab so the next id-lookup is int-only *)
        (match Table_cache.peek t.cache name with
        | Some col
          when Packed.column_classes col = G.num_classes t.graph
               && member < Array.length st.st_cols ->
          st.st_cols.(member) <- Some col
        | _ -> ());
        Ok (code_of_verdict v, served))
  end

(* The opt-in linearized-semantics path: one {!Mro.t} per requested
   variant, computed from the current frozen graph and cached until the
   next mutation (epoch mismatch).  Serialized by the session lock —
   the table itself is immutable once built, and the list cell swap is
   the only write. *)
let mro_table t v =
  Mutex.protect t.lock @@ fun () ->
  match
    List.find_opt (fun (e, v', _) -> e = t.epoch && v' = v) t.mro
  with
  | Some (_, _, tbl) -> tbl
  | None ->
    let tbl = Mro.compute v t.graph in
    t.mro <-
      (t.epoch, v, tbl)
      :: List.filter (fun (e, _, _) -> e = t.epoch) t.mro;
    tbl

let mro_lookup t v cls member =
  match G.find_opt t.graph cls with
  | None -> Error cls
  | Some c ->
    Telemetry.Counter.incr t.lookups;
    let tbl = mro_table t v in
    let verdict = Mro.lookup tbl c member in
    count_verdict t verdict;
    Ok verdict

(* Mutations go to the incremental engine — its rows update in place,
   never recomputed from scratch — then the snapshot-facing state
   refreshes: a new frozen graph, its closure, and an empty memo (the
   old memo's entries would be reindexed anyway; the compiled tables
   carry the warmth across mutations). *)

let add_class t ~cls ~bases ~members =
  let inc = Lazy.force t.inc in
  let id = Incremental.add_class inc cls ~bases ~members in
  List.iter (fun (m : G.member) -> ignore (intern t m.G.m_name)) members;
  t.epoch <- t.epoch + 1;
  Telemetry.Counter.incr t.mutations;
  refresh t;
  (* Every resident column gains exactly one entry: the new class's
     verdict, already computed by the incremental row — extension, not
     invalidation. *)
  Table_cache.update_columns t.cache (fun m col ->
      Some (Packed.column_append col (Incremental.lookup inc id m)));
  id

let add_member t ~cls member =
  let rows = Incremental.add_member (Lazy.force t.inc) cls member in
  ignore (intern t member.G.m_name);
  t.epoch <- t.epoch + 1;
  Telemetry.Counter.incr t.mutations;
  refresh t;
  (* Only the mutated member's column can have changed; drop exactly it. *)
  let invalidated = Table_cache.invalidate t.cache member.G.m_name in
  (rows, invalidated)

let counters t =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    [ t.lookups; t.resolved; t.ambiguous; t.not_found; t.mutations ]

let stats_json t =
  let j_counters kvs =
    Chg.Json.Obj (List.map (fun (k, v) -> (k, Chg.Json.Int v)) kvs)
  in
  let hits = Table_cache.hits t.cache and misses = Table_cache.misses t.cache in
  let hit_ratio_pct =
    if hits + misses = 0 then 0 else 100 * hits / (hits + misses)
  in
  Chg.Json.Obj
    [ ("session", Chg.Json.String t.name);
      ("classes", Chg.Json.Int (G.num_classes t.graph));
      ("edges", Chg.Json.Int (G.num_edges t.graph));
      ("members", Chg.Json.Int (List.length (G.member_names t.graph)));
      ("epoch", Chg.Json.Int t.epoch);
      ("domains", Chg.Json.Int t.config.jobs);
      ("counters", j_counters (counters t));
      ( "table",
        Chg.Json.Obj
          (("entries", Chg.Json.Int (Table_cache.entries t.cache))
           :: ("bytes", Chg.Json.Int (Table_cache.bytes t.cache))
           :: ("boxed_bytes", Chg.Json.Int (Table_cache.boxed_bytes t.cache))
           :: ("hit_ratio_pct", Chg.Json.Int hit_ratio_pct)
           :: List.map
                (fun (k, v) -> (k, Chg.Json.Int v))
                (Table_cache.counters t.cache)
           @ [ ( "columns",
                 Chg.Json.List
                   (List.map
                      (fun (m, bytes, boxed) ->
                        Chg.Json.Obj
                          [ ("member", Chg.Json.String m);
                            ("bytes", Chg.Json.Int bytes);
                            ("boxed_bytes", Chg.Json.Int boxed) ])
                      (Table_cache.column_stats t.cache)) ) ]) );
      ( "memo",
        Chg.Json.Obj
          [ ("cached_entries", Chg.Json.Int (Memo.cached_entries t.memo)) ] )
    ]

(* Exposition: every per-session series carries a session label, so the
   registry holds all open sessions side by side. *)
let register t registry =
  let labels = [ ("session", t.name) ] in
  List.iter
    (fun c ->
      Telemetry.Registry.attach_counter registry ~labels
        ~help:
          (Printf.sprintf "Session counter %s." (Telemetry.Counter.name c))
        (Printf.sprintf "cxxlookup_session_%s_total"
           (Telemetry.Counter.name c))
        c)
    [ t.lookups; t.resolved; t.ambiguous; t.not_found; t.mutations ];
  Telemetry.Registry.gauge registry ~labels
    ~help:"Mutations applied to the session so far."
    "cxxlookup_session_epoch"
    (fun () -> t.epoch);
  Telemetry.Registry.gauge registry ~labels
    ~help:"Classes in the session's hierarchy."
    "cxxlookup_session_classes"
    (fun () -> G.num_classes t.graph);
  Telemetry.Registry.gauge registry ~labels
    ~help:"Entries in the memo engine's cache."
    "cxxlookup_session_memo_entries"
    (fun () -> Memo.cached_entries t.memo);
  Table_cache.register t.cache ~labels registry
