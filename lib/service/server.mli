(** The lookup service: a session store plus the [cxxlookup-rpc/1]
    request dispatcher ([cxxlookup serve] is a thin wrapper over
    {!serve}; [cxxlookup batch] drives {!handle_json} directly).

    The server is deliberately synchronous and single-threaded: one
    request, one response, in order — the batching verb is the
    throughput lever, and resident state (incremental rows, memo cache,
    compiled tables) is what amortizes work across requests. *)

type t

(** [create ?config ?trace ?store ?request_log ?slow_ms ()] — [config]
    applies to every session opened; [trace] (default false) records
    per-request telemetry (a [request] event and an [rpc:<op>] span
    pair) into {!sink}; [store] makes sessions durable (opens write
    snapshots, mutations append to the WAL, and the [snapshot] /
    [restore] verbs work — [store_error] without it); [request_log]
    writes one structured JSON line per finished request; [slow_ms]
    marks requests at or over the threshold as slow (counted, and
    flagged in the log).  Every server owns a metric {!registry} that
    the store, each opened session, and the request path register
    into. *)
val create :
  ?config:Session.config ->
  ?trace:bool ->
  ?store:Store.t ->
  ?request_log:Request_log.t ->
  ?slow_ms:int ->
  unit ->
  t

(** The per-request event stream (disabled sink unless [~trace:true]). *)
val sink : t -> Telemetry.Sink.t

val store : t -> Store.t option

(** The server's metric registry — what the [metrics] verb and
    [--metrics-file] render. *)
val registry : t -> Telemetry.Registry.t

val uptime_ns : t -> int

(** [dump_flight t oc] writes the flight recorder (the most recent
    requests, oldest first) to [oc].  Also triggered automatically on
    any [internal] error response, and by SIGUSR1 under
    [cxxlookup serve]. *)
val dump_flight : t -> out_channel -> unit

(** One session's fate under {!recover_sessions}. *)
type recovered =
  | Recovered of {
      r_session : string;
      r_epoch : int;  (** epoch after WAL replay *)
      r_replayed : int;  (** WAL records applied past the snapshot *)
      r_torn : bool;  (** a torn final WAL record was skipped *)
    }
  | Recovery_failed of { r_session : string; r_error : string }

(** [recover_sessions t] reopens every session the store holds (newest
    valid snapshot + WAL-tail replay), skipping names already open.
    The startup path of [cxxlookup serve --store].  Empty without a
    store. *)
val recover_sessions : t -> recovered list

(** Service-level counters: [requests], [errors], [sessions_opened],
    [sessions_closed], [lookups], [batch_requests], [batch_queries],
    [mutations]. *)
val counters : t -> (string * int) list

(** [handle_request t rq] / [handle_json t j] / [handle_line t line] —
    one request at the corresponding decoding stage; always returns the
    response document (errors travel as [ok:false] responses, never
    exceptions). *)
val handle_request : t -> Protocol.request -> Chg.Json.t

val handle_json : t -> Chg.Json.t -> Chg.Json.t

val handle_line : t -> string -> Chg.Json.t

(** [serve ?after_response t ic oc] — the JSON-lines loop: read a
    request per line from [ic], write its response line to [oc]
    (flushed per line, so the server can sit on a pipe), until EOF.
    Blank lines are skipped.  [after_response] runs after each flushed
    response — the [--metrics-file] interval rewrite hook. *)
val serve : ?after_response:(unit -> unit) -> t -> in_channel -> out_channel -> unit
