(** The lookup service: a session store plus the [cxxlookup-rpc/1]
    request dispatcher ([cxxlookup serve] is a thin wrapper over
    {!serve}; [cxxlookup batch] drives {!handle_json} directly).

    On the stdin/stdout path the server is synchronous and
    single-threaded: one request, one response, in order.  Under the
    networked front end (lib/net) the same value is shared by every
    worker domain: read verbs run concurrently (sessions guard their
    mutable caches internally), mutations are serialized by the net
    layer's writer lock, and per-request accounting commits under an
    observation mutex so scrapes stay monotone. *)

type t

(** A [Follower] answers the read-only verbs ([lookup], [batch_lookup],
    [lint], [stats], [metrics]) normally and every mutating verb with a
    [not_leader] error; its sessions change only through the
    replication entry points below. *)
type role = Leader | Follower

(** Connection-level accounting, owned by the server so the
    [cxxlookup_server_connections_…] / [admission_queue_depth] /
    [overloaded] series exist (deterministically zero) in stdin mode
    too.  The networked front end mutates the fields directly. *)
type net_stats = {
  net_active : int Atomic.t;  (** connections currently open *)
  net_admitted : int Atomic.t;
      (** requests admitted and not yet answered — the global admission
          queue depth the [--queue-depth] bound applies to *)
  net_accepted : Telemetry.Counter.t;
  net_closed : Telemetry.Counter.t;
  net_timed_out : Telemetry.Counter.t;  (** idle + slowloris closes *)
  net_overloaded : Telemetry.Counter.t;  (** explicit overload rejections *)
}

(** [create ?config ?trace ?store ?request_log ?slow_ms ()] — [config]
    applies to every session opened; [trace] (default false) records
    per-request telemetry (a [request] event and an [rpc:<op>] span
    pair) into {!sink}; [store] makes sessions durable (opens write
    snapshots, mutations append to the WAL, and the [snapshot] /
    [restore] verbs work — [store_error] without it); [request_log]
    writes one structured JSON line per finished request; [slow_ms]
    marks requests at or over the threshold as slow (counted, and
    flagged in the log).  Every server owns a metric {!registry} that
    the store, each opened session, and the request path register
    into. *)
val create :
  ?role:role ->
  ?config:Session.config ->
  ?trace:bool ->
  ?store:Store.t ->
  ?request_log:Request_log.t ->
  ?slow_ms:int ->
  unit ->
  t

val role : t -> role

(** The per-request event stream (disabled sink unless [~trace:true]). *)
val sink : t -> Telemetry.Sink.t

val store : t -> Store.t option

(** The server's metric registry — what the [metrics] verb and
    [--metrics-file] render. *)
val registry : t -> Telemetry.Registry.t

val net : t -> net_stats

(** Prometheus exposition of {!registry}, rendered under the
    observation mutex — the race-free form of
    [Telemetry.Prometheus.render (registry t)]. *)
val render_metrics : t -> string

val uptime_ns : t -> int

(** [dump_flight t oc] writes the flight recorder (the most recent
    requests, oldest first) to [oc].  Also triggered automatically on
    any [internal] error response, and by SIGUSR1 under
    [cxxlookup serve]. *)
val dump_flight : t -> out_channel -> unit

(** One session's fate under {!recover_sessions}. *)
type recovered =
  | Recovered of {
      r_session : string;
      r_epoch : int;  (** epoch after WAL replay *)
      r_replayed : int;  (** WAL records applied past the snapshot *)
      r_torn : bool;  (** a torn final WAL record was skipped *)
    }
  | Recovery_failed of { r_session : string; r_error : string }

(** [recover_sessions t] reopens every session the store holds (newest
    valid snapshot + WAL-tail replay), skipping names already open.
    The startup path of [cxxlookup serve --store].  Empty without a
    store. *)
val recover_sessions : t -> recovered list

(** {1 Replication entry points}

    The follower applier's interface — these bypass the [not_leader]
    gate (they {e are} the replication stream), and re-persist into the
    follower's own store when one is configured, so a restarted replica
    recovers locally and resumes from its last applied epoch.  The
    caller is responsible for mutual exclusion against concurrent read
    verbs (the networked replica applies under the net server's write
    lock). *)

(** Open sessions as [(name, epoch)], sorted — the follower's
    handshake offer, letting the leader skip snapshots the follower
    already has. *)
val open_sessions : t -> (string * int) list

(** [install_snapshot t snap] (re)opens [snap]'s session from its
    graph + packed columns, superseding any open session and stored
    lineage under the name.  The stream's resynchronization point. *)
val install_snapshot : t -> Store.Snapshot.t -> (unit, string) result

(** [apply_replicated t ~session ~epoch m] applies one replicated WAL
    record.  [epoch] must be exactly the session's epoch + 1 (the
    strictly-consecutive contract recovery enforces); on [Error] the
    caller must resynchronize from a snapshot. *)
val apply_replicated :
  t -> session:string -> epoch:int -> Store.Mutation.t ->
  (unit, string) result

(** Service-level counters: [requests], [errors], [sessions_opened],
    [sessions_closed], [lookups], [batch_requests], [batch_queries],
    [mutations]. *)
val counters : t -> (string * int) list

(** [handle_request t rq] / [handle_json t j] / [handle_line t line] —
    one request at the corresponding decoding stage; always returns the
    response document (errors travel as [ok:false] responses, never
    exceptions). *)
val handle_request : ?conn:int -> t -> Protocol.request -> Chg.Json.t

val handle_json : ?conn:int -> t -> Chg.Json.t -> Chg.Json.t

val handle_line : ?conn:int -> t -> string -> Chg.Json.t

(** [handle_frame t frame] — one complete binary ([cxxlookup-rpc/1b])
    request frame (header + payload, as read off the wire) in, one
    complete response frame out.  Shares the JSON path's per-verb
    accounting (histograms, counters, flight recorder, request log) and
    records the decode time in [cxxlookup_server_frame_decode_ns].
    Malformed frames answer [bad_request] (a header the reader could
    not even frame, [parse_error]); never raises. *)
val handle_frame : ?conn:int -> t -> string -> string

(** [reject t ~verb ~id code msg] — refuse a request without executing
    it: counts as a request and an error, bumps the overload rejection
    counter when [code] is [Overloaded], passes through the flight
    recorder and request log, and returns the error response.  The
    networked server's admission control and framing guards answer
    through here. *)
val reject :
  ?conn:int -> t -> verb:string -> id:Chg.Json.t -> Protocol.error_code ->
  string -> Chg.Json.t

(** [reject_frame t ~verb ~id code msg] — {!reject}'s binary twin:
    refuse a frame without executing it, with identical accounting,
    returning the encoded error response frame. *)
val reject_frame :
  ?conn:int -> t -> verb:string -> id:int -> Protocol.error_code ->
  string -> string

(** [serve ?after_response t ic oc] — the JSON-lines loop: read a
    request per line from [ic], write its response line to [oc]
    (flushed per line, so the server can sit on a pipe), until EOF.
    Blank lines are skipped.  [after_response] runs after each flushed
    response — the [--metrics-file] interval rewrite hook. *)
val serve : ?after_response:(unit -> unit) -> t -> in_channel -> out_channel -> unit
