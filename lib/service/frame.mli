(** The [cxxlookup-rpc/1b] binary framing — the no-JSON hot path for
    [lookup], [batch_lookup], [mutate] and [symbols].

    Wire format (all integers little-endian, {!Chg.Binary} primitives):
    {v
    request   0xB1 | u8 op     | u32 payload_len | payload
    response  0xB2 | u8 status | u32 payload_len | payload
    v}

    The 0xB1 magic disambiguates against JSON-lines (which never starts
    a message with that byte), so one listener serves both framings
    with no handshake — negotiation is per message.  Every request
    payload begins [i64 id | string session], so a router can extract
    the routing key without op-specific knowledge and forward the frame
    opaquely.  Classes and members travel as the session's dense
    interned ids; the [symbols] verb returns the tables and mutation
    responses carry the intern delta, so a client needs one symbols
    round-trip (and the deltas) to stay int-only.

    Ok responses (status 0) are op-specific; error responses (status 1)
    are [i64 id | u8 code | string message] with {!Protocol.code_byte}
    codes.  Verdicts compress to a tag byte (0 none, 1 red + u32
    declaring class, 2 blue) — detail strings remain JSON-only.

    Decoders never raise: malformed frames become [Error], which the
    server answers as [bad_request].  The length prefix keeps a bad
    payload from desynchronizing the connection. *)

val version : string

(** First byte of a request resp. response frame (0xB1 / 0xB2). *)
val request_magic : int

val response_magic : int

(** Header bytes before the payload (magic + op/status + u32 length). *)
val header_len : int

(** Request op bytes: lookup 1, batch_lookup 2, add_member 3,
    add_class 4, symbols 5.  Never renumbered. *)
val op_lookup : int

val op_batch_lookup : int
val op_add_member : int
val op_add_class : int
val op_symbols : int

type req =
  | Lookup of { lk_class : int; lk_member : int }
  | Batch_lookup of (int * int) array  (** (class id, member id) pairs *)
  | Add_member of { am_class : int; am_member : Chg.Graph.member }
  | Add_class of {
      ac_name : string;
      ac_bases : (string * Chg.Graph.edge_kind * Chg.Graph.access) list;
      ac_members : Chg.Graph.member list;
    }
  | Symbols

type request = { fr_id : int; fr_session : string; fr_op : req }

(** The verb name for metric labels — identical to the JSON protocol's
    ([lookup], [batch_lookup], [mutate], [symbols]), so both framings
    share one set of per-verb series. *)
val op_string : req -> string

(** Same contract as {!Protocol.read_only}: whether the networked
    server may execute the op concurrently with other reads. *)
val read_only : req -> bool

(** [parse_header s] splits the 6-byte request prefix into
    [(op, payload_len)]. *)
val parse_header : string -> (int * int, string) result

(** [decode_request ~op body] types a request payload ([body] excludes
    the header).  [Error] means [bad_request]. *)
val decode_request : op:int -> string -> (request, string) result

val encode_request : request -> string

(** [session_of_request body] reads just the [i64 id | string session]
    prefix — the router's routing key over an otherwise opaque frame. *)
val session_of_request : string -> (int * string, string) result

(** Verdict codes follow {!Lookup_core.Packed.column_resolve_code}:
    [-1] absent, [-2] ambiguous, [>= 0] the declaring class id. *)
type verdict_code = int

type resp =
  | Ok_lookup of verdict_code
  | Ok_batch of {
      ob_codes : verdict_code array;
      ob_resolved : int;
      ob_ambiguous : int;
      ob_not_found : int;
    }
  | Ok_add_member of {
      oam_member : int;  (** the mutated member's interned id *)
      oam_rows : int;
      oam_invalidated : bool;
      oam_epoch : int;
      oam_new_symbols : (int * string) list;  (** intern-table delta *)
    }
  | Ok_add_class of {
      oac_class : int;  (** the new class id *)
      oac_classes : int;  (** class count after the mutation *)
      oac_epoch : int;
      oac_new_symbols : (int * string) list;
    }
  | Ok_symbols of {
      os_epoch : int;
      os_classes : string array;  (** class id -> name *)
      os_members : string array;  (** member id -> name *)
    }
  | Err of Protocol.error_code * string

val encode_response : id:int -> resp -> string

(** [decode_response ~op s] types a full response frame for the client
    side; [op] names the request op it answers (the wire does not
    repeat it). *)
val decode_response : op:int -> string -> (int * resp, string) result
