module B = Chg.Binary
module G = Chg.Graph

(* The cxxlookup-rpc/1b binary framing: the no-JSON hot path.

   Frames are length-prefixed so a reader never scans for a
   terminator, and the first byte disambiguates against JSON-lines
   (a JSON request line starts with '{' or whitespace, never 0xB1), so
   one listener serves both framings per message with no handshake:

     request   0xB1 | u8 op     | u32 payload_len | payload
     response  0xB2 | u8 status | u32 payload_len | payload

   Every request payload begins [i64 id | string session] — the id
   first so errors can echo it, the session second and
   position-independent of the op so a router can extract it without
   op-specific knowledge and forward the frame opaquely.  Classes and
   members travel as the session's dense interned ids (the [symbols]
   verb returns the tables; mutation responses carry the delta), so
   the resolved path is int-only end to end.

   Responses: status 0 is ok with an op-specific payload; status 1 is
   an error payload [i64 id | u8 code | string message] using
   {!Protocol.code_byte}.  Lookup verdicts compress to one byte —
   0 none, 1 red (followed by the declaring class id), 2 blue — with
   the JSON protocol remaining the canonical carrier for verdict
   detail strings.

   Decoders raise nothing: every malformed frame becomes [Error msg],
   which the server answers as [bad_request].  The length prefix means
   a bad payload never desynchronizes the connection — the reader
   already consumed exactly the frame. *)

let version = "cxxlookup-rpc/1b"
let request_magic = 0xB1
let response_magic = 0xB2
let header_len = 6

(* request ops; like the error-code bytes, never renumbered *)
let op_lookup = 1
let op_batch_lookup = 2
let op_add_member = 3
let op_add_class = 4
let op_symbols = 5

type req =
  | Lookup of { lk_class : int; lk_member : int }
  | Batch_lookup of (int * int) array  (* (class id, member id) pairs *)
  | Add_member of { am_class : int; am_member : G.member }
  | Add_class of {
      ac_name : string;
      ac_bases : (string * G.edge_kind * G.access) list;
      ac_members : G.member list;
    }
  | Symbols

type request = { fr_id : int; fr_session : string; fr_op : req }

let op_string = function
  | Lookup _ -> "lookup"
  | Batch_lookup _ -> "batch_lookup"
  | Add_member _ | Add_class _ -> "mutate"
  | Symbols -> "symbols"

let read_only = function
  | Lookup _ | Batch_lookup _ | Symbols -> true
  | Add_member _ | Add_class _ -> false

(* ---- header -------------------------------------------------------- *)

(* [parse_header s] reads the 6-byte prefix of a request frame:
   (op, payload_len).  The caller has already matched the 0xB1 magic to
   choose binary framing. *)
let parse_header s =
  if String.length s < header_len then Error "truncated frame header"
  else if Char.code s.[0] <> request_magic then Error "bad frame magic"
  else
    let r = B.Reader.of_string ~pos:1 s in
    let op = B.Reader.u8 r in
    let len = B.Reader.u32 r in
    Ok (op, len)

let frame ~magic ~tag payload =
  let w = B.Writer.create ~initial_size:(header_len + String.length payload) () in
  B.Writer.u8 w magic;
  B.Writer.u8 w tag;
  B.Writer.u32 w (String.length payload);
  B.Writer.raw w payload;
  B.Writer.contents w

let payload f =
  let w = B.Writer.create () in
  f w;
  B.Writer.contents w

(* ---- requests ------------------------------------------------------- *)

let base_of_reader r =
  let name = B.Reader.string r in
  let kind = B.read_edge_kind r in
  let access = B.read_access r in
  (name, kind, access)

let write_base w (name, kind, access) =
  B.Writer.string w name;
  B.write_edge_kind w kind;
  B.write_access w access

(* [decode_request ~op body] — the typed request, or a message for a
   [bad_request] reply.  [body] is the payload alone (header already
   consumed by the reader). *)
let decode_request ~op body =
  try
    let r = B.Reader.of_string body in
    let fr_id = B.Reader.i64 r in
    let fr_session = B.Reader.string r in
    let fr_op =
      if op = op_lookup then
        let c = B.Reader.u32 r in
        let m = B.Reader.u32 r in
        Lookup { lk_class = c; lk_member = m }
      else if op = op_batch_lookup then begin
        let count = B.Reader.u32 r in
        (* 8 bytes per query: reject counts the payload cannot hold
           before allocating *)
        if count * 8 > B.Reader.remaining r then
          raise (B.Corrupt "batch count exceeds payload");
        Batch_lookup
          (Array.init count (fun _ ->
               let c = B.Reader.u32 r in
               let m = B.Reader.u32 r in
               (c, m)))
      end
      else if op = op_add_member then begin
        let c = B.Reader.u32 r in
        let m = B.read_member r in
        Add_member { am_class = c; am_member = m }
      end
      else if op = op_add_class then begin
        let name = B.Reader.string r in
        let bases = B.read_list r base_of_reader in
        let members = B.read_list r B.read_member in
        Add_class { ac_name = name; ac_bases = bases; ac_members = members }
      end
      else if op = op_symbols then Symbols
      else raise (B.Corrupt (Printf.sprintf "unknown frame op %d" op))
    in
    if not (B.Reader.at_end r) then
      raise (B.Corrupt "trailing bytes after frame payload");
    Ok { fr_id; fr_session; fr_op }
  with
  | B.Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg

let encode_request { fr_id; fr_session; fr_op } =
  let tag, body =
    match fr_op with
    | Lookup { lk_class; lk_member } ->
      ( op_lookup,
        fun w ->
          B.Writer.u32 w lk_class;
          B.Writer.u32 w lk_member )
    | Batch_lookup qs ->
      ( op_batch_lookup,
        fun w ->
          B.Writer.u32 w (Array.length qs);
          Array.iter
            (fun (c, m) ->
              B.Writer.u32 w c;
              B.Writer.u32 w m)
            qs )
    | Add_member { am_class; am_member } ->
      ( op_add_member,
        fun w ->
          B.Writer.u32 w am_class;
          B.write_member w am_member )
    | Add_class { ac_name; ac_bases; ac_members } ->
      ( op_add_class,
        fun w ->
          B.Writer.string w ac_name;
          B.Writer.u32 w (List.length ac_bases);
          List.iter (write_base w) ac_bases;
          B.Writer.u32 w (List.length ac_members);
          List.iter (B.write_member w) ac_members )
    | Symbols -> (op_symbols, fun _ -> ())
  in
  frame ~magic:request_magic ~tag
    (payload (fun w ->
         B.Writer.i64 w fr_id;
         B.Writer.string w fr_session;
         body w))

(* [session_of_request body] extracts just the [i64 id | string session]
   prefix — all a router needs to route a frame it otherwise treats as
   opaque bytes. *)
let session_of_request body =
  try
    let r = B.Reader.of_string body in
    let id = B.Reader.i64 r in
    let session = B.Reader.string r in
    Ok (id, session)
  with
  | B.Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg

(* ---- responses ------------------------------------------------------ *)

(* verdict tags in lookup / batch_lookup responses *)
let verdict_none = 0
let verdict_red = 1
let verdict_blue = 2

type verdict_code = int
(* the {!Lookup_core.Packed.column_resolve_code} convention:
   [-1] absent, [-2] ambiguous, [>= 0] the declaring class id *)

type resp =
  | Ok_lookup of verdict_code
  | Ok_batch of {
      ob_codes : verdict_code array;
      ob_resolved : int;
      ob_ambiguous : int;
      ob_not_found : int;
    }
  | Ok_add_member of {
      oam_member : int;  (* the member's interned id *)
      oam_rows : int;
      oam_invalidated : bool;
      oam_epoch : int;
      oam_new_symbols : (int * string) list;  (* intern-table delta *)
    }
  | Ok_add_class of {
      oac_class : int;  (* the new class id *)
      oac_classes : int;  (* class count after the mutation *)
      oac_epoch : int;
      oac_new_symbols : (int * string) list;
    }
  | Ok_symbols of {
      os_epoch : int;
      os_classes : string array;  (* class id -> name *)
      os_members : string array;  (* member id -> name *)
    }
  | Err of Protocol.error_code * string

let write_verdict w code =
  if code >= 0 then begin
    B.Writer.u8 w verdict_red;
    B.Writer.u32 w code
  end
  else if code = -2 then B.Writer.u8 w verdict_blue
  else B.Writer.u8 w verdict_none

let read_verdict r =
  match B.Reader.u8 r with
  | 0 -> -1
  | 1 -> B.Reader.u32 r
  | 2 -> -2
  | t -> raise (B.Corrupt (Printf.sprintf "unknown verdict tag %d" t))

let write_symbol_delta w delta =
  B.Writer.u32 w (List.length delta);
  List.iter
    (fun (id, name) ->
      B.Writer.u32 w id;
      B.Writer.string w name)
    delta

let read_symbol_delta r =
  B.read_list r (fun r ->
      let id = B.Reader.u32 r in
      let name = B.Reader.string r in
      (id, name))

let encode_response ~id resp =
  match resp with
  | Err (code, msg) ->
    frame ~magic:response_magic ~tag:1
      (payload (fun w ->
           B.Writer.i64 w id;
           B.Writer.u8 w (Protocol.code_byte code);
           B.Writer.string w msg))
  | ok ->
    frame ~magic:response_magic ~tag:0
      (payload (fun w ->
           B.Writer.i64 w id;
           match ok with
           | Err _ -> assert false
           | Ok_lookup code -> write_verdict w code
           | Ok_batch { ob_codes; ob_resolved; ob_ambiguous; ob_not_found } ->
             B.Writer.u32 w (Array.length ob_codes);
             Array.iter (write_verdict w) ob_codes;
             B.Writer.u32 w ob_resolved;
             B.Writer.u32 w ob_ambiguous;
             B.Writer.u32 w ob_not_found
           | Ok_add_member
               { oam_member; oam_rows; oam_invalidated; oam_epoch;
                 oam_new_symbols } ->
             B.Writer.u32 w oam_member;
             B.Writer.u32 w oam_rows;
             B.Writer.bool w oam_invalidated;
             B.Writer.i64 w oam_epoch;
             write_symbol_delta w oam_new_symbols
           | Ok_add_class { oac_class; oac_classes; oac_epoch; oac_new_symbols }
             ->
             B.Writer.u32 w oac_class;
             B.Writer.u32 w oac_classes;
             B.Writer.i64 w oac_epoch;
             write_symbol_delta w oac_new_symbols
           | Ok_symbols { os_epoch; os_classes; os_members } ->
             B.Writer.i64 w os_epoch;
             B.Writer.u32 w (Array.length os_classes);
             Array.iter (B.Writer.string w) os_classes;
             B.Writer.u32 w (Array.length os_members);
             Array.iter (B.Writer.string w) os_members))

(* [decode_response ~op frame] — for clients.  [op] is the request op
   the response answers (the framing does not repeat it). *)
let decode_response ~op s =
  try
    if String.length s < header_len then raise (B.Corrupt "truncated frame");
    if Char.code s.[0] <> response_magic then
      raise (B.Corrupt "bad response magic");
    let status = Char.code s.[1] in
    let r = B.Reader.of_string ~pos:2 s in
    let len = B.Reader.u32 r in
    if len <> String.length s - header_len then
      raise (B.Corrupt "frame length mismatch");
    let id = B.Reader.i64 r in
    let resp =
      if status = 1 then begin
        let code_b = B.Reader.u8 r in
        let msg = B.Reader.string r in
        match Protocol.code_of_byte code_b with
        | Some code -> Err (code, msg)
        | None ->
          raise (B.Corrupt (Printf.sprintf "unknown error code %d" code_b))
      end
      else if status <> 0 then
        raise (B.Corrupt (Printf.sprintf "unknown frame status %d" status))
      else if op = op_lookup then Ok_lookup (read_verdict r)
      else if op = op_batch_lookup then begin
        let count = B.Reader.u32 r in
        if count > B.Reader.remaining r then
          raise (B.Corrupt "batch count exceeds payload");
        let codes = Array.init count (fun _ -> read_verdict r) in
        let resolved = B.Reader.u32 r in
        let ambiguous = B.Reader.u32 r in
        let not_found = B.Reader.u32 r in
        Ok_batch
          { ob_codes = codes; ob_resolved = resolved;
            ob_ambiguous = ambiguous; ob_not_found = not_found }
      end
      else if op = op_add_member then begin
        let m = B.Reader.u32 r in
        let rows = B.Reader.u32 r in
        let inv = B.Reader.bool r in
        let epoch = B.Reader.i64 r in
        let delta = read_symbol_delta r in
        Ok_add_member
          { oam_member = m; oam_rows = rows; oam_invalidated = inv;
            oam_epoch = epoch; oam_new_symbols = delta }
      end
      else if op = op_add_class then begin
        let c = B.Reader.u32 r in
        let classes = B.Reader.u32 r in
        let epoch = B.Reader.i64 r in
        let delta = read_symbol_delta r in
        Ok_add_class
          { oac_class = c; oac_classes = classes; oac_epoch = epoch;
            oac_new_symbols = delta }
      end
      else if op = op_symbols then begin
        let epoch = B.Reader.i64 r in
        let nc = B.Reader.u32 r in
        if nc > B.Reader.remaining r then
          raise (B.Corrupt "class count exceeds payload");
        let classes = Array.init nc (fun _ -> B.Reader.string r) in
        let nm = B.Reader.u32 r in
        if nm > B.Reader.remaining r then
          raise (B.Corrupt "member count exceeds payload");
        let members = Array.init nm (fun _ -> B.Reader.string r) in
        Ok_symbols { os_epoch = epoch; os_classes = classes;
                     os_members = members }
      end
      else raise (B.Corrupt (Printf.sprintf "unknown frame op %d" op))
    in
    if not (B.Reader.at_end r) then
      raise (B.Corrupt "trailing bytes after frame payload");
    Ok (id, resp)
  with
  | B.Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg
