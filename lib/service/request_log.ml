module J = Chg.Json

(* One observed request, as the server saw it finish.  The same record
   feeds both outputs: the durable JSON-lines request log and the
   in-memory flight recorder that is dumped on internal errors and on
   SIGUSR1. *)
type entry = {
  e_seq : int;  (* 1-based arrival order within this server *)
  e_conn : int option;  (* connection id under the networked server *)
  e_verb : string;  (* op name, or "invalid" for rejected lines *)
  e_session : string option;
  e_id : J.t;  (* the request's echoed id *)
  e_outcome : string;  (* "ok" or the error code *)
  e_latency_ns : int;
  e_bytes : int;  (* response line bytes; 0 when the log is disabled *)
  e_via : string option;  (* lookup serving path: "table" / "memo" *)
  e_slow : bool;  (* latency crossed the --slow-ms threshold *)
}

let entry_json e =
  J.Obj
    (("seq", J.Int e.e_seq)
     :: ((match e.e_conn with
         | Some c -> [ ("conn", J.Int c) ]
         | None -> [])
        @ [ ("verb", J.String e.e_verb) ]
        @ (match e.e_session with
          | Some s -> [ ("session", J.String s) ]
          | None -> []))
     @ ("id", e.e_id)
       :: ("outcome", J.String e.e_outcome)
       :: ("latency_ns", J.Int e.e_latency_ns)
       :: ("bytes", J.Int e.e_bytes)
       :: (match e.e_via with
          | Some v -> [ ("via", J.String v) ]
          | None -> [])
     @ if e.e_slow then [ ("slow", J.Bool true) ] else [])

(* ---- the durable log ----------------------------------------------- *)

type t = { oc : out_channel; owned : bool }

let open_path path =
  { oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path;
    owned = true }

let of_channel oc = { oc; owned = false }

(* One line per request, flushed — the log must survive the very crash
   it exists to explain. *)
let log t e =
  output_string t.oc (J.to_string (entry_json e));
  output_char t.oc '\n';
  flush t.oc

let close t = if t.owned then close_out t.oc else flush t.oc

(* ---- the flight recorder ------------------------------------------- *)

type recorder = entry Telemetry.Ring.t

let default_flight_capacity = 64

let dump (r : recorder) oc =
  Printf.fprintf oc
    "--- cxxlookup flight recorder: last %d of %d requests ---\n"
    (Telemetry.Ring.length r) (Telemetry.Ring.pushed r);
  List.iter
    (fun e ->
      output_string oc (J.to_string (entry_json e));
      output_char oc '\n')
    (Telemetry.Ring.to_list r);
  Printf.fprintf oc "--- end flight recorder ---\n";
  flush oc
