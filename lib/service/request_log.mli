(** Request-level observability: the structured JSON request log and
    the flight recorder.

    Both consume the same {!entry} — one record per finished request,
    written by the server after the response is computed.  The log is a
    JSON-lines file (one object per line, flushed per line, append
    mode, so restarts extend rather than truncate).  The flight
    recorder is a fixed-size ring of the most recent entries, kept even
    when no log file is configured, and dumped to stderr whenever the
    server answers an [internal] error — and on SIGUSR1 under
    [cxxlookup serve] — so the requests leading up to a failure are
    always recoverable without any logging overhead in steady state. *)

type entry = {
  e_seq : int;  (** 1-based arrival order within this server *)
  e_conn : int option;
      (** connection id under the networked server; [None] on the
          single-client stdin/stdout path, where the field is omitted
          from the line entirely — the same parser reads both *)
  e_verb : string;  (** op name, or ["invalid"] for rejected lines *)
  e_session : string option;
  e_id : Chg.Json.t;  (** the request's echoed id *)
  e_outcome : string;  (** ["ok"] or the error code *)
  e_latency_ns : int;
  e_bytes : int;  (** response line bytes; [0] when the log is disabled
                      (measuring would re-serialize the response) *)
  e_via : string option;  (** lookup serving path: ["table"] / ["memo"] *)
  e_slow : bool;  (** latency crossed the [--slow-ms] threshold *)
}

val entry_json : entry -> Chg.Json.t

type t

(** [open_path path] opens (append, create) a JSON-lines log. *)
val open_path : string -> t

(** [of_channel oc] logs to an existing channel without owning it. *)
val of_channel : out_channel -> t

(** [log t e] writes one line and flushes. *)
val log : t -> entry -> unit

val close : t -> unit

(** {1 Flight recorder} *)

type recorder = entry Telemetry.Ring.t

val default_flight_capacity : int

(** [dump r oc] writes the ring oldest-first as JSON lines between
    human-readable header/footer markers, then flushes. *)
val dump : recorder -> out_channel -> unit
