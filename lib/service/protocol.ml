module J = Chg.Json
module G = Chg.Graph
module Engine = Lookup_core.Engine
module Abstraction = Lookup_core.Abstraction

let version = "cxxlookup-rpc/1"

type error_code =
  | Parse_error
  | Bad_request
  | Bad_version
  | Unknown_op
  | Unknown_session
  | Duplicate_session
  | Unknown_class
  | Bad_hierarchy
  | Store_error
  | Overloaded
  | Not_leader
  | Backend_unavailable
  | Internal

let code_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Bad_version -> "bad_version"
  | Unknown_op -> "unknown_op"
  | Unknown_session -> "unknown_session"
  | Duplicate_session -> "duplicate_session"
  | Unknown_class -> "unknown_class"
  | Bad_hierarchy -> "bad_hierarchy"
  | Store_error -> "store_error"
  | Overloaded -> "overloaded"
  | Not_leader -> "not_leader"
  | Backend_unavailable -> "backend_unavailable"
  | Internal -> "internal"

(* Stable u8 codes for the binary framing (cxxlookup-rpc/1b); the JSON
   strings above stay canonical.  Never renumber. *)
let code_byte = function
  | Parse_error -> 1
  | Bad_request -> 2
  | Bad_version -> 3
  | Unknown_op -> 4
  | Unknown_session -> 5
  | Duplicate_session -> 6
  | Unknown_class -> 7
  | Bad_hierarchy -> 8
  | Store_error -> 9
  | Overloaded -> 10
  | Not_leader -> 11
  | Backend_unavailable -> 12
  | Internal -> 13

let code_of_byte = function
  | 1 -> Some Parse_error
  | 2 -> Some Bad_request
  | 3 -> Some Bad_version
  | 4 -> Some Unknown_op
  | 5 -> Some Unknown_session
  | 6 -> Some Duplicate_session
  | 7 -> Some Unknown_class
  | 8 -> Some Bad_hierarchy
  | 9 -> Some Store_error
  | 10 -> Some Overloaded
  | 11 -> Some Not_leader
  | 12 -> Some Backend_unavailable
  | 13 -> Some Internal
  | _ -> None

type query = { q_class : string; q_member : string }

type hierarchy =
  | Chg_json of J.t  (** inline cxxlookup-chg document *)
  | Source of string  (** C++-subset translation unit text *)

type mutation =
  | Add_class of {
      mc_name : string;
      mc_bases : (string * G.edge_kind * G.access) list;
      mc_members : G.member list;
    }
  | Add_member of { mm_class : string; mm_member : G.member }

type op =
  | Open of { o_session : string option; o_hierarchy : hierarchy }
  | Lookup of { lk_query : query; lk_semantics : Mro.semantics }
  | Batch_lookup of { bl_queries : query list; bl_semantics : Mro.semantics }
  | Mutate of mutation
  | Lint of { l_rules : string list option; l_semantics : Mro.semantics }
  | Symbols
  | Snapshot
  | Restore
  | Stats
  | Metrics
  | Close

type request = { rq_id : J.t; rq_session : string option; rq_op : op }

(* The networked server's reader/writer split: read-only verbs execute
   concurrently across worker domains against shared immutable packed
   columns; everything else serializes through the single writer path
   that owns the session table and the WAL. *)
let op_string = function
  | Open _ -> "open"
  | Lookup _ -> "lookup"
  | Batch_lookup _ -> "batch_lookup"
  | Mutate _ -> "mutate"
  | Lint _ -> "lint"
  | Symbols -> "symbols"
  | Snapshot -> "snapshot"
  | Restore -> "restore"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Close -> "close"

let read_only = function
  | Lookup _ | Batch_lookup _ | Lint _ | Symbols | Stats | Metrics -> true
  | Open _ | Mutate _ | Snapshot | Restore | Close -> false

(* ---- request parsing (lenient field access with defaults) ---------- *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with Ok v -> Some v | Error _ -> None

let str_field name j =
  match field name j with
  | None -> Ok None
  | Some v ->
    (match J.to_str v with
    | Ok s -> Ok (Some s)
    | Error _ ->
      Error (Printf.sprintf "field %S must be a string" name))

let req_str name j =
  match field name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v ->
    (match J.to_str v with
    | Ok s -> Ok s
    | Error _ -> Error (Printf.sprintf "field %S must be a string" name))

let bool_field name ~default j =
  match field name j with
  | None -> Ok default
  | Some v ->
    (match J.to_bool v with
    | Ok b -> Ok b
    | Error _ -> Error (Printf.sprintf "field %S must be a boolean" name))

let access_of_string = function
  | "public" -> Ok G.Public
  | "protected" -> Ok G.Protected
  | "private" -> Ok G.Private
  | s -> Error (Printf.sprintf "unknown access %S" s)

let kind_of_string = function
  | "data" -> Ok G.Data
  | "function" -> Ok G.Function
  | "type" -> Ok G.Type
  | "enumerator" -> Ok G.Enumerator
  | s -> Error (Printf.sprintf "unknown member kind %S" s)

(* Members and bases use the cxxlookup-chg field shapes, with every field
   except the name optional: {"name":"m"} is a plain public data member. *)
let member_of_json j =
  let* name = req_str "name" j in
  let* kind_s = str_field "kind" j in
  let* kind =
    match kind_s with None -> Ok G.Data | Some s -> kind_of_string s
  in
  let* static = bool_field "static" ~default:false j in
  let* virtual_ = bool_field "virtual" ~default:false j in
  let* access_s = str_field "access" j in
  let* access =
    match access_s with None -> Ok G.Public | Some s -> access_of_string s
  in
  Ok
    { G.m_name = name; m_kind = kind; m_static = static;
      m_virtual = virtual_; m_access = access }

let base_of_json j =
  let* cls = req_str "class" j in
  let* virtual_ = bool_field "virtual" ~default:false j in
  let* access_s = str_field "access" j in
  let* access =
    match access_s with None -> Ok G.Public | Some s -> access_of_string s
  in
  Ok (cls, (if virtual_ then G.Virtual else G.Non_virtual), access)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let list_field name j =
  match field name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v ->
    (match J.to_list v with
    | Ok l -> Ok l
    | Error _ -> Error (Printf.sprintf "field %S must be an array" name))

let opt_list_field name j =
  match field name j with
  | None -> Ok []
  | Some v ->
    (match J.to_list v with
    | Ok l -> Ok l
    | Error _ -> Error (Printf.sprintf "field %S must be an array" name))

let query_of_json j =
  let* q_class = req_str "class" j in
  let* q_member = req_str "member" j in
  Ok { q_class; q_member }

(* The optional "semantics" field on lookup / batch_lookup / lint.
   Absent means C++ dominance — existing clients are untouched — and an
   unknown value is a [bad_request], never a silent fallback. *)
let semantics_field j =
  match str_field "semantics" j with
  | Error m -> Error m
  | Ok None -> Ok Mro.Cpp
  | Ok (Some s) ->
    (match Mro.semantics_of_string s with
    | Some v -> Ok v
    | None ->
      Error
        (Printf.sprintf
           "unknown semantics %S (valid: cpp, c3, py22, dylan)" s))

let mutation_of_json j =
  match (field "add_class" j, field "add_member" j) with
  | Some spec, None ->
    let* name = req_str "name" spec in
    let* bases_j = opt_list_field "bases" spec in
    let* bases = map_result base_of_json bases_j in
    let* members_j = opt_list_field "members" spec in
    let* members = map_result member_of_json members_j in
    Ok (Add_class { mc_name = name; mc_bases = bases; mc_members = members })
  | None, Some spec ->
    let* cls = req_str "class" spec in
    let* member_j =
      match field "member" spec with
      | Some m -> Ok m
      | None -> Error "missing field \"member\""
    in
    let* m = member_of_json member_j in
    Ok (Add_member { mm_class = cls; mm_member = m })
  | Some _, Some _ ->
    Error "mutate takes exactly one of \"add_class\" / \"add_member\""
  | None, None ->
    Error "mutate requires an \"add_class\" or \"add_member\" field"

let op_of_json op j =
  let ( let* ) r k =
    match r with Error m -> Error (Bad_request, m) | Ok v -> k v
  in
  match op with
  | "open" ->
    let* session = str_field "session" j in
    (match (field "chg" j, field "source" j) with
    | Some chg, None ->
      Ok (Open { o_session = session; o_hierarchy = Chg_json chg })
    | None, Some src ->
      let* s =
        match J.to_str src with
        | Ok s -> Ok s
        | Error _ -> Error "field \"source\" must be a string"
      in
      Ok (Open { o_session = session; o_hierarchy = Source s })
    | Some _, Some _ ->
      Error (Bad_request, "open takes exactly one of \"chg\" / \"source\"")
    | None, None ->
      Error (Bad_request, "open requires a \"chg\" or \"source\" hierarchy"))
  | "lookup" ->
    let* q = query_of_json j in
    let* sem = semantics_field j in
    Ok (Lookup { lk_query = q; lk_semantics = sem })
  | "batch_lookup" ->
    let* qs_j = list_field "queries" j in
    let* qs = map_result query_of_json qs_j in
    let* sem = semantics_field j in
    Ok (Batch_lookup { bl_queries = qs; bl_semantics = sem })
  | "mutate" ->
    let* m = mutation_of_json j in
    Ok (Mutate m)
  | "lint" ->
    let* sem = semantics_field j in
    (match field "rules" j with
    | None -> Ok (Lint { l_rules = None; l_semantics = sem })
    | Some v ->
      let* l =
        match J.to_list v with
        | Ok l -> Ok l
        | Error _ -> Error "field \"rules\" must be an array"
      in
      let* rules =
        map_result
          (fun r ->
            match J.to_str r with
            | Ok s -> Ok s
            | Error _ -> Error "field \"rules\" must be an array of strings")
          l
      in
      Ok (Lint { l_rules = Some rules; l_semantics = sem }))
  | "symbols" -> Ok Symbols
  | "snapshot" -> Ok Snapshot
  | "restore" -> Ok Restore
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "close" -> Ok Close
  | other -> Error (Unknown_op, Printf.sprintf "unknown op %S" other)

let request_of_json j =
  let id = match field "id" j with Some v -> v | None -> J.Null in
  let fail code msg = Error (id, code, msg) in
  match field "rpc" j with
  | Some v
    when (match J.to_str v with Ok s -> s <> version | Error _ -> true) ->
    fail Bad_version
      (Printf.sprintf "this server speaks %s" version)
  | _ ->
    (match J.member "op" j with
    | Error _ -> fail Bad_request "missing field \"op\""
    | Ok op_j ->
      (match J.to_str op_j with
      | Error _ -> fail Bad_request "field \"op\" must be a string"
      | Ok op ->
        (match str_field "session" j with
        | Error msg -> fail Bad_request msg
        | Ok session ->
          (match op_of_json op j with
          | Error (code, msg) -> fail code msg
          | Ok o -> Ok { rq_id = id; rq_session = session; rq_op = o }))))

let parse_request line =
  match J.of_string line with
  | Error msg -> Error (J.Null, Parse_error, msg)
  | Ok j -> request_of_json j

(* ---- responses ----------------------------------------------------- *)

let ok_response ~id fields =
  J.Obj (("id", id) :: ("ok", J.Bool true) :: fields)

let error_response ~id code msg =
  J.Obj
    [ ("id", id); ("ok", J.Bool false);
      ( "error",
        J.Obj
          [ ("code", J.String (code_string code));
            ("message", J.String msg) ] ) ]

let verdict_fields g v =
  match v with
  | None -> [ ("verdict", J.String "none") ]
  | Some (Engine.Red r) ->
    [ ("verdict", J.String "red");
      ("resolves_to", J.String (G.name g r.Abstraction.r_ldc));
      ("detail",
       J.String (Format.asprintf "%a" (Engine.pp_verdict g) (Engine.Red r)))
    ]
  | Some (Engine.Blue s) ->
    [ ("verdict", J.String "blue");
      ("detail",
       J.String (Format.asprintf "%a" (Engine.pp_verdict g) (Engine.Blue s)))
    ]
