module Packed = Lookup_core.Packed

type column = Packed.column

type entry = {
  mutable column : column;
  mutable bytes : int;  (* real packed bytes — what the budget charges *)
  mutable boxed_bytes : int;  (* what the same column would cost boxed *)
  mutable last_use : int;  (* LRU stamp from the cache's tick *)
}

module Smap = Map.Make (String)

type t = {
  table : (string, entry) Hashtbl.t;
  published : entry Smap.t Atomic.t;
      (* an immutable snapshot of [table], republished after every
         structural change.  [find_fast] reads it lock-free from
         concurrent reader domains; the Hashtbl itself is only touched
         under the owner's exclusivity (the session mutex / the net
         layer's writer lock). *)
  mutable tick : int;
  max_entries : int;
  max_bytes : int option;
  mutable total_bytes : int;
  mutable total_boxed_bytes : int;
  hits : Telemetry.Counter.t;
  misses : Telemetry.Counter.t;
  promotions : Telemetry.Counter.t;
  evictions : Telemetry.Counter.t;
  invalidations : Telemetry.Counter.t;
}

let create ?(max_entries = 64) ?max_bytes () =
  if max_entries < 1 then
    invalid_arg "Table_cache.create: max_entries must be >= 1";
  (match max_bytes with
  | Some n when n < 1 ->
    invalid_arg "Table_cache.create: max_bytes must be >= 1"
  | _ -> ());
  { table = Hashtbl.create 16;
    published = Atomic.make Smap.empty;
    tick = 0;
    max_entries;
    max_bytes;
    total_bytes = 0;
    total_boxed_bytes = 0;
    hits = Telemetry.Counter.make "table_hits";
    misses = Telemetry.Counter.make "table_misses";
    promotions = Telemetry.Counter.make "table_promotions";
    evictions = Telemetry.Counter.make "table_evictions";
    invalidations = Telemetry.Counter.make "table_invalidations" }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let republish t =
  Atomic.set t.published
    (Hashtbl.fold (fun m e acc -> Smap.add m e acc) t.table Smap.empty)

(* The lock-free hit path: consult only the published snapshot, so it
   can run on any reader domain concurrently with a promotion that is
   restructuring the Hashtbl.  A hit counts and touches exactly like
   {!find} (tick bumps are racy across domains — LRU recency is an
   approximation there — but byte-identical to {!find} in serial
   stdin/stdout mode).  A miss counts nothing: the caller falls back to
   the locked {!find}, which attributes it. *)
let find_fast t m =
  match Smap.find_opt m (Atomic.get t.published) with
  | Some e ->
    Telemetry.Counter.incr t.hits;
    touch t e;
    Some e.column
  | None -> None

(* [peek] serves the interned-id path's column promotion: a lock-free
   probe of the published snapshot with no counter or LRU effect — the
   caller already attributed the query through {!find}/{!find_fast}. *)
let peek t m =
  match Smap.find_opt m (Atomic.get t.published) with
  | Some e -> Some e.column
  | None -> None

(* [note_fast_hit] counts a hit served from outside the cache — the
   session's symtab column cache, which holds columns this cache
   published — so both framings' hit ratios stay comparable.  No LRU
   touch: the id path never restructures recency. *)
let note_fast_hit t = Telemetry.Counter.incr t.hits

let find t m =
  match Hashtbl.find_opt t.table m with
  | Some e ->
    Telemetry.Counter.incr t.hits;
    touch t e;
    Some e.column
  | None ->
    Telemetry.Counter.incr t.misses;
    None

let drop t m e =
  Hashtbl.remove t.table m;
  t.total_bytes <- t.total_bytes - e.bytes;
  t.total_boxed_bytes <- t.total_boxed_bytes - e.boxed_bytes

(* Evict the least recently used entry other than [keep]. *)
let evict_lru t ~keep =
  let victim = ref None in
  Hashtbl.iter
    (fun m e ->
      if m <> keep then
        match !victim with
        | Some (_, best) when best.last_use <= e.last_use -> ()
        | _ -> victim := Some (m, e))
    t.table;
  match !victim with
  | None -> false
  | Some (m, e) ->
    drop t m e;
    Telemetry.Counter.incr t.evictions;
    true

let over_budget t =
  Hashtbl.length t.table > t.max_entries
  || match t.max_bytes with
     | Some cap -> t.total_bytes > cap
     | None -> false

let set_column t e col =
  let bytes = Packed.column_bytes col in
  let boxed = Packed.boxed_column_bytes col in
  t.total_bytes <- t.total_bytes - e.bytes + bytes;
  t.total_boxed_bytes <- t.total_boxed_bytes - e.boxed_bytes + boxed;
  e.column <- col;
  e.bytes <- bytes;
  e.boxed_bytes <- boxed

let promote t m col =
  (match Hashtbl.find_opt t.table m with
  | Some e ->
    set_column t e col;
    touch t e
  | None ->
    let e = { column = col; bytes = 0; boxed_bytes = 0; last_use = 0 } in
    set_column t e col;
    touch t e;
    Hashtbl.add t.table m e);
  Telemetry.Counter.incr t.promotions;
  (* Enforce the budget, always keeping the entry just promoted (a
     single over-budget column is better served resident than thrashing
     on every promotion). *)
  while over_budget t && evict_lru t ~keep:m do
    ()
  done;
  republish t

let invalidate t m =
  match Hashtbl.find_opt t.table m with
  | None -> false
  | Some e ->
    drop t m e;
    republish t;
    Telemetry.Counter.incr t.invalidations;
    true

let clear t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  republish t;
  t.total_bytes <- 0;
  t.total_boxed_bytes <- 0;
  Telemetry.Counter.add t.invalidations n

let update_columns t f =
  let updates =
    Hashtbl.fold (fun m e acc -> (m, e, f m e.column) :: acc) t.table []
  in
  List.iter
    (fun (m, e, next) ->
      match next with
      | None ->
        drop t m e;
        Telemetry.Counter.incr t.invalidations
      | Some col -> set_column t e col)
    updates;
  republish t

let columns t =
  Hashtbl.fold (fun m e acc -> (m, e.column) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let column_stats t =
  Hashtbl.fold
    (fun m e acc -> (m, e.bytes, e.boxed_bytes) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let mem t m = Hashtbl.mem t.table m
let entries t = Hashtbl.length t.table
let bytes t = t.total_bytes
let boxed_bytes t = t.total_boxed_bytes

let counters t =
  List.map
    (fun c -> (Telemetry.Counter.name c, Telemetry.Counter.value c))
    [ t.hits; t.misses; t.promotions; t.evictions; t.invalidations ]

let hits t = Telemetry.Counter.value t.hits
let misses t = Telemetry.Counter.value t.misses

(* Exposition: cxxlookup_table_*_total counters plus live-size gauges,
   labelled by the owning session so several caches coexist in one
   registry. *)
let register t ?(labels = []) registry =
  List.iter
    (fun c ->
      Telemetry.Registry.attach_counter registry ~labels
        ~help:
          (Printf.sprintf "Compiled-table cache counter %s."
             (Telemetry.Counter.name c))
        (Printf.sprintf "cxxlookup_%s_total" (Telemetry.Counter.name c))
        c)
    [ t.hits; t.misses; t.promotions; t.evictions; t.invalidations ];
  Telemetry.Registry.gauge registry ~labels
    ~help:"Resident compiled columns." "cxxlookup_table_entries"
    (fun () -> entries t);
  Telemetry.Registry.gauge registry ~labels
    ~help:"Resident packed column bytes (the budgeted quantity)."
    "cxxlookup_table_bytes"
    (fun () -> bytes t);
  Telemetry.Registry.gauge registry ~labels
    ~help:"Boxed-equivalent bytes of the resident columns."
    "cxxlookup_table_boxed_bytes"
    (fun () -> boxed_bytes t)
